//! Codec round-trip properties: every column codec must be bit-exact
//! lossless over every column shape the generators (or a hostile user)
//! can produce — constant columns, monotone timestamps, integer-valued
//! attributes, NaN-bearing floats, full-entropy bit patterns and empty
//! chunks — and the encoder's per-column codec choice must never trade
//! correctness for size.

use proptest::prelude::*;
use raster_join_repro::data::codec::{decode_f32s, decode_f64s, encode_f32s, encode_f64s};

/// Deterministic 64-bit mixer for building column shapes from one seed.
fn mix(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut z = *state;
    z ^= z >> 33;
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^ (z >> 33)
}

/// One synthetic column family per `kind`, mirroring what real tables
/// hold: grid coordinates, integer counts, monotone hours, noisy floats,
/// constants, NaN mixtures and raw bit noise.
fn f64_column(kind: u8, n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|i| match kind % 6 {
            0 => (mix(&mut s) % 60_000_000) as f64 / 1024.0, // sensor grid
            1 => (mix(&mut s) % 10_000) as f64 - 5_000.0,    // mixed-sign ints
            2 => i as f64 * 0.25,                            // monotone grid
            3 => f64::from_bits(mix(&mut s)),                // raw bit noise (NaNs included)
            4 => 42.5,                                       // constant
            _ => (mix(&mut s) as f64 / u64::MAX as f64) * 1e3, // full-mantissa noise
        })
        .collect()
}

fn f32_column(kind: u8, n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n)
        .map(|i| match kind % 7 {
            0 => (mix(&mut s) % 500) as f32,         // favourites-style counts
            1 => i as f32 / n.max(1) as f32 * 168.0, // monotone hour-of-week
            2 => f32::from_bits(mix(&mut s) as u32), // raw bit noise (NaNs included)
            3 => -7.75,                              // constant
            4 => {
                // NaN-bearing: every third value is a NaN with a payload.
                if i % 3 == 0 {
                    f32::from_bits(0x7FC0_0001 | (mix(&mut s) as u32 & 0x3F_FFFF))
                } else {
                    (mix(&mut s) % 1000) as f32 * 0.5
                }
            }
            5 => (mix(&mut s) % 8_000) as f32 / 128.0 + 2.5, // fares on a 1/128 grid
            _ => mix(&mut s) as f32 / u64::MAX as f32,       // full-mantissa noise
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// f64 (coordinate) columns of every family and length — including
    /// empty — round-trip bit-exactly through whichever codec the
    /// encoder picks, and the encoding never exceeds raw by more than
    /// the RLE worst case.
    #[test]
    fn f64_columns_roundtrip_bit_exactly(
        kind in any::<u8>(),
        n in 0usize..3_000,
        seed in any::<u64>(),
    ) {
        let vals = f64_column(kind, n, seed);
        let enc = encode_f64s(&vals);
        let back = decode_f64s(enc.codec, n, &enc.bytes).expect("decode");
        let got: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want, "codec {}", enc.codec);
        prop_assert!(enc.bytes.len() <= n * 8 + n / 64 + 2);
    }

    /// f32 (attribute) columns — counts, monotone hours, NaN payloads,
    /// binary-grid fares, noise — round-trip bit-exactly.
    #[test]
    fn f32_columns_roundtrip_bit_exactly(
        kind in any::<u8>(),
        n in 0usize..3_000,
        seed in any::<u64>(),
    ) {
        let vals = f32_column(kind, n, seed);
        let enc = encode_f32s(&vals);
        let back = decode_f32s(enc.codec, n, &enc.bytes).expect("decode");
        let got: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = vals.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want, "codec {}", enc.codec);
        prop_assert!(enc.bytes.len() <= n * 4 + n / 32 + 2);
    }

    /// Decoding never panics on corrupted payloads: any truncation or
    /// byte flip either round-trips to a valid column of the requested
    /// length or returns a typed error — garbage in, error out.
    #[test]
    fn corrupted_payloads_error_instead_of_panicking(
        kind in any::<u8>(),
        n in 1usize..500,
        seed in any::<u64>(),
        cut in any::<u16>(),
        flip in any::<u16>(),
    ) {
        let vals = f32_column(kind, n, seed);
        let enc = encode_f32s(&vals);
        // Truncate at an arbitrary point.
        let cut = cut as usize % (enc.bytes.len() + 1);
        let _ = decode_f32s(enc.codec, n, &enc.bytes[..cut]);
        // Flip one byte.
        if !enc.bytes.is_empty() {
            let mut bad = enc.bytes.clone();
            let at = flip as usize % bad.len();
            bad[at] ^= 0xA5;
            if let Ok(decoded) = decode_f32s(enc.codec, n, &bad) {
                prop_assert_eq!(decoded.len(), n);
            }
        }
        // Wrong expected length.
        let _ = decode_f32s(enc.codec, n + 1, &enc.bytes);
        let _ = decode_f32s(enc.codec, n.saturating_sub(1), &enc.bytes);
    }
}
