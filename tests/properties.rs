//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use raster_join_repro::geom::clip::{clip_ring, clip_segment, coverage_fraction};
use raster_join_repro::geom::predicates::point_in_ring;
use raster_join_repro::geom::triangulate::triangulate_polygon;
use raster_join_repro::geom::voronoi::voronoi_cells;
use raster_join_repro::prelude::*;

fn arb_point(range: f64) -> impl Strategy<Value = Point> {
    ((-range..range), (-range..range)).prop_map(|(x, y)| Point::new(x, y))
}

/// A random simple (star-shaped) polygon: vertices sorted by angle around
/// a center, at random radii — always non-self-intersecting.
fn arb_star_polygon() -> impl Strategy<Value = Polygon> {
    (3usize..24, 0.5f64..50.0, any::<u32>()).prop_map(|(n, scale, seed)| {
        let mut pts = Vec::with_capacity(n);
        let mut state = seed as u64 | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 0..n {
            let ang = (i as f64 + 0.3 * next()) / n as f64 * std::f64::consts::TAU;
            let r = scale * (0.3 + 0.7 * next());
            pts.push(Point::new(r * ang.cos(), r * ang.sin()));
        }
        Polygon::new(0, Ring::new(pts))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Triangulation exactly preserves polygon area.
    #[test]
    fn triangulation_preserves_area(poly in arb_star_polygon()) {
        prop_assume!(poly.outer().len() >= 3);
        prop_assume!(poly.area() > 1e-9);
        let tris = triangulate_polygon(&poly);
        let tri_area: f64 = tris.iter().map(|t| t.area()).sum();
        prop_assert!(
            (tri_area - poly.area()).abs() < 1e-6 * poly.area().max(1.0),
            "area {} vs {}", tri_area, poly.area()
        );
        // And produces exactly n-2 triangles for a simple polygon.
        prop_assert!(tris.len() <= poly.outer().len().saturating_sub(2));
    }

    /// Triangle coverage agrees with the polygon's own containment test
    /// for points clearly inside or outside.
    #[test]
    fn triangulation_coverage_matches_pip(
        poly in arb_star_polygon(),
        probe in arb_point(60.0),
    ) {
        prop_assume!(poly.area() > 1e-6);
        let edges = poly.all_edges();
        let d = edges
            .iter()
            .map(|&(a, b)| probe.distance_to_segment(a, b))
            .fold(f64::INFINITY, f64::min);
        prop_assume!(d > 1e-6); // skip boundary-ambiguous probes
        let tris = triangulate_polygon(&poly);
        let covered = tris.iter().any(|t| t.contains(probe));
        prop_assert_eq!(covered, poly.contains(probe));
    }

    /// Cohen–Sutherland clipping returns a subsegment inside the box.
    #[test]
    fn clipped_segment_is_inside_box(
        a in arb_point(20.0),
        b in arb_point(20.0),
    ) {
        let bb = BBox::new(Point::new(-5.0, -5.0), Point::new(5.0, 5.0));
        if let Some((p, q)) = clip_segment(&bb, a, b) {
            let tol = 1e-9;
            for r in [p, q] {
                prop_assert!(r.x >= bb.min.x - tol && r.x <= bb.max.x + tol);
                prop_assert!(r.y >= bb.min.y - tol && r.y <= bb.max.y + tol);
            }
            // Clipped endpoints stay on the original line.
            let dir = b - a;
            let cross = |r: Point| (r - a).cross(dir).abs();
            prop_assert!(cross(p) < 1e-6 * (1.0 + dir.norm()) * 20.0);
            prop_assert!(cross(q) < 1e-6 * (1.0 + dir.norm()) * 20.0);
        }
    }

    /// Sutherland–Hodgman output is contained in the box and never has
    /// more area than the input polygon.
    #[test]
    fn clipped_ring_is_bounded(poly in arb_star_polygon()) {
        let bb = BBox::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
        let clipped = clip_ring(&bb, poly.outer().points());
        let tol = 1e-9;
        for p in &clipped {
            prop_assert!(bb.inflate(tol).contains(*p));
        }
        let f = coverage_fraction(&bb, poly.outer().points());
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Voronoi cells of random sites tile the extent: areas sum to the
    /// extent area and each site lies in its own cell.
    #[test]
    fn voronoi_tiles_extent(seed in any::<u64>(), n in 2usize..40) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let sites: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let cells = voronoi_cells(&sites, &extent);
        let total: f64 = cells.iter().map(|c| c.area()).sum();
        prop_assert!((total - 10_000.0).abs() < 1e-3, "total {}", total);
        for c in &cells {
            if c.verts.len() >= 3 {
                prop_assert!(point_in_ring(&c.points(), sites[c.site]));
            }
        }
    }

    /// The bounded raster join at fine ε equals brute force when every
    /// point is far (≫ ε) from every polygon boundary.
    #[test]
    fn bounded_join_exact_away_from_boundaries(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Two disjoint squares with a wide corridor between them.
        let polys = vec![
            Polygon::from_coords(0, vec![(0.0, 0.0), (40.0, 0.0), (40.0, 100.0), (0.0, 100.0)]),
            Polygon::from_coords(1, vec![(60.0, 0.0), (100.0, 0.0), (100.0, 100.0), (60.0, 100.0)]),
        ];
        let mut pts = PointTable::with_capacity(50, &[]);
        let mut truth = [0u64; 2];
        for _ in 0..50 {
            // Sample away from all edges: margin 5 inside either square or
            // the corridor.
            let region = rng.gen_range(0..3);
            let (x, y) = match region {
                0 => { truth[0] += 1; (rng.gen_range(5.0..35.0), rng.gen_range(5.0..95.0)) }
                1 => { truth[1] += 1; (rng.gen_range(65.0..95.0), rng.gen_range(5.0..95.0)) }
                _ => (rng.gen_range(45.0..55.0), rng.gen_range(5.0..95.0)),
            };
            pts.push(Point::new(x, y), &[]);
        }
        let out = BoundedRasterJoin::new(2).execute(
            &pts, &polys, &Query::count().with_epsilon(1.0), &Device::default());
        prop_assert_eq!(out.counts, truth.to_vec());
    }

    /// Accurate raster join equals brute force on arbitrary star polygons.
    #[test]
    fn accurate_join_matches_brute_force(
        poly in arb_star_polygon(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        prop_assume!(poly.area() > 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bb = poly.bbox().inflate(5.0);
        let mut pts = PointTable::with_capacity(200, &[]);
        for _ in 0..200 {
            pts.push(Point::new(
                rng.gen_range(bb.min.x..bb.max.x),
                rng.gen_range(bb.min.y..bb.max.y),
            ), &[]);
        }
        let polys = vec![poly.clone()];
        let join = AccurateRasterJoin {
            workers: 2, canvas_dim: 256, index_dim: 32, ..Default::default()
        };
        let out = join.execute(&pts, &polys, &Query::count(), &Device::default());
        let truth = (0..pts.len()).filter(|&i| poly.contains(pts.point(i))).count() as u64;
        prop_assert_eq!(out.counts[0], truth);
    }
}
