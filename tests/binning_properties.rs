//! Property tests for the tile-binned, shard-accumulated pipeline: every
//! binning × sharding combination must be a drop-in replacement for the
//! naive per-tile-rescan + atomic-blend path.
//!
//! Counts must be **identical** (integer accumulation is order-free);
//! sums must agree within f32 reassociation tolerance (the shard merge
//! reorders f32 additions — see `raster_gpu::framebuffer::ShardSet`).

use proptest::prelude::*;
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::gpu::RasterConfig;
use raster_join_repro::prelude::*;

/// Bounded joins under all four config combinations.
fn run_matrix(
    pts: &PointTable,
    polys: &[Polygon],
    q: &Query,
    dev: &Device,
    workers: usize,
) -> Vec<JoinOutput> {
    [(false, false), (true, false), (false, true), (true, true)]
        .iter()
        .map(|&(binning, sharding)| {
            raster_join_repro::join::BoundedRasterJoin::with_config(
                workers,
                RasterConfig { binning, sharding },
            )
            .execute(pts, polys, q, dev)
        })
        .collect()
}

fn assert_equivalent(outs: &[JoinOutput], ctx: &str) -> Result<(), TestCaseError> {
    let base = &outs[0];
    for out in &outs[1..] {
        prop_assert_eq!(&out.counts, &base.counts, "{}", ctx);
        for (s, (a, b)) in out.sums.iter().zip(&base.sums).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "{ctx} slot {s}: {a} vs {b}"
            );
        }
    }
    Ok(())
}

/// Random point table over `extent` with one attribute column.
fn random_points(n: usize, extent: &BBox, seed: u64, spread: f64) -> PointTable {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = PointTable::with_capacity(n, &["v"]);
    // `spread` < 1 clusters points into the lower-left corner so most
    // canvas tiles stay empty — the empty-tile regression case.
    let w = extent.width() * spread;
    let h = extent.height() * spread;
    for _ in 0..n {
        let p = Point::new(
            extent.min.x + rng.gen_range(0.0..w.max(1e-9)),
            extent.min.y + rng.gen_range(0.0..h.max(1e-9)),
        );
        t.push(p, &[rng.gen_range(-100.0f64..100.0) as f32]);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random extents, tile splits, aggregates and worker counts: the
    /// config matrix agrees everywhere.
    #[test]
    fn config_matrix_equivalent_on_random_workloads(
        seed in any::<u64>(),
        x0 in -1000.0f64..1000.0,
        y0 in -1000.0f64..1000.0,
        w in 10.0f64..5000.0,
        h in 10.0f64..5000.0,
        max_dim in 16u32..96,
        npolys in 2usize..8,
        npts in 0usize..2500,
        workers in 1usize..5,
        sum_query in any::<bool>(),
    ) {
        let extent = BBox::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let polys = synthetic_polygons(npolys, &extent, seed);
        let pts = random_points(npts, &extent, seed ^ 0x9e37, 1.0);
        // ε chosen so the canvas wants hundreds of pixels per axis and the
        // small max_fbo_dim forces a multi-tile split.
        let eps = (w.min(h) / 200.0).max(1e-6);
        let q = if sum_query { Query::sum(0) } else { Query::count() }.with_epsilon(eps);
        let dev = Device::new(DeviceConfig::small(3 << 30, max_dim));
        let outs = run_matrix(&pts, &polys, &q, &dev, workers);
        assert_equivalent(&outs, "random workload")?;
    }

    /// Clustered points leave most tiles empty; empty tiles must cost
    /// nothing and change nothing.
    #[test]
    fn config_matrix_equivalent_with_empty_tiles(
        seed in any::<u64>(),
        npts in 1usize..1500,
        max_dim in 16u32..64,
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(4096.0, 4096.0));
        let polys = synthetic_polygons(5, &extent, seed);
        // All points inside the lower-left 10% of the extent.
        let pts = random_points(npts, &extent, seed, 0.1);
        let q = Query::sum(0).with_epsilon(8.0);
        let dev = Device::new(DeviceConfig::small(3 << 30, max_dim));
        let outs = run_matrix(&pts, &polys, &q, &dev, 3);
        assert_equivalent(&outs, "clustered workload")?;
    }

    /// Predicates filter identically on every path (and before binning:
    /// the binner must not count filtered points).
    #[test]
    fn config_matrix_equivalent_under_predicates(
        seed in any::<u64>(),
        threshold in -50.0f64..50.0,
        npts in 0usize..2000,
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(800.0, 600.0));
        let polys = synthetic_polygons(6, &extent, seed);
        let pts = random_points(npts, &extent, seed.wrapping_add(1), 1.0);
        let q = Query::count()
            .with_epsilon(2.0)
            .with_predicates(vec![Predicate::new(0, CmpOp::Gt, threshold as f32)]);
        let dev = Device::new(DeviceConfig::small(3 << 30, 128));
        let outs = run_matrix(&pts, &polys, &q, &dev, 4);
        assert_equivalent(&outs, "predicate workload")?;
        // Cross-check the filter count against a direct scan: binned
        // entries can never exceed the number of passing points.
        let passing = (0..pts.len()).filter(|&i| pts.attr(0)[i] > threshold as f32).count() as u64;
        prop_assert!(outs[3].stats.binned_points <= passing);
    }

    /// Out-of-core batching composes with binning and sharding.
    #[test]
    fn config_matrix_equivalent_across_batch_sizes(
        seed in any::<u64>(),
        npts in 100usize..2000,
        batch_pts in 64usize..512,
    ) {
        let extent = BBox::new(Point::new(-500.0, -500.0), Point::new(500.0, 500.0));
        let polys = synthetic_polygons(4, &extent, seed);
        let pts = random_points(npts, &extent, seed ^ 0xfeed, 1.0);
        let q = Query::sum(0).with_epsilon(3.0);
        let dev = Device::new(DeviceConfig::small(
            batch_pts * PointTable::point_bytes(1),
            96,
        ));
        let outs = run_matrix(&pts, &polys, &q, &dev, 4);
        assert_equivalent(&outs, "batched workload")?;
        prop_assert!(outs[0].stats.batches >= 1);
    }
}

/// Tile-seam conservation, deterministic: points placed exactly on tile
/// and pixel boundaries (the pixel-center tie-rule corners) are neither
/// dropped nor duplicated by the binner — over polygons that tile the
/// extent, every in-canvas point is counted exactly once, and binned
/// counts equal rescan counts point for point.
#[test]
fn seam_points_never_drop_or_duplicate() {
    // 4 polygons tiling [0, 64]²; canvas 128×128 split into 4 tiles of
    // 64² ⇒ world x = 32.0 is simultaneously a pixel seam, a tile seam
    // and a polygon edge.
    let mut polys = Vec::new();
    let mut id = 0;
    for gy in 0..2 {
        for gx in 0..2 {
            let (x0, y0) = (gx as f64 * 32.0, gy as f64 * 32.0);
            polys.push(Polygon::from_coords(
                id,
                vec![
                    (x0, y0),
                    (x0 + 32.0, y0),
                    (x0 + 32.0, y0 + 32.0),
                    (x0, y0 + 32.0),
                ],
            ));
            id += 1;
        }
    }
    let mut pts = PointTable::with_capacity(0, &[]);
    // Seam lattice: every combination of {interior, pixel seam, tile seam}
    // coordinates, including the exact center cross (32, 32).
    let coords = [0.25, 15.75, 16.0, 31.75, 32.0, 32.25, 47.75, 48.0, 63.5];
    for &x in &coords {
        for &y in &coords {
            pts.push(Point::new(x, y), &[]);
        }
    }
    let n = pts.len() as u64;

    // ε such that the canvas is 128² (extent 64², pixel side ≈ 0.5 ⇒
    // ε = 0.5·√2·... — derive via the query's epsilon → resolution rule
    // by just picking a value that lands ≥ 128 px and splitting at 64).
    let q = Query::count().with_epsilon(0.5);
    let dev = Device::new(DeviceConfig::small(3 << 30, 64));

    let naive =
        raster_join_repro::join::BoundedRasterJoin::naive(4).execute(&pts, &polys, &q, &dev);
    let binned = raster_join_repro::join::BoundedRasterJoin::new(4).execute(&pts, &polys, &q, &dev);

    assert!(naive.stats.passes > naive.stats.batches, "canvas must tile");
    assert_eq!(naive.counts, binned.counts, "seam assignment must agree");
    assert_eq!(
        naive.total_count(),
        n,
        "rescan path must count every point exactly once"
    );
    assert_eq!(
        binned.total_count(),
        n,
        "binned path must count every point exactly once"
    );
}
