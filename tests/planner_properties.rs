//! Planner properties: `AutoRasterJoin` must be a transparent dispatcher
//! — whatever plan it advertises, running that plan's variant directly
//! under the same `RasterConfig` produces identical output — and its
//! decisions on the nyc_extent workloads must stay pinned to the
//! calibrated model's known crossovers.

use proptest::prelude::*;
use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::gpu::RasterConfig;
use raster_join_repro::join::optimizer::{plan_workload, Calibration, Variant, Workload};
use raster_join_repro::join::AutoRasterJoin;
use raster_join_repro::prelude::*;

/// Run the variant the planner picked, directly, with the planner's exact
/// configuration.
fn run_directly(
    plan: &raster_join_repro::join::Plan,
    pts: &PointTable,
    polys: &[Polygon],
    q: &Query,
    dev: &Device,
) -> JoinOutput {
    match plan.variant {
        Variant::Bounded => {
            let mut j = BoundedRasterJoin::with_config(plan.workers, plan.config);
            j.batch_points = Some(plan.batch_points);
            j.execute(pts, polys, q, dev)
        }
        Variant::Accurate => AccurateRasterJoin {
            workers: plan.workers,
            canvas_dim: plan.canvas_dim,
            index_dim: plan.index_dim,
            config: RasterConfig {
                binning: false,
                sharding: plan.config.sharding,
            },
            batch_points: Some(plan.batch_points),
            ..Default::default()
        }
        .execute(pts, polys, q, dev),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four binning × sharding combinations: the auto join's output is
    /// identical to dispatching the chosen variant directly under the same
    /// `RasterConfig` (counts exactly; sums within f32 reassociation
    /// tolerance).
    #[test]
    fn auto_join_matches_direct_dispatch_under_every_config(
        seed in any::<u64>(),
        npts in 500usize..4000,
        eps_exp in 0usize..3,
        binning in any::<bool>(),
        sharding in any::<bool>(),
    ) {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, seed);
        let pts = TaxiModel::default().generate(npts, seed ^ 0xa1);
        let eps = [300.0, 30.0, 3.0][eps_exp];
        let q = Query::count().with_epsilon(eps);
        let dev = Device::new(DeviceConfig::small(3 << 30, 1024));
        let auto = AutoRasterJoin::default()
            .with_config_override(RasterConfig { binning, sharding });
        let (plan, out) = auto.execute(&pts, &polys, &q, &dev);
        // The override must be respected by the executed plan.
        match plan.variant {
            Variant::Bounded => prop_assert_eq!(plan.config, RasterConfig { binning, sharding }),
            Variant::Accurate => prop_assert_eq!(plan.config.sharding, sharding),
        }
        let direct = run_directly(&plan, &pts, &polys, &q, &dev);
        prop_assert_eq!(&out.counts, &direct.counts);
        for (s, (a, b)) in out.sums.iter().zip(&direct.sums).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "slot {}: {} vs {}", s, a, b
            );
        }
    }
}

/// Decision regression: the calibrated model's crossover on the
/// nyc_extent workloads is pinned — coarse ε picks the bounded variant,
/// sub-decimetre ε picks the accurate one, and the ε sweep flips
/// monotonically. Small inputs shift the crossover toward Accurate
/// (fixed canvas costs dominate), so both regimes are pinned.
#[test]
fn crossover_pinned_on_nyc_workloads() {
    let polys = synthetic_polygons(10, &nyc_extent(), 3);
    let pts = TaxiModel::default().generate(20_000, 3);
    let dev = Device::default();
    // Feedback off pins the builtin model for a stable regression.
    let auto = AutoRasterJoin::default().with_feedback(false);
    let choice_at = |eps: f64| {
        auto.plan(&pts, &polys, &Query::count().with_epsilon(eps), &dev)
            .choice()
    };
    assert_eq!(choice_at(100.0), Variant::Bounded, "coarse ε, small canvas");
    assert_eq!(choice_at(0.05), Variant::Accurate, "sub-decimetre ε");
    let mut seen_accurate = false;
    for eps in [200.0, 50.0, 10.0, 2.0, 0.4, 0.08, 0.02] {
        match choice_at(eps) {
            Variant::Accurate => seen_accurate = true,
            Variant::Bounded => assert!(!seen_accurate, "flip must be monotone (ε = {eps})"),
        }
    }
    assert!(seen_accurate);

    // At paper scale (millions of points) the paper-default ε = 10–20 m
    // stays bounded: the PIP-free point pass amortises the canvas.
    let q20 = Query::count().with_epsilon(20.0);
    let wl = Workload::assumed(2_000_000, &polys, &q20);
    let big = plan_workload(
        &wl,
        &q20,
        &dev,
        &Calibration::builtin(),
        4,
        2048,
        1024,
        None,
    );
    assert_eq!(
        big.choice(),
        Variant::Bounded,
        "paper default at paper scale"
    );
}

/// Decision regression: multi-tile bounded plans prefer binning (the
/// PR-1 pipeline's whole point), and the planner reports the layout.
#[test]
fn multi_tile_bounded_plans_bin() {
    let polys = synthetic_polygons(10, &nyc_extent(), 5);
    let pts = TaxiModel::default().generate(30_000, 5);
    // max_fbo 512 forces tiling at ε = 40 (canvas ≈ 2051²).
    let dev = Device::new(DeviceConfig::small(3 << 30, 512));
    let auto = AutoRasterJoin::default();
    let choice = auto.plan(&pts, &polys, &Query::count().with_epsilon(40.0), &dev);
    let best_bounded = choice
        .best_of(Variant::Bounded)
        .expect("bounded enumerated");
    assert!(best_bounded.shape.tiles > 1, "canvas must tile");
    assert!(
        best_bounded.plan.config.binning,
        "the planner must bin multi-tile canvases: {:?}",
        best_bounded.plan
    );
    // The rescan alternative is costed strictly higher.
    let rescan = choice
        .candidates
        .iter()
        .find(|c| c.plan.variant == Variant::Bounded && !c.plan.config.binning)
        .expect("rescan candidate enumerated");
    assert!(rescan.cost > best_bounded.cost);
}

/// The executed plan is auditable: re-running `Plan::execute` reproduces
/// the auto join's counts, and the decision trace records it.
#[test]
fn executed_plan_is_auditable() {
    let polys = synthetic_polygons(6, &nyc_extent(), 9);
    let pts = TaxiModel::default().generate(5_000, 9);
    let dev = Device::default();
    let auto = AutoRasterJoin::default();
    let q = Query::count().with_epsilon(25.0);
    let (plan, out) = auto.execute(&pts, &polys, &q, &dev);
    let replay = plan.execute(&pts, &polys, &q, &dev);
    assert_eq!(out.counts, replay.counts);
    let trace = auto.decision_trace();
    assert_eq!(trace.len(), 1);
    assert_eq!(trace[0].plan, plan);
    assert!(trace[0].actual > std::time::Duration::ZERO);
}

/// A serialized calibration survives the disk round trip and drives the
/// same decisions.
#[test]
fn calibration_round_trips_through_disk() {
    let polys = synthetic_polygons(8, &nyc_extent(), 13);
    let pts = TaxiModel::default().generate(10_000, 13);
    let dev = Device::default();
    let auto = AutoRasterJoin::default();
    // A few executions give the calibration non-trivial state.
    for eps in [50.0, 5.0, 0.5] {
        auto.execute(&pts, &polys, &Query::count().with_epsilon(eps), &dev);
    }
    let cal = auto.calibration();
    assert!(cal.is_calibrated());
    let path = std::env::temp_dir().join("rjr-planner-cal-test.json");
    cal.save(&path).expect("save");
    let loaded = Calibration::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.observations, cal.observations);

    let a = AutoRasterJoin::with_calibration(cal);
    let b = AutoRasterJoin::with_calibration(loaded);
    for eps in [100.0, 10.0, 1.0] {
        let q = Query::count().with_epsilon(eps);
        assert_eq!(
            a.plan(&pts, &polys, &q, &dev).best().plan,
            b.plan(&pts, &polys, &q, &dev).best().plan,
            "decisions must survive the round trip (ε = {eps})"
        );
    }
}
