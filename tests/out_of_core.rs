//! Out-of-core and disk-resident integration tests (§5, §7.7).

use raster_join_repro::data::disk::{write_table, ChunkedReader};
use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rjr-it-{}-{name}", std::process::id()));
    p
}

/// Streaming a table from disk in chunks and joining chunk by chunk gives
/// the same result as the in-memory join: the combination rule for
/// distributive aggregates (§5) plus the columnar reader.
#[test]
fn disk_resident_query_equals_in_memory() {
    let pts = TaxiModel::default().generate(20_000, 201);
    let polys = synthetic_polygons(10, &nyc_extent(), 202);
    let dev = Device::default();
    let q = Query::count().with_epsilon(20.0);
    let joiner = BoundedRasterJoin::default();

    let in_memory = joiner.execute(&pts, &polys, &q, &dev);

    let path = tmp("disk-query.bin");
    write_table(&path, &pts).unwrap();
    let mut reader = ChunkedReader::open(&path, 3_000).unwrap();
    let mut combined = vec![0u64; in_memory.counts.len()];
    let mut chunks = 0;
    while let Some(chunk) = reader.next_chunk().unwrap() {
        let partial = joiner.execute(&chunk, &polys, &q, &dev);
        for (c, p) in combined.iter_mut().zip(&partial.counts) {
            *c += p;
        }
        chunks += 1;
    }
    assert_eq!(chunks, 7);
    assert_eq!(combined, in_memory.counts);
    std::fs::remove_file(&path).ok();
}

/// Same property for the exact executor with a SUM aggregate.
#[test]
fn disk_resident_sum_equals_in_memory() {
    let pts = TaxiModel::default().generate(12_000, 203);
    let fare = pts.attr_index("fare").unwrap();
    let polys = synthetic_polygons(6, &nyc_extent(), 204);
    let dev = Device::default();
    let q = Query::sum(fare);
    let joiner = AccurateRasterJoin::default();

    let in_memory = joiner.execute(&pts, &polys, &q, &dev);

    let path = tmp("disk-sum.bin");
    write_table(&path, &pts).unwrap();
    let mut reader = ChunkedReader::open(&path, 2_500).unwrap();
    let mut sums = vec![0f64; in_memory.sums.len()];
    while let Some(chunk) = reader.next_chunk().unwrap() {
        let partial = joiner.execute(&chunk, &polys, &q, &dev);
        for (s, p) in sums.iter_mut().zip(&partial.sums) {
            *s += p;
        }
    }
    for (i, (&got, &want)) in sums.iter().zip(&in_memory.sums).enumerate() {
        assert!(
            (got - want).abs() < 1e-6 * want.abs().max(1.0),
            "polygon {i}: {got} vs {want}"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// Regression for the Fig. 13 chunk-loop bug: the hand-rolled merge
/// folded only `counts` and silently dropped `sums`, so every SUM/AVG
/// answer over a chunked stream came back zero. Chunk loops now merge
/// through the shared [`AggregateMerger`]; a chunked `Query::avg` over
/// ≥ 3 chunks must match the in-memory answer.
#[test]
fn chunked_avg_over_three_chunks_matches_in_memory() {
    let pts = TaxiModel::default().generate(9_000, 209);
    let fare = pts.attr_index("fare").unwrap();
    let polys = synthetic_polygons(8, &nyc_extent(), 210);
    let q = Query::avg(fare).with_epsilon(25.0);
    let dev = Device::default();
    let joiner = BoundedRasterJoin::default();
    let in_memory = joiner.execute(&pts, &polys, &q, &dev);

    let path = tmp("chunked-avg.bin");
    write_table(&path, &pts).unwrap();
    // The Fig. 13 loop shape: prepare once, stream chunks, merge.
    let prepared = joiner.prepare(&polys, q.epsilon, &dev);
    let mut reader = ChunkedReader::open(&path, 2_500).unwrap();
    let mut merger = AggregateMerger::new(in_memory.counts.len());
    while let Some(chunk) = reader.next_chunk().unwrap() {
        merger.fold(&joiner.execute_prepared(&prepared, &chunk, &q, &dev));
    }
    assert!(
        merger.chunks() >= 3,
        "9k rows at 2.5k/chunk must chunk ≥ 3×"
    );
    let merged = merger.finish();
    assert_eq!(merged.counts, in_memory.counts);
    let (got, want) = (
        merged.values(Aggregate::Avg(fare)),
        in_memory.values(Aggregate::Avg(fare)),
    );
    assert!(
        want.iter().any(|&v| v != 0.0),
        "the workload must produce nonzero averages for the test to bite"
    );
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-6 * w.abs().max(1.0),
            "polygon {i}: chunked AVG {g} vs in-memory {w}"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// The device memory budget drives batch counts without changing results,
/// for every executor that honours the budget.
#[test]
fn memory_budget_only_affects_batching() {
    let pts = TaxiModel::default().generate(10_000, 205);
    let polys = synthetic_polygons(8, &nyc_extent(), 206);
    let q = Query::count().with_epsilon(30.0);
    let big = Device::default();
    let small = Device::new(DeviceConfig::small(
        1_000 * PointTable::point_bytes(0),
        8192,
    ));

    let b_big = BoundedRasterJoin::default().execute(&pts, &polys, &q, &big);
    let b_small = BoundedRasterJoin::default().execute(&pts, &polys, &q, &small);
    assert_eq!(b_big.counts, b_small.counts);
    assert_eq!(b_small.stats.batches, 10);
    assert!(b_big.stats.batches == 1);

    let g_big = IndexJoin::gpu(4).execute(&pts, &polys, &q, &big);
    let g_small = IndexJoin::gpu(4).execute(&pts, &polys, &q, &small);
    assert_eq!(g_big.counts, g_small.counts);
    assert!(g_small.stats.batches > g_big.stats.batches);
}

/// Upload volume grows with the number of filtered attributes — the
/// memory-transfer effect behind Fig. 11.
#[test]
fn constraint_attributes_increase_upload() {
    let pts = TaxiModel::default().generate(5_000, 207);
    let polys = synthetic_polygons(4, &nyc_extent(), 208);
    let dev = Device::default();
    let joiner = BoundedRasterJoin::default();

    let mut previous = 0u64;
    for k in 0..=3usize {
        let preds = (0..k)
            .map(|a| Predicate::new(a, CmpOp::Ge, 0.0))
            .collect::<Vec<_>>();
        let q = Query::count().with_epsilon(30.0).with_predicates(preds);
        let out = joiner.execute(&pts, &polys, &q, &dev);
        assert!(
            out.stats.upload_bytes > previous,
            "upload must grow with constraint count (k = {k})"
        );
        previous = out.stats.upload_bytes;
        // `attr >= 0` never filters these workloads' non-negative columns,
        // so results stay identical while transfer grows.
        assert_eq!(out.total_count(), {
            let base = joiner.execute(&pts, &polys, &Query::count().with_epsilon(30.0), &dev);
            base.total_count()
        });
    }
}
