//! Property-based tests over the baseline operators and the approximation
//! models added on top of the core pipeline: the R-tree / two-step join,
//! [72]-style coordinate quantization, the sampling estimator, the
//! thick-outline conservative-raster fallback, and the moments join.

use proptest::prelude::*;
use raster_join_repro::geom::validate::{repair, validate};
use raster_join_repro::gpu::raster::{
    rasterize_segment_conservative, rasterize_segment_thick_outline, segment_touches_pixel,
};
use raster_join_repro::index::RTree;
use raster_join_repro::join::moments::{exact_moments, MomentsQuery, MomentsRasterJoin};
use raster_join_repro::join::quantize::Quantizer;
use raster_join_repro::prelude::*;
use std::collections::HashSet;

fn arb_point(range: f64) -> impl Strategy<Value = Point> {
    ((-range..range), (-range..range)).prop_map(|(x, y)| Point::new(x, y))
}

/// A random star-shaped polygon around a random center — simple by
/// construction (same recipe as tests/properties.rs).
fn arb_star_polygon_at(cx: f64, cy: f64, scale: f64, seed: u64, id: u32) -> Polygon {
    let n = 3 + (seed % 13) as usize;
    let mut pts = Vec::with_capacity(n);
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for i in 0..n {
        let ang = (i as f64 + 0.3 * next()) / n as f64 * std::f64::consts::TAU;
        let r = scale * (0.3 + 0.7 * next());
        pts.push(Point::new(cx + r * ang.cos(), cy + r * ang.sin()));
    }
    Polygon::new(id, Ring::new(pts))
}

/// A set of random star polygons scattered over [0, 100]².
fn arb_polygon_set() -> impl Strategy<Value = Vec<Polygon>> {
    (1usize..12, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|i| {
                let cx = 10.0 + 80.0 * next();
                let cy = 10.0 + 80.0 * next();
                let scale = 2.0 + 15.0 * next();
                arb_star_polygon_at(cx, cy, scale, seed ^ (i as u64 * 0x9e37), i as u32)
            })
            .collect()
    })
}

fn random_points(n: usize, seed: u64) -> PointTable {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut t = PointTable::with_capacity(n, &["v"]);
    for _ in 0..n {
        t.push(
            Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
            &[rng.gen_range(0.0..10.0)],
        );
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// R-tree point probes return exactly the entries whose MBR contains
    /// the probe, for arbitrary (overlapping, concave) polygon sets.
    #[test]
    fn rtree_candidates_match_brute_force(
        polys in arb_polygon_set(),
        probe in arb_point(120.0),
    ) {
        let tree = RTree::build(&polys);
        let mut got = tree.candidates(probe);
        got.sort_unstable();
        let mut want: Vec<u32> = polys
            .iter()
            .filter(|p| p.bbox().contains(probe))
            .map(|p| p.id())
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// R-tree window queries return exactly the MBR-intersecting entries.
    #[test]
    fn rtree_window_matches_brute_force(
        polys in arb_polygon_set(),
        a in arb_point(120.0),
        b in arb_point(120.0),
    ) {
        let tree = RTree::build(&polys);
        let query = BBox::new(a, b);
        let mut got = Vec::new();
        tree.query_bbox(&query, |id| got.push(id));
        got.sort_unstable();
        let mut want: Vec<u32> = polys
            .iter()
            .filter(|p| p.bbox().intersects(&query))
            .map(|p| p.id())
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The two-step filter-refine join agrees exactly with the fused
    /// index join — materialization changes cost, never the answer.
    #[test]
    fn two_step_equals_fused(polys in arb_polygon_set(), seed in any::<u64>()) {
        let pts = random_points(400, seed);
        let dev = Device::default();
        let two = TwoStepJoin::new(2).execute(&pts, &polys, &Query::count(), &dev);
        let fused = IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &dev);
        prop_assert_eq!(two.counts, fused.counts);
        // Refinement can only shrink the candidate set.
        prop_assert!(two.stats.candidate_pairs >= two.stats.materialized_pairs);
    }

    /// Quantizer displacement bound holds for arbitrary extents and any
    /// probe (including far outside the extent, which clamps).
    #[test]
    fn quantizer_displacement_bounded(
        ax in -1e4f64..1e4, ay in -1e4f64..1e4,
        w in 1.0f64..1e4, h in 1.0f64..1e4,
        px in -2e4f64..2e4, py in -2e4f64..2e4,
        bits in 1u8..=16,
    ) {
        let extent = BBox::new(Point::new(ax, ay), Point::new(ax + w, ay + h));
        let q = Quantizer::new(extent, bits);
        let p = Point::new(px, py);
        let s = q.snap(p);
        // Inside the extent the bound is the half cell diagonal; snapped
        // output always stays inside the extent either way.
        prop_assert!(extent.contains(s));
        if extent.contains(p) {
            prop_assert!(p.distance(s) <= q.max_displacement() + 1e-9);
        }
        // Idempotence.
        prop_assert_eq!(q.snap(s), s);
    }

    /// The thick-outline fallback emits exactly the pixels whose closed
    /// square the segment touches, and the DDA traversal never misses one
    /// of them.
    #[test]
    fn thick_outline_is_exact_conservative_coverage(
        a in arb_point(20.0),
        b in arb_point(20.0),
    ) {
        let (w, h) = (16u32, 16u32);
        let mut thick = HashSet::new();
        rasterize_segment_thick_outline(
            (a.x, a.y), (b.x, b.y), w, h, |x, y| { thick.insert((x, y)); });
        // Oracle from the public predicate.
        let mut ideal = HashSet::new();
        for y in 0..h {
            for x in 0..w {
                if segment_touches_pixel((a.x, a.y), (b.x, b.y), x, y) {
                    ideal.insert((x, y));
                }
            }
        }
        prop_assert_eq!(&thick, &ideal);
        let mut dda = HashSet::new();
        rasterize_segment_conservative(
            (a.x, a.y), (b.x, b.y), w, h, |x, y| { dda.insert((x, y)); });
        prop_assert!(thick.is_subset(&dda) || thick == dda,
            "DDA missed {:?}", thick.difference(&dda).collect::<Vec<_>>());
    }

    /// A full-population sample reproduces the exact join with zero CI;
    /// arbitrary sample sizes keep estimates non-negative and finite.
    #[test]
    fn sampling_full_population_is_exact(
        polys in arb_polygon_set(),
        seed in any::<u64>(),
        n_sample in 50usize..400,
    ) {
        let pts = random_points(300, seed);
        let dev = Device::default();
        let exact = IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &dev);
        let full = SamplingJoin::new(pts.len(), seed).execute(
            &pts, &polys, &Query::count(), &dev);
        for (e, w) in full.estimates.iter().zip(&exact.counts) {
            prop_assert!((e - *w as f64).abs() < 1e-9);
        }
        prop_assert!(full.ci.iter().all(|c| c.abs() < 1e-9));
        let part = SamplingJoin::new(n_sample, seed).execute(
            &pts, &polys, &Query::count(), &dev);
        prop_assert!(part.estimates.iter().all(|e| e.is_finite() && *e >= 0.0));
        prop_assert!(part.ci.iter().all(|c| c.is_finite() && *c >= 0.0));
    }

    /// Moments are internally consistent: variance ≥ 0, and the raster
    /// count channel matches the plain bounded join at the same ε.
    #[test]
    fn moments_consistent_with_bounded_join(
        polys in arb_polygon_set(),
        seed in any::<u64>(),
    ) {
        let pts = random_points(500, seed);
        let dev = Device::default();
        let eps = 0.5;
        let mom = MomentsRasterJoin::new(2).execute(
            &pts, &polys, &MomentsQuery::new(vec![0]).with_epsilon(eps), &dev);
        let cnt = BoundedRasterJoin::new(2).execute(
            &pts, &polys, &Query::count().with_epsilon(eps), &dev);
        prop_assert_eq!(&mom.counts, &cnt.counts);
        prop_assert!(mom.variance(0).iter().all(|v| *v >= 0.0));
        // Cauchy–Schwarz per slot: (Σx)² ≤ n·Σx².
        for id in 0..mom.counts.len() {
            let n = mom.counts[id] as f64;
            let s = mom.sums[0][id];
            let sq = mom.sumsqs[0][id];
            prop_assert!(s * s <= n * sq + 1e-6 * sq.max(1.0));
        }
    }

    /// Star polygons are simple by construction, so they always validate
    /// cleanly, and repair is the identity on them.
    #[test]
    fn star_polygons_always_validate(polys in arb_polygon_set()) {
        for p in &polys {
            prop_assume!(p.area() > 1e-6);
            let issues = validate(p);
            prop_assert!(issues.is_empty(), "{issues:?}");
            let fixed = repair(p).expect("clean polygon must repair to itself");
            prop_assert_eq!(fixed.outer().points(), p.outer().points());
        }
    }

    /// Corrupting a valid polygon with non-finite vertices is always
    /// detected, and repair either fixes it or rejects it — never returns
    /// an invalid polygon.
    #[test]
    fn repair_never_returns_invalid(
        polys in arb_polygon_set(),
        corrupt_at in 0usize..64,
    ) {
        use raster_join_repro::geom::validate::Issue;
        for p in &polys {
            prop_assume!(p.outer().len() >= 4);
            let mut pts: Vec<Point> = p.outer().points().to_vec();
            let i = corrupt_at % pts.len();
            pts[i] = Point::new(f64::NAN, pts[i].y);
            let dirty = Polygon::new(p.id(), Ring::new(pts));
            let issues = validate(&dirty);
            prop_assert!(issues.contains(&Issue::NonFiniteVertex(0)), "{issues:?}");
            if let Some(fixed) = repair(&dirty) {
                prop_assert!(validate(&fixed).is_empty());
            }
        }
    }

    /// Exact moments (brute force) and the ε-bounded raster moments agree
    /// when every point is far from every boundary — mirrors the bounded
    /// join exactness property.
    #[test]
    fn moments_exact_away_from_boundaries(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let polys = vec![
            Polygon::from_coords(0, vec![(0.0, 0.0), (40.0, 0.0), (40.0, 100.0), (0.0, 100.0)]),
            Polygon::from_coords(1, vec![(60.0, 0.0), (100.0, 0.0), (100.0, 100.0), (60.0, 100.0)]),
        ];
        let mut pts = PointTable::with_capacity(60, &["v"]);
        for _ in 0..60 {
            let (x, y) = if rng.gen_bool(0.5) {
                (rng.gen_range(5.0..35.0), rng.gen_range(5.0..95.0))
            } else {
                (rng.gen_range(65.0..95.0), rng.gen_range(5.0..95.0))
            };
            pts.push(Point::new(x, y), &[rng.gen_range(0.0..100.0f32)]);
        }
        let mom = MomentsRasterJoin::new(2).execute(
            &pts, &polys, &MomentsQuery::new(vec![0]).with_epsilon(1.0), &Device::default());
        let (counts, sums, sumsqs) = exact_moments(&pts, &polys, &[0]);
        prop_assert_eq!(&mom.counts, &counts);
        for id in 0..2 {
            prop_assert!((mom.sums[0][id] - sums[0][id]).abs() < 1e-6 * sums[0][id].abs().max(1.0));
            prop_assert!(
                (mom.sumsqs[0][id] - sumsqs[0][id]).abs()
                    < 1e-6 * sumsqs[0][id].abs().max(1.0)
            );
        }
    }
}
