//! Streaming equivalence properties: the planner-driven out-of-core
//! executor (`StreamingRasterJoin`) must produce exactly the results of
//! the in-memory join it decomposes — counts bit-identical, sums within
//! the f32 reassociation tolerance documented on `ShardSet` — across
//! every `RasterConfig`, odd chunk boundaries (chunk sizes that don't
//! divide the table), empty tables, and predicate + AVG queries; and the
//! prefetching reader must be a pure latency optimisation (identical
//! results to the paper-faithful blocking reader).

use proptest::prelude::*;
use raster_join_repro::data::codec::FormatError;
use raster_join_repro::data::disk::{
    table_meta, write_table, write_table_compressed, write_table_compressed_v2,
};
use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::gpu::RasterConfig;
use raster_join_repro::prelude::*;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rjr-streamprop-{}-{tag}.bin", std::process::id()));
    p
}

fn assert_sums_close(got: &[f64], want: &[f64]) -> Result<(), TestCaseError> {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert!(
            (g - w).abs() <= 1e-5 * w.abs().max(1.0),
            "slot {}: {} vs {}",
            i,
            g,
            w
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Chunked + prefetched execution over a table file equals the
    /// in-memory execution of the exact plan the stream ran, for all four
    /// binning × sharding configs, arbitrary (odd) chunk sizes, empty
    /// tables and predicate + AVG queries.
    #[test]
    fn streaming_matches_in_memory_under_every_config(
        seed in any::<u64>(),
        npts in 0usize..5_000,
        chunk in 1usize..1_500,
        binning in any::<bool>(),
        sharding in any::<bool>(),
        coarse in any::<bool>(),
        with_pred in any::<bool>(),
    ) {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, seed);
        let pts = TaxiModel::default().generate(npts, seed ^ 0x5EED);
        let fare = pts.attr_index("fare").unwrap();
        let hour = pts.attr_index("hour").unwrap();
        let mut q = Query::avg(fare).with_epsilon(if coarse { 400.0 } else { 60.0 });
        if with_pred {
            // hour < 84 passes ~half the uniform [0, 168) hours.
            q = q.with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 84.0)]);
        }
        let dev = Device::new(DeviceConfig::small(
            2_000 * PointTable::point_bytes(2),
            2048,
        ));

        let path = tmp(&format!("{seed:x}-{npts}-{chunk}"));
        write_table(&path, &pts).unwrap();
        let stream = StreamingRasterJoin::new(2)
            .with_config_override(RasterConfig { binning, sharding })
            .with_chunk_rows(chunk);
        let s = stream.execute(&path, &polys, &q, &dev).unwrap();

        // In-memory reference: the exact plan the stream executed.
        let reference = s.plan.execute(&pts, &polys, &q, &dev);
        prop_assert_eq!(&s.output.counts, &reference.counts);
        assert_sums_close(&s.output.sums, &reference.sums)?;
        assert_sums_close(
            &s.output.values(Aggregate::Avg(fare)),
            &reference.values(Aggregate::Avg(fare)),
        )?;

        // The blocking (paper-faithful) arm is result-identical in counts.
        let blocking = StreamingRasterJoin::new(2)
            .with_config_override(RasterConfig { binning, sharding })
            .with_chunk_rows(chunk)
            .blocking()
            .execute(&path, &polys, &q, &dev)
            .unwrap();
        prop_assert_eq!(&blocking.output.counts, &reference.counts);
        assert_sums_close(&blocking.output.sums, &s.output.sums)?;

        // Every row was streamed, no matter how oddly the chunk size
        // straddles the table.
        prop_assert_eq!(s.rows as usize, npts);
        if npts == 0 {
            prop_assert_eq!(s.chunks, 0);
            prop_assert_eq!(s.output.total_count(), 0);
        }
        std::fs::remove_file(&path).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The chunk-parallel pool is a pure latency optimisation. For every
    /// pipeline config, storage format (v1/v2/v3) and odd chunk size:
    /// at each pool width the prefetching pool and the paper-faithful
    /// blocking loop execute the *same* plan and must agree **bitwise**
    /// (counts and f64 sums — intra-chunk joins are single-threaded and
    /// the fold is chunk-ordered, so nothing reassociates); across pool
    /// widths the outputs stay bitwise-equal whenever the planner kept
    /// the same operator; and counts always match the in-memory
    /// execution of the chosen plan.
    #[test]
    fn chunk_pool_is_bitwise_equal_to_sequential_across_widths(
        seed in any::<u64>(),
        npts in 4_500usize..7_000,
        chunk in 301usize..900,
        binning in any::<bool>(),
        sharding in any::<bool>(),
        fmt in 0u8..3,
        with_pred in any::<bool>(),
    ) {
        let extent = nyc_extent();
        let polys = synthetic_polygons(7, &extent, seed);
        let pts = TaxiModel::default().generate(npts, seed ^ 0x9001);
        let fare = pts.attr_index("fare").unwrap();
        let hour = pts.attr_index("hour").unwrap();
        let mut q = Query::avg(fare).with_epsilon(60.0);
        if with_pred {
            q = q.with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 84.0)]);
        }
        let dev = Device::new(DeviceConfig::small(
            2_000 * PointTable::point_bytes(2),
            2048,
        ));
        let path = tmp(&format!("pool-{seed:x}-{npts}-{chunk}"));
        match fmt {
            0 => write_table(&path, &pts).unwrap(),
            1 => write_table_compressed_v2(&path, &pts, 1_100).unwrap(),
            _ => write_table_compressed(&path, &pts, 1_100).unwrap(),
        }
        let config = RasterConfig { binning, sharding };
        let mk = |w: usize| {
            StreamingRasterJoin::new(w)
                .with_config_override(config)
                .with_chunk_rows(chunk)
        };
        // The operator minus the worker count: widths may legitimately
        // change the planner's pick (serial stages amortize differently),
        // and only like plans are comparable bitwise.
        let sig = |s: &StreamOutput| {
            let d = s.plan.describe();
            d[..d.rfind(", workers=").unwrap()].to_string()
        };

        let base = mk(1).execute(&path, &polys, &q, &dev).unwrap();
        prop_assert_eq!(base.pool_workers, 1);
        for w in [2usize, 4] {
            let pool = mk(w).execute(&path, &polys, &q, &dev).unwrap();
            let blocking = mk(w).blocking().execute(&path, &polys, &q, &dev).unwrap();
            // Same planner inputs ⇒ same plan; prefetch/pool is pure
            // execution strategy.
            prop_assert_eq!(sig(&pool), sig(&blocking), "width {}", w);
            prop_assert_eq!(blocking.pool_workers, 1);
            prop_assert!(pool.pool_workers <= w);
            prop_assert_eq!(pool.pool_workers, pool.plan.workers.min(w));
            // Pool ≡ sequential, bitwise.
            prop_assert_eq!(&pool.output.counts, &blocking.output.counts, "width {}", w);
            prop_assert_eq!(&pool.output.sums, &blocking.output.sums, "width {}", w);
            prop_assert_eq!(pool.chunks, blocking.chunks);
            prop_assert_eq!(pool.rows as usize, npts);
            // Cross-width: bitwise whenever the operator agrees.
            if sig(&pool) == sig(&base) {
                prop_assert_eq!(&pool.output.counts, &base.output.counts, "width {}", w);
                prop_assert_eq!(&pool.output.sums, &base.output.sums, "width {}", w);
            }
            // In-memory reference for the pool's own plan: counts
            // bit-identical, sums within the chunk-reassociation
            // tolerance.
            let reference = pool.plan.execute(&pts, &polys, &q, &dev);
            prop_assert_eq!(&pool.output.counts, &reference.counts, "width {}", w);
            assert_sums_close(&pool.output.sums, &reference.sums)?;
        }
        std::fs::remove_file(&path).ok();
    }
}

/// The pinned determinism matrix (ISSUE 6 acceptance): all four
/// `RasterConfig`s × pool widths {1, 2, 4} × the blocking arm, at a fixed
/// seed and an odd chunk size, produce counts bit-identical and sums
/// bitwise-equal whenever the chosen operator agrees — and the width-1
/// scan *is* the historical single-consumer pipeline (`pool_workers` 1).
#[test]
fn worker_matrix_is_deterministic_for_every_config() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(8, &extent, 0xD0_0D);
    let pts = TaxiModel::default().generate(6_000, 0xD0_0D5);
    let fare = pts.attr_index("fare").unwrap();
    let hour = pts.attr_index("hour").unwrap();
    let q = Query::avg(fare)
        .with_epsilon(60.0)
        .with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 100.0)]);
    let dev = Device::new(DeviceConfig::small(
        1_500 * PointTable::point_bytes(2),
        2048,
    ));
    let path = tmp("worker-matrix");
    write_table(&path, &pts).unwrap();

    for (binning, sharding) in [(false, false), (true, false), (false, true), (true, true)] {
        let config = RasterConfig { binning, sharding };
        let run = |w: usize, blocking: bool| {
            let mut s = StreamingRasterJoin::new(w)
                .with_config_override(config)
                .with_chunk_rows(997);
            if blocking {
                s = s.blocking();
            }
            s.execute(&path, &polys, &q, &dev).unwrap()
        };
        let base = run(1, false);
        assert_eq!(base.pool_workers, 1, "{config:?}");
        let strip = |s: &StreamOutput| {
            let d = s.plan.describe();
            d[..d.rfind(", workers=").unwrap()].to_string()
        };
        for w in [2usize, 4] {
            let pool = run(w, false);
            let blocking = run(w, true);
            // Same width ⇒ same plan; pool vs blocking is pure execution
            // strategy and must agree bitwise, counts and sums.
            assert_eq!(strip(&pool), strip(&blocking), "{config:?} w={w}");
            assert_eq!(
                pool.output.counts, blocking.output.counts,
                "{config:?} w={w}"
            );
            assert_eq!(
                pool.output.sums, blocking.output.sums,
                "{config:?} w={w}: bitwise sums"
            );
            assert_eq!(pool.chunks, blocking.chunks);
            // Cross-width: bitwise whenever the planner kept the operator.
            if strip(&pool) == strip(&base) {
                assert_eq!(pool.output.counts, base.output.counts, "{config:?} w={w}");
                assert_eq!(
                    pool.output.sums, base.output.sums,
                    "{config:?} w={w}: bitwise sums vs width 1"
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

/// The compressed (v2) table must stream to *exactly* the raw (v1)
/// table's results under every pipeline config: the planner picks the
/// same chunk size for both files, the reader re-slices stored blocks to
/// that delivery size, and decode is bit-exact — so not only counts but
/// the f32 sum folds are identical, and both match the in-memory
/// execution of the same plan.
#[test]
fn compressed_streaming_matches_raw_and_in_memory_for_all_configs() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(10, &extent, 0xC0DE);
    let pts = TaxiModel::default().generate(12_000, 0xC0DEC);
    let fare = pts.attr_index("fare").unwrap();
    let hour = pts.attr_index("hour").unwrap();
    let q = Query::avg(fare)
        .with_epsilon(60.0)
        .with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 120.0)]);
    let dev = Device::new(DeviceConfig::small(
        2_500 * PointTable::point_bytes(2),
        2048,
    ));

    let raw_path = tmp("allcfg-raw");
    let z_path = tmp("allcfg-z");
    write_table(&raw_path, &pts).unwrap();
    // Stored chunks (1,700 rows) deliberately straddle the delivery
    // chunks the device budget implies, exercising the re-slicing path.
    write_table_compressed(&z_path, &pts, 1_700).unwrap();

    for (binning, sharding) in [(false, false), (true, false), (false, true), (true, true)] {
        let config = RasterConfig { binning, sharding };
        // One worker: multi-worker sharded accumulation reassociates the
        // f32 folds nondeterministically run-to-run (orthogonal to
        // compression), and this test asserts *bitwise* sum equality.
        let exec = |p: &std::path::Path| {
            StreamingRasterJoin::new(1)
                .with_config_override(config)
                .execute(p, &polys, &q, &dev)
                .unwrap()
        };
        let raw = exec(&raw_path);
        let z = exec(&z_path);
        assert_eq!(z.chunk_rows, raw.chunk_rows, "{config:?}");
        assert_eq!(z.rows, raw.rows);
        assert!(
            z.read_bytes < raw.read_bytes,
            "{config:?}: compressed scan must read fewer bytes ({} vs {})",
            z.read_bytes,
            raw.read_bytes
        );
        assert_eq!(z.output.counts, raw.output.counts, "{config:?}");
        // Bit-exact decode + identical chunking ⇒ identical fold order.
        assert_eq!(z.output.sums, raw.output.sums, "{config:?}");

        let reference = raw.plan.execute(&pts, &polys, &q, &dev);
        assert_eq!(raw.output.counts, reference.counts, "{config:?}");
        for (i, (g, w)) in z
            .output
            .values(Aggregate::Avg(fare))
            .iter()
            .zip(&reference.values(Aggregate::Avg(fare)))
            .enumerate()
        {
            assert!(
                (g - w).abs() <= 1e-5 * w.abs().max(1.0),
                "{config:?} slot {i}: {g} vs {w}"
            );
        }
    }
    std::fs::remove_file(&raw_path).ok();
    std::fs::remove_file(&z_path).ok();
}

/// Projection pushdown must be invisible in results across the whole
/// matrix: pruned scan ≡ full scan ≡ in-memory for all four
/// `RasterConfig`s, over v1 (raw), v2 (legacy compressed, full-block
/// fallback) and v3 (per-column directory) files, at an odd chunk size,
/// with a query whose predicate column is *not* its aggregate column.
/// Counts bit-identical; sums *bitwise* equal (single worker + fixed
/// chunking ⇒ identical fold order, and pruning must not perturb it).
#[test]
fn pruned_scan_equals_full_scan_and_in_memory_for_all_configs_and_formats() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(9, &extent, 0x11AD);
    let pts = TaxiModel::default().generate(9_000, 0x11AD5);
    let fare = pts.attr_index("fare").unwrap();
    let hour = pts.attr_index("hour").unwrap();
    // Aggregate on `fare`, predicate on `hour`: the projection {fare,
    // hour} exercises the remap of both, and `tip`/`distance`/
    // `passengers` are pruned away.
    let q = Query::avg(fare)
        .with_epsilon(70.0)
        .with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 100.0)]);
    let dev = Device::new(DeviceConfig::small(
        2_000 * PointTable::point_bytes(2),
        2048,
    ));

    let v1 = tmp("prune-v1");
    let v2 = tmp("prune-v2");
    let v3 = tmp("prune-v3");
    write_table(&v1, &pts).unwrap();
    // Stored chunks straddle the odd 997-row delivery chunks.
    write_table_compressed_v2(&v2, &pts, 1_300).unwrap();
    write_table_compressed(&v3, &pts, 1_300).unwrap();

    for (path, fmt) in [(&v1, "v1"), (&v2, "v2"), (&v3, "v3")] {
        for (binning, sharding) in [(false, false), (true, false), (false, true), (true, true)] {
            let config = RasterConfig { binning, sharding };
            let exec = |prune: bool| {
                StreamingRasterJoin::new(1)
                    .with_config_override(config)
                    .with_chunk_rows(997)
                    .with_column_pruning(prune)
                    .execute(path, &polys, &q, &dev)
                    .unwrap()
            };
            let pruned = exec(true);
            let full = exec(false);
            assert_eq!(pruned.rows, 9_000, "{fmt} {config:?}");
            assert_eq!(pruned.output.counts, full.output.counts, "{fmt} {config:?}");
            assert_eq!(
                pruned.output.sums, full.output.sums,
                "{fmt} {config:?}: sums must be bitwise equal"
            );
            // v1 and v3 prune bytes off the wire; v2 can only skip decode.
            if fmt == "v2" {
                assert_eq!(pruned.read_bytes, full.read_bytes, "{fmt} {config:?}");
            } else {
                assert!(
                    pruned.read_bytes < full.read_bytes,
                    "{fmt} {config:?}: {} vs {}",
                    pruned.read_bytes,
                    full.read_bytes
                );
            }
            // In-memory reference: the exact plan the stream executed,
            // over the unprojected table with the original query. Counts
            // bit-identical; sums within the f64 chunk-reassociation
            // tolerance (the chunk loop folds per-chunk partial sums in a
            // different order than the one-shot in-memory batch — the
            // *bitwise* guarantee is pruned ≡ full above, which share the
            // chunking).
            let reference = pruned.plan.execute(&pts, &polys, &q, &dev);
            assert_eq!(pruned.output.counts, reference.counts, "{fmt} {config:?}");
            for (i, (g, w)) in pruned.output.sums.iter().zip(&reference.sums).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                    "{fmt} {config:?} slot {i}: {g} vs {w}"
                );
            }
        }
    }
    std::fs::remove_file(&v1).ok();
    std::fs::remove_file(&v2).ok();
    std::fs::remove_file(&v3).ok();
}

/// Corrupt-file regression at the query level: a garbled block of a
/// *pruned-away* column must not fail (or change) the query, while a
/// corrupted *required* column surfaces a typed `FormatError` — never a
/// panic — through both the blocking and the prefetching reader.
#[test]
fn corruption_in_pruned_columns_is_invisible_and_in_required_columns_typed() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(7, &extent, 0xBAD);
    let pts = TaxiModel::default().generate(6_000, 0xBAD5);
    let fare = pts.attr_index("fare").unwrap();
    let q = Query::avg(fare).with_epsilon(70.0);
    let dev = Device::new(DeviceConfig::small(
        2_000 * PointTable::point_bytes(1),
        2048,
    ));
    let path = tmp("corrupt-prune");
    write_table_compressed(&path, &pts, 1_024).unwrap();
    let clean_bytes = std::fs::read(&path).unwrap();
    let meta = table_meta(&path).unwrap();
    let clean = StreamingRasterJoin::new(1)
        .with_chunk_rows(800)
        .execute(&path, &polys, &q, &dev)
        .unwrap();

    // Garble the full entry of `tip` (stored column 3) in every chunk —
    // codec id included, a guaranteed hard error if ever decoded:
    // AVG(fare) never touches it, so the answer is bit-identical.
    let mut bad = clean_bytes.clone();
    for chunk in 0..meta.rows.div_ceil(1_024) as usize {
        let (off, len) = meta.column_block_range(chunk, 3).unwrap();
        bad[off as usize] = 99; // unknown codec id
        for b in &mut bad[off as usize + 5..(off + len) as usize] {
            *b = !*b;
        }
    }
    std::fs::write(&path, &bad).unwrap();
    for stream in [
        StreamingRasterJoin::new(1).with_chunk_rows(800),
        StreamingRasterJoin::new(1).with_chunk_rows(800).blocking(),
    ] {
        let s = stream.execute(&path, &polys, &q, &dev).unwrap();
        assert_eq!(s.output.counts, clean.output.counts);
        assert_eq!(s.output.sums, clean.output.sums);
    }

    // Garble `fare` itself (stored column 2): required, so the scan must
    // fail with a typed error in both reader modes.
    let mut bad = clean_bytes;
    let (off, _) = meta.column_block_range(0, 2).unwrap();
    bad[off as usize] = 99; // unknown codec id
    std::fs::write(&path, &bad).unwrap();
    for stream in [
        StreamingRasterJoin::new(1).with_chunk_rows(800),
        StreamingRasterJoin::new(1).with_chunk_rows(800).blocking(),
    ] {
        let err = stream.execute(&path, &polys, &q, &dev).unwrap_err();
        let raster_join_repro::join::StreamError::Io(io) = &err else {
            panic!("expected an I/O-class error, got {err}");
        };
        assert!(
            matches!(FormatError::of(io), Some(FormatError::Corrupt(_))),
            "{err}"
        );
    }
    std::fs::remove_file(&path).ok();
}
