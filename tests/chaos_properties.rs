//! Chaos properties: the streaming executor under deterministic fault
//! injection (`raster_join_repro::data::faults`).
//!
//! The single invariant, swept across every failpoint site × pool width
//! {1, 2, 4} × storage format {v1, v2, v3}: a faulted scan either
//! **recovers and is bitwise identical** to the healthy scan at the same
//! width (counts equal, f64 sums bit-equal — the retry / re-read /
//! directory-fallback machinery is invisible in results), or it returns
//! a **typed [`StreamError`]** — never a panic escaping `execute`, never
//! a hang, and never a silently partial aggregate.
//!
//! Every scan in this file runs under a [`faults::install`] guard (the
//! guard serializes the process-global fault table across test threads),
//! so tests cannot contaminate each other's schedules.

use raster_join_repro::data::disk::{
    write_table, write_table_compressed, write_table_compressed_v2,
};
use raster_join_repro::data::faults;
use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::join::{BoundedRasterJoin, Query, StreamError};
use raster_join_repro::prelude::*;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rjr-chaos-{}-{tag}.bin", std::process::id()));
    p
}

/// Pool widths under test. Width 1 exercises the single-consumer
/// prefetch path, widths 2/4 the chunk-parallel pool.
const WIDTHS: [usize; 3] = [1, 2, 4];

struct Fixture {
    path: PathBuf,
    polys: Vec<Polygon>,
    q: Query,
    dev: Device,
}

impl Fixture {
    /// A deterministic table big enough that chunks flow through the
    /// ring after the 4096-row planning sample (6 000 rows, chunk 451
    /// → several in-flight chunks at every width).
    fn new(fmt: u8, tag: &str) -> Fixture {
        let extent = nyc_extent();
        let polys = synthetic_polygons(6, &extent, 0xC4A05);
        let pts = TaxiModel::default().generate(6_000, 0xC4A05);
        let fare = pts.attr_index("fare").unwrap();
        let q = Query::avg(fare).with_epsilon(150.0);
        let dev = Device::new(DeviceConfig::small(
            1_500 * PointTable::point_bytes(2),
            2048,
        ));
        let path = tmp(&format!("{tag}-v{}", fmt + 1));
        match fmt {
            0 => write_table(&path, &pts).unwrap(),
            1 => write_table_compressed_v2(&path, &pts, 700).unwrap(),
            _ => write_table_compressed(&path, &pts, 700).unwrap(),
        }
        Fixture {
            path,
            polys,
            q,
            dev,
        }
    }

    fn run(&self, width: usize) -> Result<StreamOutput, StreamError> {
        StreamingRasterJoin::new(width)
            .with_chunk_rows(451)
            .execute(&self.path, &self.polys, &self.q, &self.dev)
    }

    /// Healthy baseline at `width`, under a counting-only guard so the
    /// run also measures per-site hit counts.
    fn baseline(&self, width: usize) -> StreamOutput {
        let _g = faults::install("").unwrap();
        self.run(width).expect("healthy baseline scan must succeed")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Bitwise equality: counts identical, f64 sums bit-for-bit equal.
fn assert_bitwise(got: &StreamOutput, want: &StreamOutput, ctx: &str) {
    assert_eq!(
        got.output.counts, want.output.counts,
        "{ctx}: counts diverged"
    );
    let gb: Vec<u64> = got.output.sums.iter().map(|s| s.to_bits()).collect();
    let wb: Vec<u64> = want.output.sums.iter().map(|s| s.to_bits()).collect();
    assert_eq!(gb, wb, "{ctx}: sums not bitwise equal");
    assert_eq!(got.rows, want.rows, "{ctx}: row count diverged");
    assert_eq!(got.chunks, want.chunks, "{ctx}: chunk count diverged");
}

/// A typed error from an injected I/O fault must be `Io` or (for panic
/// kinds) `WorkerPanicked` — never a mis-classified `Parse`/`NoFileSource`.
fn assert_typed(err: &StreamError, ctx: &str) {
    match err {
        StreamError::Io(_) | StreamError::WorkerPanicked(_) => {}
        other => panic!("{ctx}: fault surfaced as the wrong error class: {other}"),
    }
    assert!(
        !err.to_string().is_empty(),
        "{ctx}: error must render a message"
    );
}

/// What a fault spec must do to a scan.
#[derive(Clone, Copy, Debug)]
enum Expect {
    /// Retry / re-read / fallback absorbs it: `Ok`, bitwise identical.
    Recovers,
    /// Non-transient: a typed error at every width and format.
    Fails,
    /// Fails wherever the site fires; the raw v1 format never reaches
    /// it (no compressed blocks / decodes), so v1 recovers trivially.
    FailsUnlessRaw,
    /// Outcome may depend on which pipeline arm hits the site (e.g.
    /// worker-side decode vs. recovering reader-side fetch); both
    /// outcomes are sound, and both sides of the invariant are checked.
    Either,
}

/// The chaos matrix: every failpoint site, transient and hard kinds,
/// swept across widths and formats against per-width healthy baselines.
#[test]
fn chaos_sweep_recovers_bitwise_or_fails_typed() {
    let cases: &[(&str, Expect)] = &[
        ("disk.read_at@1=interrupted", Expect::Recovers),
        ("disk.read_at@2=eof", Expect::Recovers),
        ("disk.read_at%5=interrupted", Expect::Recovers),
        ("disk.read_at%1=interrupted", Expect::Fails),
        ("disk.read_at@1=notfound", Expect::Fails),
        ("disk.open@1=notfound", Expect::Fails),
        ("disk.block@1=corrupt", Expect::Recovers),
        ("disk.block%1=corrupt", Expect::FailsUnlessRaw),
        ("codec.decode@1=corrupt", Expect::Either),
        ("codec.decode%1=corrupt", Expect::FailsUnlessRaw),
        ("stream.reader@1=eof", Expect::Fails),
        ("stream.reader@2=notfound", Expect::Fails),
        ("stream.worker@1=corrupt", Expect::Either),
        ("stream.worker%2=eof", Expect::Either),
    ];

    for fmt in 0u8..3 {
        let fx = Fixture::new(fmt, "sweep");
        for &width in &WIDTHS {
            let healthy = fx.baseline(width);
            for &(spec, expect) in cases {
                let ctx = format!("fmt=v{} width={width} spec={spec}", fmt + 1);
                let res = {
                    let _g = faults::install(spec).unwrap();
                    fx.run(width)
                };
                match (expect, res) {
                    (Expect::Recovers, Ok(out)) => assert_bitwise(&out, &healthy, &ctx),
                    (Expect::Recovers, Err(e)) => {
                        panic!("{ctx}: expected recovery, got error: {e}")
                    }
                    (Expect::Fails, Err(e)) => assert_typed(&e, &ctx),
                    (Expect::Fails, Ok(_)) => {
                        panic!("{ctx}: injected hard fault was silently absorbed")
                    }
                    (Expect::FailsUnlessRaw, Err(e)) => {
                        assert!(fmt != 0, "{ctx}: v1 never reaches this site, got: {e}");
                        assert_typed(&e, &ctx);
                    }
                    (Expect::FailsUnlessRaw, Ok(out)) => {
                        assert_eq!(fmt, 0, "{ctx}: v2/v3 must fail here");
                        assert_bitwise(&out, &healthy, &ctx);
                    }
                    (Expect::Either, Ok(out)) => assert_bitwise(&out, &healthy, &ctx),
                    (Expect::Either, Err(e)) => assert_typed(&e, &ctx),
                }
            }
        }
    }
}

/// Satellite: a mid-stream reader error at **every** ring occupancy.
/// `disk.read_at@N=notfound` is swept over every N the healthy scan
/// performs, so the hard error lands at every possible pipeline fill
/// level — during planning, with the ring empty, full, and mid-drain.
/// Each run must terminate with a typed error (shutdown drains the
/// ring and joins reader + workers; a leak or lost seq would deadlock
/// and hang the test), at widths 1, 2 and 4.
#[test]
fn reader_error_at_every_ring_occupancy_terminates_typed() {
    let fx = Fixture::new(2, "ring-occupancy");
    for &width in &WIDTHS {
        let healthy = {
            let _g = faults::install("").unwrap();
            let out = fx.run(width).expect("healthy baseline scan must succeed");
            (out, faults::hit_count(faults::DISK_READ_AT))
        };
        let (healthy, reads) = healthy;
        assert!(
            (2..=64).contains(&reads),
            "fixture must perform a handful of reads, saw {reads}"
        );
        for n in 1..=reads {
            let ctx = format!("width={width} read_at@{n}=notfound");
            let res = {
                let _g = faults::install(&format!("disk.read_at@{n}=notfound")).unwrap();
                fx.run(width)
            };
            let err = match res {
                Err(e) => e,
                Ok(_) => panic!("{ctx}: scan returned Ok despite an unretryable read error"),
            };
            assert_typed(&err, &ctx);
        }
        // A scan immediately after the error storm is pristine: no
        // shared state was corrupted by any of the aborted runs.
        let _g = faults::install("").unwrap();
        let again = fx.run(width).expect("post-chaos scan must succeed");
        assert_bitwise(&again, &healthy, &format!("width={width} post-chaos"));
    }
}

/// Injected panics in the reader and the workers are contained and
/// surface as `StreamError::WorkerPanicked` — they never cross
/// `execute`'s boundary, at any width.
#[test]
fn injected_panics_are_contained_as_typed_errors() {
    let fx = Fixture::new(2, "panics");
    // Silence the default panic hook's backtrace spew for the injected
    // (contained) panics; restored before any assertion can fire.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut results = Vec::new();
    for &width in &WIDTHS {
        for site in ["stream.reader@1=panic", "stream.worker@2=panic"] {
            let res = {
                let _g = faults::install(site).unwrap();
                fx.run(width)
            };
            results.push((width, site, res));
        }
    }
    std::panic::set_hook(prev);

    for (width, site, res) in results {
        let ctx = format!("width={width} spec={site}");
        match res {
            // The worker site only fires when the planner engages the
            // chunk-parallel pool; a prefetch-path run at width 1 is a
            // clean scan and must then be correct.
            Ok(out) => {
                assert!(
                    site.starts_with("stream.worker"),
                    "{ctx}: a reader panic can never yield results"
                );
                let healthy = fx.baseline(width);
                assert_bitwise(&out, &healthy, &ctx);
            }
            Err(StreamError::WorkerPanicked(msg)) => {
                assert!(
                    msg.contains("injected fault"),
                    "{ctx}: containment must preserve the panic message, got {msg:?}"
                );
            }
            Err(other) => panic!("{ctx}: panic surfaced as the wrong variant: {other}"),
        }
    }
}

/// Recovered degradation is visible: a scan that retried reads or
/// re-read blocks reports it in `StreamOutput::recovery` (and a healthy
/// scan reports all-zero), and the result is still bitwise clean.
#[test]
fn recovery_counters_report_absorbed_faults() {
    let fx = Fixture::new(2, "counters");
    let healthy = fx.baseline(2);
    assert!(
        !healthy.recovery.any(),
        "healthy scan must report zero recovery events"
    );

    let retried = {
        let _g = faults::install("disk.read_at@2=interrupted").unwrap();
        fx.run(2)
            .expect("a single transient read error is absorbed")
    };
    assert!(retried.recovery.io_retries > 0, "retry must be counted");
    assert_bitwise(&retried, &healthy, "retried scan");

    let reread = {
        let _g = faults::install("disk.block@1=corrupt").unwrap();
        fx.run(2).expect("a torn block read is absorbed by re-read")
    };
    assert!(reread.recovery.block_rereads > 0, "re-read must be counted");
    assert_bitwise(&reread, &healthy, "re-read scan");
}

/// The canvas pool drains on error paths: after executing chunks
/// against a preparation, no canvases remain checked out — the counter
/// the streaming shutdown relies on actually returns to zero.
#[test]
fn canvas_pool_outstanding_drains_to_zero() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(6, &extent, 0xC4A05);
    let pts = TaxiModel::default().generate(2_000, 0xC4A05);
    let fare = pts.attr_index("fare").unwrap();
    let q = Query::avg(fare).with_epsilon(150.0);
    let dev = Device::new(DeviceConfig::small(
        1_500 * PointTable::point_bytes(2),
        2048,
    ));
    let join = BoundedRasterJoin::new(2);
    let prepared = join.prepare(&polys, q.epsilon, &dev);
    assert_eq!(prepared.outstanding_canvases(), 0);
    for _ in 0..3 {
        let _ = join.execute_prepared(&prepared, &pts, &q, &dev);
        assert_eq!(
            prepared.outstanding_canvases(),
            0,
            "every acquired canvas must be returned after a pass"
        );
    }
}
