//! Cross-crate integration tests: the full pipeline on realistic
//! workloads, checking the paper's correctness claims end to end.

use raster_join_repro::data::generators::{nyc_extent, uniform_points, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::geom::hausdorff::{passes_for_epsilon, pixel_side_for_epsilon};
use raster_join_repro::prelude::*;

/// All exact executors must agree bit-for-bit on counts.
#[test]
fn exact_executors_agree() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(20, &extent, 101);
    let pts = TaxiModel::default().generate(8_000, 102);
    let dev = Device::default();
    let q = Query::count();

    let accurate = AccurateRasterJoin::default().execute(&pts, &polys, &q, &dev);
    let gpu = IndexJoin::gpu(4).execute(&pts, &polys, &q, &dev);
    let cpu_mt = IndexJoin::cpu_multi(4).execute(&pts, &polys, &q, &dev);
    let cpu_st = IndexJoin::cpu_single().execute(&pts, &polys, &q, &dev);
    let mat = MaterializingJoin::new(4).execute(&pts, &polys, &q, &dev);

    assert_eq!(accurate.counts, gpu.counts);
    assert_eq!(gpu.counts, cpu_mt.counts);
    assert_eq!(cpu_mt.counts, cpu_st.counts);
    assert_eq!(cpu_st.counts, mat.counts);
}

/// §4.2's spatial guarantee, verified behaviourally: every bounded-join
/// miscount at bound ε must disappear when the point is farther than ε
/// from every polygon boundary. We verify the contrapositive per polygon:
/// recomputing the exact count restricted to points at distance > ε from
/// the polygon's boundary gives a value the bounded count can only differ
/// from by points within ε of the boundary.
#[test]
fn bounded_errors_only_near_boundaries() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(10, &extent, 55);
    let pts = uniform_points(6_000, &extent, 56);
    let dev = Device::default();
    let eps = 200.0; // coarse, to provoke errors
    let bounded =
        BoundedRasterJoin::default().execute(&pts, &polys, &Query::count().with_epsilon(eps), &dev);

    for poly in &polys {
        let id = poly.id() as usize;
        let edges = poly.all_edges();
        let dist_to_boundary = |p: Point| -> f64 {
            edges
                .iter()
                .map(|&(a, b)| p.distance_to_segment(a, b))
                .fold(f64::INFINITY, f64::min)
        };
        // Counts that cannot be disputed: inside and far from the boundary.
        let mut core = 0u64;
        // Upper bound: inside-or-within-ε of the boundary.
        let mut dilated = 0u64;
        for i in 0..pts.len() {
            let p = pts.point(i);
            let inside = poly.contains(p);
            let d = dist_to_boundary(p);
            if inside && d > eps {
                core += 1;
            }
            if inside || d <= eps {
                dilated += 1;
            }
        }
        let got = bounded.counts[id];
        assert!(
            got >= core && got <= dilated,
            "polygon {id}: bounded count {got} outside the ε-envelope [{core}, {dilated}]"
        );
    }
}

/// Error shrinks monotonically (in aggregate) as ε decreases — the
/// accuracy–ε trade-off of Fig. 12b. A single 10k-point workload carries
/// only a handful of boundary-pixel errors, so per-seed step-to-step
/// comparisons are noise; the figure's claim is about the aggregate
/// trend, which we test by summing the error over several workloads at
/// well-separated ε values.
#[test]
fn total_error_shrinks_with_epsilon() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(12, &extent, 61);
    let dev = Device::default();

    let mut totals = [0u64; 3];
    for seed in [62u64, 63, 64, 65, 100] {
        let pts = TaxiModel::default().generate(10_000, seed);
        let exact = AccurateRasterJoin::default().execute(&pts, &polys, &Query::count(), &dev);
        for (slot, eps) in [6400.0, 800.0, 50.0].into_iter().enumerate() {
            let b = BoundedRasterJoin::default().execute(
                &pts,
                &polys,
                &Query::count().with_epsilon(eps),
                &dev,
            );
            totals[slot] += b
                .counts
                .iter()
                .zip(&exact.counts)
                .map(|(&a, &e)| a.abs_diff(e))
                .sum::<u64>();
        }
    }
    assert!(
        totals[0] >= totals[1] && totals[1] >= totals[2],
        "aggregate error must not grow as ε shrinks: {totals:?}"
    );
    // And the coarse-to-fine improvement must be substantial, not a tie.
    assert!(
        totals[0] > 2 * totals[2],
        "ε sweep should show a clear accuracy trend: {totals:?}"
    );
}

/// With polygons that tile the extent, the bounded join conserves points:
/// every rendered pixel belongs to exactly one polygon (rasterization's
/// shared-edge tie rules), so the total count equals the number of points
/// — even though individual polygons may miscount.
#[test]
fn count_conservation_over_tiling_polygons() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(15, &extent, 71);
    let pts = uniform_points(5_000, &extent, 72);
    let dev = Device::default();
    let out = BoundedRasterJoin::default().execute(
        &pts,
        &polys,
        &Query::count().with_epsilon(100.0),
        &dev,
    );
    let total = out.total_count();
    // Tiny slack: points in pixels at the domain frame may fall outside
    // every polygon's rasterization.
    assert!(
        total as f64 >= 0.995 * pts.len() as f64 && total <= pts.len() as u64,
        "conserved {total} of {}",
        pts.len()
    );
}

/// The ε→resolution→passes arithmetic drives multi-pass rendering: at the
/// paper's NYC extent, ε = 20 m fits one 8192² canvas, ε = 5 m needs
/// several (Fig. 5 / Fig. 12a mechanics).
#[test]
fn epsilon_controls_pass_count() {
    let extent = nyc_extent();
    assert_eq!(passes_for_epsilon(&extent, 20.0, 8192), 1);
    assert!(passes_for_epsilon(&extent, 5.0, 8192) > 1);
    // Side length rule: diagonal = ε.
    assert!((pixel_side_for_epsilon(20.0) * 2f64.sqrt() - 20.0).abs() < 1e-9);

    // And the executor actually performs those passes.
    let polys = synthetic_polygons(6, &extent, 81);
    let pts = uniform_points(2_000, &extent, 82);
    let dev = Device::default();
    let coarse = BoundedRasterJoin::default().execute(
        &pts,
        &polys,
        &Query::count().with_epsilon(20.0),
        &dev,
    );
    assert_eq!(coarse.stats.passes, 1);
    let fine =
        BoundedRasterJoin::default().execute(&pts, &polys, &Query::count().with_epsilon(5.0), &dev);
    assert!(fine.stats.passes > 1);
    // Multi-pass must not change which answer is ε-compatible: both are
    // exact on points far from boundaries, so totals stay close.
    let delta = coarse.total_count().abs_diff(fine.total_count());
    assert!(delta as f64 <= 0.01 * pts.len() as f64);
}

/// Aggregates beyond COUNT: SUM/AVG agree between bounded (fine ε) and
/// exact executors within the expected tolerance.
#[test]
fn sum_avg_consistency_across_executors() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(8, &extent, 91);
    let pts = TaxiModel::default().generate(6_000, 92);
    let fare = pts.attr_index("fare").unwrap();
    let dev = Device::default();

    let exact = IndexJoin::cpu_single().execute(&pts, &polys, &Query::sum(fare), &dev);
    let bounded = BoundedRasterJoin::default().execute(
        &pts,
        &polys,
        &Query::sum(fare).with_epsilon(10.0),
        &dev,
    );
    let total_exact: f64 = exact.sums.iter().sum();
    let total_bounded: f64 = bounded.sums.iter().sum();
    assert!(
        (total_exact - total_bounded).abs() < 0.01 * total_exact.abs().max(1.0),
        "sums diverge: {total_bounded} vs {total_exact}"
    );
}

/// Filters compose with the join identically across executors.
#[test]
fn filters_apply_uniformly() {
    let extent = nyc_extent();
    let polys = synthetic_polygons(8, &extent, 93);
    let pts = TaxiModel::default().generate(5_000, 94);
    let hour = pts.attr_index("hour").unwrap();
    let pass = pts.attr_index("passengers").unwrap();
    let q = Query::count().with_predicates(vec![
        Predicate::new(hour, CmpOp::Lt, 120.0),
        Predicate::new(pass, CmpOp::Ge, 2.0),
    ]);
    let dev = Device::default();
    let a = AccurateRasterJoin::default().execute(&pts, &polys, &q, &dev);
    let b = IndexJoin::cpu_single().execute(&pts, &polys, &q, &dev);
    assert_eq!(a.counts, b.counts);
    // And the filter actually filtered.
    let unfiltered = IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &dev);
    assert!(a.total_count() < unfiltered.total_count());
}
