//! Second property-test suite: rasterization-pipeline and storage-layer
//! invariants (complementing `properties.rs`, which covers geometry and
//! join semantics).

use proptest::prelude::*;
use raster_join_repro::data::csv::{read_csv, write_csv, CsvSpec};
use raster_join_repro::data::disk::{write_table, ChunkedReader};
use raster_join_repro::geom::proj::LocalProjection;
use raster_join_repro::gpu::raster::{rasterize_triangle, rasterize_triangle_spans, ScreenTri};
use raster_join_repro::prelude::*;
use std::collections::HashSet;

fn arb_table(max_rows: usize) -> impl Strategy<Value = PointTable> {
    prop::collection::vec(
        (-1e6f64..1e6, -1e6f64..1e6, -1e3f32..1e3, -1e3f32..1e3),
        0..max_rows,
    )
    .prop_map(|rows| {
        let mut t = PointTable::with_capacity(rows.len(), &["a", "b"]);
        for (x, y, a, b) in rows {
            t.push(Point::new(x, y), &[a, b]);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Span rasterization is pixel-identical to per-pixel rasterization
    /// for arbitrary triangles (the hardware-contract equivalence the
    /// whole fragment fast path rests on).
    #[test]
    fn spans_equal_pixels_on_arbitrary_triangles(
        ax in -8.0f64..24.0, ay in -8.0f64..24.0,
        bx in -8.0f64..24.0, by in -8.0f64..24.0,
        cx in -8.0f64..24.0, cy in -8.0f64..24.0,
    ) {
        let tri: ScreenTri = [(ax, ay), (bx, by), (cx, cy)];
        let mut per_pixel = HashSet::new();
        rasterize_triangle(tri, 16, 16, |x, y| { per_pixel.insert((x, y)); });
        let mut spans = HashSet::new();
        rasterize_triangle_spans(tri, 16, 16, |y, x0, x1| {
            for x in x0..x1 { spans.insert((x, y)); }
        });
        prop_assert_eq!(per_pixel, spans);
    }

    /// Any triangle pair sharing the edge (p, q) never double-samples a
    /// pixel, whatever the opposite vertices are.
    #[test]
    fn shared_edge_partition(
        px in 0.0f64..16.0, py in 0.0f64..16.0,
        qx in 0.0f64..16.0, qy in 0.0f64..16.0,
        r1x in 0.0f64..16.0, r1y in 0.0f64..16.0,
        r2x in 0.0f64..16.0, r2y in 0.0f64..16.0,
    ) {
        // Force the two apexes to opposite sides of pq.
        let side = |rx: f64, ry: f64| (qx - px) * (ry - py) - (qy - py) * (rx - px);
        prop_assume!(side(r1x, r1y) > 1e-9);
        prop_assume!(side(r2x, r2y) < -1e-9);
        let t1: ScreenTri = [(px, py), (qx, qy), (r1x, r1y)];
        let t2: ScreenTri = [(px, py), (qx, qy), (r2x, r2y)];
        let mut count = std::collections::HashMap::new();
        for t in [t1, t2] {
            rasterize_triangle(t, 16, 16, |x, y| {
                *count.entry((x, y)).or_insert(0u32) += 1;
            });
        }
        for (&px, &c) in &count {
            prop_assert!(c <= 1, "pixel {px:?} sampled {c} times");
        }
    }

    /// Viewport tiling assigns every covered pixel-center world point to
    /// exactly one tile.
    #[test]
    fn viewport_split_partitions_points(
        seed in any::<u64>(),
        max_dim in 1u32..64,
    ) {
        use rand::{Rng, SeedableRng};
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 700.0));
        let vp = Viewport::new(extent, 128, 96);
        let tiles = vp.split(max_dim);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..700.0));
            let owners = tiles.iter().filter(|t| t.pixel_of(p).is_some()).count();
            prop_assert_eq!(owners, 1, "point {:?}", p);
        }
    }

    /// The binary columnar format round-trips arbitrary tables, whole or
    /// chunked.
    #[test]
    fn disk_roundtrip_arbitrary_tables(t in arb_table(200), chunk in 1usize..64) {
        let path = std::env::temp_dir().join(format!(
            "rjr-prop-{}-{chunk}-{}.bin", std::process::id(), t.len()));
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, chunk).unwrap();
        let mut back = PointTable::with_capacity(0, &["a", "b"]);
        while let Some(c) = r.next_chunk().unwrap() {
            prop_assert!(c.len() <= chunk);
            back.extend(&c);
        }
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(t, back);
    }

    /// CSV write→read round-trips (within f32/f64 text formatting, which
    /// Rust makes exact for shortest-roundtrip printing).
    #[test]
    fn csv_roundtrip_arbitrary_tables(t in arb_table(100)) {
        let mut buf = Vec::new();
        write_csv(&mut buf, &t).unwrap();
        let spec = CsvSpec::new(0, 1).attr(2, "a").attr(3, "b");
        let (back, stats) = read_csv(buf.as_slice(), &spec).unwrap();
        prop_assert_eq!(stats.rows_skipped, 0);
        prop_assert_eq!(t, back);
    }

    /// Local projection round-trips lon/lat within numeric noise.
    #[test]
    fn projection_roundtrips(
        lon0 in -179.0f64..179.0,
        lat0 in -60.0f64..60.0,
        dlon in -0.5f64..0.5,
        dlat in -0.5f64..0.5,
    ) {
        let proj = LocalProjection::new(lon0, lat0);
        let m = proj.to_metres(lon0 + dlon, lat0 + dlat);
        let (lon, lat) = proj.to_lonlat(m);
        prop_assert!((lon - (lon0 + dlon)).abs() < 1e-9);
        prop_assert!((lat - (lat0 + dlat)).abs() < 1e-9);
    }

    /// The SQL printer/parser agreement: a programmatically built query
    /// re-expressed as SQL parses back to the same structure.
    #[test]
    fn sql_parse_is_stable(
        attr in 0usize..5,
        val in -100.0f32..100.0,
        op_idx in 0usize..5,
    ) {
        let schema = PointTable::with_capacity(0, &["c0", "c1", "c2", "c3", "c4"]);
        let ops = [">", ">=", "<", "<=", "="];
        let sql = format!(
            "SELECT SUM(c{attr}) FROM P, R WHERE P.loc INSIDE R.geometry \
             AND c{attr} {} {val} GROUP BY R.id",
            ops[op_idx]
        );
        let q = raster_join_repro::join::sql::parse_query(&sql, &schema).unwrap();
        prop_assert_eq!(q.aggregate, Aggregate::Sum(attr));
        prop_assert_eq!(q.predicates.len(), 1);
        prop_assert_eq!(q.predicates[0].attr, attr);
        prop_assert!((q.predicates[0].value - val).abs() < 1e-6);
    }
}
