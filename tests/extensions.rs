//! Integration tests for the §8 extensions: multi-aggregate queries, the
//! variant optimizer, LOD exploration and the SQL front-end — plus the
//! related-work baselines of §2.

use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::index::{ARTree, AggQuadtree};
use raster_join_repro::join::multi::{MultiBoundedRasterJoin, MultiQuery};
use raster_join_repro::join::optimizer::{plan_workload, Calibration, Variant, Workload};
use raster_join_repro::join::sql::parse_query;
use raster_join_repro::join::LodExplorer;
use raster_join_repro::prelude::*;

/// One multi-aggregate pass replaces the parallel-coordinates chart's
/// per-axis queries (Fig. 1c): results match the per-axis execution.
#[test]
fn multi_aggregate_fills_parallel_coordinate_axes() {
    let pts = TaxiModel::default().generate(6_000, 301);
    let polys = synthetic_polygons(10, &nyc_extent(), 302);
    let fare = pts.attr_index("fare").unwrap();
    let tip = pts.attr_index("tip").unwrap();
    let dist = pts.attr_index("distance").unwrap();
    let dev = Device::default();

    let mq = MultiQuery::new(vec![
        Aggregate::Count,
        Aggregate::Avg(fare),
        Aggregate::Avg(tip),
        Aggregate::Sum(dist),
    ])
    .with_epsilon(15.0);
    let multi = MultiBoundedRasterJoin::default().execute(&pts, &polys, &mq, &dev);

    for (i, q) in mq.split().iter().enumerate() {
        let single = BoundedRasterJoin::default().execute(&pts, &polys, q, &dev);
        let want = single.values(q.aggregate);
        let got = multi.values(&mq, i);
        for k in 0..want.len() {
            assert!(
                (got[k] - want[k]).abs() < 1e-3 * want[k].abs().max(1.0),
                "axis {i} polygon {k}: {} vs {}",
                got[k],
                want[k]
            );
        }
    }
    // One pass, not four.
    assert_eq!(multi.stats.passes, 1);
}

/// SQL → Query → executor, end to end, matches the programmatic query.
#[test]
fn sql_query_end_to_end() {
    let pts = TaxiModel::default().generate(4_000, 303);
    let polys = synthetic_polygons(6, &nyc_extent(), 304);
    let dev = Device::default();
    let q_sql = parse_query(
        "SELECT AVG(fare) FROM trips, hoods WHERE trips.loc INSIDE hoods.geometry \
         AND passengers >= 2 AND hour < 100 GROUP BY hoods.id",
        &pts,
    )
    .unwrap()
    .with_epsilon(15.0);

    let fare = pts.attr_index("fare").unwrap();
    let pass = pts.attr_index("passengers").unwrap();
    let hour = pts.attr_index("hour").unwrap();
    let q_manual = Query::avg(fare).with_epsilon(15.0).with_predicates(vec![
        Predicate::new(pass, CmpOp::Ge, 2.0),
        Predicate::new(hour, CmpOp::Lt, 100.0),
    ]);

    let a = BoundedRasterJoin::default().execute(&pts, &polys, &q_sql, &dev);
    let b = BoundedRasterJoin::default().execute(&pts, &polys, &q_manual, &dev);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.sums, b.sums);
}

/// The planner's crossover tracks the pass count: sweeping ε downward
/// flips the choice from Bounded to Accurate exactly once.
#[test]
fn optimizer_crossover_is_monotone() {
    let polys = synthetic_polygons(12, &nyc_extent(), 305);
    let dev = Device::default();
    let cal = Calibration::builtin();
    let mut seen_accurate = false;
    for eps in [50.0, 20.0, 10.0, 2.0, 0.5, 0.1, 0.02] {
        let q = Query::count().with_epsilon(eps);
        let wl = Workload::assumed(2_000_000, &polys, &q);
        let choice = plan_workload(&wl, &q, &dev, &cal, 4, 2048, 1024, None);
        match choice.choice() {
            Variant::Accurate => seen_accurate = true,
            Variant::Bounded => {
                assert!(
                    !seen_accurate,
                    "choice flipped back to Bounded at ε = {eps} after Accurate was chosen"
                );
            }
        }
    }
    assert!(seen_accurate, "sweep must eventually prefer Accurate");
}

/// LOD zoom: a fixed canvas over a shrinking viewport gives strictly
/// finer effective ε and (weakly) better accuracy against ground truth.
#[test]
fn lod_zoom_monotonically_sharpens() {
    let pts = raster_join_repro::data::generators::uniform_points(30_000, &nyc_extent(), 306);
    let polys = synthetic_polygons(10, &nyc_extent(), 307);
    let dev = Device::default();
    let lod = LodExplorer {
        workers: 4,
        canvas: (256, 256),
    };
    let full = nyc_extent();
    let mut view = full;
    let mut prev_eps = f64::INFINITY;
    for _ in 0..3 {
        let eps = lod.effective_epsilon(&view);
        assert!(eps < prev_eps);
        prev_eps = eps;
        let out = lod.query_view(&view, &pts, &polys, &Query::count(), &dev);
        // Sanity: counting only what is visible.
        let visible = (0..pts.len())
            .filter(|&i| view.contains(pts.point(i)))
            .count() as u64;
        assert!(out.total_count() <= visible);
        // Zoom to the central half.
        let c = view.center();
        view = BBox::new(
            Point::new(c.x - view.width() / 4.0, c.y - view.height() / 4.0),
            Point::new(c.x + view.width() / 4.0, c.y + view.height() / 4.0),
        );
    }
}

/// §2 reproduced quantitatively: the pre-aggregation structures answer
/// rectangles but are strictly worse than bounded raster join on
/// arbitrary polygons at comparable spatial resolution.
#[test]
fn related_work_structures_lose_on_arbitrary_polygons() {
    let pts_tbl = TaxiModel::default().generate(30_000, 308);
    let pts: Vec<Point> = (0..pts_tbl.len()).map(|i| pts_tbl.point(i)).collect();
    let polys = synthetic_polygons(8, &nyc_extent(), 309);
    let dev = Device::default();

    let exact = AccurateRasterJoin::default().execute(&pts_tbl, &polys, &Query::count(), &dev);
    let bounded = BoundedRasterJoin::default().execute(
        &pts_tbl,
        &polys,
        &Query::count().with_epsilon(60.0),
        &dev,
    );
    // Cube with leaf cells ≈ the bounded join's pixel size would need
    // depth ~10; build it coarser, as a realistic memory budget forces.
    let cube = AggQuadtree::build(&pts, nyc_extent(), 7);
    let recs: Vec<(Point, f32)> = pts.iter().map(|&p| (p, 1.0)).collect();
    let artree = ARTree::build(&recs);

    let mut err_bounded = 0i64;
    let mut err_cube = 0i64;
    let mut err_art = 0i64;
    for (i, poly) in polys.iter().enumerate() {
        let e = exact.counts[i] as i64;
        err_bounded += (bounded.counts[i] as i64 - e).abs();
        err_cube += (cube.polygon_count_approx(poly) as i64 - e).abs();
        err_art += (artree.polygon_count_via_mbr(poly) as i64 - e).abs();
    }
    assert!(
        err_bounded < err_cube,
        "bounded ({err_bounded}) must beat the cube ({err_cube})"
    );
    assert!(
        err_bounded < err_art,
        "bounded ({err_bounded}) must beat MBR-only aR-tree ({err_art})"
    );
    // The aR-tree is exact for what it is built for — rectangles.
    let rect = BBox::new(
        Point::new(10_000.0, 12_000.0),
        Point::new(30_000.0, 35_000.0),
    );
    let got = artree.range_aggregate(&rect);
    let want = pts.iter().filter(|p| rect.contains(**p)).count() as u64;
    assert_eq!(got.count, want);
}

/// Result ranges compose with SQL + filters: intervals still bracket the
/// exact filtered counts.
#[test]
fn ranges_hold_under_filters() {
    use raster_join_repro::join::ranges::estimate_count_ranges;
    let pts = TaxiModel::default().generate(8_000, 310);
    let polys = synthetic_polygons(6, &nyc_extent(), 311);
    let dev = Device::default();
    let hour = pts.attr_index("hour").unwrap();
    let q = Query::count()
        .with_epsilon(300.0)
        .with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 120.0)]);
    let ranges = estimate_count_ranges(&pts, &polys, &q, &dev, 4);
    let exact = AccurateRasterJoin::default().execute(&pts, &polys, &q, &dev);
    for (i, r) in ranges.iter().enumerate() {
        assert!(
            r.worst_contains(exact.counts[i] as f64),
            "polygon {i}: {} ∉ [{}, {}]",
            exact.counts[i],
            r.worst_lo,
            r.worst_hi
        );
    }
}
