#![forbid(unsafe_code)]
//! # raster-join-repro
//!
//! A from-scratch Rust reproduction of **"GPU Rasterization for Real-Time
//! Spatial Aggregation over Arbitrary Polygons"** (Tzirita Zacharatou,
//! Doraiswamy, Ailamaki, Silva, Freire — PVLDB 11(3), 2017).
//!
//! The paper evaluates spatial aggregation queries
//!
//! ```sql
//! SELECT AGG(a_i) FROM P, R
//! WHERE P.loc INSIDE R.geometry [AND filterCondition]*
//! GROUP BY R.id
//! ```
//!
//! by *drawing* both relations on a canvas: points are blended into a
//! framebuffer holding per-pixel partial aggregates, polygons are
//! triangulated and rasterized over it, and each polygon fragment folds
//! its pixel's partial aggregate into the polygon's result slot — no join
//! materialization and (in the bounded variant) no point-in-polygon tests.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geom`] — geometry substrate (polygons, triangulation, clipping,
//!   Hausdorff/ε arithmetic, the §7.4 Voronoi polygon generator);
//! * [`gpu`] — the software rendering pipeline (viewports, FBOs,
//!   pixel-center + conservative rasterization, device/transfer model);
//! * [`index`] — grid indexes;
//! * [`data`] — columnar tables, workload generators, on-disk format;
//! * [`join`] — the operators: [`join::BoundedRasterJoin`],
//!   [`join::AccurateRasterJoin`], [`join::IndexJoin`],
//!   [`join::MaterializingJoin`], the classical [`join::TwoStepJoin`]
//!   filter-refine baseline, the [`join::SamplingJoin`] online-sampling
//!   baseline, higher moments ([`join::MomentsRasterJoin`]), result
//!   ranges and accuracy metrics.
//!
//! ## Quickstart
//!
//! ```
//! use raster_join_repro::prelude::*;
//!
//! // A tiling of the NYC-like extent into 16 "neighborhoods" and a
//! // taxi-like point workload.
//! let polys = raster_join_repro::data::polygons::synthetic_polygons(
//!     16, &raster_join_repro::data::generators::nyc_extent(), 7);
//! let points = raster_join_repro::data::generators::TaxiModel::default()
//!     .generate(10_000, 7);
//!
//! // Count pickups per neighborhood with a 20 m guarantee.
//! let device = Device::default();
//! let out = BoundedRasterJoin::default().execute(
//!     &points, &polys, &Query::count().with_epsilon(20.0), &device);
//! assert_eq!(out.counts.len(), 16);
//! assert!(out.total_count() > 0);
//! ```

pub use raster_data as data;
pub use raster_geom as geom;
pub use raster_gpu as gpu;
pub use raster_index as index;
pub use raster_join as join;

/// Convenient single-import surface.
pub mod prelude {
    pub use raster_data::{CmpOp, PointTable, Predicate};
    pub use raster_geom::{BBox, Point, Polygon, Ring};
    pub use raster_gpu::{Device, DeviceConfig, Viewport};
    pub use raster_join::{
        AccurateRasterJoin, Aggregate, AggregateMerger, AutoRasterJoin, BoundedRasterJoin,
        ExecStats, IndexJoin, JoinOutput, MaterializingJoin, MomentsQuery, MomentsRasterJoin,
        Parallelism, Plan, Query, SamplingJoin, StreamOutput, StreamingRasterJoin, TwoStepJoin,
    };
}
