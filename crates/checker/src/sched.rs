//! The controlled scheduler: exhaustive bounded-preemption exploration.
//!
//! A [`Model`] is a set of cooperatively scheduled logical threads, each
//! advanced one *atomic operation* at a time by [`Model::step`]. The
//! [`Explorer`] owns every scheduling decision: at each state it forks the
//! model (models are plain data, so forking is `Clone`) once per runnable
//! thread and recurses depth-first, enumerating every interleaving whose
//! number of *preemptions* — context switches away from a thread that
//! could have kept running — stays within [`Explorer::max_preemptions`].
//! Bounded-preemption search is the standard bug-finding tradeoff (CHESS):
//! almost all real concurrency bugs manifest within 2–3 preemptions, while
//! the bound keeps the schedule tree tractable.
//!
//! Two invariant hooks drive verdicts: [`Model::check_step`] runs after
//! every step (safety invariants: aliasing, ordering of observable
//! effects), and [`Model::check_final`] runs on every complete schedule
//! (liveness-ish end-state invariants: nothing lost, nothing duplicated).
//! A state where no thread can run but some are not finished is reported
//! as a deadlock. The first violation aborts the search and carries the
//! exact schedule (a thread-id sequence) that reproduces it.

/// Result of advancing one logical thread by one atomic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread performed an operation; the model state may have changed.
    Ran,
    /// The thread cannot currently proceed (e.g. a full `sync_channel`
    /// send, an empty recv, an unjoined scope). The step must leave the
    /// model state **unchanged** — the explorer relies on blocked probes
    /// being pure.
    Blocked,
    /// The thread has finished. Must be terminal and pure: once `Done`,
    /// every further step returns `Done` without touching state.
    Done,
}

/// A small concurrent system under test. Implementations are plain data:
/// the explorer forks states with `Clone` instead of replaying schedules.
pub trait Model: Clone {
    /// Number of logical threads (thread ids are `0..threads()`).
    fn threads(&self) -> usize;

    /// Advance thread `tid` by one atomic operation.
    fn step(&mut self, tid: usize) -> Step;

    /// Safety invariant, evaluated after every `Ran` step.
    fn check_step(&self) -> Result<(), String> {
        Ok(())
    }

    /// End-state invariant, evaluated when every thread is `Done`.
    fn check_final(&self) -> Result<(), String>;
}

/// A failed schedule: the exact thread-id sequence that reproduces the
/// violation, plus the invariant's message.
#[derive(Debug, Clone)]
pub struct Violation {
    pub schedule: Vec<usize>,
    pub message: String,
}

/// Exploration statistics and verdict.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Distinct complete interleavings explored. Each counted schedule is
    /// a distinct thread-id sequence (blocked probes never extend a
    /// schedule), so this is an exact interleaving count.
    pub interleavings: usize,
    /// Total states expanded (internal nodes of the schedule tree).
    pub states: usize,
    /// Longest schedule seen, in steps.
    pub max_depth: usize,
    /// `true` when the search stopped at [`Explorer::max_interleavings`]
    /// before the bounded space was exhausted.
    pub truncated: bool,
    /// First invariant violation or deadlock found, if any.
    pub violation: Option<Violation>,
}

impl Report {
    /// Panic with the reproducing schedule unless the search passed clean.
    pub fn assert_clean(&self, model_name: &str) {
        if let Some(v) = &self.violation {
            panic!(
                "{model_name}: invariant violated after {} interleavings\n  schedule: {:?}\n  {}",
                self.interleavings, v.schedule, v.message
            );
        }
    }
}

/// Exhaustive bounded-preemption depth-first explorer.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Maximum preemptions per schedule. A context switch costs a
    /// preemption only when the switched-away thread was still runnable;
    /// switches at blocking or completion points are free, so every model
    /// can always run to completion regardless of the bound.
    pub max_preemptions: usize,
    /// Safety valve: stop after this many complete interleavings.
    pub max_interleavings: usize,
    /// Safety valve: schedules longer than this report a violation (a
    /// diverging model, e.g. a livelocked retry loop).
    pub max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_preemptions: 3,
            max_interleavings: 500_000,
            max_steps: 10_000,
        }
    }
}

impl Explorer {
    pub fn with_preemptions(max_preemptions: usize) -> Self {
        Explorer {
            max_preemptions,
            ..Explorer::default()
        }
    }

    /// Explore every bounded-preemption interleaving of `model` from its
    /// current state.
    pub fn explore<M: Model>(&self, model: &M) -> Report {
        let mut report = Report::default();
        let mut schedule = Vec::new();
        self.dfs(model, None, 0, &mut schedule, &mut report);
        report
    }

    fn dfs<M: Model>(
        &self,
        state: &M,
        prev: Option<usize>,
        preemptions: usize,
        schedule: &mut Vec<usize>,
        report: &mut Report,
    ) {
        if report.violation.is_some() || report.truncated {
            return;
        }
        if schedule.len() > self.max_steps {
            report.violation = Some(Violation {
                schedule: schedule.clone(),
                message: format!(
                    "schedule exceeded {} steps: diverging model",
                    self.max_steps
                ),
            });
            return;
        }
        report.states += 1;

        // Fork the state once per thread to learn who can run. Blocked and
        // Done steps are pure by contract, so their forks are discarded;
        // Ran forks become the children of this node.
        let n = state.threads();
        let mut runnable: Vec<(usize, M)> = Vec::new();
        let mut all_done = true;
        for tid in 0..n {
            let mut fork = state.clone();
            match fork.step(tid) {
                Step::Ran => {
                    all_done = false;
                    runnable.push((tid, fork));
                }
                Step::Blocked => all_done = false,
                Step::Done => {}
            }
        }

        if runnable.is_empty() {
            report.max_depth = report.max_depth.max(schedule.len());
            if all_done {
                report.interleavings += 1;
                if let Err(message) = state.check_final() {
                    report.violation = Some(Violation {
                        schedule: schedule.clone(),
                        message: format!("final-state check failed: {message}"),
                    });
                }
                if report.interleavings >= self.max_interleavings {
                    report.truncated = true;
                }
            } else {
                report.violation = Some(Violation {
                    schedule: schedule.clone(),
                    message: "deadlock: unfinished threads, none runnable".into(),
                });
            }
            return;
        }

        let prev_runnable = prev.is_some_and(|p| runnable.iter().any(|&(t, _)| t == p));
        for (tid, next) in runnable {
            // Leaving a still-runnable thread for another one is a
            // preemption; continuing it (or leaving a blocked/finished
            // one) is free.
            let cost = usize::from(prev_runnable && Some(tid) != prev);
            if preemptions + cost > self.max_preemptions {
                continue;
            }
            schedule.push(tid);
            if let Err(message) = next.check_step() {
                report.violation = Some(Violation {
                    schedule: schedule.clone(),
                    message,
                });
                schedule.pop();
                return;
            }
            self.dfs(&next, Some(tid), preemptions + cost, schedule, report);
            schedule.pop();
            if report.violation.is_some() || report.truncated {
                return;
            }
        }
    }
}

/// Drive `model` along an explicit schedule (for directed regression
/// tests — e.g. forcing worst-case reverse-order completion). Stops early
/// on the first invariant violation. Steps that come back `Blocked` or
/// `Done` are skipped without effect, so schedules may over-approximate.
pub fn run_schedule<M: Model>(model: &mut M, schedule: &[usize]) -> Result<(), String> {
    for &tid in schedule {
        if model.step(tid) == Step::Ran {
            model.check_step()?;
        }
    }
    Ok(())
}

/// Step `tid` until it blocks or finishes; returns how many operations ran.
pub fn step_until_blocked<M: Model>(model: &mut M, tid: usize) -> usize {
    let mut ran = 0;
    while model.step(tid) == Step::Ran {
        ran += 1;
    }
    ran
}

/// Run every thread round-robin until the model quiesces; returns
/// `check_final`'s verdict. Directed tests use this to drain a model after
/// forcing the interesting prefix.
pub fn finish<M: Model>(model: &mut M) -> Result<(), String> {
    loop {
        let mut progressed = false;
        for tid in 0..model.threads() {
            if model.step(tid) == Step::Ran {
                model.check_step()?;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    model.check_final()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared "register" once via a two-step
    /// (load, store) non-atomic RMW — the canonical lost-update bug.
    #[derive(Clone)]
    struct LostUpdate {
        reg: u32,
        loaded: [Option<u32>; 2],
        done: [bool; 2],
        atomic: bool,
    }

    impl LostUpdate {
        fn new(atomic: bool) -> Self {
            LostUpdate {
                reg: 0,
                loaded: [None, None],
                done: [false, false],
                atomic,
            }
        }
    }

    impl Model for LostUpdate {
        fn threads(&self) -> usize {
            2
        }

        fn step(&mut self, tid: usize) -> Step {
            if self.done[tid] {
                return Step::Done;
            }
            if self.atomic {
                self.reg += 1;
                self.done[tid] = true;
                return Step::Ran;
            }
            match self.loaded[tid] {
                None => {
                    self.loaded[tid] = Some(self.reg);
                    Step::Ran
                }
                Some(v) => {
                    self.reg = v + 1;
                    self.done[tid] = true;
                    Step::Ran
                }
            }
        }

        fn check_final(&self) -> Result<(), String> {
            if self.reg == 2 {
                Ok(())
            } else {
                Err(format!("lost update: register is {} not 2", self.reg))
            }
        }
    }

    #[test]
    fn atomic_increment_passes_all_interleavings() {
        let report = Explorer::with_preemptions(4).explore(&LostUpdate::new(true));
        assert!(report.violation.is_none(), "{:?}", report.violation);
        // Two single-step threads: exactly the two orders.
        assert_eq!(report.interleavings, 2);
    }

    #[test]
    fn torn_rmw_is_caught_with_one_preemption() {
        let report = Explorer::with_preemptions(1).explore(&LostUpdate::new(false));
        let v = report.violation.expect("lost update must be found");
        assert!(v.message.contains("lost update"), "{}", v.message);
        // The reproducing schedule interleaves the loads before a store.
        assert!(v.schedule.len() >= 3);
    }

    #[test]
    fn zero_preemptions_still_completes() {
        // With no preemptions allowed each thread runs to completion once
        // scheduled; both serial orders exist and both are correct even
        // for the torn RMW.
        let report = Explorer::with_preemptions(0).explore(&LostUpdate::new(false));
        assert!(report.violation.is_none());
        assert_eq!(report.interleavings, 2);
    }

    #[test]
    fn run_schedule_reproduces_reported_violation() {
        let report = Explorer::with_preemptions(1).explore(&LostUpdate::new(false));
        let v = report.violation.unwrap();
        let mut m = LostUpdate::new(false);
        run_schedule(&mut m, &v.schedule).unwrap();
        assert!(finish(&mut m).is_err(), "schedule must reproduce the bug");
    }
}
