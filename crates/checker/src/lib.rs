#![forbid(unsafe_code)]
//! Deterministic-schedule model checker for the repo's concurrency
//! invariants.
//!
//! PR 6 rebuilt `StreamingRasterJoin` around a chunk-parallel pool whose
//! **bitwise determinism** — counts identical, sums bitwise equal to the
//! sequential scan at any worker count — is the foundation the query
//! cache and the always-on server build on. That guarantee rests on three
//! small protocols:
//!
//! 1. the **seq-tagged ring + reorder buffer** (no chunk lost, duplicated
//!    or folded out of order) — [`models::RingModel`];
//! 2. the **shard merge** (accumulate races nothing, merge runs strictly
//!    after the scope join) — [`models::ShardModel`];
//! 3. the **FBO pool** (recycled canvases are exclusively owned and
//!    cleared; the free list never aliases) — [`models::PoolModel`];
//! 4. the **first-error shutdown** (any fault placement terminates, the
//!    error wins over partial results, canvases and chunks are fully
//!    accounted) — [`models::ErrModel`].
//!
//! CI runs on few cores, where real interleavings rarely happen; the
//! checker explores them *synthetically*. [`sched::Explorer`] drives each
//! model through every bounded-preemption interleaving of its atomic
//! operations (thousands of schedules per model in well under a second)
//! and reports the exact reproducing schedule on any violation.
//!
//! Trustworthiness is itself tested: every model carries seeded-bug
//! variants (`RingBug`, `ShardBug`, `PoolBug`, `ErrBug`) re-creating real
//! bugs — lost chunk, dropped seq tag, out-of-order fold,
//! merge-before-join, shared-shard RMW, early recycle, double recycle,
//! skipped clear, fold-after-error, leaked canvas, swallowed error,
//! missing shutdown unblock — and
//! `tests/mutation_gate.rs` fails the build unless the checker catches
//! **each one**. A checker that stops seeing seeded bugs is broken, not
//! lucky.
//!
//! The full invariant inventory — which tool checks what — lives in
//! `docs/INVARIANTS.md`.
//!
//! Run the suite standalone (also wired into CI's `lint-and-check` job):
//!
//! ```text
//! cargo run --release -p checker --bin modelcheck
//! ```

pub mod models;
pub mod sched;
pub mod shim;

pub use sched::{Explorer, Model, Report, Step, Violation};
