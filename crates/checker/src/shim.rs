//! Instrumented model shims for the synchronization primitives the
//! streaming pool uses.
//!
//! Each shim is the *model-level* counterpart of a real primitive in
//! `raster-join`'s chunk pool, with the same observable semantics but
//! with every operation made a single explorable step:
//!
//! | shim                | production primitive                               |
//! |---------------------|----------------------------------------------------|
//! | [`Chan::bounded`]   | `std::sync::mpsc::sync_channel` (the seq-tagged    |
//! |                     | work ring, capacity `max(readahead, workers+1)`)   |
//! | [`Chan::unbounded`] | `std::sync::mpsc::channel` (the result channel)    |
//! | [`Gate`]            | `crossbeam::thread::scope` join (workers must all  |
//! |                     | arrive before the scope's tail code runs)          |
//! | [`Reorder`]         | the consumer's `BTreeMap` reorder buffer           |
//! |                     | (`stream.rs` `ReorderBuffer`)                      |
//! | [`AtomicShim`]      | a `Relaxed` atomic counter cell                    |
//!
//! The shims are plain data (`Clone`), so the scheduler forks whole-system
//! states cheaply. Blocking is expressed by *returning* [`TrySend::Full`] /
//! [`TryRecv::Empty`]: the calling model thread reports
//! [`crate::sched::Step::Blocked`] and retries when rescheduled, which is
//! exactly how the explorer models a parked thread.

use std::collections::{BTreeMap, VecDeque};

/// Outcome of a non-blocking send on a [`Chan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySend {
    /// Value enqueued.
    Sent,
    /// Bounded channel at capacity — the sender must block.
    Full,
    /// Receiver side hung up; the value is dropped (mirrors
    /// `SendError`).
    Closed,
}

/// Outcome of a non-blocking receive on a [`Chan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecv<T> {
    Got(T),
    /// Nothing buffered but senders remain — the receiver must block.
    Empty,
    /// Empty and every sender dropped — the channel is drained for good.
    Disconnected,
}

/// A model channel: FIFO queue + sender refcount, bounded or not.
#[derive(Debug, Clone)]
pub struct Chan<T: Clone> {
    cap: Option<usize>,
    queue: VecDeque<T>,
    senders: usize,
    recv_open: bool,
}

impl<T: Clone> Chan<T> {
    /// Model of `mpsc::sync_channel(cap)` with `senders` sender handles.
    pub fn bounded(cap: usize, senders: usize) -> Self {
        Chan {
            cap: Some(cap),
            queue: VecDeque::new(),
            senders,
            recv_open: true,
        }
    }

    /// Model of `mpsc::channel()` with `senders` sender handles.
    pub fn unbounded(senders: usize) -> Self {
        Chan {
            cap: None,
            queue: VecDeque::new(),
            senders,
            recv_open: true,
        }
    }

    pub fn try_send(&mut self, v: T) -> TrySend {
        if !self.recv_open {
            return TrySend::Closed;
        }
        if let Some(cap) = self.cap {
            if self.queue.len() >= cap {
                return TrySend::Full;
            }
        }
        self.queue.push_back(v);
        TrySend::Sent
    }

    pub fn try_recv(&mut self) -> TryRecv<T> {
        match self.queue.pop_front() {
            Some(v) => TryRecv::Got(v),
            None if self.senders == 0 => TryRecv::Disconnected,
            None => TryRecv::Empty,
        }
    }

    /// One sender handle goes out of scope.
    pub fn drop_sender(&mut self) {
        debug_assert!(self.senders > 0, "sender refcount underflow");
        self.senders = self.senders.saturating_sub(1);
    }

    /// The receiver goes out of scope; later sends observe [`TrySend::Closed`].
    pub fn drop_receiver(&mut self) {
        self.recv_open = false;
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The values still buffered, front to back — end-state accounting
    /// hooks (e.g. the error model's chunk-conservation audit) count what
    /// a shutdown stranded in flight.
    pub fn buffered(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }
}

/// Model of a scope join: `need` workers must `arrive` before the code
/// after the scope may run. A thread gating on it treats `!ready()` as a
/// blocked step.
#[derive(Debug, Clone)]
pub struct Gate {
    need: usize,
    arrived: usize,
}

impl Gate {
    pub fn new(need: usize) -> Self {
        Gate { need, arrived: 0 }
    }

    pub fn arrive(&mut self) {
        self.arrived += 1;
        debug_assert!(self.arrived <= self.need, "gate over-arrival");
    }

    pub fn ready(&self) -> bool {
        self.arrived >= self.need
    }
}

/// Model of the pool consumer's seq-ordered release buffer: items arrive
/// in completion order and leave strictly in ascending sequence order —
/// the same contract as `stream.rs`'s `ReorderBuffer`.
#[derive(Debug, Clone)]
pub struct Reorder<T: Clone> {
    pending: BTreeMap<u64, T>,
    next: u64,
}

impl<T: Clone> Reorder<T> {
    pub fn new(first_seq: u64) -> Self {
        Reorder {
            pending: BTreeMap::new(),
            next: first_seq,
        }
    }

    /// Buffer a completed item. Returns `false` for a stale or duplicate
    /// tag (seq already released or already pending), leaving the
    /// first-arrived item in place — the model's hook for detecting
    /// dropped/duplicated seq tags.
    pub fn insert(&mut self, seq: u64, v: T) -> bool {
        if seq < self.next {
            return false;
        }
        match self.pending.entry(seq) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(v);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// The next in-order item, if it has arrived.
    pub fn pop_next(&mut self) -> Option<T> {
        let v = self.pending.remove(&self.next)?;
        self.next += 1;
        Some(v)
    }

    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The buffered out-of-order values — like [`Chan::buffered`], for
    /// end-state accounting of what an error shutdown left behind.
    pub fn pending_values(&self) -> impl Iterator<Item = &T> {
        self.pending.values()
    }
}

/// Model of a `Relaxed` atomic counter. Single-step RMW — the *buggy*
/// torn variant is modeled by the caller staging `load` and `store` as
/// two separate scheduler steps.
#[derive(Debug, Clone, Default)]
pub struct AtomicShim {
    v: u64,
}

impl AtomicShim {
    pub fn load(&self) -> u64 {
        self.v
    }

    pub fn store(&mut self, v: u64) {
        self.v = v;
    }

    pub fn fetch_add(&mut self, n: u64) -> u64 {
        let old = self.v;
        self.v += n;
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_chan_blocks_at_capacity_and_drains() {
        let mut c = Chan::bounded(2, 1);
        assert_eq!(c.try_send(1), TrySend::Sent);
        assert_eq!(c.try_send(2), TrySend::Sent);
        assert_eq!(c.try_send(3), TrySend::Full);
        assert_eq!(c.try_recv(), TryRecv::Got(1));
        assert_eq!(c.try_send(3), TrySend::Sent);
        c.drop_sender();
        assert_eq!(c.try_recv(), TryRecv::Got(2));
        assert_eq!(c.try_recv(), TryRecv::Got(3));
        assert_eq!(c.try_recv(), TryRecv::Disconnected);
    }

    #[test]
    fn unbounded_chan_never_fills_and_reports_empty_with_live_senders() {
        let mut c = Chan::unbounded(2);
        for i in 0..100 {
            assert_eq!(c.try_send(i), TrySend::Sent);
        }
        for i in 0..100 {
            assert_eq!(c.try_recv(), TryRecv::Got(i));
        }
        assert_eq!(c.try_recv(), TryRecv::Empty);
        c.drop_sender();
        assert_eq!(c.try_recv(), TryRecv::Empty); // one sender left
        c.drop_sender();
        assert_eq!(c.try_recv(), TryRecv::Disconnected);
    }

    #[test]
    fn closed_receiver_fails_sends() {
        let mut c = Chan::bounded(1, 1);
        c.drop_receiver();
        assert_eq!(c.try_send(7), TrySend::Closed);
    }

    #[test]
    fn gate_requires_all_arrivals() {
        let mut g = Gate::new(3);
        assert!(!g.ready());
        g.arrive();
        g.arrive();
        assert!(!g.ready());
        g.arrive();
        assert!(g.ready());
    }

    #[test]
    fn reorder_releases_in_seq_order_only() {
        let mut r = Reorder::new(0);
        assert!(r.insert(2, "c"));
        assert!(r.insert(1, "b"));
        assert_eq!(r.pop_next(), None); // 0 missing
        assert!(r.insert(0, "a"));
        assert_eq!(r.pop_next(), Some("a"));
        assert_eq!(r.pop_next(), Some("b"));
        assert_eq!(r.pop_next(), Some("c"));
        assert_eq!(r.pop_next(), None);
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn reorder_flags_stale_and_duplicate_tags() {
        let mut r = Reorder::new(0);
        assert!(r.insert(0, 10));
        assert!(!r.insert(0, 11), "duplicate pending tag");
        assert_eq!(r.pop_next(), Some(10));
        assert!(!r.insert(0, 12), "stale tag after release");
    }
}
