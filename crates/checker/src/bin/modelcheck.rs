#![forbid(unsafe_code)]
//! The checker suite as a CI gate: explores every model clean, re-proves
//! the mutation gate, prints the interleaving counts, and exits non-zero
//! on any violation or coverage shortfall.
//!
//! ```text
//! cargo run --release -p checker --bin modelcheck
//! ```

use checker::models::{
    ErrBug, ErrModel, FaultAt, PoolBug, PoolModel, RingBug, RingModel, ShardBug, ShardModel,
};
use checker::sched::{Explorer, Model, Report};
use std::process::ExitCode;

/// Acceptance floor: distinct interleavings per clean model at width ≥ 2.
const MIN_INTERLEAVINGS: usize = 1000;

fn explore_clean<M: Model>(name: &str, model: &M, ex: &Explorer, ok: &mut bool) -> Report {
    let report = ex.explore(model);
    match &report.violation {
        None => {
            let floor = if report.interleavings >= MIN_INTERLEAVINGS {
                "ok"
            } else {
                *ok = false;
                "BELOW FLOOR"
            };
            println!(
                "  {name:<28} {:>8} interleavings  {:>8} states  depth {:>3}  [{floor}]",
                report.interleavings, report.states, report.max_depth
            );
        }
        Some(v) => {
            *ok = false;
            println!("  {name:<28} VIOLATION: {}", v.message);
            println!("    schedule: {:?}", v.schedule);
        }
    }
    report
}

fn expect_caught<M: Model>(name: &str, model: &M, ex: &Explorer, ok: &mut bool) {
    let report = ex.explore(model);
    match &report.violation {
        Some(v) => println!(
            "  {name:<28} caught after {:>6} interleavings: {}",
            report.interleavings,
            v.message.lines().next().unwrap_or("")
        ),
        None => {
            *ok = false;
            println!(
                "  {name:<28} NOT CAUGHT in {} interleavings — the checker is broken",
                report.interleavings
            );
        }
    }
}

fn main() -> ExitCode {
    let ex = Explorer::with_preemptions(3);
    // The ring model has more threads (reader + workers + consumer), so
    // 3 preemptions already yield tens of thousands of schedules; the
    // flatter shard/pool models need a deeper budget to reach the same
    // coverage floor.
    let ex6 = Explorer::with_preemptions(6);
    // Width-2 shard is the flattest model of all (two gated workers whose
    // merger only runs after both join): its schedule count is the binomial
    // C(2n, n) over the workers' step counts, so it needs the longest runs
    // and the deepest budget to clear the floor.
    let ex8 = Explorer::with_preemptions(8);
    let mut ok = true;

    println!("model checker: exhaustive bounded-preemption exploration");
    println!("clean models (must pass every schedule, ≥ {MIN_INTERLEAVINGS} interleavings):");
    explore_clean(
        "ring  w=2 chunks=3  p=3",
        &RingModel::new(2, 3),
        &ex,
        &mut ok,
    );
    explore_clean(
        "ring  w=3 chunks=2  p=3",
        &RingModel::new(3, 2),
        &ex,
        &mut ok,
    );
    explore_clean(
        "shard w=2 items=6   p=8",
        &ShardModel::new(2, 6),
        &ex8,
        &mut ok,
    );
    explore_clean(
        "shard w=3 items=2   p=6",
        &ShardModel::new(3, 2),
        &ex6,
        &mut ok,
    );
    explore_clean(
        "pool  w=2 cycles=2  p=6",
        &PoolModel::new(2, 2),
        &ex6,
        &mut ok,
    );
    explore_clean(
        "pool  w=3 cycles=2  p=3",
        &PoolModel::new(3, 2),
        &ex,
        &mut ok,
    );
    // The error-path model sweeps every fault placement: each must
    // terminate, drain and report deterministically on every schedule.
    explore_clean(
        "errs  w=2 healthy   p=3",
        &ErrModel::new(2, 3, FaultAt::None),
        &ex,
        &mut ok,
    );
    explore_clean(
        "errs  w=2 reader@1  p=3",
        &ErrModel::new(2, 3, FaultAt::Reader { after: 1 }),
        &ex,
        &mut ok,
    );
    explore_clean(
        "errs  w=2 worker@1  p=3",
        &ErrModel::new(2, 3, FaultAt::Worker { on_seq: 1 }),
        &ex,
        &mut ok,
    );
    explore_clean(
        "errs  w=2 worker@3  p=3",
        &ErrModel::new(2, 3, FaultAt::Worker { on_seq: 3 }),
        &ex,
        &mut ok,
    );
    explore_clean(
        "errs  w=2 cancel@2  p=3",
        &ErrModel::new(2, 3, FaultAt::ConsumerCancel { after_folds: 2 }),
        &ex,
        &mut ok,
    );

    println!("mutation gate (each seeded bug must be caught):");
    expect_caught(
        "ring/LoseChunk",
        &RingModel::with_bug(2, 3, RingBug::LoseChunk(2)),
        &ex,
        &mut ok,
    );
    expect_caught(
        "ring/ReuseSeq",
        &RingModel::with_bug(2, 3, RingBug::ReuseSeq(1)),
        &ex,
        &mut ok,
    );
    expect_caught(
        "ring/FoldArrivalOrder",
        &RingModel::with_bug(2, 3, RingBug::FoldArrivalOrder),
        &ex,
        &mut ok,
    );
    expect_caught(
        "shard/MergeBeforeJoin",
        &ShardModel::with_bug(2, 2, ShardBug::MergeBeforeJoin),
        &ex,
        &mut ok,
    );
    expect_caught(
        "shard/SharedShard",
        &ShardModel::with_bug(2, 2, ShardBug::SharedShard),
        &ex,
        &mut ok,
    );
    expect_caught(
        "pool/EarlyRecycle",
        &PoolModel::with_bug(2, 2, PoolBug::EarlyRecycle),
        &ex,
        &mut ok,
    );
    expect_caught(
        "pool/DoubleRecycle",
        &PoolModel::with_bug(2, 2, PoolBug::DoubleRecycle),
        &ex,
        &mut ok,
    );
    expect_caught(
        "pool/SkipClear",
        &PoolModel::with_bug(2, 2, PoolBug::SkipClear),
        &ex,
        &mut ok,
    );
    expect_caught(
        "errs/FoldAfterError",
        &ErrModel::with_bug(2, 3, FaultAt::Worker { on_seq: 1 }, ErrBug::FoldAfterError),
        &ex,
        &mut ok,
    );
    expect_caught(
        "errs/LeakCanvasOnError",
        &ErrModel::with_bug(
            2,
            2,
            FaultAt::Worker { on_seq: 1 },
            ErrBug::LeakCanvasOnError,
        ),
        &ex,
        &mut ok,
    );
    expect_caught(
        "errs/SwallowError",
        &ErrModel::with_bug(2, 3, FaultAt::Reader { after: 1 }, ErrBug::SwallowError),
        &ex,
        &mut ok,
    );
    expect_caught(
        "errs/NoUnblock",
        &ErrModel::with_bug(2, 7, FaultAt::Worker { on_seq: 1 }, ErrBug::NoUnblock),
        &ex,
        &mut ok,
    );

    if ok {
        println!("modelcheck: PASS");
        ExitCode::SUCCESS
    } else {
        println!("modelcheck: FAIL");
        ExitCode::FAILURE
    }
}
