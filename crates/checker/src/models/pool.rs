//! Model of `FboPool` recycle/reuse (`raster-gpu/framebuffer.rs`).
//!
//! Production shape: the prepared executor shared by the streaming pool's
//! workers owns one `FboPool`; each worker `acquire`s a canvas (recycled
//! off the free list and cleared, or freshly allocated), blends into it
//! with exclusive ownership, and `release`s it back. The free-list lock
//! guards only the list — never the pixels — so the safety story is
//! entirely the acquire/release discipline:
//!
//! * a canvas on the free list is owned by **nobody** (no double-recycle);
//! * an acquired canvas is owned by **exactly one** worker until released
//!   (no aliased canvas);
//! * an acquired canvas is always **cleared** (no stale fragments).
//!
//! Every invariant is checked after every step, so the explorer reports
//! the exact interleaving in which a seeded [`PoolBug`] first aliases or
//! dirties a canvas.

use crate::sched::{Model, Step};
use std::collections::BTreeMap;

/// Which seeded bug, if any, to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolBug {
    /// Faithful model of acquire → blend → release.
    #[default]
    None,
    /// Worker 0 releases its canvas *before* its last blend (the "early
    /// recycle"): another worker may acquire it and the two then alias.
    EarlyRecycle,
    /// Worker 0 releases the same canvas twice (the "double recycle"):
    /// the free list aliases, and two later acquires hand out one canvas.
    DoubleRecycle,
    /// `acquire` skips the clear on recycled canvases: stale fragments
    /// from the previous owner leak into the next chunk's blend.
    SkipClear,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerPhase {
    /// Acquire a canvas for the next chunk (`cycles_left` chunks remain).
    Acquire,
    /// Blend `blends_left` fragments into the held canvas.
    Blend {
        blends_left: u32,
    },
    /// Return the held canvas to the free list.
    Release,
    /// Seeded-bug epilogues: one more blend / one more release after the
    /// real release.
    RogueBlend {
        canvas: u32,
    },
    RogueRelease {
        canvas: u32,
    },
    Finished,
}

#[derive(Debug, Clone)]
pub struct PoolModel {
    bug: PoolBug,
    /// The pool free list (LIFO, like `Vec::push`/`swap_remove`).
    free: Vec<u32>,
    /// Next fresh canvas id (`PointFbo::new` when the free list misses).
    next_id: u32,
    /// Canvas → owning worker, for every acquired canvas.
    owner: BTreeMap<u32, usize>,
    /// Canvases holding un-cleared fragments.
    dirty: Vec<u32>,
    workers: Vec<(WorkerPhase, Option<u32>, u32)>, // (phase, held, cycles_left)
    /// First invariant violation observed by any step.
    fault: Option<String>,
    /// Total blends that landed on a canvas while it was exclusively
    /// owned and clean at acquire — the conserved quantity.
    good_blends: u64,
    expected_blends: u64,
}

const BLENDS_PER_CHUNK: u32 = 2;

impl PoolModel {
    pub fn new(workers: usize, cycles: u32) -> Self {
        Self::with_bug(workers, cycles, PoolBug::None)
    }

    pub fn with_bug(workers: usize, cycles: u32, bug: PoolBug) -> Self {
        assert!(workers >= 1 && cycles >= 1);
        PoolModel {
            bug,
            free: Vec::new(),
            next_id: 0,
            owner: BTreeMap::new(),
            dirty: Vec::new(),
            workers: vec![(WorkerPhase::Acquire, None, cycles); workers],
            fault: None,
            good_blends: 0,
            expected_blends: workers as u64 * cycles as u64 * BLENDS_PER_CHUNK as u64,
        }
    }

    fn acquire(&mut self, w: usize) -> u32 {
        let id = match self.free.pop() {
            Some(id) => {
                // `FboPool::acquire` clears recycled canvases before
                // handing them out (the SkipClear bug forgets to).
                if self.bug != PoolBug::SkipClear {
                    self.dirty.retain(|&d| d != id);
                }
                id
            }
            None => {
                let id = self.next_id;
                self.next_id += 1;
                id
            }
        };
        if let Some(&other) = self.owner.get(&id) {
            self.fault = Some(format!(
                "aliased canvas: worker {w} acquired canvas {id} still owned by worker {other}"
            ));
        }
        if self.dirty.contains(&id) {
            self.fault = Some(format!(
                "dirty reuse: worker {w} acquired canvas {id} with stale fragments"
            ));
        }
        self.owner.insert(id, w);
        id
    }

    fn blend(&mut self, w: usize, canvas: u32) {
        match self.owner.get(&canvas) {
            Some(&o) if o == w => {
                self.dirty.push(canvas);
                self.good_blends += 1;
            }
            Some(&o) => {
                self.fault = Some(format!(
                    "aliased blend: worker {w} wrote canvas {canvas} owned by worker {o}"
                ));
            }
            None => {
                // A blend into a free-listed canvas: latent corruption —
                // the next acquirer's clear may erase it, or it leaks.
                self.fault = Some(format!(
                    "use-after-release: worker {w} wrote canvas {canvas} it no longer owns"
                ));
            }
        }
    }

    fn release(&mut self, w: usize, canvas: u32) {
        if self.free.contains(&canvas) {
            self.fault = Some(format!(
                "double recycle: canvas {canvas} pushed to the free list twice by worker {w}"
            ));
            return;
        }
        self.owner.remove(&canvas);
        self.free.push(canvas);
    }

    fn step_worker(&mut self, w: usize) -> Step {
        let (phase, held, cycles_left) = self.workers[w];
        match phase {
            WorkerPhase::Acquire => {
                let id = self.acquire(w);
                self.workers[w] = (
                    WorkerPhase::Blend {
                        blends_left: BLENDS_PER_CHUNK,
                    },
                    Some(id),
                    cycles_left,
                );
                Step::Ran
            }
            WorkerPhase::Blend { blends_left } => {
                let canvas = held.expect("blend without a held canvas");
                // The early-recycle bug releases before the final blend.
                if self.bug == PoolBug::EarlyRecycle && w == 0 && blends_left == 1 {
                    self.release(w, canvas);
                    self.workers[w] = (WorkerPhase::RogueBlend { canvas }, None, cycles_left);
                    return Step::Ran;
                }
                self.blend(w, canvas);
                self.workers[w] = if blends_left == 1 {
                    (WorkerPhase::Release, held, cycles_left)
                } else {
                    (
                        WorkerPhase::Blend {
                            blends_left: blends_left - 1,
                        },
                        held,
                        cycles_left,
                    )
                };
                Step::Ran
            }
            WorkerPhase::Release => {
                let canvas = held.expect("release without a held canvas");
                self.release(w, canvas);
                let next = if self.bug == PoolBug::DoubleRecycle && w == 0 {
                    WorkerPhase::RogueRelease { canvas }
                } else if cycles_left > 1 {
                    WorkerPhase::Acquire
                } else {
                    WorkerPhase::Finished
                };
                self.workers[w] = (next, None, cycles_left.saturating_sub(1).max(1));
                Step::Ran
            }
            WorkerPhase::RogueBlend { canvas } => {
                // The blend the early recycle left dangling.
                self.blend(w, canvas);
                let next = if cycles_left > 1 {
                    WorkerPhase::Acquire
                } else {
                    WorkerPhase::Finished
                };
                self.workers[w] = (next, None, cycles_left.saturating_sub(1).max(1));
                Step::Ran
            }
            WorkerPhase::RogueRelease { canvas } => {
                self.release(w, canvas);
                self.workers[w] = (WorkerPhase::Finished, None, 1);
                Step::Ran
            }
            WorkerPhase::Finished => Step::Done,
        }
    }
}

impl Model for PoolModel {
    fn threads(&self) -> usize {
        self.workers.len()
    }

    fn step(&mut self, tid: usize) -> Step {
        self.step_worker(tid)
    }

    fn check_step(&self) -> Result<(), String> {
        if let Some(f) = &self.fault {
            return Err(f.clone());
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        if let Some(f) = &self.fault {
            return Err(f.clone());
        }
        if self.bug == PoolBug::None && self.good_blends != self.expected_blends {
            return Err(format!(
                "blend conservation: {} of {} fragments landed exclusively",
                self.good_blends, self.expected_blends
            ));
        }
        // Every canvas must be back on the free list, owned by nobody.
        if !self.owner.is_empty() {
            return Err(format!("canvases never released: {:?}", self.owner));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{finish, Explorer};

    #[test]
    fn sequential_run_recycles_cleanly() {
        let mut m = PoolModel::new(2, 2);
        assert!(finish(&mut m).is_ok());
        // One worker finishing releases before the other acquires at most
        // 2 canvases; sequential round-robin interleaves acquire/release
        // so allocation count stays ≤ workers.
        assert!(m.next_id <= 2);
    }

    #[test]
    fn clean_model_survives_exhaustive_width_two() {
        let report = Explorer::with_preemptions(4).explore(&PoolModel::new(2, 2));
        report.assert_clean("pool w=2");
        assert!(report.interleavings > 0);
    }
}
