//! Model of the streaming pool's **first-error shutdown** protocol.
//!
//! Mirrors the hardened error paths of `StreamingRasterJoin::execute`'s
//! pool arm (`stream.rs`): the reader can fail (I/O error or contained
//! panic) by enqueueing `(seq, Err)` and stopping; a worker can fail by
//! publishing an `Err` under its claimed sequence tag (containment
//! guarantees *something* is always published — a worker that dies
//! silently would wedge the reorder buffer); the consumer folds strictly
//! ascending until the first error pops, then shuts the pipeline down by
//! dropping the result receiver and its ring handle so every other
//! thread unblocks and exits.
//!
//! # Checked invariants
//!
//! * **always terminates** — no fault placement may deadlock the
//!   pipeline (the explorer reports any stuck state);
//! * **error wins over partial results** — nothing folds after the first
//!   error pops, and an injected error is always reported (a scan that
//!   swallows one would serve a silent partial aggregate);
//! * **deterministic error prefix** — what *did* fold before the error
//!   is exactly chunks `0..err_seq`, the same prefix every schedule;
//! * **canvas accounting** — every canvas acquired by a worker is
//!   released by shutdown, even on the error paths;
//! * **chunk conservation** — every chunk the reader fetched is folded,
//!   discarded by the shutdown, or still accounted in a buffer: none
//!   vanish.
//!
//! # Seeded bugs (mutation gate)
//!
//! [`ErrBug`] variants re-introduce the error-path bugs this model
//! exists to block; `tests/mutation_gate.rs` proves each one dies.

use crate::sched::{Model, Step};
use crate::shim::{Chan, Reorder, TryRecv, TrySend};

/// Where the injected fault strikes (the model-level `RJ_FAULTS` spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAt {
    /// Healthy run — the clean baseline.
    #[default]
    None,
    /// The reader fails after fetching `after` chunks: it enqueues
    /// `(after + 1, Err)` and stops, like a read error or a contained
    /// reader panic.
    Reader { after: u64 },
    /// The worker that claims sequence `on_seq` fails mid-join: its
    /// contained decode+join yields an `Err` result, still published
    /// under the claimed tag.
    Worker { on_seq: u64 },
    /// The consumer abandons the scan after `after_folds` folds
    /// (downstream cancellation) and runs the same shutdown.
    ConsumerCancel { after_folds: usize },
}

/// Which seeded bug, if any, to inject into the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrBug {
    /// Faithful model of the production shutdown.
    #[default]
    None,
    /// The consumer keeps folding results that pop after the first
    /// error (the `while first_err.is_none()` guard dropped): partial
    /// results win over the error.
    FoldAfterError,
    /// A failing worker skips its canvas release on the error path.
    LeakCanvasOnError,
    /// A worker drops an `Err` stolen off the ring instead of
    /// forwarding it: the scan ends clean-but-short — a silent partial
    /// aggregate reported as success.
    SwallowError,
    /// The consumer's shutdown forgets to drop its ring handle, so the
    /// ring never closes and a reader blocked on a full ring never
    /// unblocks: the scan hangs.
    NoUnblock,
}

/// A result travelling the pipeline: chunk id, or the injected error.
type ChunkRes = Result<u64, ()>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    /// Waiting to steal the next fetched chunk off the ring.
    Steal,
    /// Holding a finished (or failed) chunk, about to publish it.
    /// `canvas` marks whether this result holds a pool canvas (a stolen
    /// `Ok` chunk being joined — forwarded reader errors never do).
    Publish {
        seq: u64,
        res: ChunkRes,
        canvas: bool,
    },
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConsumerState {
    /// Joining the sample chunk (seq 0) on the consumer thread.
    Sample,
    /// Popping the reorder buffer / receiving results.
    Drain,
    /// Shutdown step 1: drop the result receiver (fails worker sends).
    DropResults,
    /// Shutdown step 2: drop this thread's ring handle (with the
    /// workers' handles gone, the reader's sends then fail too).
    DropRing,
    /// Waiting for the reader and every worker to finish (scope join).
    Join,
    Finished,
}

#[derive(Debug, Clone)]
pub struct ErrModel {
    workers: usize,
    chunks: u64,
    fault: FaultAt,
    bug: ErrBug,

    /// The bounded work ring, `(seq, chunk result)` tagged.
    work: Chan<(u64, ChunkRes)>,
    /// Live handles on the shared ring receiver (workers + consumer);
    /// the ring closes for the reader when the last one drops.
    ring_handles: usize,
    /// The unbounded result channel.
    results: Chan<(u64, ChunkRes)>,

    next_fetch: u64,
    next_seq: u64,
    reader_finished: bool,
    /// Ok chunks the reader successfully enqueued.
    sent_ok: u64,
    /// The reader enqueued its injected error.
    sent_err: bool,

    worker_states: Vec<WorkerState>,
    /// Canvases acquired by workers and not yet released.
    canvases: usize,
    /// Ok chunks a worker discarded because the consumer had already
    /// shut the result channel.
    discarded_ok: u64,
    /// Ok chunks consumed by the injected worker fault (fetched healthy,
    /// published as the error).
    failed_ok: u64,
    /// A worker-side injected error was published.
    worker_errored: bool,

    consumer: ConsumerState,
    reorder: Reorder<ChunkRes>,
    /// Chunk ids in fold order — the observable output.
    pub folded: Vec<u64>,
    /// The first error popped in order, i.e. what `execute` returns.
    pub first_err: bool,
    /// The consumer cancelled deliberately (its return value is the
    /// cancellation, so a discarded in-flight error is acceptable).
    cancelled: bool,
    fold_after_error: bool,
    tag_collision: bool,
}

impl ErrModel {
    /// `workers` pool workers joining `chunks` streamed chunks (plus the
    /// consumer's sample chunk 0) under `fault`. Ring capacity is
    /// `workers + 1`, the production floor.
    pub fn new(workers: usize, chunks: u64, fault: FaultAt) -> Self {
        Self::with_bug(workers, chunks, fault, ErrBug::None)
    }

    pub fn with_bug(workers: usize, chunks: u64, fault: FaultAt, bug: ErrBug) -> Self {
        assert!(workers >= 1 && chunks >= 1);
        match fault {
            FaultAt::Reader { after } => assert!(after < chunks, "reader fault after EOF"),
            FaultAt::Worker { on_seq } => {
                assert!((1..=chunks).contains(&on_seq), "worker fault off the scan")
            }
            FaultAt::ConsumerCancel { after_folds } => assert!(after_folds >= 1),
            FaultAt::None => {}
        }
        ErrModel {
            workers,
            chunks,
            fault,
            bug,
            work: Chan::bounded(workers + 1, 1),
            ring_handles: workers + 1,
            results: Chan::unbounded(workers),
            next_fetch: 1,
            next_seq: 1,
            reader_finished: false,
            sent_ok: 0,
            sent_err: false,
            worker_states: vec![WorkerState::Steal; workers],
            canvases: 0,
            discarded_ok: 0,
            failed_ok: 0,
            worker_errored: false,
            consumer: ConsumerState::Sample,
            reorder: Reorder::new(0),
            folded: Vec::new(),
            first_err: false,
            cancelled: false,
            fold_after_error: false,
            tag_collision: false,
        }
    }

    fn consumer_tid(&self) -> usize {
        self.workers + 1
    }

    /// One ring-receiver handle goes away; the last one closes the ring.
    fn drop_ring_handle(&mut self) {
        debug_assert!(self.ring_handles > 0, "ring handle underflow");
        self.ring_handles -= 1;
        if self.ring_handles == 0 {
            self.work.drop_receiver();
        }
    }

    /// The sequence the injected error travels under, if any.
    fn err_seq(&self) -> Option<u64> {
        match self.fault {
            FaultAt::Reader { after } => Some(after + 1),
            FaultAt::Worker { on_seq } => Some(on_seq),
            _ => None,
        }
    }

    fn fold(&mut self, chunk: u64) {
        if self.first_err {
            self.fold_after_error = true;
        }
        self.folded.push(chunk);
    }

    fn reader_finish(&mut self) {
        self.work.drop_sender();
        self.reader_finished = true;
    }

    fn step_reader(&mut self) -> Step {
        if self.reader_finished {
            return Step::Done;
        }
        // The injected reader fault strikes *before* the fetch of chunk
        // `after + 1`, exactly like a failpoint at the top of the fetch
        // loop.
        if let FaultAt::Reader { after } = self.fault {
            if self.next_fetch > after {
                match self.work.try_send((self.next_seq, Err(()))) {
                    TrySend::Sent => self.sent_err = true,
                    TrySend::Full => return Step::Blocked,
                    TrySend::Closed => {}
                }
                self.reader_finish();
                return Step::Ran;
            }
        }
        if self.next_fetch > self.chunks {
            // EOF: drop the ring sender (the reader thread returns).
            self.reader_finish();
            return Step::Ran;
        }
        match self.work.try_send((self.next_seq, Ok(self.next_fetch))) {
            TrySend::Sent => {
                self.sent_ok += 1;
                self.next_fetch += 1;
                self.next_seq += 1;
                Step::Ran
            }
            TrySend::Full => Step::Blocked,
            TrySend::Closed => {
                // Pool shut down under the reader; it exits quietly.
                self.reader_finish();
                Step::Ran
            }
        }
    }

    fn worker_finish(&mut self, w: usize) {
        self.results.drop_sender();
        self.drop_ring_handle();
        self.worker_states[w] = WorkerState::Finished;
    }

    fn step_worker(&mut self, w: usize) -> Step {
        match self.worker_states[w] {
            WorkerState::Steal => match self.work.try_recv() {
                TryRecv::Got((seq, Ok(chunk))) => {
                    // Decode + join: the worker acquires a canvas. The
                    // injected worker fault fails this seq's join; the
                    // contained panic still publishes under the tag.
                    self.canvases += 1;
                    let res = if self.fault == (FaultAt::Worker { on_seq: seq }) {
                        self.worker_errored = true;
                        self.failed_ok += 1;
                        Err(())
                    } else {
                        Ok(chunk)
                    };
                    self.worker_states[w] = WorkerState::Publish {
                        seq,
                        res,
                        canvas: true,
                    };
                    Step::Ran
                }
                TryRecv::Got((seq, Err(()))) => {
                    if self.bug == ErrBug::SwallowError {
                        // Seeded bug: the error is dropped on the floor.
                        return Step::Ran;
                    }
                    self.worker_states[w] = WorkerState::Publish {
                        seq,
                        res: Err(()),
                        canvas: false,
                    };
                    Step::Ran
                }
                TryRecv::Empty => Step::Blocked,
                TryRecv::Disconnected => {
                    self.worker_finish(w);
                    Step::Ran
                }
            },
            WorkerState::Publish { seq, res, canvas } => {
                // Release the canvas at publish — on the error path too,
                // unless the seeded leak bug is armed.
                if canvas && !(res.is_err() && self.bug == ErrBug::LeakCanvasOnError) {
                    debug_assert!(self.canvases > 0);
                    self.canvases -= 1;
                }
                match self.results.try_send((seq, res)) {
                    TrySend::Sent => {
                        self.worker_states[w] = WorkerState::Steal;
                        Step::Ran
                    }
                    TrySend::Full => unreachable!("result channel is unbounded"),
                    TrySend::Closed => {
                        // Consumer already shut down: the result (and an
                        // in-flight error, when the consumer cancelled)
                        // is deliberately discarded; the worker exits.
                        if res.is_ok() {
                            self.discarded_ok += 1;
                        }
                        self.worker_finish(w);
                        Step::Ran
                    }
                }
            }
            WorkerState::Finished => Step::Done,
        }
    }

    fn step_consumer(&mut self) -> Step {
        match self.consumer {
            ConsumerState::Sample => {
                // The sample chunk is seq 0, joined on the consumer
                // thread while the pool already runs behind it.
                self.fold(0);
                let _ = self.reorder.insert(0, Ok(0));
                let _ = self.reorder.pop_next(); // advance past seq 0
                self.consumer = ConsumerState::Drain;
                Step::Ran
            }
            ConsumerState::Drain => {
                let cancel_hit = matches!(
                    self.fault,
                    FaultAt::ConsumerCancel { after_folds } if self.folded.len() >= after_folds
                );
                let err_shutdown = self.first_err && self.bug != ErrBug::FoldAfterError;
                if err_shutdown || cancel_hit {
                    self.cancelled = cancel_hit && !self.first_err;
                    self.consumer = ConsumerState::DropResults;
                    return Step::Ran;
                }
                if let Some(res) = self.reorder.pop_next() {
                    match res {
                        Ok(chunk) => self.fold(chunk),
                        Err(()) => self.first_err = true,
                    }
                    return Step::Ran;
                }
                match self.results.try_recv() {
                    TryRecv::Got((seq, res)) => {
                        if !self.reorder.insert(seq, res) {
                            self.tag_collision = true;
                        }
                        Step::Ran
                    }
                    TryRecv::Empty => Step::Blocked,
                    TryRecv::Disconnected => {
                        self.consumer = ConsumerState::DropResults;
                        Step::Ran
                    }
                }
            }
            ConsumerState::DropResults => {
                self.results.drop_receiver();
                self.consumer = ConsumerState::DropRing;
                Step::Ran
            }
            ConsumerState::DropRing => {
                if self.bug != ErrBug::NoUnblock {
                    self.drop_ring_handle();
                }
                self.consumer = ConsumerState::Join;
                Step::Ran
            }
            ConsumerState::Join => {
                // The scope join: the consumer leaves only after the
                // reader and every worker returned — a shutdown that
                // cannot unblock them shows up here as a deadlock.
                let workers_done = self
                    .worker_states
                    .iter()
                    .all(|s| *s == WorkerState::Finished);
                if self.reader_finished && workers_done {
                    self.consumer = ConsumerState::Finished;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            ConsumerState::Finished => Step::Done,
        }
    }

    /// Ok chunks still buffered anywhere when the system halted.
    fn stranded_ok(&self) -> u64 {
        let in_ring = self.work.buffered().filter(|(_, r)| r.is_ok()).count();
        let in_results = self.results.buffered().filter(|(_, r)| r.is_ok()).count();
        let in_reorder = self.reorder.pending_values().filter(|r| r.is_ok()).count();
        (in_ring + in_results + in_reorder) as u64
    }
}

impl Model for ErrModel {
    fn threads(&self) -> usize {
        self.workers + 2
    }

    fn step(&mut self, tid: usize) -> Step {
        if tid == 0 {
            self.step_reader()
        } else if tid == self.consumer_tid() {
            self.step_consumer()
        } else {
            self.step_worker(tid - 1)
        }
    }

    fn check_step(&self) -> Result<(), String> {
        if self.tag_collision {
            return Err("sequence tag collision on the error path".into());
        }
        if self.fold_after_error {
            return Err(
                "folded a chunk after the first error popped: the error must win \
                 over partial results"
                    .into(),
            );
        }
        if self.folded.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!(
                "out-of-order fold during shutdown: {:?}",
                self.folded
            ));
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        if self.canvases != 0 {
            return Err(format!(
                "{} canvas(es) never returned to the pool after shutdown",
                self.canvases
            ));
        }
        // An injected error must be reported — unless the consumer
        // cancelled first, in which case the cancellation is the result.
        let injected = self.sent_err || self.worker_errored;
        if injected && !self.first_err && !self.cancelled {
            return Err(
                "injected error swallowed: the scan completed as if healthy \
                 (silent partial aggregate)"
                    .into(),
            );
        }
        // The fold is the exact deterministic prefix: everything before
        // the error (or the cancellation point), nothing after.
        let expect: Vec<u64> = match self.fault {
            FaultAt::None => (0..=self.chunks).collect(),
            FaultAt::Reader { .. } | FaultAt::Worker { .. } => {
                (0..self.err_seq().unwrap()).collect()
            }
            FaultAt::ConsumerCancel { after_folds } => {
                (0..(after_folds as u64).min(self.chunks + 1)).collect()
            }
        };
        if self.folded != expect {
            return Err(format!(
                "non-deterministic shutdown fold: folded {:?}, expected {:?}",
                self.folded, expect
            ));
        }
        // Chunk conservation: every fetched chunk is folded, discarded
        // by the shutdown, or still sitting in an audited buffer.
        let folded_streamed = (self.folded.len() as u64).saturating_sub(1); // minus sample
        let accounted = folded_streamed + self.discarded_ok + self.failed_ok + self.stranded_ok();
        if accounted != self.sent_ok {
            return Err(format!(
                "chunk conservation broken: reader sent {} Ok chunk(s), \
                 accounted for {accounted}",
                self.sent_ok
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{finish, Explorer};

    #[test]
    fn healthy_width_one_folds_everything() {
        let mut m = ErrModel::new(1, 3, FaultAt::None);
        assert!(finish(&mut m).is_ok());
        assert_eq!(m.folded, vec![0, 1, 2, 3]);
        assert!(!m.first_err);
    }

    #[test]
    fn reader_error_folds_the_exact_prefix_and_reports() {
        let mut m = ErrModel::new(1, 3, FaultAt::Reader { after: 1 });
        assert!(finish(&mut m).is_ok());
        assert_eq!(m.folded, vec![0, 1]);
        assert!(m.first_err);
    }

    #[test]
    fn worker_error_folds_the_exact_prefix_and_reports() {
        let mut m = ErrModel::new(1, 3, FaultAt::Worker { on_seq: 2 });
        assert!(finish(&mut m).is_ok());
        assert_eq!(m.folded, vec![0, 1]);
        assert!(m.first_err);
    }

    #[test]
    fn every_fault_placement_survives_exhaustive_width_two() {
        let ex = Explorer::with_preemptions(3);
        for fault in [
            FaultAt::None,
            FaultAt::Reader { after: 1 },
            FaultAt::Worker { on_seq: 1 },
            FaultAt::Worker { on_seq: 3 },
            FaultAt::ConsumerCancel { after_folds: 2 },
        ] {
            ex.explore(&ErrModel::new(2, 3, fault))
                .assert_clean(&format!("err model under {fault:?}"));
        }
    }

    #[test]
    fn the_unblock_bug_deadlocks_and_is_caught() {
        let report = Explorer::with_preemptions(3).explore(&ErrModel::with_bug(
            2,
            7,
            FaultAt::Worker { on_seq: 1 },
            ErrBug::NoUnblock,
        ));
        let v = report.violation.expect("NoUnblock must be caught");
        assert!(v.message.contains("deadlock"), "{}", v.message);
    }
}
