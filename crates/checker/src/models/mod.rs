//! Small models of the streaming pool's core state machines.
//!
//! Each model is deliberately tiny — a handful of chunks, two to four
//! workers — because bounded-preemption exploration is exponential in
//! steps, and every real bug in these protocols already manifests at
//! width 2–4. The models mirror the production code's *structure*
//! (same channels, same buffers, same ownership discipline), not its
//! data: a chunk is a sequence number, a canvas is an id, a fragment is
//! an increment.

pub mod errors;
pub mod pool;
pub mod ring;
pub mod shard;

pub use errors::{ErrBug, ErrModel, FaultAt};
pub use pool::{PoolBug, PoolModel};
pub use ring::{RingBug, RingModel};
pub use shard::{ShardBug, ShardModel};
