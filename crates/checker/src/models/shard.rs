//! Model of `ShardSet` accumulation + merge (`raster-gpu/framebuffer.rs`).
//!
//! Production shape: each scoped worker owns a private (non-atomic)
//! count buffer — its *shard* — and blends its contiguous slice of the
//! binned entries into it with plain `+=`. The scope join is the only
//! synchronization: `merge_into` runs strictly after every worker has
//! returned, folding all shards into the canonical `PointFbo`.
//!
//! The model checks the two load-bearing properties:
//!
//! * **conservation** — the merged total equals the number of accumulated
//!   entries (no fragment lost or double-counted);
//! * **the join is what makes it safe** — the seeded bugs re-create a
//!   merge that races accumulation ([`ShardBug::MergeBeforeJoin`]) and
//!   workers sharing one shard with a torn read-modify-write
//!   ([`ShardBug::SharedShard`]); the explorer must find schedules where
//!   each loses updates.

use crate::sched::{Model, Step};
use crate::shim::{AtomicShim, Gate};

/// Which seeded bug, if any, to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBug {
    /// Faithful model: private shards, merge gated on the scope join.
    #[default]
    None,
    /// The merger ignores the scope join and may interleave with the
    /// workers' accumulation, losing late increments.
    MergeBeforeJoin,
    /// All workers accumulate into shard 0 with a two-step (load, store)
    /// RMW — the classic lost-update race `ShardSet` exists to avoid.
    SharedShard,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerPhase {
    /// `items_left` increments remain; `loaded` stages the torn RMW.
    Accumulate {
        items_left: u32,
        loaded: Option<u64>,
    },
    /// Arrived at the scope join.
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergerPhase {
    /// Waiting on the scope join ([`Gate`]).
    WaitJoin,
    /// Folding shard `next` into the canonical total.
    Merge {
        next: usize,
    },
    Finished,
}

#[derive(Debug, Clone)]
pub struct ShardModel {
    bug: ShardBug,
    items_per_worker: u32,
    /// One private counter per worker (a 1-pixel canvas per shard — the
    /// smallest state that exhibits every race).
    shards: Vec<AtomicShim>,
    join: Gate,
    workers: Vec<WorkerPhase>,
    merger: MergerPhase,
    /// The canonical FBO total after merge.
    merged_total: u64,
}

impl ShardModel {
    pub fn new(workers: usize, items_per_worker: u32) -> Self {
        Self::with_bug(workers, items_per_worker, ShardBug::None)
    }

    pub fn with_bug(workers: usize, items_per_worker: u32, bug: ShardBug) -> Self {
        assert!(workers >= 1);
        ShardModel {
            bug,
            items_per_worker,
            shards: vec![AtomicShim::default(); workers],
            join: Gate::new(workers),
            workers: vec![
                WorkerPhase::Accumulate {
                    items_left: items_per_worker,
                    loaded: None
                };
                workers
            ],
            merger: MergerPhase::WaitJoin,
            merged_total: 0,
        }
    }

    fn shard_of(&self, w: usize) -> usize {
        match self.bug {
            // Seeded bug: every worker hammers shard 0.
            ShardBug::SharedShard => 0,
            _ => w,
        }
    }

    fn step_worker(&mut self, w: usize) -> Step {
        match self.workers[w] {
            WorkerPhase::Accumulate { items_left: 0, .. } => {
                self.join.arrive();
                self.workers[w] = WorkerPhase::Finished;
                Step::Ran
            }
            WorkerPhase::Accumulate { items_left, loaded } => {
                let s = self.shard_of(w);
                match self.bug {
                    ShardBug::SharedShard => match loaded {
                        // Torn RMW: load one step, store-back the next.
                        None => {
                            let v = self.shards[s].load();
                            self.workers[w] = WorkerPhase::Accumulate {
                                items_left,
                                loaded: Some(v),
                            };
                            Step::Ran
                        }
                        Some(v) => {
                            self.shards[s].store(v + 1);
                            self.workers[w] = WorkerPhase::Accumulate {
                                items_left: items_left - 1,
                                loaded: None,
                            };
                            Step::Ran
                        }
                    },
                    _ => {
                        // Private shard: the worker is the only writer, so
                        // the `+=` is one atomic step from every other
                        // thread's point of view.
                        self.shards[s].fetch_add(1);
                        self.workers[w] = WorkerPhase::Accumulate {
                            items_left: items_left - 1,
                            loaded: None,
                        };
                        Step::Ran
                    }
                }
            }
            WorkerPhase::Finished => Step::Done,
        }
    }

    fn step_merger(&mut self) -> Step {
        match self.merger {
            MergerPhase::WaitJoin => {
                if self.bug != ShardBug::MergeBeforeJoin && !self.join.ready() {
                    return Step::Blocked;
                }
                self.merger = MergerPhase::Merge { next: 0 };
                Step::Ran
            }
            MergerPhase::Merge { next } => {
                // One shard folded per step, as `merge_into`'s per-range
                // loop reads each shard once.
                self.merged_total += self.shards[next].load();
                self.merger = if next + 1 == self.shards.len() {
                    MergerPhase::Finished
                } else {
                    MergerPhase::Merge { next: next + 1 }
                };
                Step::Ran
            }
            MergerPhase::Finished => Step::Done,
        }
    }
}

impl Model for ShardModel {
    fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    fn step(&mut self, tid: usize) -> Step {
        if tid == self.workers.len() {
            self.step_merger()
        } else {
            self.step_worker(tid)
        }
    }

    fn check_final(&self) -> Result<(), String> {
        let expect = self.workers.len() as u64 * self.items_per_worker as u64;
        if self.merged_total != expect {
            return Err(format!(
                "shard merge lost updates: merged {} of {} accumulated fragments",
                self.merged_total, expect
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{finish, Explorer};

    #[test]
    fn sequential_run_conserves_counts() {
        let mut m = ShardModel::new(3, 4);
        assert!(finish(&mut m).is_ok());
        assert_eq!(m.merged_total, 12);
    }

    #[test]
    fn clean_model_survives_exhaustive_width_two() {
        let report = Explorer::with_preemptions(3).explore(&ShardModel::new(2, 3));
        report.assert_clean("shard w=2");
        assert!(report.interleavings > 0);
    }
}
