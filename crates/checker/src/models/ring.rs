//! Model of the streaming pool's seq-tagged ring + reorder buffer.
//!
//! Mirrors `StreamingRasterJoin::execute`'s pool path (`stream.rs`):
//!
//! * **reader** (thread 0) — fetches chunks `1..=chunks`, tagging each
//!   with its sequence number, into a bounded work ring
//!   (`mpsc::sync_channel` of capacity `workers + 1`), then drops its
//!   sender;
//! * **workers** (threads `1..=workers`) — steal the next fetched chunk
//!   off the shared ring, "join" it (one step), and send `(seq, chunk)`
//!   down the unbounded result channel; on ring disconnect they drop
//!   their result sender and finish;
//! * **consumer** (last thread) — processes the sample chunk (seq 0)
//!   first, exactly like the production consumer, then drains the result
//!   channel through a [`Reorder`] buffer, folding strictly in ascending
//!   sequence order.
//!
//! # Checked invariants
//!
//! * every chunk is folded **exactly once** (none lost, none duplicated);
//! * the fold order is **ascending chunk order** — the bitwise-determinism
//!   precondition: `AggregateMerger` folds f32/f64 sums, so a reordered
//!   fold would change results run-to-run;
//! * the pipeline never deadlocks (ring capacity vs. worker count).
//!
//! # Seeded bugs (mutation gate)
//!
//! [`RingBug`] variants re-introduce real bugs the checker must catch;
//! `tests/mutation_gate.rs` proves each one dies.

use crate::sched::{Model, Step};
use crate::shim::{Chan, Reorder, TryRecv, TrySend};

/// Which seeded bug, if any, to inject into the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingBug {
    /// Faithful model of the production pool.
    #[default]
    None,
    /// A worker swallows the result of chunk `.0` (sends nothing): the
    /// "lost chunk" bug. The fold must come up short.
    LoseChunk(u64),
    /// The reader fails to advance the sequence counter after chunk `.0`,
    /// so two distinct chunks carry the same tag: the "dropped seq tag"
    /// bug. One of them can never be folded in order.
    ReuseSeq(u64),
    /// The consumer folds results in *arrival* order, bypassing the
    /// reorder buffer: the "out-of-order fold" bug. Any schedule where a
    /// later chunk finishes first breaks ascending fold order.
    FoldArrivalOrder,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    /// Waiting to steal the next fetched chunk off the ring.
    Steal,
    /// Holding a decoded+joined chunk, about to send its result.
    Send { seq: u64, chunk: u64 },
    /// Ring disconnected; result sender dropped.
    Finished,
}

#[derive(Debug, Clone)]
pub struct RingModel {
    workers: usize,
    chunks: u64,
    bug: RingBug,

    /// The bounded work ring, `(seq, chunk id)` tagged.
    work: Chan<(u64, u64)>,
    /// The unbounded result channel.
    results: Chan<(u64, u64)>,

    /// Reader program counter: next chunk to fetch (`> chunks` ⇒ closing).
    next_fetch: u64,
    /// Next sequence tag the reader will attach.
    next_seq: u64,
    reader_finished: bool,

    worker_states: Vec<WorkerState>,

    /// Consumer state: the sample chunk (seq 0) is processed first.
    sample_processed: bool,
    reorder: Reorder<u64>,
    consumer_finished: bool,
    /// Chunk ids in fold order — the observable output.
    pub folded: Vec<u64>,
    /// Set when a seq tag collides in the reorder buffer (duplicate tag).
    tag_collision: bool,
}

impl RingModel {
    /// `workers` pool workers joining `chunks` streamed chunks (plus the
    /// sample chunk 0 the consumer joins itself). Ring capacity is
    /// `workers + 1`, the production floor.
    pub fn new(workers: usize, chunks: u64) -> Self {
        Self::with_bug(workers, chunks, RingBug::None)
    }

    pub fn with_bug(workers: usize, chunks: u64, bug: RingBug) -> Self {
        assert!(workers >= 1 && chunks >= 1);
        RingModel {
            workers,
            chunks,
            bug,
            work: Chan::bounded(workers + 1, 1),
            results: Chan::unbounded(workers),
            next_fetch: 1,
            next_seq: 1,
            reader_finished: false,
            worker_states: vec![WorkerState::Steal; workers],
            sample_processed: false,
            reorder: Reorder::new(0),
            consumer_finished: false,
            folded: Vec::new(),
            tag_collision: false,
        }
    }

    fn consumer_tid(&self) -> usize {
        self.workers + 1
    }

    fn fold(&mut self, seq: u64, chunk: u64) {
        if self.bug == RingBug::FoldArrivalOrder {
            // Seeded bug: bypass the reorder buffer.
            self.folded.push(chunk);
            return;
        }
        if !self.reorder.insert(seq, chunk) {
            self.tag_collision = true;
            return;
        }
        while let Some(c) = self.reorder.pop_next() {
            self.folded.push(c);
        }
    }

    fn step_reader(&mut self) -> Step {
        if self.reader_finished {
            return Step::Done;
        }
        if self.next_fetch > self.chunks {
            // EOF: drop the ring sender (the reader thread returns).
            self.work.drop_sender();
            self.reader_finished = true;
            return Step::Ran;
        }
        let seq = self.next_seq;
        let chunk = self.next_fetch;
        match self.work.try_send((seq, chunk)) {
            TrySend::Sent => {
                self.next_fetch += 1;
                if RingBug::ReuseSeq(chunk) != self.bug {
                    self.next_seq += 1;
                }
                Step::Ran
            }
            TrySend::Full => Step::Blocked,
            TrySend::Closed => {
                // Pool bailed (production: send err → reader breaks).
                self.reader_finished = true;
                Step::Ran
            }
        }
    }

    fn step_worker(&mut self, w: usize) -> Step {
        match self.worker_states[w] {
            WorkerState::Steal => match self.work.try_recv() {
                TryRecv::Got((seq, chunk)) => {
                    // Decode + single-threaded join happen here; the next
                    // step publishes the result.
                    self.worker_states[w] = WorkerState::Send { seq, chunk };
                    Step::Ran
                }
                TryRecv::Empty => Step::Blocked,
                TryRecv::Disconnected => {
                    self.results.drop_sender();
                    self.worker_states[w] = WorkerState::Finished;
                    Step::Ran
                }
            },
            WorkerState::Send { seq, chunk } => {
                if self.bug != RingBug::LoseChunk(chunk) {
                    // Unbounded channel: never Full; a Closed result send
                    // would mean the consumer bailed (it never does here).
                    let _ = self.results.try_send((seq, chunk));
                }
                self.worker_states[w] = WorkerState::Steal;
                Step::Ran
            }
            WorkerState::Finished => Step::Done,
        }
    }

    fn step_consumer(&mut self) -> Step {
        if self.consumer_finished {
            return Step::Done;
        }
        if !self.sample_processed {
            // The sample chunk is seq 0, joined on the consumer thread
            // while the pool already runs behind it.
            self.sample_processed = true;
            self.fold(0, 0);
            return Step::Ran;
        }
        match self.results.try_recv() {
            TryRecv::Got((seq, chunk)) => {
                self.fold(seq, chunk);
                Step::Ran
            }
            TryRecv::Empty => Step::Blocked,
            TryRecv::Disconnected => {
                self.consumer_finished = true;
                Step::Ran
            }
        }
    }
}

impl Model for RingModel {
    fn threads(&self) -> usize {
        self.workers + 2
    }

    fn step(&mut self, tid: usize) -> Step {
        if tid == 0 {
            self.step_reader()
        } else if tid == self.consumer_tid() {
            self.step_consumer()
        } else {
            self.step_worker(tid - 1)
        }
    }

    fn check_step(&self) -> Result<(), String> {
        if self.tag_collision {
            return Err("sequence tag collision: two chunks carried the same seq".into());
        }
        // Fold order must be ascending at all times — chunk ids are
        // assigned in fetch order, so ascending chunk id == chunk order.
        if self.folded.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!(
                "out-of-order fold: chunk order violated in {:?}",
                self.folded
            ));
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let expect: Vec<u64> = (0..=self.chunks).collect();
        if self.folded != expect {
            return Err(format!(
                "fold mismatch: folded {:?}, expected every chunk 0..={} exactly once in order",
                self.folded, self.chunks
            ));
        }
        if self.reorder.pending_len() != 0 {
            return Err("chunks stranded in the reorder buffer".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{finish, step_until_blocked, Explorer};

    #[test]
    fn sequential_width_one_folds_in_order() {
        let mut m = RingModel::new(1, 3);
        assert!(finish(&mut m).is_ok());
        assert_eq!(m.folded, vec![0, 1, 2, 3]);
    }

    #[test]
    fn clean_model_survives_exhaustive_width_two() {
        let report = Explorer::with_preemptions(2).explore(&RingModel::new(2, 3));
        report.assert_clean("ring w=2");
        assert!(report.interleavings > 0);
    }

    /// The satellite regression: results delivered in worst-case
    /// *reverse* sequence order must still fold ascending. With as many
    /// workers as chunks, each worker holds one chunk and they publish
    /// newest-first.
    #[test]
    fn reverse_order_completion_still_folds_ascending() {
        let chunks = 3;
        let mut m = RingModel::new(chunks as usize, chunks);
        // Reader fetches everything (ring capacity workers+1 ≥ chunks).
        assert!(step_until_blocked(&mut m, 0) >= chunks as usize);
        // Worker w steals chunk w+1 (FIFO ring), stopping before the send.
        for w in 1..=chunks as usize {
            assert_eq!(m.step(w), Step::Ran);
        }
        // Publish in reverse: worker holding the *highest* seq first.
        for w in (1..=chunks as usize).rev() {
            assert_eq!(m.step(w), Step::Ran);
            // Consumer eagerly drains after every arrival.
            step_until_blocked(&mut m, chunks as usize + 1);
        }
        assert!(finish(&mut m).is_ok());
        assert_eq!(m.folded, vec![0, 1, 2, 3]);
    }
}
