//! The mutation gate: the checker is only trustworthy if it *demonstrably*
//! catches the bugs it exists to catch. Each test seeds one real bug into
//! a model and fails unless exploration finds a violating schedule.
//!
//! These are the three bugs named in the acceptance criteria — lost
//! chunk, out-of-order fold, double-recycled FBO — plus the rest of the
//! seeded-bug inventory, so a scheduler regression that silently shrinks
//! the explored space breaks the build here rather than hiding forever.

use checker::models::{
    ErrBug, ErrModel, FaultAt, PoolBug, PoolModel, RingBug, RingModel, ShardBug, ShardModel,
};
use checker::sched::Explorer;

/// Explore with enough preemption budget to express each seeded bug's
/// minimal reproducing schedule.
fn explorer() -> Explorer {
    Explorer::with_preemptions(3)
}

fn assert_caught<M: checker::Model>(model: &M, expect_in_message: &str, what: &str) {
    let report = explorer().explore(model);
    let v = report.violation.unwrap_or_else(|| {
        panic!(
            "{what}: seeded bug survived {} interleavings",
            report.interleavings
        )
    });
    assert!(
        v.message.contains(expect_in_message),
        "{what}: caught a violation, but not the seeded one: {}",
        v.message
    );
    assert!(
        !v.schedule.is_empty(),
        "{what}: violation must carry a reproducing schedule"
    );
}

#[test]
fn gate_lost_chunk_is_caught() {
    assert_caught(
        &RingModel::with_bug(2, 3, RingBug::LoseChunk(2)),
        "fold mismatch",
        "ring/LoseChunk",
    );
}

#[test]
fn gate_out_of_order_fold_is_caught() {
    assert_caught(
        &RingModel::with_bug(2, 3, RingBug::FoldArrivalOrder),
        "out-of-order fold",
        "ring/FoldArrivalOrder",
    );
}

#[test]
fn gate_dropped_seq_tag_is_caught() {
    assert_caught(
        &RingModel::with_bug(2, 3, RingBug::ReuseSeq(1)),
        "seq",
        "ring/ReuseSeq",
    );
}

#[test]
fn gate_double_recycled_fbo_is_caught() {
    assert_caught(
        &PoolModel::with_bug(2, 2, PoolBug::DoubleRecycle),
        "recycle",
        "pool/DoubleRecycle",
    );
}

#[test]
fn gate_early_recycle_is_caught() {
    let report = explorer().explore(&PoolModel::with_bug(2, 2, PoolBug::EarlyRecycle));
    let v = report
        .violation
        .expect("pool/EarlyRecycle: seeded bug survived");
    assert!(
        v.message.contains("aliased") || v.message.contains("use-after-release"),
        "pool/EarlyRecycle: unexpected violation: {}",
        v.message
    );
}

#[test]
fn gate_skipped_clear_is_caught() {
    assert_caught(
        &PoolModel::with_bug(2, 2, PoolBug::SkipClear),
        "dirty reuse",
        "pool/SkipClear",
    );
}

#[test]
fn gate_merge_before_join_is_caught() {
    assert_caught(
        &ShardModel::with_bug(2, 2, ShardBug::MergeBeforeJoin),
        "lost updates",
        "shard/MergeBeforeJoin",
    );
}

#[test]
fn gate_shared_shard_rmw_is_caught() {
    assert_caught(
        &ShardModel::with_bug(2, 2, ShardBug::SharedShard),
        "lost updates",
        "shard/SharedShard",
    );
}

#[test]
fn gate_fold_after_error_is_caught() {
    assert_caught(
        &ErrModel::with_bug(2, 3, FaultAt::Worker { on_seq: 1 }, ErrBug::FoldAfterError),
        "error must win",
        "errors/FoldAfterError",
    );
}

#[test]
fn gate_leaked_canvas_on_error_is_caught() {
    assert_caught(
        &ErrModel::with_bug(
            2,
            2,
            FaultAt::Worker { on_seq: 1 },
            ErrBug::LeakCanvasOnError,
        ),
        "never returned to the pool",
        "errors/LeakCanvasOnError",
    );
}

#[test]
fn gate_swallowed_error_is_caught() {
    assert_caught(
        &ErrModel::with_bug(2, 3, FaultAt::Reader { after: 1 }, ErrBug::SwallowError),
        "swallowed",
        "errors/SwallowError",
    );
}

#[test]
fn gate_missing_shutdown_unblock_is_caught() {
    assert_caught(
        &ErrModel::with_bug(2, 7, FaultAt::Worker { on_seq: 1 }, ErrBug::NoUnblock),
        "deadlock",
        "errors/NoUnblock",
    );
}

/// The other half of the gate: the *clean* models must pass the exact
/// same exploration, or the "caught" assertions above prove nothing.
#[test]
fn gate_clean_models_pass_the_same_exploration() {
    explorer()
        .explore(&RingModel::new(2, 3))
        .assert_clean("ring");
    explorer()
        .explore(&PoolModel::new(2, 2))
        .assert_clean("pool");
    explorer()
        .explore(&ShardModel::new(2, 2))
        .assert_clean("shard");
    for fault in [
        FaultAt::None,
        FaultAt::Reader { after: 1 },
        FaultAt::Worker { on_seq: 2 },
        FaultAt::ConsumerCancel { after_folds: 2 },
    ] {
        explorer()
            .explore(&ErrModel::new(2, 3, fault))
            .assert_clean(&format!("errors under {fault:?}"));
    }
}

/// Acceptance floor: ≥ 1000 distinct interleavings per model at width ≥ 2.
/// The ring model's extra threads reach the floor at 3 preemptions; the
/// flatter shard/pool models get a deeper budget (still exhaustive within
/// the bound).
#[test]
fn gate_each_model_explores_at_least_1000_interleavings() {
    let deep = Explorer::with_preemptions(6);
    // Width-2 shard is the flattest model (C(2n, n) schedules over the two
    // workers), so it gets the longest run and the deepest budget.
    let deepest = Explorer::with_preemptions(8);
    for (name, report) in [
        ("ring", explorer().explore(&RingModel::new(2, 3))),
        ("pool", deep.explore(&PoolModel::new(2, 2))),
        ("shard", deepest.explore(&ShardModel::new(2, 6))),
    ] {
        report.assert_clean(name);
        assert!(
            report.interleavings >= 1000,
            "{name}: only {} interleavings explored (need ≥ 1000)",
            report.interleavings
        );
        assert!(!report.truncated, "{name}: exploration truncated");
    }
}
