#![deny(unsafe_op_in_unsafe_fn)]
//! A software model of the GPU rendering pipeline the paper runs on.
//!
//! The paper (§3, §6.1) drives an OpenGL pipeline: vertex shaders transform
//! points/triangle vertices to screen space, the driver rasterizes, and
//! fragment shaders blend into FBOs or update SSBO result arrays with
//! atomics. This crate reimplements exactly those stages in portable Rust:
//!
//! * [`viewport`] — world→screen transforms (the vertex-shader transform);
//! * [`bin`] — per-batch tile binning: each point is classified once into
//!   the canvas tile that renders it, replacing the O(points × tiles)
//!   per-tile rescans of the multi-canvas path (Fig. 5);
//! * [`framebuffer`] — FBOs with additive blending, atomically updatable
//!   (the paper's `Fpt` count/sum FBO and the boundary FBO), plus the
//!   sharded accumulation path ([`framebuffer::ShardSet`]) and the
//!   allocation-recycling [`framebuffer::FboPool`];
//! * [`raster`] — point, triangle (pixel-center sampling + top-left fill
//!   rule, i.e. the OpenGL rasterization contract the error analysis of
//!   §4.2 depends on) and conservative rasterization (§6.1 uses the
//!   `GL_NV_conservative_raster` extension);
//! * [`ssbo`] — atomically-updated result arrays (SSBO analog);
//! * [`device`] — GPU memory-capacity and PCIe-transfer cost model driving
//!   the out-of-core batching experiments (Fig. 9, 11, 13);
//! * [`exec`] — the scoped-thread fan-out standing in for GPU parallelism.

pub mod bin;
pub mod device;
pub mod exec;
pub mod framebuffer;
pub mod image;
pub mod mrt;
pub mod raster;
pub mod ssbo;
pub mod viewport;

pub use bin::{bin_points, BinnedBatch, CanvasTiling, RasterConfig, SHARD_MIN_DENSITY};
pub use device::{Device, DeviceConfig, TransferStats};
pub use framebuffer::{BoundaryFbo, FboPool, PointFbo, ShardSet};
pub use mrt::MrtFbo;
pub use ssbo::{AtomicF64Array, AtomicU64Array};
pub use viewport::Viewport;
