//! GPU device model: memory capacity, FBO limits and the CPU↔GPU transfer
//! cost account.
//!
//! The paper's experiments distinguish *processing* time from *memory
//! transfer* time (Fig. 9, 11, 13) and limit GPU memory to 3 GB with a
//! maximum FBO resolution of 8192² (§7.1). Running on a software rasterizer
//! there is no physical PCIe bus, so transfers are charged to a
//! deterministic cost model: `bytes / bandwidth`. Every byte of point data
//! is charged exactly once per query, matching the paper's
//! transfer-points-once design (§5, Out-of-Core Processing).

use parking_lot::Mutex;
use std::time::Duration;

/// The modelled bandwidth divides the physical PCIe figure by this
/// calibration constant: the software rasterizer's fragment/point
/// throughput is roughly this factor below the paper's GTX 1060, so
/// scaling the bus by the same factor keeps the **transfer : processing
/// ratio** — the quantity Figs. 9/11/13 actually report — faithful.
pub const SIM_SLOWDOWN: f64 = 256.0;

/// Static device parameters (defaults follow §7.1's configuration).
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// GPU memory budget for point data, in bytes (paper: 3 GB).
    pub memory_budget: usize,
    /// Maximum FBO dimension per axis (paper: 8192).
    pub max_fbo_dim: u32,
    /// Modelled effective host→device bandwidth in bytes/second. The
    /// default is 12 GB/s (PCIe 3.0 ×16 achievable) ÷ [`SIM_SLOWDOWN`];
    /// see that constant for the calibration rationale.
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            memory_budget: 3 << 30,
            max_fbo_dim: 8192,
            bandwidth_bytes_per_sec: 12e9 / SIM_SLOWDOWN,
        }
    }
}

impl DeviceConfig {
    /// A small test/bench configuration that forces multi-batch execution
    /// at laptop-scale point counts.
    pub fn small(memory_budget: usize, max_fbo_dim: u32) -> Self {
        DeviceConfig {
            memory_budget,
            max_fbo_dim,
            ..Default::default()
        }
    }
}

/// Accumulated transfer statistics for one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferStats {
    pub bytes_up: u64,
    pub bytes_down: u64,
    pub uploads: u64,
    pub downloads: u64,
}

impl TransferStats {
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

/// The device: capacity checks plus a transfer ledger.
pub struct Device {
    config: DeviceConfig,
    stats: Mutex<TransferStats>,
}

impl Device {
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            config,
            stats: Mutex::new(TransferStats::default()),
        }
    }

    pub fn config(&self) -> DeviceConfig {
        self.config
    }

    /// Number of batches needed to stream `total_bytes` of point data
    /// through the memory budget (out-of-core splitting of §5).
    pub fn batches_for(&self, total_bytes: usize) -> usize {
        if total_bytes == 0 {
            return 1;
        }
        total_bytes.div_ceil(self.config.memory_budget)
    }

    /// Largest number of points (each `point_bytes` wide) resident at once.
    pub fn points_per_batch(&self, point_bytes: usize) -> usize {
        (self.config.memory_budget / point_bytes.max(1)).max(1)
    }

    /// Charge a host→device upload to the ledger.
    pub fn record_upload(&self, bytes: u64) {
        let mut s = self.stats.lock();
        s.bytes_up += bytes;
        s.uploads += 1;
    }

    /// Charge a device→host read-back to the ledger.
    pub fn record_download(&self, bytes: u64) {
        let mut s = self.stats.lock();
        s.bytes_down += bytes;
        s.downloads += 1;
    }

    pub fn stats(&self) -> TransferStats {
        *self.stats.lock()
    }

    pub fn reset_stats(&self) {
        *self.stats.lock() = TransferStats::default();
    }

    /// Modelled wall-clock cost of all recorded transfers.
    pub fn modelled_transfer_time(&self) -> Duration {
        let s = self.stats();
        Duration::from_secs_f64(s.total_bytes() as f64 / self.config.bandwidth_bytes_per_sec)
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::new(DeviceConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_config() {
        let c = DeviceConfig::default();
        assert_eq!(c.memory_budget, 3 << 30);
        assert_eq!(c.max_fbo_dim, 8192);
    }

    #[test]
    fn batch_count_rounds_up() {
        let d = Device::new(DeviceConfig::small(1000, 64));
        assert_eq!(d.batches_for(0), 1);
        assert_eq!(d.batches_for(999), 1);
        assert_eq!(d.batches_for(1000), 1);
        assert_eq!(d.batches_for(1001), 2);
        assert_eq!(d.batches_for(5000), 5);
    }

    #[test]
    fn points_per_batch_floor() {
        let d = Device::new(DeviceConfig::small(100, 64));
        assert_eq!(d.points_per_batch(8), 12);
        assert_eq!(d.points_per_batch(0), 100); // degenerate width clamps
    }

    #[test]
    fn ledger_accumulates_and_resets() {
        let d = Device::new(DeviceConfig::default());
        d.record_upload(1_000);
        d.record_upload(500);
        d.record_download(24);
        let s = d.stats();
        assert_eq!(s.bytes_up, 1_500);
        assert_eq!(s.bytes_down, 24);
        assert_eq!(s.uploads, 2);
        assert_eq!(s.downloads, 1);
        assert_eq!(s.total_bytes(), 1_524);
        d.reset_stats();
        assert_eq!(d.stats(), TransferStats::default());
    }

    #[test]
    fn modelled_time_is_bytes_over_bandwidth() {
        let c = DeviceConfig {
            bandwidth_bytes_per_sec: 1e9,
            ..Default::default()
        };
        let d = Device::new(c);
        d.record_upload(2_000_000_000);
        let t = d.modelled_transfer_time();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
    }
}
