//! Rendering FBO contents to images (PPM/PGM) with sequential color maps.
//!
//! The paper's §7.6 visualization argument rests on sequential color maps
//! with at most 9 perceivable classes (ColorBrewer \[25\]): heat maps built
//! from the per-pixel or per-polygon aggregates are classed into ≤9 bins
//! before display, which is why sub-JND numeric errors are invisible.
//! This module provides that final display stage: a 9-class sequential
//! ramp, linear and class-binned mapping, and portable PPM/PGM writers so
//! the examples can emit actual images.

use crate::framebuffer::PointFbo;
use std::io::{self, Write};
use std::path::Path;

/// An RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb(pub u8, pub u8, pub u8);

/// A sequential multi-hue ramp with 9 perceivable classes (light yellow →
/// dark red, in the spirit of ColorBrewer's YlOrRd-9).
pub const SEQUENTIAL_9: [Rgb; 9] = [
    Rgb(255, 255, 204),
    Rgb(255, 237, 160),
    Rgb(254, 217, 118),
    Rgb(254, 178, 76),
    Rgb(253, 141, 60),
    Rgb(252, 78, 42),
    Rgb(227, 26, 28),
    Rgb(189, 0, 38),
    Rgb(128, 0, 38),
];

/// Number of perceivable classes of [`SEQUENTIAL_9`]; the source of the
/// JND = 1/9 bound used by the accuracy analysis.
pub const SEQUENTIAL_9_CLASSES: usize = SEQUENTIAL_9.len();

/// Map a normalized value in `[0, 1]` to its color class (binned, as a
/// choropleth map does).
pub fn classed_color(v: f64) -> Rgb {
    let v = v.clamp(0.0, 1.0);
    let k = ((v * SEQUENTIAL_9_CLASSES as f64) as usize).min(SEQUENTIAL_9_CLASSES - 1);
    SEQUENTIAL_9[k]
}

/// The color-class index a normalized value falls into. Two values render
/// identically iff their classes match — the JND argument in discrete
/// form.
pub fn color_class(v: f64) -> usize {
    let v = v.clamp(0.0, 1.0);
    ((v * SEQUENTIAL_9_CLASSES as f64) as usize).min(SEQUENTIAL_9_CLASSES - 1)
}

/// An 8-bit RGB raster image.
pub struct Image {
    pub width: u32,
    pub height: u32,
    pixels: Vec<Rgb>,
}

impl Image {
    pub fn new(width: u32, height: u32, fill: Rgb) -> Self {
        Image {
            width,
            height,
            pixels: vec![fill; width as usize * height as usize],
        }
    }

    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Rgb) {
        let i = y as usize * self.width as usize + x as usize;
        self.pixels[i] = c;
    }

    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        self.pixels[y as usize * self.width as usize + x as usize]
    }

    /// Write binary PPM (P6). The image is flipped vertically so that
    /// world-space "up" is image "up".
    pub fn write_ppm(&self, path: &Path) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(f);
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let Rgb(r, g, b) = self.get(x, y);
                w.write_all(&[r, g, b])?;
            }
        }
        w.flush()
    }
}

/// Render the count channel of a point FBO as a log-scaled heat map.
/// Pixels with no points stay background-white.
pub fn heatmap_of_counts(fbo: &PointFbo) -> Image {
    let (w, h) = (fbo.width(), fbo.height());
    let mut max = 0u32;
    for y in 0..h {
        for x in 0..w {
            max = max.max(fbo.count_at(x, y));
        }
    }
    let mut img = Image::new(w, h, Rgb(255, 255, 255));
    if max == 0 {
        return img;
    }
    let denom = (1.0 + max as f64).ln();
    for y in 0..h {
        for x in 0..w {
            let c = fbo.count_at(x, y);
            if c > 0 {
                let v = (1.0 + c as f64).ln() / denom;
                img.set(x, y, classed_color(v));
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_boundaries() {
        assert_eq!(color_class(0.0), 0);
        assert_eq!(color_class(1.0), 8);
        assert_eq!(color_class(0.5), 4);
        // Clamping.
        assert_eq!(color_class(-3.0), 0);
        assert_eq!(color_class(7.0), 8);
        assert_eq!(classed_color(0.0), SEQUENTIAL_9[0]);
        assert_eq!(classed_color(1.0), SEQUENTIAL_9[8]);
    }

    #[test]
    fn sub_jnd_shifts_often_keep_the_class() {
        // A value shifted by less than one class width can change class
        // only across a bin boundary; shifting by half the JND keeps the
        // class for bin-center values.
        for k in 0..9 {
            let center = (k as f64 + 0.5) / 9.0;
            let shifted = center + 0.5 / 9.0 * 0.9;
            assert_eq!(color_class(center), color_class(shifted - 0.5 / 9.0 * 0.9));
            let _ = shifted;
        }
    }

    #[test]
    fn heatmap_colors_only_populated_pixels() {
        let fbo = PointFbo::new(4, 4);
        fbo.blend_add(1, 1, 0.0);
        fbo.blend_add(1, 1, 0.0);
        fbo.blend_add(3, 2, 0.0);
        let img = heatmap_of_counts(&fbo);
        assert_eq!(img.get(0, 0), Rgb(255, 255, 255));
        assert_ne!(img.get(1, 1), Rgb(255, 255, 255));
        assert_ne!(img.get(3, 2), Rgb(255, 255, 255));
        // The denser pixel is at least as dark (higher class).
        let dark = |c: Rgb| 255 * 3 - (c.0 as u32 + c.1 as u32 + c.2 as u32);
        assert!(dark(img.get(1, 1)) >= dark(img.get(3, 2)));
    }

    #[test]
    fn empty_fbo_renders_blank() {
        let fbo = PointFbo::new(2, 2);
        let img = heatmap_of_counts(&fbo);
        for y in 0..2 {
            for x in 0..2 {
                assert_eq!(img.get(x, y), Rgb(255, 255, 255));
            }
        }
    }

    #[test]
    fn ppm_roundtrip_header_and_size() {
        let mut img = Image::new(3, 2, Rgb(0, 0, 0));
        img.set(0, 0, Rgb(255, 0, 0));
        let path = std::env::temp_dir().join(format!("rjr-img-{}.ppm", std::process::id()));
        img.write_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), b"P6\n3 2\n255\n".len() + 3 * 2 * 3);
        // Vertical flip: (0,0) world = bottom-left → last row in file.
        let off = b"P6\n3 2\n255\n".len() + 3 * 3; // second (bottom) row
        assert_eq!(&bytes[off..off + 3], &[255, 0, 0]);
        std::fs::remove_file(&path).ok();
    }
}
