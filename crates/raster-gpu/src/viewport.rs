//! World→screen transforms (the vertex-shader stage of the pipeline).

use raster_geom::{BBox, Point};

/// A rendering viewport: a world-space extent mapped onto a `width`×`height`
/// pixel grid. Plays the role of the projection the paper's vertex shaders
/// apply, including the clipping of geometry outside the canvas (which is
/// what makes the multi-canvas splitting of Fig. 5 correct).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    pub extent: BBox,
    pub width: u32,
    pub height: u32,
}

impl Viewport {
    pub fn new(extent: BBox, width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "viewport must have positive size");
        assert!(
            extent.width() > 0.0 && extent.height() > 0.0,
            "viewport extent must be non-degenerate"
        );
        Viewport {
            extent,
            width,
            height,
        }
    }

    /// World-units per pixel along x.
    pub fn pixel_width(&self) -> f64 {
        self.extent.width() / self.width as f64
    }

    /// World-units per pixel along y.
    pub fn pixel_height(&self) -> f64 {
        self.extent.height() / self.height as f64
    }

    /// Continuous screen coordinates (pixels, origin at the extent min
    /// corner). No clipping: callers clip on the integer result.
    pub fn to_screen(&self, p: Point) -> (f64, f64) {
        (
            (p.x - self.extent.min.x) / self.pixel_width(),
            (p.y - self.extent.min.y) / self.pixel_height(),
        )
    }

    /// Pixel containing the world point, or `None` when the point falls
    /// outside the viewport (the pipeline's clipping stage).
    pub fn pixel_of(&self, p: Point) -> Option<(u32, u32)> {
        let (sx, sy) = self.to_screen(p);
        if sx < 0.0 || sy < 0.0 {
            return None;
        }
        let (px, py) = (sx as u32, sy as u32);
        // Points exactly on the max edge belong to the last pixel.
        let px = if px == self.width && sx == self.width as f64 {
            return None;
        } else {
            px
        };
        if px >= self.width || py >= self.height {
            return None;
        }
        Some((px, py))
    }

    /// World-space center of pixel `(x, y)` — the rasterization sample
    /// location.
    pub fn pixel_center(&self, x: u32, y: u32) -> Point {
        Point::new(
            self.extent.min.x + (x as f64 + 0.5) * self.pixel_width(),
            self.extent.min.y + (y as f64 + 0.5) * self.pixel_height(),
        )
    }

    /// World-space bounding box of pixel `(x, y)`.
    pub fn pixel_bbox(&self, x: u32, y: u32) -> BBox {
        let min = Point::new(
            self.extent.min.x + x as f64 * self.pixel_width(),
            self.extent.min.y + y as f64 * self.pixel_height(),
        );
        let max = Point::new(min.x + self.pixel_width(), min.y + self.pixel_height());
        BBox::new(min, max)
    }

    /// Split this viewport into a grid of sub-viewports, each at most
    /// `max_dim` pixels per axis — the multi-canvas rendering of Fig. 5.
    /// Every sub-canvas keeps the same pixel size, so the ε guarantee holds
    /// globally and clipping ensures each point/polygon pair is counted
    /// exactly once.
    pub fn split(&self, max_dim: u32) -> Vec<Viewport> {
        assert!(max_dim > 0);
        let tiles_x = self.width.div_ceil(max_dim);
        let tiles_y = self.height.div_ceil(max_dim);
        let mut out = Vec::with_capacity((tiles_x * tiles_y) as usize);
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let x0 = tx * max_dim;
                let y0 = ty * max_dim;
                let w = max_dim.min(self.width - x0);
                let h = max_dim.min(self.height - y0);
                let min = Point::new(
                    self.extent.min.x + x0 as f64 * self.pixel_width(),
                    self.extent.min.y + y0 as f64 * self.pixel_height(),
                );
                let max = Point::new(
                    min.x + w as f64 * self.pixel_width(),
                    min.y + h as f64 * self.pixel_height(),
                );
                out.push(Viewport::new(BBox::new(min, max), w, h));
            }
        }
        out
    }

    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The square-ish canvas resolution for `extent` under a per-axis
    /// budget of `dim` pixels: the longer axis gets `dim`, the shorter is
    /// scaled to keep pixels square-ish. One definition shared by the
    /// accurate raster join and the planner's cost model, so the modelled
    /// canvas can never drift from the executed one.
    pub fn canvas_for_extent(extent: &BBox, dim: u32) -> (u32, u32) {
        if extent.width() >= extent.height() {
            let h = ((extent.height() / extent.width().max(1e-30)) * dim as f64).ceil() as u32;
            (dim.max(1), h.max(1))
        } else {
            let w = ((extent.width() / extent.height().max(1e-30)) * dim as f64).ceil() as u32;
            (w.max(1), dim.max(1))
        }
    }

    /// A hoisted-divisor form of [`Viewport::pixel_of`] for tight loops.
    /// Bit-exact: it precomputes `pixel_width()` / `pixel_height()` once
    /// (the same FP values every `pixel_of` call derives) and then applies
    /// the identical operation sequence, so `probe.pixel_of(p) ==
    /// vp.pixel_of(p)` for every input — asserted by tests over seam and
    /// boundary coordinates.
    pub fn pixel_probe(&self) -> PixelProbe {
        PixelProbe {
            min_x: self.extent.min.x,
            min_y: self.extent.min.y,
            pw: self.pixel_width(),
            ph: self.pixel_height(),
            width: self.width,
            height: self.height,
        }
    }
}

/// See [`Viewport::pixel_probe`].
#[derive(Debug, Clone, Copy)]
pub struct PixelProbe {
    min_x: f64,
    min_y: f64,
    pw: f64,
    ph: f64,
    width: u32,
    height: u32,
}

impl PixelProbe {
    #[inline]
    pub fn pixel_of(&self, p: Point) -> Option<(u32, u32)> {
        let sx = (p.x - self.min_x) / self.pw;
        let sy = (p.y - self.min_y) / self.ph;
        if sx < 0.0 || sy < 0.0 {
            return None;
        }
        let (px, py) = (sx as u32, sy as u32);
        if px >= self.width || py >= self.height {
            return None;
        }
        Some((px, py))
    }

    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 50.0)),
            200,
            100,
        )
    }

    #[test]
    fn pixel_size_is_extent_over_resolution() {
        let v = vp();
        assert!((v.pixel_width() - 0.5).abs() < 1e-12);
        assert!((v.pixel_height() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pixel_of_clips_outside_points() {
        let v = vp();
        assert_eq!(v.pixel_of(Point::new(-0.1, 10.0)), None);
        assert_eq!(v.pixel_of(Point::new(10.0, 51.0)), None);
        assert_eq!(v.pixel_of(Point::new(0.0, 0.0)), Some((0, 0)));
        assert_eq!(v.pixel_of(Point::new(99.99, 49.99)), Some((199, 99)));
    }

    #[test]
    fn pixel_center_roundtrips() {
        let v = vp();
        for &(x, y) in &[(0u32, 0u32), (57, 23), (199, 99)] {
            let c = v.pixel_center(x, y);
            assert_eq!(v.pixel_of(c), Some((x, y)));
        }
    }

    #[test]
    fn pixel_bbox_contains_center() {
        let v = vp();
        let b = v.pixel_bbox(13, 77);
        assert!(b.contains(v.pixel_center(13, 77)));
        assert!((b.area() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn split_covers_exactly_and_respects_limit() {
        let v = vp();
        let tiles = v.split(64);
        // 200/64 → 4 tiles, 100/64 → 2 tiles.
        assert_eq!(tiles.len(), 8);
        let total_px: usize = tiles.iter().map(Viewport::pixel_count).sum();
        assert_eq!(total_px, v.pixel_count());
        for t in &tiles {
            assert!(t.width <= 64 && t.height <= 64);
            // Pixel size preserved → ε guarantee preserved.
            assert!((t.pixel_width() - v.pixel_width()).abs() < 1e-12);
            assert!((t.pixel_height() - v.pixel_height()).abs() < 1e-12);
        }
        // Extents tile the viewport without overlap: total area matches.
        let area: f64 = tiles.iter().map(|t| t.extent.area()).sum();
        assert!((area - v.extent.area()).abs() < 1e-9);
    }

    #[test]
    fn split_single_tile_is_identity() {
        let v = vp();
        let tiles = v.split(4096);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0], v);
    }

    #[test]
    fn pixel_probe_is_bit_exact_with_pixel_of() {
        // Awkward extents (non-representable pixel sizes) and probes on
        // every pixel seam: the hoisted form must agree everywhere.
        let vps = [
            vp(),
            Viewport::new(
                BBox::new(Point::new(-3.7, 11.1), Point::new(96.3, 44.43)),
                97,
                31,
            ),
            Viewport::new(BBox::new(Point::new(0.1, 0.2), Point::new(0.4, 0.9)), 3, 7),
        ];
        for v in vps {
            let probe = v.pixel_probe();
            let (w, h) = (v.extent.width(), v.extent.height());
            for i in -4..260 {
                for j in -4..140 {
                    let p = Point::new(
                        v.extent.min.x + w * (i as f64 / 250.0),
                        v.extent.min.y + h * (j as f64 / 130.0),
                    );
                    assert_eq!(probe.pixel_of(p), v.pixel_of(p), "{p:?}");
                }
            }
        }
    }

    #[test]
    fn point_on_tile_seam_lands_in_exactly_one_tile() {
        let v = vp();
        let tiles = v.split(64);
        // x = 32.0 world == pixel 64 boundary.
        let p = Point::new(32.0, 10.0);
        let owners = tiles.iter().filter(|t| t.pixel_of(p).is_some()).count();
        assert_eq!(owners, 1, "seam point must be counted exactly once");
    }
}
