//! Multiple-render-target FBO: one count channel plus K sum channels.
//!
//! §8 of the paper ("Performing Multiple Aggregates"): the implementation
//! can be extended to compute several aggregate functions in one pass "by
//! having multiple color attachments to the FBO", at the cost of extra
//! memory transfer. [`MrtFbo`] is that extension: per pixel it stores a
//! 32-bit count and `k` 32-bit sum channels, all atomically blendable.

use std::sync::atomic::{AtomicU32, Ordering};

/// FBO with one count channel + `k` f32 sum channels per pixel.
pub struct MrtFbo {
    width: u32,
    height: u32,
    k: usize,
    counts: Vec<AtomicU32>,
    /// Pixel-major layout: `sums[pixel * k + c]`. A polygon fragment folds
    /// ALL channels of one pixel (§8's wide read-back), so keeping a
    /// pixel's channels contiguous turns the span fold into a streaming
    /// scan — the cache behaviour a hardware MRT read would have.
    sums: Vec<AtomicU32>,
}

impl MrtFbo {
    pub fn new(width: u32, height: u32, k: usize) -> Self {
        let n = width as usize * height as usize;
        MrtFbo {
            width,
            height,
            k,
            counts: crate::framebuffer::zeroed_atomics(n),
            sums: crate::framebuffer::zeroed_atomics(n * k),
        }
    }

    /// Fold the partial aggregates over the span `[x0, x1) × {y}` into
    /// `(count, sums[0..k])` — the span-rasterization fast path.
    #[inline]
    pub fn span_totals(&self, y: u32, x0: u32, x1: u32, sums_out: &mut [f64]) -> u64 {
        debug_assert_eq!(sums_out.len(), self.k);
        let base = y as usize * self.width as usize;
        let mut cnt = 0u64;
        for i in (base + x0 as usize)..(base + x1 as usize) {
            let c = self.counts[i].load(Ordering::Relaxed);
            if c != 0 {
                cnt += c as u64;
                let row = &self.sums[i * self.k..(i + 1) * self.k];
                for (acc, cell) in sums_out.iter_mut().zip(row) {
                    *acc += f32::from_bits(cell.load(Ordering::Relaxed)) as f64;
                }
            }
        }
        cnt
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of sum channels (color attachments beyond the count).
    pub fn channels(&self) -> usize {
        self.k
    }

    #[inline]
    fn pixel(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y as usize * self.width as usize + x as usize
    }

    /// Blend one point fragment: `count += 1` and `sum[c] += values[c]`
    /// for every channel.
    #[inline]
    pub fn blend_add(&self, x: u32, y: u32, values: &[f32]) {
        debug_assert_eq!(values.len(), self.k);
        let p = self.pixel(x, y);
        self.counts[p].fetch_add(1, Ordering::Relaxed);
        for (c, &v) in values.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let cell = &self.sums[p * self.k + c];
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let new = (f32::from_bits(cur) + v).to_bits();
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(e) => cur = e,
                }
            }
        }
    }

    #[inline]
    pub fn count_at(&self, x: u32, y: u32) -> u32 {
        self.counts[self.pixel(x, y)].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn sum_at(&self, x: u32, y: u32, channel: usize) -> f32 {
        debug_assert!(channel < self.k);
        let p = self.pixel(x, y);
        f32::from_bits(self.sums[p * self.k + channel].load(Ordering::Relaxed))
    }

    /// GPU footprint: (1 + k) 32-bit channels per pixel — the memory and
    /// transfer growth §8 warns about.
    pub fn byte_size(&self) -> usize {
        self.counts.len() * 4 * (1 + self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blend_accumulates_all_channels() {
        let f = MrtFbo::new(4, 4, 3);
        f.blend_add(1, 2, &[1.0, 10.0, 100.0]);
        f.blend_add(1, 2, &[2.0, 0.0, -50.0]);
        assert_eq!(f.count_at(1, 2), 2);
        assert!((f.sum_at(1, 2, 0) - 3.0).abs() < 1e-6);
        assert!((f.sum_at(1, 2, 1) - 10.0).abs() < 1e-6);
        assert!((f.sum_at(1, 2, 2) - 50.0).abs() < 1e-6);
        assert_eq!(f.count_at(0, 0), 0);
    }

    #[test]
    fn zero_channels_degenerates_to_count_only() {
        let f = MrtFbo::new(2, 2, 0);
        f.blend_add(0, 0, &[]);
        assert_eq!(f.count_at(0, 0), 1);
        assert_eq!(f.channels(), 0);
        assert_eq!(f.byte_size(), 4 * 4);
    }

    #[test]
    fn byte_size_grows_with_attachments() {
        assert_eq!(MrtFbo::new(8, 8, 1).byte_size(), 64 * 8);
        assert_eq!(MrtFbo::new(8, 8, 4).byte_size(), 64 * 20);
    }

    #[test]
    fn concurrent_multichannel_blend_is_lossless() {
        use std::sync::Arc;
        let f = Arc::new(MrtFbo::new(4, 1, 2));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        f.blend_add(t as u32, 0, &[1.0, 2.0]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for x in 0..4 {
            assert_eq!(f.count_at(x, 0), 2_000);
            assert!((f.sum_at(x, 0, 0) - 2_000.0).abs() < 0.5);
            assert!((f.sum_at(x, 0, 1) - 4_000.0).abs() < 1.0);
        }
    }
}
