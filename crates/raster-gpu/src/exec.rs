//! Scoped-thread fan-out: the stand-in for the GPU's SPMD parallelism.
//!
//! Shader invocations in the paper run as a single program over multiple
//! data (§3). We model that by splitting the item range into one contiguous
//! chunk per worker and running the same closure on every chunk with
//! `crossbeam`'s scoped threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Number of workers: the `RJ_WORKERS` environment variable when set to a
/// positive integer, otherwise the available CPU parallelism (or 1 when
/// unknown). The override lets a 1-core CI box exercise the multi-worker
/// paths — and a many-core dev box pin them down — without code edits.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("RJ_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f(start, end)` over disjoint chunks of `0..len` on `workers`
/// threads. `f` must be safe to run concurrently on disjoint ranges — all
/// shared state in this codebase is atomic (FBOs, SSBOs).
pub fn parallel_ranges<F>(len: usize, workers: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let workers = workers.max(1).min(len.max(1));
    if workers == 1 || len == 0 {
        f(0, len);
        return;
    }
    let chunk = len.div_ceil(workers);
    crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(len);
            if start >= end {
                continue;
            }
            let f = &f;
            s.spawn(move |_| f(start, end));
        }
    })
    .expect("worker thread panicked");
}

/// Accumulate the wall-clock time of one pipeline stage into `acc` and
/// return the stage's result. Each executor attributes its processing
/// time to the stage that spent it (point blend, polygon scan, binning,
/// shard merge); the planner's calibration bench records the breakdown
/// alongside every measured run so fitted weights can be sanity-checked
/// against where the time actually went.
pub fn timed<T>(acc: &mut Duration, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let v = f();
    *acc += t0.elapsed();
    v
}

/// Block size for [`parallel_dynamic`] over `len` items on `workers`
/// threads: aim for ~8 blocks per worker (enough granularity to absorb
/// skewed per-item costs without paying a cursor `fetch_add` per item),
/// clamped to [1, 256]. Callers used to hard-code guesses (4, 16, …) that
/// degraded to one block per worker on small inputs and to thousands of
/// cursor bumps on large ones.
pub fn block_for(len: usize, workers: usize) -> usize {
    (len / (workers.max(1) * 8)).clamp(1, 256)
}

/// Dynamic work stealing over items `0..len` in blocks of `block` — used
/// where per-item cost is highly skewed (e.g. polygons with very different
/// fragment counts).
pub fn parallel_dynamic<F>(len: usize, workers: usize, block: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = workers.max(1).min(len.max(1));
    if workers == 1 || len == 0 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let block = block.max(1);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let f = &f;
            let cursor = &cursor;
            s.spawn(move |_| loop {
                let start = cursor.fetch_add(block, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + block).min(len);
                for i in start..end {
                    f(i);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_ranges_covers_every_index_once() {
        let n = 10_001;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_ranges(n, 8, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_ranges_handles_empty_and_single() {
        parallel_ranges(0, 4, |s, e| assert_eq!(s, e));
        let sum = AtomicU64::new(0);
        parallel_ranges(1, 4, |s, e| {
            sum.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_dynamic_covers_every_index_once() {
        let n = 5_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_dynamic(n, 6, 37, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn block_for_scales_with_len_and_workers() {
        assert_eq!(block_for(0, 4), 1);
        assert_eq!(block_for(10, 4), 1);
        assert_eq!(block_for(320, 4), 10);
        assert_eq!(block_for(1 << 20, 8), 256); // clamped
        assert_eq!(block_for(100, 0), 12); // degenerate workers treated as 1
    }

    #[test]
    fn workers_capped_by_len() {
        // Must not spawn more work than items; just exercises the path.
        let count = AtomicU64::new(0);
        parallel_ranges(3, 64, |s, e| {
            count.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }
}
