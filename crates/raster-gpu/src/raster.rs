//! Rasterization: the driver stage the paper leans on (§3).
//!
//! * [`rasterize_triangle`] implements the hardware sampling contract:
//!   a pixel belongs to a triangle iff its **center** lies inside, with a
//!   bottom-left tie rule so that triangles sharing an edge never sample a
//!   pixel twice. This is precisely the behaviour that creates the bounded
//!   variant's false negatives (§4.2).
//! * [`rasterize_segment_conservative`] marks **every** pixel a segment
//!   touches (supercover traversal) — the `GL_NV_conservative_raster`
//!   stand-in used for polygon outlines (§4.3 step 1, §5).
//! * [`rasterize_triangle_conservative`] marks every pixel whose square
//!   intersects the triangle (center-sampled interior ∪ conservative
//!   edges).
//!
//! All coordinates are *continuous screen coordinates* in pixels: pixel
//! `(x, y)` covers `[x, x+1) × [y, y+1)` and its center is
//! `(x + 0.5, y + 0.5)`.

/// A triangle in continuous screen coordinates.
pub type ScreenTri = [(f64, f64); 3];

#[inline]
fn orient(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> f64 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

/// Rasterize a triangle over a `width`×`height` grid, invoking `emit` for
/// each covered pixel. Center sampling with the bottom-left fill rule:
/// a center exactly on an edge counts only when that edge is a bottom edge
/// (horizontal, interior above) or a left edge (going down, interior to the
/// right) of the CCW-oriented triangle.
pub fn rasterize_triangle<F: FnMut(u32, u32)>(
    tri: ScreenTri,
    width: u32,
    height: u32,
    mut emit: F,
) {
    let mut v = tri;
    let area2 = orient(v[0], v[1], v[2]);
    if area2 == 0.0 {
        return; // degenerate: hardware drops zero-area triangles
    }
    if area2 < 0.0 {
        v.swap(1, 2); // normalise to CCW
    }

    // Clamp the scan window to the viewport.
    let min_x = v.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let max_x = v.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let min_y = v.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let max_y = v.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    if max_x < 0.0 || max_y < 0.0 || min_x >= width as f64 || min_y >= height as f64 {
        return;
    }
    let x0 = (min_x.floor().max(0.0)) as u32;
    let y0 = (min_y.floor().max(0.0)) as u32;
    let x1 = (max_x.ceil().min(width as f64) as u32).min(width);
    let y1 = (max_y.ceil().min(height as f64) as u32).min(height);

    // Edge i runs v[i] -> v[(i+1)%3]; E_i > 0 strictly inside.
    // E(px,py) = (x1-x0)*(py-y0) - (y1-y0)*(px-x0)
    let mut a = [0.0f64; 3]; // coefficient of py
    let mut b = [0.0f64; 3]; // coefficient of px
    let mut c = [0.0f64; 3];
    let mut tie_ok = [false; 3];
    for i in 0..3 {
        let p = v[i];
        let q = v[(i + 1) % 3];
        let dx = q.0 - p.0;
        let dy = q.1 - p.1;
        a[i] = dx;
        b[i] = -dy;
        c[i] = -(dx * p.1) + dy * p.0;
        // Bottom edge (dy == 0, dx > 0) or left edge (dy < 0).
        tie_ok[i] = (dy == 0.0 && dx > 0.0) || dy < 0.0;
    }

    for py in y0..y1 {
        let cy = py as f64 + 0.5;
        for px in x0..x1 {
            let cx = px as f64 + 0.5;
            let mut inside = true;
            for i in 0..3 {
                let e = a[i] * cy + b[i] * cx + c[i];
                if e < 0.0 || (e == 0.0 && !tie_ok[i]) {
                    inside = false;
                    break;
                }
            }
            if inside {
                emit(px, py);
            }
        }
    }
}

/// Span-based triangle rasterization: identical pixel coverage to
/// [`rasterize_triangle`] (pixel-center sampling, bottom-left tie rule),
/// but emits one contiguous `[x0, x1)` span per row instead of testing
/// every pixel. This is the fast path of the fragment stage: the span
/// bounds come from solving the three edge functions for `x` at the row's
/// center, so the per-pixel work in the caller collapses to a sequential
/// FBO scan.
///
/// Tie-rule exactness: a shared edge appears with negated coefficients in
/// the adjacent triangle, and IEEE division gives bit-identical bounds
/// for `(-p)/(-q)` and `p/q`, so a pixel center exactly on a shared edge
/// still lands in exactly one triangle.
pub fn rasterize_triangle_spans<F: FnMut(u32, u32, u32)>(
    tri: ScreenTri,
    width: u32,
    height: u32,
    mut emit_span: F,
) {
    let mut v = tri;
    let area2 = orient(v[0], v[1], v[2]);
    if area2 == 0.0 {
        return;
    }
    if area2 < 0.0 {
        v.swap(1, 2);
    }
    let min_x = v.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let max_x = v.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let min_y = v.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let max_y = v.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    if max_x < 0.0 || max_y < 0.0 || min_x >= width as f64 || min_y >= height as f64 {
        return;
    }
    let y0 = (min_y.floor().max(0.0)) as u32;
    let y1 = (max_y.ceil().min(height as f64) as u32).min(height);
    let bx0 = (min_x.floor().max(0.0)) as u32;
    let bx1 = (max_x.ceil().min(width as f64) as u32).min(width);

    // Edge i: E(cx, cy) = a*cy + b*cx + c, inside ⇔ E > 0 (or E == 0 when
    // the edge is bottom/left).
    let mut a = [0.0f64; 3];
    let mut b = [0.0f64; 3];
    let mut cc = [0.0f64; 3];
    let mut tie_ok = [false; 3];
    for i in 0..3 {
        let p = v[i];
        let q = v[(i + 1) % 3];
        let dx = q.0 - p.0;
        let dy = q.1 - p.1;
        a[i] = dx;
        b[i] = -dy;
        cc[i] = -(dx * p.1) + dy * p.0;
        tie_ok[i] = (dy == 0.0 && dx > 0.0) || dy < 0.0;
    }

    // Per-edge row bound as a linear function of cy: the edge crosses a
    // row's center line at cx = t(cy) = base + slope·cy, precomputed so
    // the per-row work is one fused multiply-add per edge instead of a
    // division. Shared-edge exactness is preserved: the reversed edge has
    // all coefficients negated and (-c)/(-b) ≡ c/b, (-a)/(-b) ≡ a/b in
    // IEEE arithmetic, so both triangles compute bit-identical bounds.
    let mut base = [0.0f64; 3];
    let mut slope = [0.0f64; 3];
    for i in 0..3 {
        if b[i] != 0.0 {
            base[i] = -cc[i] / b[i];
            slope[i] = -a[i] / b[i];
        }
    }

    for py in y0..y1 {
        let cy = py as f64 + 0.5;
        // Feasible cx interval from the three linear constraints.
        let mut k_lo = bx0 as i64; // first pixel index included
        let mut k_hi = bx1 as i64; // one past the last pixel included
        let mut empty = false;
        for i in 0..3 {
            if b[i] == 0.0 {
                // Row-wide accept/reject (horizontal edge).
                let rhs = a[i] * cy + cc[i];
                if rhs < 0.0 || (rhs == 0.0 && !tie_ok[i]) {
                    empty = true;
                    break;
                }
            } else {
                let t = base[i] + slope[i] * cy; // E == 0 at cx == t
                if b[i] > 0.0 {
                    // cx >= t (or > t when ties excluded).
                    // First pixel k with k + 0.5 >= t:
                    let mut k = (t - 0.5).ceil() as i64;
                    if (k as f64 + 0.5) < t {
                        k += 1; // rounding guard
                    }
                    if (k as f64 + 0.5) == t && !tie_ok[i] {
                        k += 1;
                    }
                    k_lo = k_lo.max(k);
                } else {
                    // cx <= t (or < t when ties excluded).
                    // Last pixel k with k + 0.5 <= t:
                    let mut k = (t - 0.5).floor() as i64;
                    if (k as f64 + 0.5) > t {
                        k -= 1;
                    }
                    if (k as f64 + 0.5) == t && !tie_ok[i] {
                        k -= 1;
                    }
                    k_hi = k_hi.min(k + 1);
                }
            }
        }
        if empty {
            continue;
        }
        let k_lo = k_lo.max(bx0 as i64);
        let k_hi = k_hi.min(bx1 as i64);
        if k_lo < k_hi {
            emit_span(py, k_lo as u32, k_hi as u32);
        }
    }
}

/// Scanline rasterization of a whole polygon (outer ring + holes) with an
/// active-edge table: for each pixel row, the even–odd crossings of the
/// boundary with the row's center line delimit the covered spans.
///
/// Coverage semantics: a pixel is covered iff its center is inside the
/// polygon under the same even–odd rule as `point_in_ring` (centers
/// exactly on a left span boundary are in, on a right boundary out), so
/// polygons tiling the plane still cover each pixel exactly once.
///
/// Rationale: hardware must decompose polygons into triangles (§3 of the
/// paper); a software rasterizer need not. Scan-converting the polygon
/// directly produces one span per row-intersection instead of the many
/// tiny spans of skinny fan triangles — the ablation bench compares the
/// two paths. Crossings are computed directly from edge endpoints per row
/// (no incremental drift), so results are deterministic.
pub fn rasterize_polygon_spans<F: FnMut(u32, u32, u32)>(
    rings: &[&[(f64, f64)]],
    width: u32,
    height: u32,
    mut emit_span: F,
) {
    // Collect non-horizontal edges with their row ranges.
    struct Edge {
        y0: f64, // lower endpoint (inclusive crossing bound)
        y1: f64, // upper endpoint
        x0: f64,
        slope: f64, // dx/dy
    }
    let mut edges: Vec<Edge> = Vec::new();
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for ring in rings {
        let n = ring.len();
        if n < 3 {
            continue;
        }
        for i in 0..n {
            let (px, py) = ring[i];
            let (qx, qy) = ring[(i + 1) % n];
            if py == qy {
                continue; // horizontal: never crosses a center line
            }
            // Normalise so y0 < y1; the crossing rule (py > cy) != (qy > cy)
            // is equivalent to y0 <= cy < y1 after normalisation... with
            // the open/closed convention y0 < cy <= y1 when the edge goes
            // down. Using half-open [y0, y1) on the sorted pair matches
            // the even-odd crossing count of point_in_ring exactly.
            let (y0, y1, x_at_y0, slope) = if py < qy {
                (py, qy, px, (qx - px) / (qy - py))
            } else {
                (qy, py, qx, (px - qx) / (py - qy))
            };
            min_y = min_y.min(y0);
            max_y = max_y.max(y1);
            edges.push(Edge {
                y0,
                y1,
                x0: x_at_y0,
                slope,
            });
        }
    }
    if edges.is_empty() || max_y < 0.0 || min_y >= height as f64 {
        return;
    }
    let row0 = (min_y - 0.5).ceil().max(0.0) as u32; // first row whose center ≥ min_y
    let row1 = ((max_y - 0.5).floor().min(height as f64 - 1.0)) as i64;
    if row1 < row0 as i64 {
        return;
    }
    let row1 = row1 as u32;

    // Bucket edges by first relevant row (the classic AET build).
    let nrows = (row1 - row0 + 1) as usize;
    let mut starts: Vec<Vec<usize>> = vec![Vec::new(); nrows];
    for (i, e) in edges.iter().enumerate() {
        let first = ((e.y0 - 0.5).ceil().max(row0 as f64)) as u32;
        if first <= row1 {
            starts[(first - row0) as usize].push(i);
        }
    }

    let mut active: Vec<usize> = Vec::new();
    let mut xs: Vec<f64> = Vec::new();
    for row in row0..=row1 {
        let cy = row as f64 + 0.5;
        for &e in &starts[(row - row0) as usize] {
            active.push(e);
        }
        // Drop edges whose span no longer covers cy; crossing rule is
        // y0 <= cy < y1 (half-open), matching one crossing per vertex
        // chain passage.
        active.retain(|&i| cy < edges[i].y1);
        if active.is_empty() {
            continue;
        }
        xs.clear();
        for &i in &active {
            let e = &edges[i];
            if cy >= e.y0 {
                xs.push(e.x0 + (cy - e.y0) * e.slope);
            }
        }
        if xs.len() < 2 {
            continue;
        }
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        for pair in xs.chunks_exact(2) {
            // Centers cx with pair[0] <= cx < pair[1].
            let mut k0 = (pair[0] - 0.5).ceil() as i64;
            if (k0 as f64 + 0.5) < pair[0] {
                k0 += 1;
            }
            let mut k1 = (pair[1] - 0.5).ceil() as i64; // first center ≥ x1 (excluded)
            if (k1 as f64 + 0.5) < pair[1] {
                k1 += 1;
            }
            let k0 = k0.max(0);
            let k1 = k1.min(width as i64);
            if k0 < k1 {
                emit_span(row, k0 as u32, k1 as u32);
            }
        }
    }
}

/// Conservative segment rasterization: invoke `emit` for every pixel whose
/// closed unit square the segment `a`–`b` touches (clipped to the grid).
/// Used to draw polygon outlines into the boundary FBO.
pub fn rasterize_segment_conservative<F: FnMut(u32, u32)>(
    a: (f64, f64),
    b: (f64, f64),
    width: u32,
    height: u32,
    mut emit: F,
) {
    // Clip to the grid rectangle [0,w]×[0,h] (Cohen–Sutherland on raw
    // floats, inlined to avoid a geom dependency on screen coords).
    let (w, h) = (width as f64, height as f64);
    let (mut ax, mut ay, mut bx, mut by) = (a.0, a.1, b.0, b.1);
    // Liang–Barsky clipping.
    let dx = bx - ax;
    let dy = by - ay;
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;
    let checks = [(-dx, ax), (dx, w - ax), (-dy, ay), (dy, h - ay)];
    for (p, q) in checks {
        if p == 0.0 {
            if q < 0.0 {
                return; // parallel and outside
            }
        } else {
            let r = q / p;
            if p < 0.0 {
                if r > t1 {
                    return;
                }
                if r > t0 {
                    t0 = r;
                }
            } else {
                if r < t0 {
                    return;
                }
                if r < t1 {
                    t1 = r;
                }
            }
        }
    }
    let (sx, sy) = (ax + dx * t0, ay + dy * t0);
    let (ex, ey) = (ax + dx * t1, ay + dy * t1);
    ax = sx;
    ay = sy;
    bx = ex;
    by = ey;

    let clamp_cell = |x: f64, y: f64| -> (i64, i64) {
        (
            (x.floor() as i64).clamp(0, width as i64 - 1),
            (y.floor() as i64).clamp(0, height as i64 - 1),
        )
    };
    let (mut cx, mut cy) = clamp_cell(ax, ay);
    let (tx_end, ty_end) = clamp_cell(bx, by);
    let emit_cell = |x: i64, y: i64, emit: &mut F| {
        if x >= 0 && y >= 0 && (x as u32) < width && (y as u32) < height {
            emit(x as u32, y as u32);
        }
    };
    emit_cell(cx, cy, &mut emit);

    let ddx = bx - ax;
    let ddy = by - ay;
    let step_x: i64 = if ddx > 0.0 { 1 } else { -1 };
    let step_y: i64 = if ddy > 0.0 { 1 } else { -1 };
    let mut t_max_x = if ddx != 0.0 {
        let next = if ddx > 0.0 {
            (cx + 1) as f64
        } else {
            cx as f64
        };
        (next - ax) / ddx
    } else {
        f64::INFINITY
    };
    let mut t_max_y = if ddy != 0.0 {
        let next = if ddy > 0.0 {
            (cy + 1) as f64
        } else {
            cy as f64
        };
        (next - ay) / ddy
    } else {
        f64::INFINITY
    };
    let t_delta_x = if ddx != 0.0 {
        (1.0 / ddx).abs()
    } else {
        f64::INFINITY
    };
    let t_delta_y = if ddy != 0.0 {
        (1.0 / ddy).abs()
    } else {
        f64::INFINITY
    };

    let max_steps = (width as i64 + height as i64 + 4) * 2;
    let mut steps = 0i64;
    while (cx != tx_end || cy != ty_end) && steps < max_steps {
        if (t_max_x - t_max_y).abs() < 1e-15 {
            // Passing exactly through a pixel corner: conservatively mark
            // both side-adjacent cells too.
            emit_cell(cx + step_x, cy, &mut emit);
            emit_cell(cx, cy + step_y, &mut emit);
            cx += step_x;
            cy += step_y;
            t_max_x += t_delta_x;
            t_max_y += t_delta_y;
        } else if t_max_x < t_max_y {
            cx += step_x;
            t_max_x += t_delta_x;
        } else {
            cy += step_y;
            t_max_y += t_delta_y;
        }
        emit_cell(cx, cy, &mut emit);
        steps += 1;
    }
}

/// Conservative triangle rasterization: every pixel whose square intersects
/// the triangle. Implemented as center-sampled interior ∪ conservative
/// edges, which covers all partially-intersecting pixels.
pub fn rasterize_triangle_conservative<F: FnMut(u32, u32)>(
    tri: ScreenTri,
    width: u32,
    height: u32,
    mut emit: F,
) {
    rasterize_triangle(tri, width, height, &mut emit);
    for i in 0..3 {
        rasterize_segment_conservative(tri[i], tri[(i + 1) % 3], width, height, &mut emit);
    }
}

/// True iff the segment `a`–`b` touches the *closed* unit square of pixel
/// `(px, py)` — Liang–Barsky interval test with inclusive boundaries.
pub fn segment_touches_pixel(a: (f64, f64), b: (f64, f64), px: u32, py: u32) -> bool {
    let (x0, y0) = (px as f64, py as f64);
    let (x1, y1) = (x0 + 1.0, y0 + 1.0);
    let dx = b.0 - a.0;
    let dy = b.1 - a.1;
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;
    for (p, q) in [
        (-dx, a.0 - x0),
        (dx, x1 - a.0),
        (-dy, a.1 - y0),
        (dy, y1 - a.1),
    ] {
        if p == 0.0 {
            if q < 0.0 {
                return false; // parallel to this slab and strictly outside
            }
        } else {
            let r = q / p;
            if p < 0.0 {
                t0 = t0.max(r);
            } else {
                t1 = t1.min(r);
            }
            if t0 > t1 {
                return false;
            }
        }
    }
    true
}

/// The §6.1 conservative-rasterization *fallback*: "On non-Nvidia GPUs,
/// conservative rasterization can be accomplished by drawing a thicker
/// outline and discarding pixels that do not intersect with the drawn
/// polygon."
///
/// Stage 1 draws the segment as a quad of half-width √2/2 (the farthest a
/// pixel center can be from a segment that still touches its square),
/// extended past both endpoints by the same margin so end caps are
/// covered, and rasterizes it with the ordinary center-sampled triangle
/// path — the "thicker outline". Stage 2 is the fragment-shader discard:
/// only pixels whose closed square the original segment actually touches
/// survive ([`segment_touches_pixel`]).
///
/// The emitted set is exactly the ideal conservative coverage, the same
/// set [`rasterize_segment_conservative`] produces via grid traversal
/// (verified against each other in tests and property tests); only the
/// mechanism differs, which is what `ablation_conservative` measures.
pub fn rasterize_segment_thick_outline<F: FnMut(u32, u32)>(
    a: (f64, f64),
    b: (f64, f64),
    width: u32,
    height: u32,
    mut emit: F,
) {
    // Half-width with a relative nudge so centers at *exactly* √2/2 (the
    // segment grazing a pixel corner) land strictly inside the quad
    // rather than on its boundary, where the fill rule could drop them.
    let r = std::f64::consts::FRAC_1_SQRT_2 * (1.0 + 1e-9) + 1e-12;

    let dx = b.0 - a.0;
    let dy = b.1 - a.1;
    let len = (dx * dx + dy * dy).sqrt();

    let mut touched: Vec<(u32, u32)> = Vec::new();
    if len == 0.0 {
        // Degenerate segment: the disk of radius r around the point,
        // covered by a 2r × 2r square.
        let quad = [
            (a.0 - r, a.1 - r),
            (a.0 + r, a.1 - r),
            (a.0 + r, a.1 + r),
            (a.0 - r, a.1 + r),
        ];
        rasterize_triangle([quad[0], quad[1], quad[2]], width, height, |x, y| {
            touched.push((x, y))
        });
        rasterize_triangle([quad[0], quad[2], quad[3]], width, height, |x, y| {
            touched.push((x, y))
        });
    } else {
        // Unit direction and normal; extend r past each endpoint so the
        // rectangle contains the whole stadium around the segment.
        let (ux, uy) = (dx / len, dy / len);
        let (nx, ny) = (-uy, ux);
        let a_ext = (a.0 - ux * r, a.1 - uy * r);
        let b_ext = (b.0 + ux * r, b.1 + uy * r);
        let quad = [
            (a_ext.0 + nx * r, a_ext.1 + ny * r),
            (a_ext.0 - nx * r, a_ext.1 - ny * r),
            (b_ext.0 - nx * r, b_ext.1 - ny * r),
            (b_ext.0 + nx * r, b_ext.1 + ny * r),
        ];
        rasterize_triangle([quad[0], quad[1], quad[2]], width, height, |x, y| {
            touched.push((x, y))
        });
        rasterize_triangle([quad[0], quad[2], quad[3]], width, height, |x, y| {
            touched.push((x, y))
        });
    }

    // Stage 2: the discard pass. The shared diagonal of the two quad
    // triangles never double-emits (tie rule), so no dedup is needed.
    for (x, y) in touched {
        let keep = if len == 0.0 {
            let (x0, y0) = (x as f64, y as f64);
            a.0 >= x0 && a.0 <= x0 + 1.0 && a.1 >= y0 && a.1 <= y0 + 1.0
        } else {
            segment_touches_pixel(a, b, x, y)
        };
        if keep {
            emit(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn collect_tri(tri: ScreenTri, w: u32, h: u32) -> HashSet<(u32, u32)> {
        let mut s = HashSet::new();
        rasterize_triangle(tri, w, h, |x, y| {
            s.insert((x, y));
        });
        s
    }

    fn collect_seg(a: (f64, f64), b: (f64, f64), w: u32, h: u32) -> HashSet<(u32, u32)> {
        let mut s = HashSet::new();
        rasterize_segment_conservative(a, b, w, h, |x, y| {
            s.insert((x, y));
        });
        s
    }

    #[test]
    fn axis_aligned_square_covers_exact_pixels() {
        // Two triangles tiling the square [0,4]×[0,4]: together they cover
        // exactly the 16 pixels, each once.
        let t1: ScreenTri = [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0)];
        let t2: ScreenTri = [(0.0, 0.0), (4.0, 4.0), (0.0, 4.0)];
        let mut count = std::collections::HashMap::new();
        for t in [t1, t2] {
            rasterize_triangle(t, 8, 8, |x, y| {
                *count.entry((x, y)).or_insert(0) += 1;
            });
        }
        assert_eq!(count.len(), 16, "exactly the 4×4 pixels");
        assert!(count.values().all(|&c| c == 1), "no pixel sampled twice");
        for y in 0..4 {
            for x in 0..4 {
                assert!(count.contains_key(&(x, y)));
            }
        }
    }

    #[test]
    fn shared_edges_never_double_sample() {
        // A fan of 4 triangles around the center of an 8×8 square: every
        // covered pixel must be emitted exactly once in total.
        let c = (4.0, 4.0);
        let corners = [(0.0, 0.0), (8.0, 0.0), (8.0, 8.0), (0.0, 8.0)];
        let mut count = std::collections::HashMap::new();
        for i in 0..4 {
            let t: ScreenTri = [c, corners[i], corners[(i + 1) % 4]];
            rasterize_triangle(t, 8, 8, |x, y| {
                *count.entry((x, y)).or_insert(0) += 1;
            });
        }
        assert_eq!(count.len(), 64);
        assert!(
            count.values().all(|&v| v == 1),
            "fan must partition the pixels: {count:?}"
        );
    }

    #[test]
    fn winding_direction_is_irrelevant() {
        let ccw: ScreenTri = [(0.0, 0.0), (6.0, 0.0), (3.0, 5.0)];
        let cw: ScreenTri = [(0.0, 0.0), (3.0, 5.0), (6.0, 0.0)];
        assert_eq!(collect_tri(ccw, 8, 8), collect_tri(cw, 8, 8));
    }

    #[test]
    fn degenerate_triangle_emits_nothing() {
        let t: ScreenTri = [(0.0, 0.0), (4.0, 4.0), (8.0, 8.0)];
        assert!(collect_tri(t, 16, 16).is_empty());
    }

    fn collect_thick(a: (f64, f64), b: (f64, f64), w: u32, h: u32) -> HashSet<(u32, u32)> {
        let mut s = HashSet::new();
        rasterize_segment_thick_outline(a, b, w, h, |x, y| {
            s.insert((x, y));
        });
        s
    }

    /// Independent oracle: every grid pixel whose closed square the
    /// segment touches, found by exhaustive square-vs-segment tests built
    /// from first principles (endpoint-in-square or an edge crossing).
    fn ideal_conservative(a: (f64, f64), b: (f64, f64), w: u32, h: u32) -> HashSet<(u32, u32)> {
        use raster_geom::predicates::segments_intersect;
        use raster_geom::Point;
        let pa = Point::new(a.0, a.1);
        let pb = Point::new(b.0, b.1);
        let mut s = HashSet::new();
        for y in 0..h {
            for x in 0..w {
                let (x0, y0) = (x as f64, y as f64);
                let corners = [
                    Point::new(x0, y0),
                    Point::new(x0 + 1.0, y0),
                    Point::new(x0 + 1.0, y0 + 1.0),
                    Point::new(x0, y0 + 1.0),
                ];
                let inside =
                    |p: Point| p.x >= x0 && p.x <= x0 + 1.0 && p.y >= y0 && p.y <= y0 + 1.0;
                let mut touch = inside(pa) || inside(pb);
                for i in 0..4 {
                    if touch {
                        break;
                    }
                    touch = segments_intersect(pa, pb, corners[i], corners[(i + 1) % 4]);
                }
                if touch {
                    s.insert((x, y));
                }
            }
        }
        s
    }

    #[test]
    fn thick_outline_matches_ideal_conservative_coverage() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..300 {
            let a = (rng.gen_range(-2.0..18.0), rng.gen_range(-2.0..18.0));
            let b = (rng.gen_range(-2.0..18.0), rng.gen_range(-2.0..18.0));
            let got = collect_thick(a, b, 16, 16);
            let want = ideal_conservative(a, b, 16, 16);
            assert_eq!(got, want, "segment {a:?}–{b:?}");
        }
    }

    #[test]
    fn thick_outline_agrees_with_dda_traversal() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..300 {
            let a = (rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
            let b = (rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
            let thick = collect_thick(a, b, 16, 16);
            let dda = collect_seg(a, b, 16, 16);
            // The DDA path may conservatively over-emit at exact corner
            // crossings; it must never cover less than the fallback.
            assert!(
                thick.is_subset(&dda) || thick == dda,
                "segment {a:?}–{b:?}: thick {:?} vs dda {:?}",
                thick.difference(&dda).collect::<Vec<_>>(),
                dda.difference(&thick).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn thick_outline_exact_grid_cases() {
        // Axis-aligned segment along a pixel row interior.
        let s = collect_thick((0.5, 2.5), (7.5, 2.5), 8, 8);
        assert_eq!(s, (0..8).map(|x| (x, 2)).collect::<HashSet<_>>());
        // Along a pixel boundary: touches the closed squares on both sides.
        let s = collect_thick((0.5, 3.0), (6.5, 3.0), 8, 8);
        for x in 0..7 {
            assert!(s.contains(&(x, 2)) && s.contains(&(x, 3)), "column {x}");
        }
        // Through a pixel corner: all four adjacent squares touch.
        let s = collect_thick((3.0, 3.0), (5.0, 5.0), 8, 8);
        for c in [(2, 2), (3, 3), (4, 4), (2, 3), (3, 2), (3, 4), (4, 3)] {
            assert!(s.contains(&c), "missing {c:?}");
        }
        // Degenerate point inside one pixel.
        let s = collect_thick((4.5, 4.5), (4.5, 4.5), 8, 8);
        assert_eq!(s, HashSet::from([(4, 4)]));
        // Degenerate point on a corner: all four closed squares.
        let s = collect_thick((4.0, 4.0), (4.0, 4.0), 8, 8);
        assert_eq!(s, HashSet::from([(3, 3), (4, 3), (3, 4), (4, 4)]));
    }

    #[test]
    fn thick_outline_clips_to_grid() {
        // Fully outside.
        assert!(collect_thick((-10.0, -10.0), (-5.0, -2.0), 8, 8).is_empty());
        // Crossing the grid: only in-grid pixels appear, and the segment's
        // in-grid portion is covered.
        let s = collect_thick((-4.0, 4.5), (12.0, 4.5), 8, 8);
        assert_eq!(s, (0..8).map(|x| (x, 4)).collect::<HashSet<_>>());
    }

    #[test]
    fn segment_touches_pixel_boundary_semantics() {
        // A segment lying on the right edge of pixel (2, 2) touches both
        // (2, 2) and (3, 2): closed squares.
        assert!(segment_touches_pixel((3.0, 2.2), (3.0, 2.8), 2, 2));
        assert!(segment_touches_pixel((3.0, 2.2), (3.0, 2.8), 3, 2));
        assert!(!segment_touches_pixel((3.0, 2.2), (3.0, 2.8), 4, 2));
        // Touching only a corner counts.
        assert!(segment_touches_pixel((0.0, 6.0), (6.0, 0.0), 2, 2));
    }

    #[test]
    fn sub_pixel_triangle_missing_centers_emits_nothing() {
        // Small triangle in a pixel corner, away from the center: classic
        // false-negative case of §4.2.
        let t: ScreenTri = [(0.0, 0.0), (0.3, 0.0), (0.0, 0.3)];
        assert!(collect_tri(t, 4, 4).is_empty());
        // But conservative rasterization catches it.
        let mut s = HashSet::new();
        rasterize_triangle_conservative(t, 4, 4, |x, y| {
            s.insert((x, y));
        });
        assert!(s.contains(&(0, 0)));
    }

    #[test]
    fn clipping_to_viewport() {
        // Triangle mostly outside the 4×4 viewport.
        let t: ScreenTri = [(-10.0, -10.0), (20.0, -10.0), (5.0, 20.0)];
        let s = collect_tri(t, 4, 4);
        assert!(!s.is_empty());
        assert!(s.iter().all(|&(x, y)| x < 4 && y < 4));
    }

    #[test]
    fn pixel_centers_decide_membership() {
        // Right triangle with legs of 4: pixel (x,y) covered iff center
        // strictly inside x + y < 4 half plane (hypotenuse from (0,4)-(4,0)):
        // center (0.5+x)+(0.5+y) < 4 → x+y < 3.
        let t: ScreenTri = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)];
        let s = collect_tri(t, 8, 8);
        for y in 0..8u32 {
            for x in 0..8u32 {
                // Centers on the hypotenuse (x + y == 3 → cx + cy == 4) sit
                // exactly on an edge going up-left (dy > 0): not a bottom or
                // left edge, so the tie rule excludes them.
                let expected = x + y < 3;
                assert_eq!(s.contains(&(x, y)), expected, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn horizontal_segment_covers_row() {
        let s = collect_seg((0.5, 2.5), (7.5, 2.5), 8, 8);
        for x in 0..8 {
            assert!(s.contains(&(x, 2)), "missing ({x},2)");
        }
        assert!(s.iter().all(|&(_, y)| y == 2));
    }

    #[test]
    fn diagonal_segment_is_supercover() {
        // Diagonal through pixel corners: supercover marks both adjacent
        // pixels at each corner crossing.
        let s = collect_seg((0.0, 0.0), (4.0, 4.0), 8, 8);
        for d in 0..4 {
            assert!(s.contains(&(d, d)), "missing diagonal pixel {d}");
        }
        // Corner-adjacent cells must also be present (conservative).
        assert!(s.contains(&(1, 0)) || s.contains(&(0, 1)));
    }

    #[test]
    fn segment_outside_grid_emits_nothing() {
        assert!(collect_seg((-5.0, -5.0), (-1.0, -2.0), 8, 8).is_empty());
        assert!(collect_seg((9.0, 0.0), (9.0, 8.0), 8, 8).is_empty());
    }

    #[test]
    fn segment_crossing_grid_is_clipped() {
        let s = collect_seg((-10.0, 4.5), (20.0, 4.5), 8, 8);
        assert_eq!(s.len(), 8);
        for x in 0..8 {
            assert!(s.contains(&(x, 4)));
        }
    }

    #[test]
    fn steep_segment_touches_every_row() {
        let s = collect_seg((3.2, 0.1), (3.9, 7.9), 8, 8);
        let rows: HashSet<u32> = s.iter().map(|&(_, y)| y).collect();
        assert_eq!(rows.len(), 8);
    }

    fn collect_spans(tri: ScreenTri, w: u32, h: u32) -> HashSet<(u32, u32)> {
        let mut s = HashSet::new();
        rasterize_triangle_spans(tri, w, h, |y, x0, x1| {
            for x in x0..x1 {
                s.insert((x, y));
            }
        });
        s
    }

    #[test]
    fn spans_equal_per_pixel_rasterization() {
        let tris: Vec<ScreenTri> = vec![
            [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0)],
            [(0.0, 0.0), (4.0, 4.0), (0.0, 4.0)],
            [(1.2, 0.7), (6.8, 2.1), (3.3, 6.9)],
            [(0.0, 0.0), (6.0, 0.0), (3.0, 5.0)],
            [(-3.0, -2.0), (11.0, 1.0), (4.0, 9.5)], // needs clipping
            [(2.0, 2.0), (2.0, 6.0), (6.0, 2.0)],    // CW
            [(0.25, 0.25), (0.75, 0.3), (0.5, 0.8)], // sub-pixel
        ];
        for (i, t) in tris.iter().enumerate() {
            assert_eq!(
                collect_spans(*t, 8, 8),
                collect_tri(*t, 8, 8),
                "triangle {i}"
            );
        }
    }

    #[test]
    fn spans_partition_shared_edges_exactly() {
        // Fan around the center: spans from the four triangles must cover
        // each pixel exactly once, including centers on the diagonals.
        let c = (4.0, 4.0);
        let corners = [(0.0, 0.0), (8.0, 0.0), (8.0, 8.0), (0.0, 8.0)];
        let mut count = std::collections::HashMap::new();
        for i in 0..4 {
            let t: ScreenTri = [c, corners[i], corners[(i + 1) % 4]];
            rasterize_triangle_spans(t, 8, 8, |y, x0, x1| {
                for x in x0..x1 {
                    *count.entry((x, y)).or_insert(0) += 1;
                }
            });
        }
        assert_eq!(count.len(), 64);
        assert!(count.values().all(|&v| v == 1), "{count:?}");
    }

    #[test]
    fn spans_of_random_triangles_match_per_pixel() {
        // Pseudo-random triangles with awkward coordinates.
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 24.0 - 4.0
        };
        for i in 0..200 {
            let t: ScreenTri = [(next(), next()), (next(), next()), (next(), next())];
            assert_eq!(
                collect_spans(t, 16, 16),
                collect_tri(t, 16, 16),
                "random triangle {i}: {t:?}"
            );
        }
    }

    fn collect_poly(rings: &[&[(f64, f64)]], w: u32, h: u32) -> HashSet<(u32, u32)> {
        let mut s = HashSet::new();
        rasterize_polygon_spans(rings, w, h, |y, x0, x1| {
            for x in x0..x1 {
                s.insert((x, y));
            }
        });
        s
    }

    #[test]
    fn polygon_scanline_matches_triangle_coverage_for_convex_shapes() {
        // A convex quad equals its two triangles' union.
        let quad = [(1.0, 1.0), (7.0, 2.0), (6.5, 6.0), (2.0, 5.5)];
        let t1: ScreenTri = [quad[0], quad[1], quad[2]];
        let t2: ScreenTri = [quad[0], quad[2], quad[3]];
        let mut tri_cov = collect_tri(t1, 8, 8);
        tri_cov.extend(collect_tri(t2, 8, 8));
        let poly_cov = collect_poly(&[&quad], 8, 8);
        assert_eq!(poly_cov, tri_cov);
    }

    #[test]
    fn polygon_scanline_handles_concave_shapes() {
        // The "U": the notch must be uncovered.
        let u = [
            (0.0, 0.0),
            (8.0, 0.0),
            (8.0, 8.0),
            (5.0, 8.0),
            (5.0, 3.0),
            (3.0, 3.0),
            (3.0, 8.0),
            (0.0, 8.0),
        ];
        let s = collect_poly(&[&u[..]], 8, 8);
        assert!(s.contains(&(1, 6)));
        assert!(s.contains(&(6, 6)));
        assert!(s.contains(&(4, 1)));
        assert!(!s.contains(&(4, 5)), "notch interior must be empty");
    }

    #[test]
    fn polygon_scanline_respects_holes() {
        let outer = [(0.0, 0.0), (8.0, 0.0), (8.0, 8.0), (0.0, 8.0)];
        let hole = [(3.0, 3.0), (5.0, 3.0), (5.0, 5.0), (3.0, 5.0)];
        let s = collect_poly(&[&outer[..], &hole[..]], 8, 8);
        assert!(s.contains(&(1, 1)));
        assert!(!s.contains(&(3, 3)), "hole interior excluded");
        assert!(!s.contains(&(4, 4)));
        assert_eq!(s.len(), 64 - 4);
    }

    #[test]
    fn adjacent_polygons_tile_without_overlap() {
        // Two rectangles sharing the edge x = 4 cover each pixel once.
        let left = [(0.0, 0.0), (4.0, 0.0), (4.0, 8.0), (0.0, 8.0)];
        let right = [(4.0, 0.0), (8.0, 0.0), (8.0, 8.0), (4.0, 8.0)];
        let mut count = std::collections::HashMap::new();
        for r in [&left[..], &right[..]] {
            rasterize_polygon_spans(&[r], 8, 8, |y, x0, x1| {
                for x in x0..x1 {
                    *count.entry((x, y)).or_insert(0) += 1;
                }
            });
        }
        assert_eq!(count.len(), 64);
        assert!(count.values().all(|&c| c == 1), "{count:?}");
    }

    #[test]
    fn polygon_scanline_clips_to_canvas() {
        let big = [(-10.0, -10.0), (20.0, -10.0), (20.0, 20.0), (-10.0, 20.0)];
        let s = collect_poly(&[&big[..]], 4, 4);
        assert_eq!(s.len(), 16);
        let off = [(10.0, 10.0), (12.0, 10.0), (11.0, 12.0)];
        assert!(collect_poly(&[&off[..]], 4, 4).is_empty());
    }

    #[test]
    fn polygon_scanline_matches_point_in_ring_semantics() {
        // Random-ish star polygon: coverage equals per-center PIP.
        let mut pts = Vec::new();
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let n = 14;
        for i in 0..n {
            let ang = i as f64 / n as f64 * std::f64::consts::TAU;
            let r = 3.0 + 4.5 * next();
            pts.push((8.0 + r * ang.cos(), 8.0 + r * ang.sin()));
        }
        let cov = collect_poly(&[&pts[..]], 16, 16);
        let ring: Vec<raster_geom::Point> = pts
            .iter()
            .map(|&(x, y)| raster_geom::Point::new(x, y))
            .collect();
        for y in 0..16u32 {
            for x in 0..16u32 {
                let center = raster_geom::Point::new(x as f64 + 0.5, y as f64 + 0.5);
                let inside = raster_geom::predicates::point_in_ring(&ring, center);
                assert_eq!(
                    cov.contains(&(x, y)),
                    inside,
                    "pixel ({x},{y}), center {center:?}"
                );
            }
        }
    }

    #[test]
    fn conservative_triangle_superset_of_center_sampled() {
        let t: ScreenTri = [(1.2, 0.7), (6.8, 2.1), (3.3, 6.9)];
        let center = collect_tri(t, 8, 8);
        let mut cons = HashSet::new();
        rasterize_triangle_conservative(t, 8, 8, |x, y| {
            cons.insert((x, y));
        });
        assert!(center.is_subset(&cons));
        assert!(cons.len() > center.len());
    }
}
