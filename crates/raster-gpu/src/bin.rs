//! Tile binning: assign each point to its canvas tile once per batch.
//!
//! # Why this pass exists
//!
//! The paper's DrawPoints procedure (§4.1, §5) uploads the point VBO once
//! and lets the *hardware* clip each point against the active viewport, so
//! multi-canvas rendering (Fig. 5) costs one vertex-shader pass per tile
//! but no extra host work. A software rasterizer that imitates that
//! literally pays O(points × tiles): every tile pass re-runs the filter
//! predicates and the world→screen transform over the *full* batch only to
//! clip most points away. Binning restores the paper's cost model on the
//! CPU: one pass over the batch classifies every surviving point into the
//! tile that will render it (storing its precomputed pixel index), and
//! each tile's DrawPoints then touches only its own points — O(points +
//! fragments) per batch, like the hardware pipeline.
//!
//! # Mapping to the paper's passes
//!
//! * **Vertex stage / clipping** → [`bin_points`]: predicate filtering and
//!   the world→pixel transform run exactly once per point per batch; the
//!   per-tile acceptance test is byte-compatible with
//!   [`Viewport::pixel_of`] on the split tiles, so binned execution
//!   produces identical counts to per-tile rescans (property-tested).
//! * **Fragment blending (Procedure DrawPoints line 5)** → the consumer
//!   replays a tile's [`BinnedBatch::tile`] entries into the point FBO,
//!   either atomically ([`crate::PointFbo::blend_add_idx`]) or through
//!   private per-worker shards ([`crate::framebuffer::ShardSet`]) merged
//!   after the scan — see `framebuffer` for the contention analysis.
//! * **Multi-canvas rendering (Fig. 5)** → [`CanvasTiling`] owns the full
//!   ε-derived canvas and its device-limit split, replacing the bare
//!   `Vec<Viewport>` the join operators used to thread around.
//!
//! The same decomposition drives tile-binned GPU software rasterizers
//! (points are bucketed by the tile that consumes them, then each tile is
//! processed by one block with private accumulators); here it is the
//! difference between rescanning 10M points 16 times and scanning them
//! once.

use crate::exec::{parallel_dynamic, parallel_ranges};
use crate::Viewport;
use parking_lot::Mutex;
use raster_geom::Point;

/// Pipeline toggles for the binned/sharded execution paths. Both default
/// to **on**; the ablation bench and equivalence tests flip them
/// individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasterConfig {
    /// Bin points to canvas tiles once per batch instead of rescanning the
    /// whole batch per tile. Consumers skip binning on single-tile
    /// canvases, where the direct blend already touches each point once
    /// and the staging buffer would be pure overhead.
    pub binning: bool,
    /// Blend point fragments into private per-worker shards merged after
    /// the scan, instead of atomics on the shared FBO.
    pub sharding: bool,
}

impl Default for RasterConfig {
    fn default() -> Self {
        RasterConfig {
            binning: true,
            sharding: true,
        }
    }
}

/// Sharding pays an O(pixels × shards) merge per tile; below this many
/// entries per pixel the atomic path's contention is cheaper than the
/// merge bandwidth, so a sharding-enabled config still uses atomics for
/// sparse tiles. (The ablation bench runs well above this density.)
///
/// The density crossover was re-measured under the chunk-parallel
/// streaming pool: with a single worker there is no atomic contention at
/// all — the shard merge is pure overhead at *any* density — so the gate
/// now also requires `workers > 1`. Above one worker the 0.5 entries per
/// pixel threshold still holds: contention on the shared FBO grows with
/// the entry density, while the merge cost is flat in it.
pub const SHARD_MIN_DENSITY: f64 = 0.5;

impl RasterConfig {
    /// The pre-binning pipeline: per-tile rescans + atomic FBO blending.
    pub fn naive() -> Self {
        RasterConfig {
            binning: false,
            sharding: false,
        }
    }

    /// The sharding density gate, shared by every executor (bounded,
    /// accurate) and mirrored by the planner's cost model: does this
    /// tile's expected point load justify the O(pixels × shards) merge?
    /// A single worker never shards — private shards only pay off against
    /// atomic contention, which needs at least two blending threads (see
    /// [`SHARD_MIN_DENSITY`] for the density crossover).
    pub fn use_shards(&self, entries: usize, pixels: usize, workers: usize) -> bool {
        self.sharding && workers > 1 && entries as f64 >= SHARD_MIN_DENSITY * pixels as f64
    }
}

/// The ε-derived canvas plus its split into device-sized tiles (Fig. 5),
/// in the row-major order [`Viewport::split`] produces.
#[derive(Debug, Clone)]
pub struct CanvasTiling {
    pub full: Viewport,
    pub tiles: Vec<Viewport>,
    pub tiles_x: u32,
    pub tiles_y: u32,
    pub max_dim: u32,
}

impl CanvasTiling {
    pub fn new(full: Viewport, max_dim: u32) -> Self {
        assert!(max_dim > 0);
        let tiles = full.split(max_dim);
        CanvasTiling {
            tiles_x: full.width.div_ceil(max_dim),
            tiles_y: full.height.div_ceil(max_dim),
            full,
            tiles,
            max_dim,
        }
    }

    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }
}

/// One batch of points binned by canvas tile, CSR over tiles. Entries
/// store the precomputed **linear pixel index** within their tile (so the
/// blend loop is a pure scatter) plus the aggregated attribute value when
/// the query has one.
pub struct BinnedBatch {
    offsets: Vec<u32>,
    /// Linear pixel index (`y * tile_width + x`) per entry, tile-grouped.
    idx: Vec<u32>,
    /// Attribute value per entry; empty for COUNT-only queries.
    values: Vec<f32>,
}

impl BinnedBatch {
    /// Total entries across all tiles (= points accepted by some tile).
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Pixel indices and (if aggregated) values of one tile's points.
    pub fn tile(&self, ti: usize) -> (&[u32], Option<&[f32]>) {
        let lo = self.offsets[ti] as usize;
        let hi = self.offsets[ti + 1] as usize;
        let vals = if self.values.is_empty() {
            None
        } else {
            Some(&self.values[lo..hi])
        };
        (&self.idx[lo..hi], vals)
    }
}

/// Per-worker accumulation buffers: one (idx, values) pair per tile,
/// tagged with the worker's range start for deterministic ordering.
struct LocalBins {
    start: usize,
    idx: Vec<Vec<u32>>,
    values: Vec<Vec<f32>>,
}

/// Floor (in pixels) for the seam margin below which the fast
/// global-transform tile assignment is not trusted. The real margin is
/// computed per canvas in [`BinGeom::new`]: the full-canvas and per-tile
/// transforms diverge by a few ULP of the *world coordinates* divided by
/// the pixel size, so the margin scales as `64·ε_f64·max|coord| / pw`
/// (large-magnitude coordinates on fine canvases — e.g. web-mercator
/// metres at sub-metre ε — need a wider band than small local frames).
/// Outside the margin the two transforms provably floor to the same
/// pixel; inside it the exhaustive per-tile probe decides. Points placed
/// *exactly* on seams (fractional part 0) always take the exact path.
const SEAM_MARGIN_FLOOR: f64 = 1e-9;

/// Precomputed candidate-tile geometry: reciprocal-multiply forms of the
/// full-canvas transform. Only used to *pick* tiles to probe — the
/// authoritative accept/reject is always [`Viewport::pixel_of`] on the
/// tile, so the ≲1-ulp divergence between `x * (1/w)` and `x / w` is
/// absorbed by the seam guard.
struct BinGeom {
    min_x: f64,
    min_y: f64,
    inv_pw: f64,
    inv_ph: f64,
    inv_md: f64,
    width: f64,
    height: f64,
    md: f64,
    /// Per-axis fast-path guard band in pixels (see [`SEAM_MARGIN_FLOOR`]).
    margin_x: f64,
    margin_y: f64,
    /// Bit-exact hoisted `pixel_of` of the full canvas (fast-path pixel).
    global: crate::viewport::PixelProbe,
    /// Bit-exact hoisted `pixel_of` per tile (see
    /// [`Viewport::pixel_probe`]): the authoritative accept/reject,
    /// without re-deriving the pixel size on every probe.
    probes: Vec<crate::viewport::PixelProbe>,
}

impl BinGeom {
    fn new(tiling: &CanvasTiling) -> Self {
        let ext = &tiling.full.extent;
        let margin = |max_abs: f64, pixel: f64| {
            (64.0 * f64::EPSILON * max_abs / pixel).clamp(SEAM_MARGIN_FLOOR, 0.49)
        };
        BinGeom {
            margin_x: margin(
                ext.min.x.abs().max(ext.max.x.abs()),
                tiling.full.pixel_width(),
            ),
            margin_y: margin(
                ext.min.y.abs().max(ext.max.y.abs()),
                tiling.full.pixel_height(),
            ),
            min_x: tiling.full.extent.min.x,
            min_y: tiling.full.extent.min.y,
            inv_pw: 1.0 / tiling.full.pixel_width(),
            inv_ph: 1.0 / tiling.full.pixel_height(),
            inv_md: 1.0 / tiling.max_dim as f64,
            width: tiling.full.width as f64,
            height: tiling.full.height as f64,
            md: tiling.max_dim as f64,
            global: tiling.full.pixel_probe(),
            probes: tiling.tiles.iter().map(Viewport::pixel_probe).collect(),
        }
    }
}

/// Classify points `0..len` (relative indices; the accessor maps to
/// absolute rows) into the tiles of `tiling`.
///
/// `access(i)` returns `None` when point `i` fails the filter predicates,
/// otherwise its world position and aggregate value. Predicates and the
/// world→screen transform therefore run **once** per point per batch,
/// regardless of the tile count.
///
/// Tile assignment is semantically identical to probing every tile with
/// [`Viewport::pixel_of`] (what the rescan path does): the candidate tile
/// comes from floor arithmetic on the full-canvas coordinates, and when a
/// point lies within half a pixel of a tile seam the adjacent tiles are
/// probed too, so floating-point disagreement between the full-canvas and
/// per-tile transforms at seams cannot drop, duplicate, or misplace a
/// point relative to the rescan path.
pub fn bin_points<F>(
    tiling: &CanvasTiling,
    len: usize,
    workers: usize,
    with_values: bool,
    access: F,
) -> BinnedBatch
where
    F: Fn(usize) -> Option<(Point, f32)> + Sync,
{
    let ntiles = tiling.tile_count();
    let geom = BinGeom::new(tiling);
    let results: Mutex<Vec<LocalBins>> = Mutex::new(Vec::new());

    // Phase 1: every worker bins a contiguous point range into private
    // per-tile buffers — no shared state until the single push at the end.
    let workers = workers.max(1).min(len.max(1));
    // Pre-size local buffers for a uniform spread (2× slack); hotspot
    // tiles grow past this, but the common case never reallocates.
    let reserve = 2 * len.div_ceil(workers) / ntiles.max(1) + 16;
    {
        let (geom, results, access) = (&geom, &results, &access);
        parallel_ranges(len, workers, move |start, end| {
            let mut local = LocalBins {
                start,
                idx: (0..ntiles).map(|_| Vec::with_capacity(reserve)).collect(),
                values: if with_values {
                    (0..ntiles).map(|_| Vec::with_capacity(reserve)).collect()
                } else {
                    Vec::new()
                },
            };
            for i in start..end {
                let Some((p, v)) = access(i) else { continue };
                // Fast path: derive tile and local pixel from the
                // exact full-canvas transform — one probe instead of
                // up to nine per-tile probes. Only valid when the
                // point is clearly inside its pixel: within
                // `SEAM_MARGIN` of any pixel boundary the per-tile
                // transform could round differently, so those points
                // (and global rejects near the outer edge) take the
                // exhaustive per-tile path, keeping the assignment
                // byte-identical to the rescan pipeline everywhere.
                let mut fast = false;
                if let Some((gx, gy)) = geom.global.pixel_of(p) {
                    let sx = (p.x - geom.min_x) * geom.inv_pw;
                    let sy = (p.y - geom.min_y) * geom.inv_ph;
                    let fx = sx - gx as f64;
                    let fy = sy - gy as f64;
                    if fx > geom.margin_x
                        && fx < 1.0 - geom.margin_x
                        && fy > geom.margin_y
                        && fy < 1.0 - geom.margin_y
                    {
                        let tx = gx / tiling.max_dim;
                        let ty = gy / tiling.max_dim;
                        let ti = (ty * tiling.tiles_x + tx) as usize;
                        let lw = geom.probes[ti].width();
                        let pix = (gy - ty * tiling.max_dim) * lw + (gx - tx * tiling.max_dim);
                        local.idx[ti].push(pix);
                        if with_values {
                            local.values[ti].push(v);
                        }
                        fast = true;
                    }
                }
                if !fast {
                    bin_one(tiling, geom, p, |ti, pix| {
                        local.idx[ti].push(pix);
                        if with_values {
                            local.values[ti].push(v);
                        }
                    });
                }
            }
            results.lock().push(local);
        });
    }

    // Phase 2: CSR layout. Buffers are ordered by their range start, so
    // the entry order — hence the f32 blend order within a shard — is
    // deterministic whatever the worker count.
    let mut locals = results.into_inner();
    locals.sort_unstable_by_key(|l| l.start);
    let mut offsets = vec![0u32; ntiles + 1];
    for t in 0..ntiles {
        let total: usize = locals.iter().map(|l| l.idx[t].len()).sum();
        offsets[t + 1] = offsets[t] + total as u32;
    }
    let total = offsets[ntiles] as usize;
    let mut idx = vec![0u32; total];
    let mut values = vec![0f32; if with_values { total } else { 0 }];

    // Parallel scatter: each tile's segment is disjoint, so hand every
    // tile's destination slice to the merge workers without locking.
    let idx_ptr = SendPtr(idx.as_mut_ptr());
    let val_ptr = SendPtr(values.as_mut_ptr());
    let locals = &locals;
    parallel_dynamic(ntiles, workers, 1, |t| {
        // Capture the Send/Sync wrappers, not their raw-pointer fields
        // (edition-2021 closures would otherwise capture the `*mut`s).
        let (idx_ptr, val_ptr) = (&idx_ptr, &val_ptr);
        let mut cursor = offsets[t] as usize;
        for l in locals {
            let src = &l.idx[t];
            // SAFETY: tiles write to disjoint [offsets[t], offsets[t+1])
            // segments; `cursor` stays within this tile's segment because
            // offsets were computed from these exact lengths.
            unsafe {
                std::ptr::copy_nonoverlapping(src.as_ptr(), idx_ptr.0.add(cursor), src.len());
            }
            if with_values {
                let vsrc = &l.values[t];
                // SAFETY: same disjointness argument as the `idx` copy
                // above — `values` was sized with the same offsets, and
                // `vsrc.len() == src.len()` for every local buffer, so
                // this writes the same [offsets[t], offsets[t+1]) segment
                // of the values array that this tile exclusively owns.
                unsafe {
                    std::ptr::copy_nonoverlapping(vsrc.as_ptr(), val_ptr.0.add(cursor), vsrc.len());
                }
            }
            cursor += src.len();
        }
    });

    BinnedBatch {
        offsets,
        idx,
        values,
    }
}

/// Raw pointer that may cross scoped-thread boundaries (writes are to
/// provably disjoint ranges; see the SAFETY comments at use sites).
///
/// The `T: Send` bounds are load-bearing: a `SendPtr<Rc<_>>` shared
/// across threads would otherwise let workers clone non-atomic refcounts
/// concurrently. The scatter loop only instantiates `T = u32` / `T = f32`.
struct SendPtr<T>(*mut T);
// SAFETY: moving the wrapper to another thread moves at most the pointee
// (the pointer itself is plain data), which `T: Send` permits; the
// wrapper exposes no other capability.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: `&SendPtr<T>` hands every thread the raw `*mut T`, i.e. the
// ability to move/write `T`s across threads, so `Sync` needs `T: Send`
// too. Aliasing discipline (disjoint write ranges, no reads until the
// scope joins) is established at each use site.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Assign one world point to its accepting tile(s): emit `(tile index,
/// linear pixel index)` for every tile whose `pixel_of` accepts it.
#[inline]
fn bin_one<E: FnMut(usize, u32)>(tiling: &CanvasTiling, geom: &BinGeom, p: Point, mut emit: E) {
    let sx = (p.x - geom.min_x) * geom.inv_pw;
    let sy = (p.y - geom.min_y) * geom.inv_ph;
    if sx.is_nan() || sy.is_nan() {
        // NaN coordinates defeat candidate arithmetic (casts saturate to
        // 0), and the rescan path's `pixel_of` accepts NaN into pixel
        // (0, 0) of *every* tile (`NaN < 0.0` is false, `NaN as u32` is
        // 0). Garbage in, garbage out — but equivalently on both paths:
        // probe every tile, exactly as the rescan does.
        for (ti, pb) in geom.probes.iter().enumerate() {
            if let Some((x, y)) = pb.pixel_of(p) {
                emit(ti, y * pb.width() + x);
            }
        }
        return;
    }
    if sx < -0.5 || sy < -0.5 || sx > geom.width + 0.5 || sy > geom.height + 0.5 {
        return; // clearly outside the canvas: clipped
    }
    let md = geom.md;
    let tx = ((sx * geom.inv_md) as i64).clamp(0, tiling.tiles_x as i64 - 1);
    let ty = ((sy * geom.inv_md) as i64).clamp(0, tiling.tiles_y as i64 - 1);

    // Seam guard: only tiles whose extent lies within half a pixel of the
    // point can possibly accept it, so probing the candidate plus the
    // adjacent tile(s) when the point sits near a seam reproduces the
    // exhaustive probe exactly.
    let fx = sx - tx as f64 * md;
    let fy = sy - ty as f64 * md;
    let x_lo = tx > 0 && fx < 0.5;
    let x_hi = (tx as u32) < tiling.tiles_x - 1 && fx > md - 0.5;
    let y_lo = ty > 0 && fy < 0.5;
    let y_hi = (ty as u32) < tiling.tiles_y - 1 && fy > md - 0.5;

    let mut probe = |tx: i64, ty: i64| {
        let ti = (ty as usize) * tiling.tiles_x as usize + tx as usize;
        let pb = &geom.probes[ti];
        if let Some((x, y)) = pb.pixel_of(p) {
            emit(ti, y * pb.width() + x);
        }
    };

    probe(tx, ty);
    if x_lo {
        probe(tx - 1, ty);
    }
    if x_hi {
        probe(tx + 1, ty);
    }
    if y_lo {
        probe(tx, ty - 1);
    }
    if y_hi {
        probe(tx, ty + 1);
    }
    // Corner seams: both axes near a boundary.
    if x_lo && y_lo {
        probe(tx - 1, ty - 1);
    }
    if x_hi && y_lo {
        probe(tx + 1, ty - 1);
    }
    if x_lo && y_hi {
        probe(tx - 1, ty + 1);
    }
    if x_hi && y_hi {
        probe(tx + 1, ty + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_geom::BBox;

    fn tiling(w: u32, h: u32, max_dim: u32) -> CanvasTiling {
        let vp = Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 50.0)),
            w,
            h,
        );
        CanvasTiling::new(vp, max_dim)
    }

    /// Reference implementation: probe every tile, as the rescan path does.
    fn exhaustive(tiling: &CanvasTiling, p: Point) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        for (ti, vp) in tiling.tiles.iter().enumerate() {
            if let Some((x, y)) = vp.pixel_of(p) {
                out.push((ti, y * vp.width + x));
            }
        }
        out
    }

    #[test]
    fn tiling_shape_matches_split() {
        let t = tiling(200, 100, 64);
        assert_eq!(t.tiles_x, 4);
        assert_eq!(t.tiles_y, 2);
        assert_eq!(t.tile_count(), 8);
    }

    #[test]
    fn bin_one_matches_exhaustive_probe_on_grid_and_seams() {
        let t = tiling(200, 100, 64);
        let mut probes: Vec<Point> = Vec::new();
        // Dense world-space lattice plus points exactly on pixel and tile
        // seams (x = 32.0 world is the pixel-64 = tile boundary).
        for i in 0..=80 {
            for j in 0..=40 {
                probes.push(Point::new(i as f64 * 1.25, j as f64 * 1.25));
            }
        }
        probes.push(Point::new(32.0, 10.0));
        probes.push(Point::new(64.0, 32.0));
        probes.push(Point::new(-0.001, 5.0));
        probes.push(Point::new(100.0, 50.0));
        let geom = BinGeom::new(&t);
        for p in probes {
            let mut got = Vec::new();
            bin_one(&t, &geom, p, |ti, pix| got.push((ti, pix)));
            got.sort_unstable();
            let mut want = exhaustive(&t, p);
            want.sort_unstable();
            assert_eq!(got, want, "point {p:?}");
        }
    }

    #[test]
    fn bin_points_partitions_accepted_points() {
        let t = tiling(200, 100, 64);
        let pts: Vec<Point> = (0..5_000)
            .map(|i| {
                let x = (i % 101) as f64 - 2.0; // some outside the extent
                let y = (i % 53) as f64;
                Point::new(x, y)
            })
            .collect();
        let binned = bin_points(&t, pts.len(), 4, true, |i| Some((pts[i], i as f32)));
        let expected: usize = pts.iter().map(|p| exhaustive(&t, *p).len()).sum();
        assert_eq!(binned.len(), expected);
        // Every entry's pixel index is inside its tile.
        for ti in 0..t.tile_count() {
            let (idx, vals) = binned.tile(ti);
            let vp = &t.tiles[ti];
            assert_eq!(idx.len(), vals.unwrap().len());
            for &pix in idx {
                assert!((pix as usize) < vp.pixel_count());
            }
        }
    }

    #[test]
    fn fast_path_matches_exhaustive_probe_on_awkward_extent() {
        // Non-representable pixel sizes + a dense random scatter: the
        // global-transform fast path must agree with per-tile pixel_of
        // for every point (the seam margin routes ambiguous ones to the
        // exact path).
        let vp = Viewport::new(
            BBox::new(Point::new(-7.3, 2.9), Point::new(91.7, 61.3)),
            333,
            177,
        );
        let t = CanvasTiling::new(vp, 100);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..20_000)
            .map(|_| Point::new(-10.0 + 105.0 * next(), 0.0 + 64.0 * next()))
            .collect();
        let binned = bin_points(&t, pts.len(), 3, false, |i| Some((pts[i], 0.0)));
        // Aggregate per-tile pixel histograms must match the exhaustive
        // reference exactly.
        use std::collections::HashMap;
        let mut want: HashMap<(usize, u32), u32> = HashMap::new();
        for p in &pts {
            for (ti, pix) in exhaustive(&t, *p) {
                *want.entry((ti, pix)).or_default() += 1;
            }
        }
        let mut got: HashMap<(usize, u32), u32> = HashMap::new();
        for ti in 0..t.tile_count() {
            for &pix in binned.tile(ti).0 {
                *got.entry((ti, pix)).or_default() += 1;
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn filtered_points_are_skipped() {
        let t = tiling(100, 50, 128);
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 25.0)).collect();
        let binned = bin_points(&t, pts.len(), 2, false, |i| {
            (i % 2 == 0).then(|| (pts[i], 0.0))
        });
        assert_eq!(binned.len(), 50);
        let (_, vals) = binned.tile(0);
        assert!(vals.is_none(), "COUNT-only binning stores no values");
    }

    #[test]
    fn worker_count_does_not_change_binning() {
        let t = tiling(200, 100, 64);
        let pts: Vec<Point> = (0..3_000)
            .map(|i| Point::new((i * 7 % 100) as f64, (i * 13 % 50) as f64))
            .collect();
        let a = bin_points(&t, pts.len(), 1, true, |i| Some((pts[i], i as f32)));
        let b = bin_points(&t, pts.len(), 8, true, |i| Some((pts[i], i as f32)));
        assert_eq!(a.len(), b.len());
        for ti in 0..t.tile_count() {
            let (ai, av) = a.tile(ti);
            let (bi, bv) = b.tile(ti);
            assert_eq!(ai, bi, "tile {ti} pixel indices");
            assert_eq!(av, bv, "tile {ti} values");
        }
    }

    #[test]
    fn shard_gate_needs_contention_and_density() {
        let cfg = RasterConfig::default();
        // A single worker never shards, no matter how dense the tile:
        // there is no atomic contention to escape from.
        assert!(!cfg.use_shards(1_000_000, 100, 1));
        // With ≥ 2 workers the 0.5 entries/pixel crossover decides.
        assert!(cfg.use_shards(50, 100, 2));
        assert!(cfg.use_shards(50, 100, 8));
        assert!(!cfg.use_shards(49, 100, 2));
        // Sharding disabled by config wins over everything.
        assert!(!RasterConfig::naive().use_shards(1_000, 10, 4));
    }

    #[test]
    fn empty_batch() {
        let t = tiling(10, 10, 16);
        let binned = bin_points(&t, 0, 4, true, |_| None);
        assert!(binned.is_empty());
        assert_eq!(binned.tile(0).0.len(), 0);
    }
}
