//! Frame buffer objects (FBOs) with additive blending.
//!
//! The paper stores per-pixel partial aggregates in the color channels of an
//! FBO (§4.1): the red channel counts points, the green channel sums an
//! attribute (§5), and the blend function is set to ADD. Updates must be
//! atomic because fragments are processed in parallel; we mirror that with
//! `AtomicU32` cells (counts) and CAS loops over f32 bit patterns (sums) —
//! exactly the 32-bit-per-channel layout of the hardware (§3).

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Allocate `n` zeroed atomics via the `vec![0u32; n]` calloc fast path —
/// element-wise `resize_with(AtomicU32::new(0))` shows up hard in profiles
/// at 8192² FBO sizes (67M elements per channel).
pub(crate) fn zeroed_atomics(n: usize) -> Vec<AtomicU32> {
    let mut v = vec![0u32; n];
    let ptr = v.as_mut_ptr();
    let len = v.len();
    let cap = v.capacity();
    std::mem::forget(v);
    // SAFETY: the `Vec::from_raw_parts` contract holds point by point:
    // * `ptr` came from a live `Vec<u32>` allocated by the global
    //   allocator, and `mem::forget` above keeps that allocation alive
    //   (no double free) while transferring ownership here;
    // * `len`/`cap` are the forgotten vector's exact length/capacity;
    // * `AtomicU32` is documented to have "the same in-memory
    //   representation as" `u32` — identical size *and* alignment — so
    //   the allocation's layout (`cap * 4` bytes, align 4) is exactly
    //   what a `Vec<AtomicU32>` of this capacity would request, and
    //   deallocation through the new vector uses the same layout;
    // * every element is `0u32`, a valid bit pattern for `AtomicU32`
    //   (atomics have no niches or padding).
    unsafe { Vec::from_raw_parts(ptr.cast::<AtomicU32>(), len, cap) }
}

/// The point FBO `Fpt`: per-pixel COUNT (red channel) and SUM (green
/// channel) partial aggregates.
pub struct PointFbo {
    width: u32,
    height: u32,
    counts: Vec<AtomicU32>,
    sums: Vec<AtomicU32>, // f32 bit patterns
}

impl PointFbo {
    /// Allocate a cleared FBO ("glClear"): all channels zero.
    pub fn new(width: u32, height: u32) -> Self {
        let n = width as usize * height as usize;
        PointFbo {
            width,
            height,
            counts: zeroed_atomics(n),
            sums: zeroed_atomics(n), // 0f32 is all-zero bits
        }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y as usize * self.width as usize + x as usize
    }

    /// Additive blend of one point fragment: count += 1, sum += `value`.
    /// This is line 5 of Procedure DrawPoints.
    #[inline]
    pub fn blend_add(&self, x: u32, y: u32, value: f32) {
        self.blend_add_idx(self.idx(x, y), value);
    }

    /// [`PointFbo::blend_add`] addressed by linear pixel index — the form
    /// the binned pipeline uses, where `bin_points` has already computed
    /// `y * width + x` per entry.
    #[inline]
    pub fn blend_add_idx(&self, i: usize, value: f32) {
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        if value != 0.0 {
            // CAS loop implementing atomic f32 add, as GLSL atomicAdd on
            // floats does.
            let cell = &self.sums[i];
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let new = (f32::from_bits(cur) + value).to_bits();
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(v) => cur = v,
                }
            }
        }
    }

    /// Count channel of one pixel.
    #[inline]
    pub fn count_at(&self, x: u32, y: u32) -> u32 {
        self.counts[self.idx(x, y)].load(Ordering::Relaxed)
    }

    /// Sum channel of one pixel.
    #[inline]
    pub fn sum_at(&self, x: u32, y: u32) -> f32 {
        f32::from_bits(self.sums[self.idx(x, y)].load(Ordering::Relaxed))
    }

    /// Read-only view of one count row.
    ///
    /// This used to transmute the row to `&[u32]` for auto-vectorization;
    /// the unsafe cast was only sound while no writer ran concurrently, a
    /// whole-pipeline property no local comment can prove. The safe
    /// version iterates `Relaxed` loads instead: on every target we
    /// build for, a relaxed `AtomicU32` load compiles to the same plain
    /// `mov` as a `u32` read, and the span fold below is memory-bound, so
    /// the pipeline-level hazard ordering (DrawPoints' scope joins before
    /// DrawPolygons reads) is now a performance footnote rather than a
    /// soundness precondition.
    #[inline]
    fn count_row(&self, y: u32) -> &[AtomicU32] {
        let base = y as usize * self.width as usize;
        &self.counts[base..base + self.width as usize]
    }

    #[inline]
    fn sum_row(&self, y: u32) -> &[AtomicU32] {
        let base = y as usize * self.width as usize;
        &self.sums[base..base + self.width as usize]
    }

    /// Σ count over the pixel span `[x0, x1) × {y}` — the COUNT-query
    /// fragment fast path.
    #[inline]
    pub fn span_count(&self, y: u32, x0: u32, x1: u32) -> u64 {
        debug_assert!(x0 <= x1 && x1 <= self.width && y < self.height);
        self.count_row(y)[x0 as usize..x1 as usize]
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// Fold the partial aggregates of the pixel span `[x0, x1) × {y}`:
    /// returns `(Σ count, Σ sum)`. Used when the query aggregates an
    /// attribute; COUNT-only queries prefer [`PointFbo::span_count`].
    #[inline]
    pub fn span_totals(&self, y: u32, x0: u32, x1: u32) -> (u64, f64) {
        debug_assert!(x0 <= x1 && x1 <= self.width && y < self.height);
        let counts = self.count_row(y);
        let sums = self.sum_row(y);
        let mut cnt = 0u64;
        let mut sum = 0f64;
        for i in x0 as usize..x1 as usize {
            let c = counts[i].load(Ordering::Relaxed);
            if c != 0 {
                cnt += c as u64;
                sum += f32::from_bits(sums[i].load(Ordering::Relaxed)) as f64;
            }
        }
        (cnt, sum)
    }

    /// Clear all channels (reusing the allocation across render passes).
    pub fn clear(&mut self) {
        for c in &mut self.counts {
            *c.get_mut() = 0;
        }
        for s in &mut self.sums {
            *s.get_mut() = 0f32.to_bits();
        }
    }

    /// Total count over all pixels (diagnostics / tests).
    pub fn total_count(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// GPU memory footprint of this FBO in bytes (2 × 32-bit channels).
    pub fn byte_size(&self) -> usize {
        self.counts.len() * 8
    }
}

/// Private per-worker count/sum accumulation buffers for one FBO-sized
/// canvas, merged into the canonical [`PointFbo`] after the point scan.
///
/// # Why shards
///
/// `blend_add` pays one `fetch_add` plus an f32 CAS loop per fragment on
/// cache lines shared by every worker; on skewed data (the paper's taxi
/// hotspots, §7.1) many fragments hit the *same* pixel and the CAS loop
/// degenerates into retry storms. Hardware ROPs solve this with per-tile
/// ownership; tile-binned software rasterizers solve it with per-block
/// private accumulators merged at the end. `ShardSet` is that second
/// design: each worker owns a full-canvas pair of plain (non-atomic)
/// `u32`/`f32` buffers, the scan is contention-free, and a parallel merge
/// folds the shards into the `PointFbo`.
///
/// # Equivalence contract
///
/// Counts are integer sums, so the merged result is **bit-identical** to
/// the atomic path in any order. Pixel sums are f32 additions whose order
/// changes (per-shard accumulation then shard-order merge, vs. arbitrary
/// CAS interleaving), so sums agree only up to f32 rounding —
/// ≤ a few ULP per fragment, asserted `≤ 1e-6` relative in the
/// equivalence tests. The atomic path itself is already
/// nondeterministic in this respect (CAS order varies run to run), so
/// sharding does not weaken any guarantee the pipeline actually had.
pub struct ShardSet {
    pixels: usize,
    /// Per-shard (counts, sums) buffers, each `pixels` long.
    shards: Vec<(Vec<u32>, Vec<f32>)>,
}

impl ShardSet {
    /// At most this many shards are worth their memory/merge cost; beyond
    /// ~8 the merge bandwidth dominates the contention saved.
    pub const MAX_SHARDS: usize = 8;

    pub fn new(pixels: usize, shards: usize) -> Self {
        let n = shards.clamp(1, Self::MAX_SHARDS);
        ShardSet {
            pixels,
            shards: (0..n)
                .map(|_| (vec![0u32; pixels], vec![0f32; pixels]))
                .collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn pixels(&self) -> usize {
        self.pixels
    }

    /// Replay pre-binned entries: shard `s` blends the `s`-th contiguous
    /// slice of `idx` (and `values`, when the query aggregates) into its
    /// private buffers, one scoped worker per shard, no atomics.
    pub fn accumulate(&mut self, idx: &[u32], values: Option<&[f32]>) {
        let n = idx.len();
        let shards = self.shards.len().min(n.max(1));
        let chunk = (n + shards - 1) / shards.max(1);
        crossbeam::thread::scope(|s| {
            for (w, (counts, sums)) in self.shards.iter_mut().take(shards).enumerate() {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                if start >= end {
                    continue;
                }
                s.spawn(move |_| match values {
                    Some(vals) => {
                        for (&pix, &v) in idx[start..end].iter().zip(&vals[start..end]) {
                            counts[pix as usize] += 1;
                            sums[pix as usize] += v;
                        }
                    }
                    None => {
                        for &pix in &idx[start..end] {
                            counts[pix as usize] += 1;
                        }
                    }
                });
            }
        })
        .expect("shard accumulation worker panicked");
    }

    /// Un-binned variant: shard `s` scans the `s`-th contiguous subrange
    /// of `0..len`, classifying each point itself. `access(shard, i)`
    /// returns the linear pixel index and value, or `None` when the point
    /// is filtered or clipped; the shard index lets callers keep their own
    /// side statistics contention-free (e.g. per-shard PIP counters in the
    /// accurate join). Used when binning is toggled off (ablation) and by
    /// the accurate join, whose boundary test forces a per-point branch.
    pub fn accumulate_with<F>(&mut self, len: usize, access: F)
    where
        F: Fn(usize, usize) -> Option<(u32, f32)> + Sync,
    {
        let shards = self.shards.len().min(len.max(1));
        let chunk = (len + shards - 1) / shards.max(1);
        crossbeam::thread::scope(|s| {
            for (w, (counts, sums)) in self.shards.iter_mut().take(shards).enumerate() {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(len);
                if start >= end {
                    continue;
                }
                let access = &access;
                s.spawn(move |_| {
                    for i in start..end {
                        if let Some((pix, v)) = access(w, i) {
                            counts[pix as usize] += 1;
                            sums[pix as usize] += v;
                        }
                    }
                });
            }
        })
        .expect("shard accumulation worker panicked");
    }

    /// Fold every shard into `fbo` (adding to its current contents), in
    /// parallel over disjoint pixel ranges. Count channels merge exactly;
    /// sum channels merge in fixed shard order, so the result is
    /// deterministic for a given shard count.
    pub fn merge_into(&self, fbo: &PointFbo, workers: usize) {
        assert_eq!(
            self.pixels,
            fbo.width as usize * fbo.height as usize,
            "shard/FBO shape mismatch"
        );
        crate::exec::parallel_ranges(self.pixels, workers, |lo, hi| {
            for i in lo..hi {
                let mut cnt = 0u32;
                let mut sum = 0f32;
                for (counts, sums) in &self.shards {
                    cnt += counts[i];
                    sum += sums[i];
                }
                if cnt > 0 {
                    // Disjoint ranges: plain load+store, no RMW needed.
                    let c = &fbo.counts[i];
                    c.store(c.load(Ordering::Relaxed) + cnt, Ordering::Relaxed);
                    if sum != 0.0 {
                        let s = &fbo.sums[i];
                        s.store(
                            (f32::from_bits(s.load(Ordering::Relaxed)) + sum).to_bits(),
                            Ordering::Relaxed,
                        );
                    }
                }
            }
        });
    }

    /// Zero all shard buffers for reuse (memset fast path).
    pub fn clear(&mut self) {
        for (counts, sums) in &mut self.shards {
            counts.fill(0);
            sums.fill(0.0);
        }
    }
}

/// Recycles FBO and shard allocations across tiles and batches.
///
/// The rescan pipeline allocated (and faulted in) two fresh 32-bit
/// channels per tile per batch; at 8192² that is 0.5 GB of zeroed pages
/// per pass. The pool hands back cleared buffers of matching shape
/// instead, so steady-state execution performs no allocation at all —
/// the software analog of a GL implementation reusing FBO attachments
/// across `glClear` calls rather than reallocating textures.
///
/// Both free lists sit behind `parking_lot` mutexes, so a prepared
/// executor shared across the streaming chunk pool's workers hands out
/// buffers safely: each worker `acquire`s a private FBO (or
/// [`ShardSet`]) for the tile it is blending, and ownership is exclusive
/// until `release` — the locks guard only the free lists, never the
/// pixels, so concurrent chunks never contend on buffer contents.
#[derive(Default)]
pub struct FboPool {
    fbos: parking_lot::Mutex<Vec<PointFbo>>,
    shards: parking_lot::Mutex<Vec<ShardSet>>,
    /// Buffers handed out and not yet released (FBOs + shard sets
    /// together). Error-path accounting: after a scan shuts down on the
    /// non-panic error paths this must be zero — a worker that exits
    /// without returning its canvas has wedged it in a channel or a dead
    /// thread. (A *contained panic* mid-pass instead drops its canvas
    /// during unwind — memory-safe, but deliberately never recycled — so
    /// the counter then records the forfeited buffer.)
    outstanding: AtomicUsize,
}

impl FboPool {
    pub fn new() -> Self {
        FboPool::default()
    }

    /// Buffers currently acquired but not released (or forfeited by a
    /// contained panic). Zero whenever no render pass is in flight; the
    /// streaming executor's error-path tests assert it returns to zero
    /// after a failed scan drains.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// A cleared `width × height` FBO, recycled when a matching one was
    /// released, freshly allocated otherwise.
    pub fn acquire(&self, width: u32, height: u32) -> PointFbo {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        let mut free = self.fbos.lock();
        if let Some(pos) = free
            .iter()
            .position(|f| f.width == width && f.height == height)
        {
            let mut fbo = free.swap_remove(pos);
            drop(free);
            fbo.clear();
            return fbo;
        }
        drop(free);
        PointFbo::new(width, height)
    }

    pub fn release(&self, fbo: PointFbo) {
        self.fbos.lock().push(fbo);
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }

    /// A cleared shard set covering `pixels`, with `shards` shards
    /// (clamped to [`ShardSet::MAX_SHARDS`]).
    pub fn acquire_shards(&self, pixels: usize, shards: usize) -> ShardSet {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        let want = shards.clamp(1, ShardSet::MAX_SHARDS);
        let mut free = self.shards.lock();
        if let Some(pos) = free
            .iter()
            .position(|s| s.pixels == pixels && s.shard_count() == want)
        {
            let mut set = free.swap_remove(pos);
            drop(free);
            set.clear();
            return set;
        }
        drop(free);
        ShardSet::new(pixels, want)
    }

    pub fn release_shards(&self, set: ShardSet) {
        self.shards.lock().push(set);
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The boundary FBO of the accurate variant (§4.3 step 1): one bit per
/// pixel marking polygon outlines (drawn with conservative rasterization).
pub struct BoundaryFbo {
    width: u32,
    height: u32,
    bits: Vec<AtomicU32>,
}

impl BoundaryFbo {
    pub fn new(width: u32, height: u32) -> Self {
        let n = width as usize * height as usize;
        let words = n.div_ceil(32);
        BoundaryFbo {
            width,
            height,
            bits: zeroed_atomics(words),
        }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn bit(&self, x: u32, y: u32) -> (usize, u32) {
        debug_assert!(x < self.width && y < self.height);
        let i = y as usize * self.width as usize + x as usize;
        (i / 32, 1u32 << (i % 32))
    }

    /// Mark pixel `(x, y)` as a boundary pixel (fragment shader writing the
    /// predetermined boundary color).
    #[inline]
    pub fn mark(&self, x: u32, y: u32) {
        let (w, m) = self.bit(x, y);
        self.bits[w].fetch_or(m, Ordering::Relaxed);
    }

    /// Is `(x, y)` a boundary pixel? (The `Fb(x′,y′) is a boundary` test of
    /// Procedures AccuratePoints / AccuratePolygons.)
    #[inline]
    pub fn is_boundary(&self, x: u32, y: u32) -> bool {
        let (w, m) = self.bit(x, y);
        self.bits[w].load(Ordering::Relaxed) & m != 0
    }

    /// Number of marked pixels.
    pub fn boundary_pixel_count(&self) -> usize {
        self.bits
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    pub fn clear(&mut self) {
        for w in &mut self.bits {
            *w.get_mut() = 0;
        }
    }

    pub fn byte_size(&self) -> usize {
        self.bits.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fbo_is_cleared() {
        let f = PointFbo::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(f.count_at(x, y), 0);
                assert_eq!(f.sum_at(x, y), 0.0);
            }
        }
        assert_eq!(f.total_count(), 0);
    }

    #[test]
    fn blend_add_accumulates() {
        let f = PointFbo::new(2, 2);
        f.blend_add(1, 0, 2.5);
        f.blend_add(1, 0, -1.0);
        f.blend_add(0, 1, 0.0);
        assert_eq!(f.count_at(1, 0), 2);
        assert!((f.sum_at(1, 0) - 1.5).abs() < 1e-6);
        assert_eq!(f.count_at(0, 1), 1);
        assert_eq!(f.total_count(), 3);
    }

    #[test]
    fn concurrent_blend_is_lossless() {
        use std::sync::Arc;
        let f = Arc::new(PointFbo::new(8, 8));
        let threads = 8;
        let per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let x = ((t * per_thread + i) % 8) as u32;
                        f.blend_add(x, 3, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.total_count(), (threads * per_thread) as u64);
        let total_sum: f32 = (0..8).map(|x| f.sum_at(x, 3)).sum();
        assert!((total_sum - (threads * per_thread) as f32).abs() < 1.0);
    }

    #[test]
    fn clear_resets_channels() {
        let mut f = PointFbo::new(2, 2);
        f.blend_add(0, 0, 3.0);
        f.clear();
        assert_eq!(f.total_count(), 0);
        assert_eq!(f.sum_at(0, 0), 0.0);
    }

    #[test]
    fn span_totals_fold_counts_and_sums() {
        let f = PointFbo::new(8, 2);
        f.blend_add(1, 1, 2.0);
        f.blend_add(1, 1, 3.0);
        f.blend_add(4, 1, -1.0);
        f.blend_add(7, 1, 10.0); // outside the probed span
        f.blend_add(3, 0, 5.0); // other row
        let (c, s) = f.span_totals(1, 0, 7);
        assert_eq!(c, 3);
        assert!((s - 4.0).abs() < 1e-6);
        let (c0, s0) = f.span_totals(1, 2, 4);
        assert_eq!(c0, 0);
        assert_eq!(s0, 0.0);
        let (cr, _) = f.span_totals(0, 0, 8);
        assert_eq!(cr, 1);
        // span_count agrees with the totals path.
        assert_eq!(f.span_count(1, 0, 7), 3);
        assert_eq!(f.span_count(1, 2, 4), 0);
        assert_eq!(f.span_count(0, 0, 8), 1);
    }

    #[test]
    fn sharded_accumulation_matches_atomic_blend() {
        let w = 16u32;
        let h = 8u32;
        // Deliberately hot: many entries hit the same few pixels.
        let idx: Vec<u32> = (0..10_000).map(|i| (i % 7) as u32 * 3).collect();
        let values: Vec<f32> = (0..10_000).map(|i| (i % 11) as f32 * 0.25).collect();

        let atomic = PointFbo::new(w, h);
        for (&pix, &v) in idx.iter().zip(&values) {
            atomic.blend_add_idx(pix as usize, v);
        }

        let sharded = PointFbo::new(w, h);
        let mut shards = ShardSet::new((w * h) as usize, 8);
        shards.accumulate(&idx, Some(&values));
        shards.merge_into(&sharded, 4);

        for y in 0..h {
            for x in 0..w {
                assert_eq!(atomic.count_at(x, y), sharded.count_at(x, y), "({x},{y})");
                let (a, s) = (atomic.sum_at(x, y), sharded.sum_at(x, y));
                assert!(
                    (a - s).abs() <= 1e-6 * a.abs().max(1.0),
                    "({x},{y}): atomic {a} vs sharded {s}"
                );
            }
        }
    }

    #[test]
    fn sharded_count_only_path() {
        let fbo = PointFbo::new(4, 4);
        let idx = vec![0u32, 5, 5, 15];
        let mut shards = ShardSet::new(16, 3);
        shards.accumulate(&idx, None);
        shards.merge_into(&fbo, 2);
        assert_eq!(fbo.count_at(0, 0), 1);
        assert_eq!(fbo.count_at(1, 1), 2);
        assert_eq!(fbo.count_at(3, 3), 1);
        assert_eq!(fbo.total_count(), 4);
    }

    #[test]
    fn accumulate_with_classifies_lazily() {
        let fbo = PointFbo::new(4, 1);
        let mut shards = ShardSet::new(4, 2);
        // Even indices land on pixel i%4, odd are "filtered".
        shards.accumulate_with(100, |_shard, i| {
            (i % 2 == 0).then_some(((i % 4) as u32, 1.0))
        });
        shards.merge_into(&fbo, 2);
        assert_eq!(fbo.total_count(), 50);
        assert_eq!(fbo.count_at(0, 0), 25);
        assert_eq!(fbo.count_at(2, 0), 25);
        assert_eq!(fbo.count_at(1, 0), 0);
    }

    #[test]
    fn merge_adds_to_existing_contents() {
        let fbo = PointFbo::new(2, 1);
        fbo.blend_add(0, 0, 1.0);
        let mut shards = ShardSet::new(2, 2);
        shards.accumulate(&[0, 1], Some(&[2.0, 3.0]));
        shards.merge_into(&fbo, 1);
        assert_eq!(fbo.count_at(0, 0), 2);
        assert_eq!(fbo.count_at(1, 0), 1);
        assert!((fbo.sum_at(0, 0) - 3.0).abs() < 1e-6);
        assert!((fbo.sum_at(1, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn shard_count_is_clamped() {
        let s = ShardSet::new(8, 64);
        assert_eq!(s.shard_count(), ShardSet::MAX_SHARDS);
        let s = ShardSet::new(8, 0);
        assert_eq!(s.shard_count(), 1);
    }

    #[test]
    fn pool_recycles_matching_shapes() {
        let pool = FboPool::new();
        let a = pool.acquire(8, 4);
        a.blend_add(1, 1, 5.0);
        let a_ptr = a.counts.as_ptr();
        pool.release(a);
        // Same shape: recycled (same allocation) and cleared.
        let b = pool.acquire(8, 4);
        assert_eq!(b.counts.as_ptr(), a_ptr);
        assert_eq!(b.total_count(), 0);
        assert_eq!(b.sum_at(1, 1), 0.0);
        // Different shape: fresh allocation.
        let c = pool.acquire(4, 4);
        assert_eq!(c.width(), 4);
        pool.release(b);
        pool.release(c);
        // Both shapes now pooled; each comes back on request.
        assert_eq!(pool.acquire(4, 4).width(), 4);
        assert_eq!(pool.acquire(8, 4).width(), 8);
    }

    #[test]
    fn pool_recycles_shard_sets() {
        let pool = FboPool::new();
        let mut s = pool.acquire_shards(64, 4);
        s.accumulate(&[3, 3], None);
        pool.release_shards(s);
        let s2 = pool.acquire_shards(64, 4);
        // Cleared on reacquire: merging into a fresh FBO yields zero.
        let fbo = PointFbo::new(8, 8);
        s2.merge_into(&fbo, 1);
        assert_eq!(fbo.total_count(), 0);
    }

    #[test]
    fn boundary_mark_and_test() {
        let b = BoundaryFbo::new(64, 2);
        assert!(!b.is_boundary(33, 1));
        b.mark(33, 1);
        b.mark(0, 0);
        b.mark(63, 1);
        assert!(b.is_boundary(33, 1));
        assert!(b.is_boundary(0, 0));
        assert!(b.is_boundary(63, 1));
        assert!(!b.is_boundary(32, 1));
        assert_eq!(b.boundary_pixel_count(), 3);
    }

    #[test]
    fn boundary_mark_is_idempotent() {
        let b = BoundaryFbo::new(8, 8);
        b.mark(3, 3);
        b.mark(3, 3);
        assert_eq!(b.boundary_pixel_count(), 1);
    }

    #[test]
    fn byte_sizes_track_resolution() {
        let f = PointFbo::new(100, 50);
        assert_eq!(f.byte_size(), 100 * 50 * 8);
        let b = BoundaryFbo::new(100, 50);
        assert_eq!(b.byte_size(), (100usize * 50).div_ceil(32) * 4);
    }
}
