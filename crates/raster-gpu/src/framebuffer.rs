//! Frame buffer objects (FBOs) with additive blending.
//!
//! The paper stores per-pixel partial aggregates in the color channels of an
//! FBO (§4.1): the red channel counts points, the green channel sums an
//! attribute (§5), and the blend function is set to ADD. Updates must be
//! atomic because fragments are processed in parallel; we mirror that with
//! `AtomicU32` cells (counts) and CAS loops over f32 bit patterns (sums) —
//! exactly the 32-bit-per-channel layout of the hardware (§3).

use std::sync::atomic::{AtomicU32, Ordering};

/// Allocate `n` zeroed atomics via the `vec![0u32; n]` calloc fast path —
/// element-wise `resize_with(AtomicU32::new(0))` shows up hard in profiles
/// at 8192² FBO sizes (67M elements per channel).
pub(crate) fn zeroed_atomics(n: usize) -> Vec<AtomicU32> {
    let mut v = vec![0u32; n];
    let ptr = v.as_mut_ptr();
    let len = v.len();
    let cap = v.capacity();
    std::mem::forget(v);
    // SAFETY: AtomicU32 is documented to have the same size and bit
    // validity as u32, and 0u32 is a valid AtomicU32 bit pattern.
    unsafe { Vec::from_raw_parts(ptr.cast::<AtomicU32>(), len, cap) }
}

/// The point FBO `Fpt`: per-pixel COUNT (red channel) and SUM (green
/// channel) partial aggregates.
pub struct PointFbo {
    width: u32,
    height: u32,
    counts: Vec<AtomicU32>,
    sums: Vec<AtomicU32>, // f32 bit patterns
}

impl PointFbo {
    /// Allocate a cleared FBO ("glClear"): all channels zero.
    pub fn new(width: u32, height: u32) -> Self {
        let n = width as usize * height as usize;
        PointFbo {
            width,
            height,
            counts: zeroed_atomics(n),
            sums: zeroed_atomics(n), // 0f32 is all-zero bits
        }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y as usize * self.width as usize + x as usize
    }

    /// Additive blend of one point fragment: count += 1, sum += `value`.
    /// This is line 5 of Procedure DrawPoints.
    #[inline]
    pub fn blend_add(&self, x: u32, y: u32, value: f32) {
        let i = self.idx(x, y);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        if value != 0.0 {
            // CAS loop implementing atomic f32 add, as GLSL atomicAdd on
            // floats does.
            let cell = &self.sums[i];
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let new = (f32::from_bits(cur) + value).to_bits();
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(v) => cur = v,
                }
            }
        }
    }

    /// Count channel of one pixel.
    #[inline]
    pub fn count_at(&self, x: u32, y: u32) -> u32 {
        self.counts[self.idx(x, y)].load(Ordering::Relaxed)
    }

    /// Sum channel of one pixel.
    #[inline]
    pub fn sum_at(&self, x: u32, y: u32) -> f32 {
        f32::from_bits(self.sums[self.idx(x, y)].load(Ordering::Relaxed))
    }

    /// Read-only view of one count row as plain `u32`s.
    ///
    /// Soundness: `AtomicU32` has the same representation as `u32`; the
    /// cast is sound as long as no writer runs concurrently. The pipeline
    /// guarantees that: DrawPoints fully completes (its thread scope
    /// joins) before DrawPolygons reads the FBO — the same write-then-
    /// read hazard ordering the GL pipeline enforces between passes. The
    /// plain-slice view is what lets LLVM vectorize the span sums.
    #[inline]
    fn count_row(&self, y: u32) -> &[u32] {
        let base = y as usize * self.width as usize;
        let row = &self.counts[base..base + self.width as usize];
        // SAFETY: see above — no concurrent writes during read passes.
        unsafe { &*(row as *const [AtomicU32] as *const [u32]) }
    }

    #[inline]
    fn sum_row(&self, y: u32) -> &[u32] {
        let base = y as usize * self.width as usize;
        let row = &self.sums[base..base + self.width as usize];
        // SAFETY: as for `count_row`.
        unsafe { &*(row as *const [AtomicU32] as *const [u32]) }
    }

    /// Σ count over the pixel span `[x0, x1) × {y}` — the COUNT-query
    /// fragment fast path (vectorizable plain-integer sum).
    #[inline]
    pub fn span_count(&self, y: u32, x0: u32, x1: u32) -> u64 {
        debug_assert!(x0 <= x1 && x1 <= self.width && y < self.height);
        self.count_row(y)[x0 as usize..x1 as usize]
            .iter()
            .map(|&c| c as u64)
            .sum()
    }

    /// Fold the partial aggregates of the pixel span `[x0, x1) × {y}`:
    /// returns `(Σ count, Σ sum)`. Used when the query aggregates an
    /// attribute; COUNT-only queries prefer [`PointFbo::span_count`].
    #[inline]
    pub fn span_totals(&self, y: u32, x0: u32, x1: u32) -> (u64, f64) {
        debug_assert!(x0 <= x1 && x1 <= self.width && y < self.height);
        let counts = self.count_row(y);
        let sums = self.sum_row(y);
        let mut cnt = 0u64;
        let mut sum = 0f64;
        for i in x0 as usize..x1 as usize {
            let c = counts[i];
            if c != 0 {
                cnt += c as u64;
                sum += f32::from_bits(sums[i]) as f64;
            }
        }
        (cnt, sum)
    }

    /// Clear all channels (reusing the allocation across render passes).
    pub fn clear(&mut self) {
        for c in &mut self.counts {
            *c.get_mut() = 0;
        }
        for s in &mut self.sums {
            *s.get_mut() = 0f32.to_bits();
        }
    }

    /// Total count over all pixels (diagnostics / tests).
    pub fn total_count(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// GPU memory footprint of this FBO in bytes (2 × 32-bit channels).
    pub fn byte_size(&self) -> usize {
        self.counts.len() * 8
    }
}

/// The boundary FBO of the accurate variant (§4.3 step 1): one bit per
/// pixel marking polygon outlines (drawn with conservative rasterization).
pub struct BoundaryFbo {
    width: u32,
    height: u32,
    bits: Vec<AtomicU32>,
}

impl BoundaryFbo {
    pub fn new(width: u32, height: u32) -> Self {
        let n = width as usize * height as usize;
        let words = (n + 31) / 32;
        BoundaryFbo {
            width,
            height,
            bits: zeroed_atomics(words),
        }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn bit(&self, x: u32, y: u32) -> (usize, u32) {
        debug_assert!(x < self.width && y < self.height);
        let i = y as usize * self.width as usize + x as usize;
        (i / 32, 1u32 << (i % 32))
    }

    /// Mark pixel `(x, y)` as a boundary pixel (fragment shader writing the
    /// predetermined boundary color).
    #[inline]
    pub fn mark(&self, x: u32, y: u32) {
        let (w, m) = self.bit(x, y);
        self.bits[w].fetch_or(m, Ordering::Relaxed);
    }

    /// Is `(x, y)` a boundary pixel? (The `Fb(x′,y′) is a boundary` test of
    /// Procedures AccuratePoints / AccuratePolygons.)
    #[inline]
    pub fn is_boundary(&self, x: u32, y: u32) -> bool {
        let (w, m) = self.bit(x, y);
        self.bits[w].load(Ordering::Relaxed) & m != 0
    }

    /// Number of marked pixels.
    pub fn boundary_pixel_count(&self) -> usize {
        self.bits
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    pub fn clear(&mut self) {
        for w in &mut self.bits {
            *w.get_mut() = 0;
        }
    }

    pub fn byte_size(&self) -> usize {
        self.bits.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fbo_is_cleared() {
        let f = PointFbo::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(f.count_at(x, y), 0);
                assert_eq!(f.sum_at(x, y), 0.0);
            }
        }
        assert_eq!(f.total_count(), 0);
    }

    #[test]
    fn blend_add_accumulates() {
        let f = PointFbo::new(2, 2);
        f.blend_add(1, 0, 2.5);
        f.blend_add(1, 0, -1.0);
        f.blend_add(0, 1, 0.0);
        assert_eq!(f.count_at(1, 0), 2);
        assert!((f.sum_at(1, 0) - 1.5).abs() < 1e-6);
        assert_eq!(f.count_at(0, 1), 1);
        assert_eq!(f.total_count(), 3);
    }

    #[test]
    fn concurrent_blend_is_lossless() {
        use std::sync::Arc;
        let f = Arc::new(PointFbo::new(8, 8));
        let threads = 8;
        let per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let x = ((t * per_thread + i) % 8) as u32;
                        f.blend_add(x, 3, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.total_count(), (threads * per_thread) as u64);
        let total_sum: f32 = (0..8).map(|x| f.sum_at(x, 3)).sum();
        assert!((total_sum - (threads * per_thread) as f32).abs() < 1.0);
    }

    #[test]
    fn clear_resets_channels() {
        let mut f = PointFbo::new(2, 2);
        f.blend_add(0, 0, 3.0);
        f.clear();
        assert_eq!(f.total_count(), 0);
        assert_eq!(f.sum_at(0, 0), 0.0);
    }

    #[test]
    fn span_totals_fold_counts_and_sums() {
        let f = PointFbo::new(8, 2);
        f.blend_add(1, 1, 2.0);
        f.blend_add(1, 1, 3.0);
        f.blend_add(4, 1, -1.0);
        f.blend_add(7, 1, 10.0); // outside the probed span
        f.blend_add(3, 0, 5.0); // other row
        let (c, s) = f.span_totals(1, 0, 7);
        assert_eq!(c, 3);
        assert!((s - 4.0).abs() < 1e-6);
        let (c0, s0) = f.span_totals(1, 2, 4);
        assert_eq!(c0, 0);
        assert_eq!(s0, 0.0);
        let (cr, _) = f.span_totals(0, 0, 8);
        assert_eq!(cr, 1);
        // span_count agrees with the totals path.
        assert_eq!(f.span_count(1, 0, 7), 3);
        assert_eq!(f.span_count(1, 2, 4), 0);
        assert_eq!(f.span_count(0, 0, 8), 1);
    }

    #[test]
    fn boundary_mark_and_test() {
        let b = BoundaryFbo::new(64, 2);
        assert!(!b.is_boundary(33, 1));
        b.mark(33, 1);
        b.mark(0, 0);
        b.mark(63, 1);
        assert!(b.is_boundary(33, 1));
        assert!(b.is_boundary(0, 0));
        assert!(b.is_boundary(63, 1));
        assert!(!b.is_boundary(32, 1));
        assert_eq!(b.boundary_pixel_count(), 3);
    }

    #[test]
    fn boundary_mark_is_idempotent() {
        let b = BoundaryFbo::new(8, 8);
        b.mark(3, 3);
        b.mark(3, 3);
        assert_eq!(b.boundary_pixel_count(), 1);
    }

    #[test]
    fn byte_sizes_track_resolution() {
        let f = PointFbo::new(100, 50);
        assert_eq!(f.byte_size(), 100 * 50 * 8);
        let b = BoundaryFbo::new(100, 50);
        assert_eq!(b.byte_size(), ((100 * 50 + 31) / 32) * 4);
    }
}
