//! Shader-storage-buffer-object (SSBO) analogs: atomically updated result
//! arrays.
//!
//! §6.1: "The result array A is maintained as an SSBO, and atomic operations
//! are used when updating it. An advantage of SSBOs is that they allow
//! processing intersecting polygons in a single pass." The arrays here hold
//! the per-polygon COUNT (u64) and SUM (f64) aggregates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic array of u64 counters (the per-polygon count slots `A[i]`).
pub struct AtomicU64Array {
    slots: Vec<AtomicU64>,
}

impl AtomicU64Array {
    pub fn new(len: usize) -> Self {
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, || AtomicU64::new(0));
        AtomicU64Array { slots }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    #[inline]
    pub fn add(&self, i: usize, v: u64) {
        self.slots[i].fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Relaxed)
    }

    pub fn to_vec(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s.get_mut() = 0;
        }
    }
}

/// Atomic array of f64 accumulators (the per-polygon sum slots), using CAS
/// loops over bit patterns as GPU float atomics do.
pub struct AtomicF64Array {
    slots: Vec<AtomicU64>,
}

impl AtomicF64Array {
    pub fn new(len: usize) -> Self {
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, || AtomicU64::new(0f64.to_bits()));
        AtomicF64Array { slots }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    #[inline]
    pub fn add(&self, i: usize, v: f64) {
        if v == 0.0 {
            return;
        }
        let cell = &self.slots[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.slots[i].load(Ordering::Relaxed))
    }

    pub fn to_vec(&self) -> Vec<f64> {
        self.slots
            .iter()
            .map(|s| f64::from_bits(s.load(Ordering::Relaxed)))
            .collect()
    }

    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s.get_mut() = 0f64.to_bits();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn u64_array_basic() {
        let a = AtomicU64Array::new(3);
        a.add(0, 5);
        a.add(0, 2);
        a.add(2, 1);
        assert_eq!(a.to_vec(), vec![7, 0, 1]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn f64_array_basic() {
        let a = AtomicF64Array::new(2);
        a.add(1, 2.5);
        a.add(1, -0.5);
        a.add(0, 0.0); // no-op fast path
        assert_eq!(a.get(0), 0.0);
        assert!((a.get(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let counts = Arc::new(AtomicU64Array::new(4));
        let sums = Arc::new(AtomicF64Array::new(4));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&counts);
                let s = Arc::clone(&sums);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        let slot = ((t + i) % 4) as usize;
                        c.add(slot, 1);
                        s.add(slot, 0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = counts.to_vec().iter().sum();
        assert_eq!(total, 8 * 5_000);
        let fsum: f64 = sums.to_vec().iter().sum();
        assert!((fsum - 8.0 * 5_000.0 * 0.5).abs() < 1e-6);
    }

    #[test]
    fn clear_resets() {
        let mut a = AtomicU64Array::new(2);
        a.add(1, 9);
        a.clear();
        assert_eq!(a.to_vec(), vec![0, 0]);
        let mut f = AtomicF64Array::new(2);
        f.add(0, 1.25);
        f.clear();
        assert_eq!(f.get(0), 0.0);
    }
}
