//! One function per paper table/figure. Each returns a [`Report`] whose
//! rows mirror the series the paper plots; EXPERIMENTS.md records a run.

use crate::report::{ms, Report};
use crate::workloads;
use crate::Scale;
use raster_data::filter::{CmpOp, Predicate};
use raster_data::PointTable;
use raster_geom::triangulate::triangulate_all;
use raster_geom::Polygon;
use raster_gpu::exec::default_workers;
use raster_gpu::{Device, DeviceConfig};
use raster_index::{AssignMode, GridIndex};
use raster_join::accuracy::{max_normalized_error, percent_errors, BoxStats, JND};
use raster_join::ranges::estimate_count_ranges;
use raster_join::{
    AccurateRasterJoin, Aggregate, BoundedRasterJoin, IndexJoin, MaterializingJoin, Query,
};
use std::time::{Duration, Instant};

fn time<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed(), v)
}

fn speedup(base: Duration, other: Duration) -> String {
    if other.as_secs_f64() == 0.0 {
        return "inf".into();
    }
    format!("{:.1}x", base.as_secs_f64() / other.as_secs_f64())
}

/// Device matching the paper's §7.1 configuration (3 GB budget, 8192²
/// FBO) — effectively "in-core" at harness scales.
pub fn paper_device() -> Device {
    Device::new(DeviceConfig::default())
}

/// Device with a deliberately small memory budget so harness-scale sweeps
/// cross the out-of-core threshold like the paper's 868 M-point runs.
pub fn small_device(points_budget: usize, attrs: usize) -> Device {
    Device::new(DeviceConfig::small(
        points_budget * PointTable::point_bytes(attrs),
        8192,
    ))
}

// ---------------------------------------------------------------- Table 1

/// Table 1: polygon processing costs — triangulation plus grid-index
/// creation on GPU-style parallel, multi-core CPU, and single-core CPU.
pub fn table1(_scale: Scale) -> Report {
    let mut r = Report::new(
        "Table 1: polygonal data sets and processing costs",
        &[
            "region",
            "polys",
            "verts",
            "triangulate",
            "index GPU",
            "index mCPU",
            "index 1CPU",
        ],
    );
    r.note("paper: NYC 260 polys → 20ms tri, 10ms GPU / 0.57s mCPU / 2.15s 1CPU index");
    r.note("paper: US 3945 polys → 0.66s tri, 14ms GPU / 23.3s mCPU / 37.1s 1CPU index");
    let w = default_workers();
    for (name, polys, gpu_dim, cpu_dim) in [
        ("NYC-260", workloads::neighborhoods(), 1024u32, 1024u32),
        ("US-3945", workloads::counties(), 1024, 4096),
    ] {
        let extent = raster_join::bounded::polygon_extent(polys);
        let verts: usize = polys.iter().map(Polygon::vertex_count).sum();
        let (t_tri, _) = time(|| triangulate_all(polys));
        // GPU build: parallel, MBR assignment (§6.1).
        let (t_gpu, _) =
            time(|| GridIndex::build(polys, extent, gpu_dim, gpu_dim, AssignMode::Mbr, w));
        // CPU builds: exact geometry assignment (§7.1).
        let (t_mcpu, _) =
            time(|| GridIndex::build(polys, extent, cpu_dim, cpu_dim, AssignMode::Exact, w));
        let (t_1cpu, _) =
            time(|| GridIndex::build(polys, extent, cpu_dim, cpu_dim, AssignMode::Exact, 1));
        r.row(vec![
            name.into(),
            polys.len().to_string(),
            verts.to_string(),
            format!("{} ms", ms(t_tri)),
            format!("{} ms", ms(t_gpu)),
            format!("{} ms", ms(t_mcpu)),
            format!("{} ms", ms(t_1cpu)),
        ]);
    }
    r
}

// ---------------------------------------------------------------- Table 2

/// Table 2: materializing GPU join (Zhang et al. \[72\] style) vs the
/// fused Index Join baseline.
pub fn table2(scale: Scale) -> Report {
    let mut r = Report::new(
        "Table 2: choice of GPU baseline (materializing [72] vs fused Index Join)",
        &[
            "points",
            "materializing",
            "index join",
            "speedup",
            "pairs shipped",
        ],
    );
    r.note("paper: 57.7M → 1060 vs 344 ms; 111.7M → 1649 vs 651; 168.4M → 2129 vs 999 (2-3x)");
    let polys = workloads::neighborhoods();
    let dev = paper_device();
    let w = default_workers();
    let q = Query::count();
    for base in [200_000usize, 400_000, 600_000] {
        let n = scale.apply(base);
        let pts = workloads::taxi(n);
        let mat = MaterializingJoin::new(w).execute(&pts, polys, &q, &dev);
        let idx = IndexJoin::gpu(w).execute(&pts, polys, &q, &dev);
        let (t_mat, t_idx) = (mat.stats.total(), idx.stats.total());
        r.row(vec![
            n.to_string(),
            format!("{} ms", ms(t_mat)),
            format!("{} ms", ms(t_idx)),
            speedup(t_mat, t_idx),
            mat.stats.materialized_pairs.to_string(),
        ]);
    }
    r
}

// ----------------------------------------------------------------- Fig. 8

/// Fig. 8: scaling with points, data fits in GPU memory. Left: speedup
/// over single-CPU; right: total query time.
pub fn fig8(scale: Scale) -> Report {
    let mut r = Report::new(
        "Fig. 8: scaling with points, in-core (Taxi ⋈ Neighborhoods)",
        &[
            "points",
            "1-CPU",
            "m-CPU",
            "baseline(GPU)",
            "accurate",
            "bounded",
            "mCPU spd",
            "base spd",
            "acc spd",
            "bnd spd",
        ],
    );
    r.note("paper shape: bounded > accurate > baseline >> mCPU (~5x) > 1CPU;");
    r.note("bounded is >2 orders of magnitude over 1-CPU and ~4x over accurate.");
    let polys = workloads::neighborhoods();
    let dev = paper_device();
    let w = default_workers();
    let q = Query::count().with_epsilon(10.0);
    for base in [200_000usize, 400_000, 800_000, 1_600_000] {
        let n = scale.apply(base);
        let pts = workloads::taxi(n);
        // In-core semantics (§7.3): the data is resident on the device,
        // so the paper's Fig. 8 time is pure processing; polygon
        // preprocessing is excluded as in §7.1.
        let t1 = IndexJoin::cpu_single()
            .execute(&pts, polys, &q, &dev)
            .stats
            .processing;
        let tm = IndexJoin::cpu_multi(w)
            .execute(&pts, polys, &q, &dev)
            .stats
            .processing;
        let tb = IndexJoin::gpu(w)
            .execute(&pts, polys, &q, &dev)
            .stats
            .processing;
        let ta = AccurateRasterJoin::new(w)
            .execute(&pts, polys, &q, &dev)
            .stats
            .processing;
        let tr = BoundedRasterJoin::new(w)
            .execute(&pts, polys, &q, &dev)
            .stats
            .processing;
        r.row(vec![
            n.to_string(),
            format!("{} ms", ms(t1)),
            format!("{} ms", ms(tm)),
            format!("{} ms", ms(tb)),
            format!("{} ms", ms(ta)),
            format!("{} ms", ms(tr)),
            speedup(t1, tm),
            speedup(t1, tb),
            speedup(t1, ta),
            speedup(t1, tr),
        ]);
    }
    r
}

// ----------------------------------------------------------------- Fig. 9

/// Fig. 9: scaling with points when the data exceeds GPU memory. Right
/// panel: execution-time breakdown (processing vs transfer).
pub fn fig9(scale: Scale) -> Report {
    let mut r = Report::new(
        "Fig. 9: scaling with points, out-of-GPU-core (Taxi ⋈ Neighborhoods)",
        &[
            "points",
            "batches",
            "bounded total",
            "processing",
            "transfer(model)",
            "baseline(GPU)",
            "1-CPU",
            "bnd spd",
        ],
    );
    r.note("paper shape: linear scaling; transfer dominates bounded's total time;");
    r.note("bounded keeps >2 orders of magnitude speedup over 1-CPU.");
    let polys = workloads::neighborhoods();
    let w = default_workers();
    let q = Query::count().with_epsilon(10.0);
    // Budget of 200k points forces multi-batch execution at larger sizes.
    for base in [400_000usize, 800_000, 1_600_000, 3_200_000] {
        let n = scale.apply(base);
        let dev = small_device(scale.apply(400_000), 0);
        let pts = workloads::taxi(n);
        let t1 = IndexJoin::cpu_single()
            .execute(&pts, polys, &q, &dev)
            .stats
            .total();
        let tb = IndexJoin::gpu(w)
            .execute(&pts, polys, &q, &dev)
            .stats
            .total();
        let out = BoundedRasterJoin::new(w).execute(&pts, polys, &q, &dev);
        let tr = out.stats.total();
        r.row(vec![
            n.to_string(),
            out.stats.batches.to_string(),
            format!("{} ms", ms(tr)),
            format!("{} ms", ms(out.stats.processing)),
            format!("{} ms", ms(out.stats.transfer)),
            format!("{} ms", ms(tb)),
            format!("{} ms", ms(t1)),
            speedup(t1, tr),
        ]);
    }
    r
}

// ---------------------------------------------------------------- Fig. 10

/// Fig. 10: scaling with the number of polygons — processing costs (left),
/// total time (middle), GPU-only time (right).
pub fn fig10(scale: Scale) -> Report {
    let mut r = Report::new(
        "Fig. 10: scaling with polygons (§7.4 Voronoi-merge workload)",
        &[
            "polys",
            "triangulate",
            "index build",
            "bounded",
            "accurate",
            "baseline(GPU)",
            "acc PIP",
            "base PIP",
        ],
    );
    r.note("paper shape: bounded flat in polygon count; accurate→baseline gap closes");
    r.note("as outlines cover more pixels (accurate degenerates to baseline when dense).");
    let n = scale.apply(400_000);
    let pts = workloads::taxi(n);
    let dev = paper_device();
    let w = default_workers();
    let q = Query::count().with_epsilon(10.0);
    for count in [256usize, 1_024, 4_096, 16_384] {
        let polys = workloads::polygon_sweep(count);
        let extent = raster_join::bounded::polygon_extent(&polys);
        let (t_tri, _) = time(|| triangulate_all(&polys));
        let (t_idx, _) = time(|| GridIndex::build(&polys, extent, 1024, 1024, AssignMode::Mbr, w));
        let tr = BoundedRasterJoin::new(w)
            .execute(&pts, &polys, &q, &dev)
            .stats
            .processing;
        let acc = AccurateRasterJoin::new(w).execute(&pts, &polys, &q, &dev);
        let ta = acc.stats.processing;
        let base = IndexJoin::gpu(w).execute(&pts, &polys, &q, &dev);
        let tb = base.stats.processing;
        r.row(vec![
            count.to_string(),
            format!("{} ms", ms(t_tri)),
            format!("{} ms", ms(t_idx)),
            format!("{} ms", ms(tr)),
            format!("{} ms", ms(ta)),
            format!("{} ms", ms(tb)),
            acc.stats.pip_tests.to_string(),
            base.stats.pip_tests.to_string(),
        ]);
    }
    r
}

// ---------------------------------------------------------------- Fig. 11

/// Fig. 11: adding attribute constraints, in-core and out-of-core sizes.
pub fn fig11(scale: Scale) -> Report {
    let mut r = Report::new(
        "Fig. 11: scaling with number of attribute constraints (bounded join)",
        &[
            "points",
            "constraints",
            "total",
            "processing",
            "transfer(model)",
            "upload MB",
        ],
    );
    r.note("paper shape: transfer grows with each constraint column; processing");
    r.note("can shrink (filtered points are discarded in the vertex shader).");
    let polys = workloads::neighborhoods();
    let w = default_workers();
    // Thresholds chosen so the small size is in-core and the large is not.
    for (label_n, budget) in [
        (scale.apply(300_000), scale.apply(400_000)),
        (scale.apply(800_000), scale.apply(400_000)),
    ] {
        let pts = workloads::taxi(label_n);
        for k in 0..=5usize {
            let preds: Vec<Predicate> = (0..k)
                .map(|a| Predicate::new(a, CmpOp::Ge, 0.0)) // selective-but-true
                .collect();
            let q = Query::count().with_epsilon(10.0).with_predicates(preds);
            let dev = small_device(budget, q.attrs_uploaded());
            let out = BoundedRasterJoin::new(w).execute(&pts, polys, &q, &dev);
            r.row(vec![
                label_n.to_string(),
                k.to_string(),
                format!("{} ms", ms(out.stats.total())),
                format!("{} ms", ms(out.stats.processing)),
                format!("{} ms", ms(out.stats.transfer)),
                format!("{:.1}", out.stats.upload_bytes as f64 / 1e6),
            ]);
        }
    }
    r
}

// --------------------------------------------------------------- Fig. 12a

/// Fig. 12a: accuracy–time trade-off — bounded total time vs ε, against
/// the accurate variant's (ε-independent) time.
pub fn fig12a(scale: Scale) -> Report {
    let mut r = Report::new(
        "Fig. 12a: accuracy-time trade-off (Taxi ⋈ Neighborhoods)",
        &["epsilon m", "passes", "bounded", "accurate", "median err %"],
    );
    r.note("paper shape: passes grow quadratically as ε shrinks; below some ε the");
    r.note("bounded variant becomes slower than the accurate one (the crossover).");
    let n = scale.apply(400_000);
    let pts = workloads::taxi(n);
    let polys = workloads::neighborhoods();
    let dev = paper_device();
    let w = default_workers();
    let exact = AccurateRasterJoin::new(w).execute(&pts, polys, &Query::count(), &dev);
    let ta = exact.stats.processing;
    let ve = exact.values(Aggregate::Count);
    for eps in [20.0f64, 10.0, 5.0, 2.5, 1.25] {
        let q = Query::count().with_epsilon(eps);
        let out = BoundedRasterJoin::new(w).execute(&pts, polys, &q, &dev);
        let tr = out.stats.processing;
        let errs = percent_errors(&out.values(Aggregate::Count), &ve);
        let med = BoxStats::of(&errs).map(|b| b.median).unwrap_or(0.0);
        r.row(vec![
            format!("{eps}"),
            out.stats.passes.to_string(),
            format!("{} ms", ms(tr)),
            format!("{} ms", ms(ta)),
            format!("{med:.3}"),
        ]);
    }
    r
}

// --------------------------------------------------------------- Fig. 12b

/// Fig. 12b: distribution of per-polygon percent error vs ε (box plots).
pub fn fig12b(scale: Scale) -> Report {
    let mut r = Report::new(
        "Fig. 12b: accuracy-epsilon trade-off (percent error box plots)",
        &[
            "epsilon m",
            "median",
            "q1",
            "q3",
            "whisker lo",
            "whisker hi",
            "max",
        ],
    );
    r.note("paper: at the default ε = 10 m the median error is ≈0.15%; the error");
    r.note("range decreases monotonically as ε shrinks.");
    let n = scale.apply(400_000);
    let pts = workloads::taxi(n);
    let polys = workloads::neighborhoods();
    let dev = paper_device();
    let w = default_workers();
    let exact = AccurateRasterJoin::new(w).execute(&pts, polys, &Query::count(), &dev);
    let ve = exact.values(Aggregate::Count);
    for eps in [20.0f64, 10.0, 5.0, 2.5, 1.25] {
        let q = Query::count().with_epsilon(eps);
        let out = BoundedRasterJoin::new(w).execute(&pts, polys, &q, &dev);
        let errs = percent_errors(&out.values(Aggregate::Count), &ve);
        if let Some(b) = BoxStats::of(&errs) {
            r.row(vec![
                format!("{eps}"),
                format!("{:.4}", b.median),
                format!("{:.4}", b.q1),
                format!("{:.4}", b.q3),
                format!("{:.4}", b.whisker_lo),
                format!("{:.4}", b.whisker_hi),
                format!("{:.4}", b.max),
            ]);
        }
    }
    r
}

// --------------------------------------------------------------- Fig. 12c

/// Fig. 12c: per-polygon accurate-vs-approximate scatter with expected
/// result intervals at the coarsest bound (ε = 20 m).
pub fn fig12c(scale: Scale) -> Report {
    let mut r = Report::new(
        "Fig. 12c: accurate vs approximate per polygon, ε = 20 m, with intervals",
        &[
            "poly",
            "accurate",
            "approx",
            "expected lo",
            "expected hi",
            "worst lo",
            "worst hi",
            "exact in worst?",
        ],
    );
    r.note("paper: all points hug the diagonal; expected intervals are tight and");
    r.note("the computed ranges bracket the accurate value.");
    let n = scale.apply(200_000);
    let pts = workloads::taxi(n);
    let polys = workloads::neighborhoods();
    let dev = paper_device();
    let w = default_workers();
    let q = Query::count().with_epsilon(20.0);
    let exact = AccurateRasterJoin::new(w).execute(&pts, polys, &Query::count(), &dev);
    let ranges = estimate_count_ranges(&pts, polys, &q, &dev, w);
    // Print the 12 busiest polygons (the paper's zoom-in highlights dense
    // ones).
    let mut order: Vec<usize> = (0..polys.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(exact.counts[i]));
    let mut contained_all = true;
    for &i in order.iter().take(12) {
        let rg = &ranges[i];
        let ok = rg.worst_contains(exact.counts[i] as f64);
        contained_all &= ok;
        r.row(vec![
            i.to_string(),
            exact.counts[i].to_string(),
            format!("{:.0}", rg.value),
            format!("{:.1}", rg.expected_lo),
            format!("{:.1}", rg.expected_hi),
            format!("{:.0}", rg.worst_lo),
            format!("{:.0}", rg.worst_hi),
            if ok { "yes" } else { "NO" }.into(),
        ]);
    }
    let total_in = (0..polys.len())
        .filter(|&i| ranges[i].worst_contains(exact.counts[i] as f64))
        .count();
    r.note(format!(
        "worst-case interval contains the exact value for {total_in}/{} polygons{}",
        polys.len(),
        if contained_all { " (all shown)" } else { "" }
    ));
    r
}

// ----------------------------------------------------------------- Fig. 6

/// Fig. 6 / §7.6 "Effect on Visualizations": JND analysis at ε = 20 m.
pub fn fig6(scale: Scale) -> Report {
    let mut r = Report::new(
        "Fig. 6: visualization indistinguishability (JND analysis)",
        &[
            "epsilon m",
            "max normalized error",
            "JND (1/9)",
            "indistinguishable?",
        ],
    );
    r.note("paper: max normalized error at ε = 20 m is < 0.002 << 1/9.");
    let n = scale.apply(400_000);
    let pts = workloads::taxi(n);
    let polys = workloads::neighborhoods();
    let dev = paper_device();
    let w = default_workers();
    let exact = AccurateRasterJoin::new(w).execute(&pts, polys, &Query::count(), &dev);
    let ve = exact.values(Aggregate::Count);
    for eps in [20.0f64, 10.0] {
        let out =
            BoundedRasterJoin::new(w).execute(&pts, polys, &Query::count().with_epsilon(eps), &dev);
        let err = max_normalized_error(&out.values(Aggregate::Count), &ve);
        r.row(vec![
            format!("{eps}"),
            format!("{err:.6}"),
            format!("{JND:.6}"),
            if err < JND { "yes" } else { "no" }.into(),
        ]);
    }
    r
}

// ---------------------------------------------------------------- Fig. 13

/// Fig. 13: disk-resident data (Twitter ⋈ Counties) — total time and
/// processing-only time, run through the streaming out-of-core executor:
/// the planner's batch model picks the chunk size (replacing the old
/// hard-coded 250 k), the polygon side is prepared once, per-chunk
/// outputs merge through the shared distributive-aggregate rule (counts
/// AND sums — the old hand-rolled loop dropped sums), and the prefetch
/// thread overlaps disk reads with processing. The `disk` column is the
/// residual wait the prefetcher could not hide; `read` is the reader
/// thread's (overlapped) wall time.
pub fn fig13(scale: Scale) -> Report {
    use raster_join::StreamingRasterJoin;
    let mut r = Report::new(
        "Fig. 13: disk-resident scaling (Twitter ⋈ US-Counties, ε = 1 km, streamed)",
        &[
            "points",
            "chunk(planner)",
            "chunks",
            "total",
            "disk wait",
            "read",
            "read MB",
            "cols",
            "processing",
            "transfer(model)",
            "1-CPU(mem)",
            "bnd spd",
        ],
    );
    r.note("paper shape: disk I/O dominates totals, GPU processing stays consistent");
    r.note("with the in-memory runs; >1 order of magnitude over the CPU baseline.");
    r.note("beyond the paper: the prefetch reader overlaps I/O, so 'disk wait' <<");
    r.note("'read'; the blocking ablation arm lives in bench_stream. Projection");
    r.note("pushdown prunes every column COUNT(*) does not touch — 'cols' lists");
    r.note("what was materialized, 'read MB' the bytes actually fetched (x/y only:");
    r.note("16 of 28 B/row).");
    let polys = workloads::counties();
    let w = default_workers();
    let q = Query::count().with_epsilon(1_000.0);
    let dir = std::env::temp_dir();
    for base in [500_000usize, 1_000_000, 2_000_000] {
        let n = scale.apply(base);
        let pts = workloads::twitter(n);
        let path = dir.join(format!("rjr-fig13-{n}.bin"));
        raster_data::disk::write_table(&path, &pts).expect("write twitter table");
        drop(pts);

        // The device budget (the paper's GPU memory limit) is what the
        // planner's chunk-size oracle fills. Reads are paced to the
        // modelled disk so the experiment stays disk-resident even though
        // this box's page cache serves the table at RAM speed.
        let dev = small_device(scale.apply(250_000), 0);
        let stream = StreamingRasterJoin::new(w)
            .with_disk_bandwidth(raster_join::stream::MODELLED_DISK_BANDWIDTH);
        let s = stream
            .execute(&path, polys, &q, &dev)
            .expect("disk-resident scan");
        // Query time = processing + transfer + residual disk wait
        // (polygon processing excluded as everywhere else).
        let total = s.output.stats.total();
        std::fs::remove_file(&path).ok();

        // CPU baseline gets the in-memory table (its best case).
        let pts = workloads::twitter(n);
        let t1 = IndexJoin::cpu_single()
            .with_index_dim(1024)
            .execute(&pts, polys, &q, &paper_device())
            .stats
            .processing;
        // Materialized columns (per-column I/O counters with bytes).
        let cols: Vec<&str> = s
            .column_io
            .iter()
            .filter(|c| c.bytes_read > 0)
            .map(|c| c.name.as_str())
            .collect();
        r.row(vec![
            n.to_string(),
            s.chunk_rows.to_string(),
            s.chunks.to_string(),
            format!("{} ms", ms(total)),
            format!("{} ms", ms(s.output.stats.disk)),
            format!("{} ms", ms(s.read_time)),
            format!("{:.1}", s.read_bytes as f64 / 1e6),
            cols.join("+"),
            format!("{} ms", ms(s.output.stats.processing)),
            format!("{} ms", ms(s.output.stats.transfer)),
            format!("{} ms", ms(t1)),
            speedup(t1, total - s.output.stats.disk),
        ]);
    }
    r
}

// ---------------------------------------------------------------- Fig. 14

/// Fig. 14: accuracy trade-offs on the Twitter/Counties workload.
pub fn fig14(scale: Scale) -> Report {
    let mut r = Report::new(
        "Fig. 14: accuracy trade-offs (Twitter ⋈ US-Counties)",
        &[
            "epsilon m",
            "passes",
            "bounded",
            "median err %",
            "max norm err",
        ],
    );
    r.note("paper: same shape as the taxi experiments at county scale (ε = 1 km default).");
    let n = scale.apply(800_000);
    let pts = workloads::twitter(n);
    let polys = workloads::counties();
    let dev = paper_device();
    let w = default_workers();
    let exact = AccurateRasterJoin::new(w).execute(&pts, polys, &Query::count(), &dev);
    let ve = exact.values(Aggregate::Count);
    for eps in [4_000.0f64, 2_000.0, 1_000.0, 500.0] {
        let q = Query::count().with_epsilon(eps);
        let out = BoundedRasterJoin::new(w).execute(&pts, polys, &q, &dev);
        let tr = out.stats.processing;
        let va = out.values(Aggregate::Count);
        let errs = percent_errors(&va, &ve);
        let med = BoxStats::of(&errs).map(|b| b.median).unwrap_or(0.0);
        r.row(vec![
            format!("{eps}"),
            out.stats.passes.to_string(),
            format!("{} ms", ms(tr)),
            format!("{med:.3}"),
            format!("{:.6}", max_normalized_error(&va, &ve)),
        ]);
    }
    r
}

// ------------------------------------------------------------- Ablations

/// Beyond-the-paper comparison: every join strategy of §1/§2 on one
/// workload, with the work/transfer counters that explain the ranking,
/// plus the three approximation knobs (ε, sample size, coordinate bits)
/// on one error-vs-time table.
pub fn ablations(scale: Scale) -> Report {
    use raster_join::{SamplingJoin, TwoStepJoin};
    let mut r = Report::new(
        "Ablations: strategy lineage and approximation knobs",
        &[
            "strategy / knob",
            "time",
            "med err%",
            "max err%",
            "PIP tests",
            "pairs shipped",
        ],
    );
    r.note("exact strategies must agree; approximate ones trade error for work");
    r.note("max err% is dominated by near-empty polygons (paper reports medians, Fig. 12b)");
    let w = default_workers();
    let polys = workloads::neighborhoods();
    let n = scale.apply(300_000);
    let pts = workloads::taxi(n);
    let dev = paper_device();
    let q = Query::count().with_epsilon(20.0);

    let exact = IndexJoin::cpu_single().execute(&pts, polys, &q, &dev);
    let exact_vals = exact.values(Aggregate::Count);
    let errs = |vals: &[f64]| -> (f64, f64) {
        let mut e: Vec<f64> = vals
            .iter()
            .zip(&exact_vals)
            .map(|(v, ex)| (v - ex).abs() / ex.max(1.0) * 100.0)
            .collect();
        e.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = e[e.len() / 2];
        let max = *e.last().unwrap_or(&0.0);
        (med, max)
    };
    let mut push = |name: &str, vals: &[f64], stats: &raster_join::ExecStats| {
        let (med, max) = errs(vals);
        r.row(vec![
            name.into(),
            format!("{} ms", ms(stats.total())),
            format!("{med:.3}"),
            format!("{max:.3}"),
            stats.pip_tests.to_string(),
            (stats.candidate_pairs + stats.materialized_pairs).to_string(),
        ]);
    };

    let two = TwoStepJoin::new(w).execute(&pts, polys, &q, &dev);
    push(
        "two-step filter-refine",
        &two.values(Aggregate::Count),
        &two.stats,
    );
    let mat = MaterializingJoin::new(w).execute(&pts, polys, &q, &dev);
    push(
        "materializing [72]",
        &mat.values(Aggregate::Count),
        &mat.stats,
    );
    let mut mat16 = MaterializingJoin::new(w);
    mat16.coord_bits = Some(16);
    let m16 = mat16.execute(&pts, polys, &q, &dev);
    push(
        "materializing 16-bit",
        &m16.values(Aggregate::Count),
        &m16.stats,
    );
    let fused = IndexJoin::gpu(w).execute(&pts, polys, &q, &dev);
    push(
        "fused index join",
        &fused.values(Aggregate::Count),
        &fused.stats,
    );
    let acc = AccurateRasterJoin::default().execute(&pts, polys, &q, &dev);
    push("accurate raster", &acc.values(Aggregate::Count), &acc.stats);
    for eps in [80.0, 20.0] {
        let out =
            BoundedRasterJoin::new(w).execute(&pts, polys, &Query::count().with_epsilon(eps), &dev);
        push(
            &format!("bounded raster ε={eps}m"),
            &out.values(Aggregate::Count),
            &out.stats,
        );
    }
    for ns in [1_000usize, 10_000] {
        let out = SamplingJoin::new(ns, 7).execute(&pts, polys, &q, &dev);
        push(&format!("sampling n={ns}"), &out.estimates, &out.stats);
    }
    r
}

// --------------------------------------------------------------- Planner

/// Beyond-the-paper §8 extension: the feedback-calibrated planner's
/// decisions across an ε/selectivity sweep — predicted vs measured cost
/// of the chosen plan, and the measured cost of the best alternative
/// variant it rejected.
pub fn planner(scale: Scale) -> Report {
    use raster_join::optimizer::Variant;
    use raster_join::AutoRasterJoin;
    let mut r = Report::new(
        "Planner: feedback-calibrated decisions (Taxi ⋈ Neighborhoods)",
        &[
            "epsilon m",
            "selective",
            "chosen plan",
            "predicted (units)",
            "measured",
            "rejected variant",
        ],
    );
    r.note("the planner ranks {variant × RasterConfig × batch} per query; online");
    r.note("feedback folds each run's predicted-vs-actual ratio back in.");
    r.note("predicted costs are in the builtin model's abstract units (not ms) —");
    r.note("run bench_planner for a calibration fitted to seconds.");
    let n = scale.apply(300_000);
    let pts = workloads::taxi(n);
    let polys = workloads::neighborhoods();
    let dev = Device::new(DeviceConfig::small(3 << 30, 2048));
    let hour = pts.attr_index("hour").unwrap();
    let auto = AutoRasterJoin::default();
    for (eps, selective) in [
        (100.0, false),
        (20.0, false),
        (20.0, true),
        (4.0, false),
        (4.0, true),
    ] {
        let mut q = Query::count().with_epsilon(eps);
        if selective {
            q = q.with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 16.8)]);
        }
        let choice = auto.plan(&pts, polys, &q, &dev);
        let rejected = match choice.choice() {
            Variant::Bounded => Variant::Accurate,
            Variant::Accurate => Variant::Bounded,
        };
        let rejected_cost = choice
            .best_of(rejected)
            .map(|c| format!("{:?} @ {:.3e}", rejected, c.cost))
            .unwrap_or_else(|| "n/a".into());
        let (plan, out) = auto.execute(&pts, polys, &q, &dev);
        r.row(vec![
            format!("{eps}"),
            selective.to_string(),
            plan.describe(),
            format!("{:.3e}", choice.best().cost),
            format!("{} ms", ms(out.stats.processing)),
            rejected_cost,
        ]);
    }
    let cal = auto.calibration();
    r.note(format!(
        "calibration after sweep: {} observation(s), unit {:.3e} s/op",
        cal.observations, cal.unit
    ));
    r
}

pub fn all(scale: Scale) -> Vec<Report> {
    vec![
        table1(scale),
        table2(scale),
        fig6(scale),
        fig8(scale),
        fig9(scale),
        fig10(scale),
        fig11(scale),
        fig12a(scale),
        fig12b(scale),
        fig12c(scale),
        fig13(scale),
        fig14(scale),
        ablations(scale),
        planner(scale),
    ]
}
