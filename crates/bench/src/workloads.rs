//! Lazily built, process-cached workloads shared across experiments.

use raster_data::generators::{nyc_extent, TaxiModel, TwitterModel};
use raster_data::polygons;
use raster_data::PointTable;
use raster_geom::Polygon;
use std::sync::OnceLock;

static TAXI: OnceLock<PointTable> = OnceLock::new();
static TWITTER: OnceLock<PointTable> = OnceLock::new();
static NEIGHBORHOODS: OnceLock<Vec<Polygon>> = OnceLock::new();
static COUNTIES: OnceLock<Vec<Polygon>> = OnceLock::new();

/// Largest taxi table any experiment asks for; prefixes serve smaller
/// sizes (prefix = time-range selection, §7.1).
pub const TAXI_MAX: usize = 3_200_000;

/// Largest twitter table (disk-resident experiment).
pub const TWITTER_MAX: usize = 2_000_000;

/// The taxi-like point set, truncated to `n` points.
pub fn taxi(n: usize) -> PointTable {
    let full = TAXI.get_or_init(|| TaxiModel::default().generate(TAXI_MAX, 0x7A51));
    full.prefix(n.min(TAXI_MAX))
}

/// The twitter-like point set, truncated to `n` points.
pub fn twitter(n: usize) -> PointTable {
    let full = TWITTER.get_or_init(|| TwitterModel::default().generate(TWITTER_MAX, 0x7717));
    full.prefix(n.min(TWITTER_MAX))
}

/// NYC-neighborhood stand-in polygons (260).
pub fn neighborhoods() -> &'static [Polygon] {
    NEIGHBORHOODS.get_or_init(polygons::nyc_neighborhoods)
}

/// US-county stand-in polygons (3 945).
pub fn counties() -> &'static [Polygon] {
    COUNTIES.get_or_init(polygons::us_counties)
}

/// Synthetic polygon sweep over the NYC extent (Fig. 10).
pub fn polygon_sweep(count: usize) -> Vec<Polygon> {
    polygons::synthetic_polygons(count, &nyc_extent(), 0xF16)
}

pub use raster_data::generators::nyc_extent as nyc;
pub use raster_data::generators::us_extent as us;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_are_nested() {
        let a = taxi(1_000);
        let b = taxi(2_000);
        assert_eq!(a.len(), 1_000);
        assert_eq!(b.len(), 2_000);
        assert_eq!(a.point(999), b.point(999));
    }

    #[test]
    fn polygon_sets_have_paper_cardinalities() {
        assert_eq!(neighborhoods().len(), 260);
    }

    #[test]
    fn extents_contain_their_points() {
        let t = taxi(500);
        let e = nyc();
        for i in 0..t.len() {
            assert!(e.contains(t.point(i)));
        }
        let w = twitter(500);
        let ue = us();
        for i in 0..w.len() {
            assert!(ue.contains(w.point(i)));
        }
    }
}
