//! Minimal aligned-table rendering for experiment output.

/// A printable experiment report: a title, optional commentary lines and
/// an aligned table.
pub struct Report {
    pub title: String,
    pub notes: Vec<String>,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Report {
            title: title.to_string(),
            notes: Vec::new(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for n in &self.notes {
            out.push_str(&format!("   {n}\n"));
        }
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }
}

/// Format a `Duration` in engineering-friendly ms.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut r = Report::new("T", &["a", "bbbb"]);
        r.row(vec!["1".into(), "2".into()]);
        r.row(vec!["100".into(), "2000".into()]);
        let s = r.render();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut r = Report::new("T", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.0");
    }
}
