#![forbid(unsafe_code)]
//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 # every experiment, paper order
//! repro table1 table2       # specific experiments
//! repro fig12a --scale 2.0  # grow the point sweeps 2x
//! ```

use bench::{experiments, Scale};

const USAGE: &str = "usage: repro [--scale F] [all | table1 | table2 | fig6 | fig8 | fig9 | fig10 | fig11 | fig12a | fig12b | fig12c | fig13 | fig14 | ablations | planner]...";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default();
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        if i + 1 >= args.len() {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        scale = Scale(args[i + 1].parse().unwrap_or_else(|_| {
            eprintln!("bad --scale value");
            std::process::exit(2);
        }));
        args.drain(i..=i + 1);
    }
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let started = std::time::Instant::now();
    for name in &args {
        let reports = match name.as_str() {
            "all" => experiments::all(scale),
            "table1" => vec![experiments::table1(scale)],
            "table2" => vec![experiments::table2(scale)],
            "fig6" => vec![experiments::fig6(scale)],
            "fig8" => vec![experiments::fig8(scale)],
            "fig9" => vec![experiments::fig9(scale)],
            "fig10" => vec![experiments::fig10(scale)],
            "fig11" => vec![experiments::fig11(scale)],
            "fig12a" => vec![experiments::fig12a(scale)],
            "fig12b" => vec![experiments::fig12b(scale)],
            "fig12c" => vec![experiments::fig12c(scale)],
            "fig13" => vec![experiments::fig13(scale)],
            "fig14" => vec![experiments::fig14(scale)],
            "ablations" => vec![experiments::ablations(scale)],
            "planner" => vec![experiments::planner(scale)],
            other => {
                eprintln!("unknown experiment `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        };
        for r in reports {
            println!("{}", r.render());
        }
    }
    eprintln!("(total wall time: {:.1?})", started.elapsed());
}
