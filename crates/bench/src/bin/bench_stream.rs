#![forbid(unsafe_code)]
//! `bench_stream` — the disk-resident streaming executor benchmark
//! (the Fig. 13 cell, §7.7, run through `StreamingRasterJoin`).
//!
//! Seven measurements into `BENCH_stream.json` (`RJ_WORKERS` overrides
//! the worker autodetection for every arm, see
//! `raster_gpu::exec::default_workers`):
//!
//! 1. **Prefetch vs blocking** at the headline cell (default: 2 M Twitter
//!    points ⋈ US counties, ε = 1 km, 250 k-point device budget): total
//!    disk+processing time of the double-buffered prefetch reader against
//!    the paper-faithful blocking reader, best of `--reps`.
//! 2. **Compressed vs raw**: the same prefetched scan over the v2
//!    compressed table — the modelled disk charges the compressed bytes,
//!    so the arm shows how much of the bandwidth-bound read the codecs
//!    buy back (and what the overlapped decode costs). Counts must be
//!    bit-identical and sums exactly equal to the raw streaming arm.
//! 3. **Pruned vs full columns**: a `SELECT AVG(favorites) … WHERE
//!    hour < 84` over the compressed table with projection pushdown (the
//!    default) against the same scan forced to read every column (the
//!    PR-4 behaviour). The pruned arm must read strictly fewer bytes —
//!    `retweets` never leaves the disk — with counts bit-identical and
//!    sums exactly equal; per-column `column_io` attributes the win.
//! 4. **Chunk-parallel pool**: the pruned cell with a chunk pool of
//!    ≥ 4 workers against the forced-sequential 1-worker scan. On a
//!    multi-core box the pool overlaps the decode+join of several chunks
//!    and the speedup lands in disk+processing; on a single-core box it
//!    degenerates to ~1x. The pool must agree **bitwise** (counts and
//!    sums) with the blocking arm at the same width — the sequential
//!    execution of the identical plan — and counts must match the
//!    in-memory reference bit-for-bit.
//! 5. **Chunk-size grid**: fixed chunk sizes (fractions of the device
//!    budget) against the planner-chosen chunk, to verify the planner's
//!    batch model is a sound chunk-size oracle (within 20% of the best
//!    fixed size).
//! 6. **Equality**: streamed counts must equal the in-memory execution of
//!    the same plan bit-for-bit; sums within f32 reassociation tolerance.
//! 7. **Reader throughput**: processing-free chunked scans of both files,
//!    documenting the positioned-read reader and the raw decode cost.
//!
//! ```text
//! bench_stream [--quick] [--reps N] [--out PATH]
//! ```

use bench::arg_value;
use raster_data::disk::{
    write_table, write_table_compressed, ChunkedReader, DEFAULT_COMPRESSED_CHUNK_ROWS,
};
use raster_data::PointTable;
use raster_gpu::{Device, DeviceConfig};
use raster_join::stream::MODELLED_DISK_BANDWIDTH;
use raster_join::{Query, StreamOutput, StreamingRasterJoin};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

mod workload {
    pub use bench::workloads::{counties, twitter};
}

struct Run {
    wall_ms: f64,
    out: StreamOutput,
}

/// disk+processing time (the Fig. 13 "total" without the modelled
/// transfer, which is identical across reader modes).
fn disk_plus_processing_ms(r: &Run) -> f64 {
    (r.out.output.stats.disk + r.out.output.stats.processing).as_secs_f64() * 1e3
}

fn best_of(reps: usize, mut f: impl FnMut() -> Run) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps {
        let r = f();
        if best
            .as_ref()
            .is_none_or(|b| disk_plus_processing_ms(&r) < disk_plus_processing_ms(b))
        {
            best = Some(r);
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = arg_value(&args, "--reps")
        .map(|v| v.parse().expect("--reps N"))
        .unwrap_or(3usize)
        .max(1);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_stream.json".to_string());

    // The Fig. 13 headline cell; --quick shrinks it to a CI smoke.
    let n: usize = if quick { 200_000 } else { 2_000_000 };
    let budget_points: usize = if quick { 25_000 } else { 250_000 };
    let workers = raster_gpu::exec::default_workers();

    eprintln!("generating {n} twitter points + counties…");
    let pts = workload::twitter(n);
    let polys = workload::counties();
    let favorites = pts.attr_index("favorites").expect("favorites attr");
    // SUM exercises both accumulators of the distributive merge (the
    // fixed Fig. 13 bug dropped one of them).
    let q = Query::sum(favorites).with_epsilon(1_000.0);
    let dev = Device::new(DeviceConfig::small(
        budget_points * PointTable::point_bytes(q.attrs_uploaded()),
        8192,
    ));
    let capacity = dev.points_per_batch(PointTable::point_bytes(q.attrs_uploaded()));

    let path = std::env::temp_dir().join(format!("rjr-bench-stream-{n}.bin"));
    write_table(&path, &pts).expect("write table");
    let pathz = std::env::temp_dir().join(format!("rjr-bench-stream-{n}.binz"));
    // Stored chunks sized to the device budget: the planner's delivery
    // chunk then maps ~1:1 onto stored blocks, so the reader mostly hands
    // decoded blocks over without re-slicing.
    write_table_compressed(
        &pathz,
        &pts,
        budget_points.min(DEFAULT_COMPRESSED_CHUNK_ROWS),
    )
    .expect("write compressed");
    let raw_file_bytes = std::fs::metadata(&path).expect("stat").len();
    let z_file_bytes = std::fs::metadata(&pathz).expect("stat").len();
    eprintln!(
        "table: {raw_file_bytes} bytes raw, {z_file_bytes} compressed ({:.2}x)",
        raw_file_bytes as f64 / z_file_bytes as f64
    );

    // ------------------------------------------------- reader throughput
    let scan = |p: &Path| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut r = ChunkedReader::open(p, capacity).expect("open");
            let mut rows = 0usize;
            while let Some(c) = r.next_chunk().expect("chunk") {
                rows += c.len();
            }
            assert_eq!(rows, n);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let scan_ms = scan(&path);
    let scan_z_ms = scan(&pathz);
    eprintln!("reader-only chunked scan: {scan_ms:.1} ms raw, {scan_z_ms:.1} ms compressed");

    // -------------------------------------- prefetch vs blocking headline
    let run_on = |stream: &StreamingRasterJoin, p: &Path| -> Run {
        let t0 = Instant::now();
        let out = stream.execute(p, polys, &q, &dev).expect("stream");
        Run {
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            out,
        }
    };
    let run = |stream: &StreamingRasterJoin| -> Run { run_on(stream, &path) };
    // Reads are paced to the modelled disk (see MODELLED_DISK_BANDWIDTH):
    // this box's page cache serves the table at RAM speed, which would
    // reduce the §7.7 "disk-resident" experiment to an in-memory one.
    // The reader-scheduling and codec arms read *every* column (pruning
    // off), matching the PR-3/PR-4 baselines they are compared against;
    // projection pushdown is isolated in its own arm below.
    let stream = || {
        StreamingRasterJoin::new(workers)
            .with_disk_bandwidth(MODELLED_DISK_BANDWIDTH)
            .with_column_pruning(false)
    };
    let prefetch = best_of(reps, || run(&stream()));
    let blocking = best_of(reps, || run(&stream().blocking()));
    let planner_chunk = prefetch.out.chunk_rows;
    eprintln!(
        "prefetch: {:.1} ms disk+proc (wall {:.1}, disk wait {:.1}, read {:.1}) | \
         blocking: {:.1} ms disk+proc (wall {:.1}, disk wait {:.1})",
        disk_plus_processing_ms(&prefetch),
        prefetch.wall_ms,
        prefetch.out.output.stats.disk.as_secs_f64() * 1e3,
        prefetch.out.read_time.as_secs_f64() * 1e3,
        disk_plus_processing_ms(&blocking),
        blocking.wall_ms,
        blocking.out.output.stats.disk.as_secs_f64() * 1e3,
    );

    // --------------------------------------------- compressed streaming arm
    let compressed = best_of(reps, || run_on(&stream(), &pathz));
    let bytes_reduction = prefetch.out.read_bytes as f64 / compressed.out.read_bytes.max(1) as f64;
    let compressed_beats_raw =
        disk_plus_processing_ms(&compressed) < disk_plus_processing_ms(&prefetch);
    // Same chunk boundaries, bit-exact decode ⇒ the compressed stream
    // must reproduce the raw stream's aggregates *exactly*. Counts are
    // integer folds and compare across the measured runs directly; the
    // f32 sum folds reassociate nondeterministically across >1 worker
    // (run-to-run, even on identical inputs), so sum exactness is probed
    // with a deterministic single-worker, unpaced pair at the measured
    // chunk size — bitwise equality, no tolerance.
    let compressed_counts_exact = compressed.out.output.counts == prefetch.out.output.counts;
    let exact_probe = |p: &Path| {
        StreamingRasterJoin::new(1)
            .with_chunk_rows(planner_chunk)
            .execute(p, polys, &q, &dev)
            .expect("exactness probe")
            .output
    };
    let (probe_raw, probe_z) = (exact_probe(&path), exact_probe(&pathz));
    let compressed_sums_exact =
        probe_z.sums == probe_raw.sums && probe_z.counts == probe_raw.counts;
    eprintln!(
        "compressed: {:.1} ms disk+proc (read {:.1} ms, decode {:.1} ms) | bytes {} vs {} raw \
         ({bytes_reduction:.2}x) | beats raw prefetch: {compressed_beats_raw} | counts exact: \
         {compressed_counts_exact}, sums exact: {compressed_sums_exact}",
        disk_plus_processing_ms(&compressed),
        compressed.out.read_time.as_secs_f64() * 1e3,
        compressed.out.decode_time.as_secs_f64() * 1e3,
        compressed.out.read_bytes,
        prefetch.out.read_bytes,
    );

    // --------------------------------------------- projection-pushdown arm
    // The acceptance query: AVG of one attribute, one predicate on a
    // *different* attribute — materializes x, y, favorites, hour and
    // prunes retweets. Both arms stream the same compressed file; only
    // the projection differs.
    let hour = pts.attr_index("hour").expect("hour attr");
    let q2 = Query::avg(favorites)
        .with_epsilon(1_000.0)
        .with_predicates(vec![raster_data::Predicate::new(
            hour,
            raster_data::CmpOp::Lt,
            84.0,
        )]);
    let dev2 = Device::new(DeviceConfig::small(
        budget_points * PointTable::point_bytes(q2.attrs_uploaded()),
        8192,
    ));
    let pruned_stream =
        || StreamingRasterJoin::new(workers).with_disk_bandwidth(MODELLED_DISK_BANDWIDTH);
    match pruned_stream().explain(&pathz, polys, &q2, &dev2) {
        Ok(plan) => eprint!("{plan}"),
        Err(e) => eprintln!("explain failed: {e}"),
    }
    let run2 = |stream: &StreamingRasterJoin| -> Run {
        let t0 = Instant::now();
        let out = stream.execute(&pathz, polys, &q2, &dev2).expect("stream");
        Run {
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            out,
        }
    };
    let pruned = best_of(reps, || run2(&pruned_stream()));
    let full_cols = best_of(reps, || run2(&pruned_stream().with_column_pruning(false)));
    let pruned_bytes_reduction =
        full_cols.out.read_bytes as f64 / pruned.out.read_bytes.max(1) as f64;
    let pruned_beats_full = disk_plus_processing_ms(&pruned) < disk_plus_processing_ms(&full_cols);
    let pruned_counts_exact = pruned.out.output.counts == full_cols.out.output.counts;
    // Sum exactness probed deterministically (single worker, unpaced,
    // fixed chunk), like the compressed arm above.
    let prune_probe = |prune: bool| {
        StreamingRasterJoin::new(1)
            .with_chunk_rows(pruned.out.chunk_rows)
            .with_column_pruning(prune)
            .execute(&pathz, polys, &q2, &dev2)
            .expect("pruned exactness probe")
            .output
    };
    let (probe_pruned, probe_full) = (prune_probe(true), prune_probe(false));
    let pruned_sums_exact =
        probe_pruned.sums == probe_full.sums && probe_pruned.counts == probe_full.counts;
    eprintln!(
        "pruned: {:.1} ms disk+proc, {} bytes vs {} full ({pruned_bytes_reduction:.2}x) | beats \
         full: {pruned_beats_full} | counts exact: {pruned_counts_exact}, sums exact: \
         {pruned_sums_exact}",
        disk_plus_processing_ms(&pruned),
        pruned.out.read_bytes,
        full_cols.out.read_bytes,
    );
    for c in &pruned.out.column_io {
        eprintln!(
            "  column {:>10}: {:>9} bytes, {:>6.1} ms decode{}",
            c.name,
            c.bytes_read,
            c.decode_time.as_secs_f64() * 1e3,
            if c.bytes_read == 0 { "  (pruned)" } else { "" }
        );
    }

    // -------------------------------------------------- chunk-parallel arm
    // The pruned cell again, chunk pool of ≥ 4 workers vs the forced
    // 1-worker sequential scan (both paced, both pruned).
    let par_workers = workers.max(4);
    let par_stream =
        |w: usize| StreamingRasterJoin::new(w).with_disk_bandwidth(MODELLED_DISK_BANDWIDTH);
    let parallel = best_of(reps, || run2(&par_stream(par_workers)));
    let sequential = best_of(reps, || run2(&par_stream(1)));
    let parallel_ms = disk_plus_processing_ms(&parallel);
    let sequential_ms = disk_plus_processing_ms(&sequential);
    let parallel_speedup = sequential_ms / parallel_ms.max(1e-9);
    // Exactness probe: unpaced, fixed chunk, same width — the blocking
    // arm disables the pool but keeps the identical plan, so pool vs
    // blocking is exactly parallel vs sequential execution of one plan.
    // Bitwise equality, no tolerance.
    let par_probe = |blocking: bool| {
        let mut s = StreamingRasterJoin::new(par_workers).with_chunk_rows(parallel.out.chunk_rows);
        if blocking {
            s = s.blocking();
        }
        s.execute(&pathz, polys, &q2, &dev2)
            .expect("parallel exactness probe")
    };
    let (probe_pool, probe_blk) = (par_probe(false), par_probe(true));
    let parallel_sums_exact = probe_pool.output.sums == probe_blk.output.sums
        && probe_pool.output.counts == probe_blk.output.counts;
    // Counts are integer folds: bit-identical to the in-memory execution
    // of the parallel arm's own plan.
    let reference_par = parallel.out.plan.execute(&pts, polys, &q2, &dev2);
    let parallel_counts_exact = parallel.out.output.counts == reference_par.counts;
    eprintln!(
        "parallel({} worker(s), pool {}): {parallel_ms:.1} ms disk+proc vs sequential \
         {sequential_ms:.1} ms → {parallel_speedup:.2}x | counts exact: {parallel_counts_exact}, \
         sums exact vs sequential: {parallel_sums_exact}",
        par_workers, parallel.out.pool_workers,
    );

    // ------------------------------------------------------ equality check
    let reference = prefetch.out.plan.execute(&pts, polys, &q, &dev);
    let counts_exact = prefetch.out.output.counts == reference.counts
        && blocking.out.output.counts == reference.counts;
    let mut max_sum_rel_err = 0f64;
    for (got, want) in prefetch.out.output.sums.iter().zip(&reference.sums) {
        let denom = want.abs().max(1.0);
        max_sum_rel_err = max_sum_rel_err.max((got - want).abs() / denom);
    }
    let sums_close = max_sum_rel_err <= 1e-5;
    eprintln!("counts exact: {counts_exact}; max sum rel err: {max_sum_rel_err:.2e}");

    // ------------------------------------------------------ chunk-size grid
    let mut grid: Vec<(usize, Run)> = Vec::new();
    for div in [8usize, 4, 2, 1] {
        let chunk = (capacity / div).max(1);
        let r = best_of(reps, || run(&stream().with_chunk_rows(chunk)));
        eprintln!(
            "fixed chunk {:>8}: {:>8.1} ms disk+proc ({} chunks)",
            chunk,
            disk_plus_processing_ms(&r),
            r.out.chunks
        );
        grid.push((chunk, r));
    }
    let (best_chunk, best_run) = grid
        .iter()
        .min_by(|a, b| disk_plus_processing_ms(&a.1).total_cmp(&disk_plus_processing_ms(&b.1)))
        .map(|(c, r)| (*c, r))
        .expect("grid");
    let planner_ms = disk_plus_processing_ms(&prefetch);
    let best_fixed_ms = disk_plus_processing_ms(best_run);
    let within_20pct = planner_ms <= best_fixed_ms * 1.20;
    let prefetch_wins = disk_plus_processing_ms(&prefetch) < disk_plus_processing_ms(&blocking);
    eprintln!(
        "planner chunk {planner_chunk} @ {planner_ms:.1} ms vs best fixed {best_chunk} @ \
         {best_fixed_ms:.1} ms → within 20%: {within_20pct}; prefetch beats blocking: \
         {prefetch_wins}"
    );

    let arm = CompressedArm {
        run: &compressed,
        scan_z_ms,
        raw_file_bytes,
        z_file_bytes,
        bytes_reduction,
        beats_raw: compressed_beats_raw,
        counts_exact: compressed_counts_exact,
        sums_exact: compressed_sums_exact,
    };
    let parm = PrunedArm {
        pruned: &pruned,
        full_cols: &full_cols,
        bytes_reduction: pruned_bytes_reduction,
        beats_full: pruned_beats_full,
        counts_exact: pruned_counts_exact,
        sums_exact: pruned_sums_exact,
    };
    let warm = ParallelArm {
        parallel: &parallel,
        sequential: &sequential,
        requested_workers: par_workers,
        speedup: parallel_speedup,
        counts_exact: parallel_counts_exact,
        sums_exact: parallel_sums_exact,
    };
    let json = render_json(
        quick,
        reps,
        workers,
        n,
        polys.len(),
        budget_points,
        capacity,
        scan_ms,
        &prefetch,
        &blocking,
        &arm,
        &parm,
        &warm,
        &grid,
        best_chunk,
        within_20pct,
        counts_exact,
        sums_close,
        max_sum_rel_err,
    );
    std::fs::write(Path::new(&out_path), &json).expect("write BENCH_stream.json");
    eprintln!("wrote {out_path}");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&pathz).ok();
}

/// The compressed streaming arm's metrics, bundled for `render_json`.
struct CompressedArm<'a> {
    run: &'a Run,
    scan_z_ms: f64,
    raw_file_bytes: u64,
    z_file_bytes: u64,
    bytes_reduction: f64,
    beats_raw: bool,
    counts_exact: bool,
    sums_exact: bool,
}

/// The projection-pushdown arm's metrics, bundled for `render_json`.
struct PrunedArm<'a> {
    pruned: &'a Run,
    full_cols: &'a Run,
    bytes_reduction: f64,
    beats_full: bool,
    counts_exact: bool,
    sums_exact: bool,
}

/// The chunk-parallel pool arm's metrics, bundled for `render_json`.
struct ParallelArm<'a> {
    parallel: &'a Run,
    sequential: &'a Run,
    requested_workers: usize,
    speedup: f64,
    counts_exact: bool,
    sums_exact: bool,
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    reps: usize,
    workers: usize,
    n: usize,
    n_polys: usize,
    budget_points: usize,
    capacity: usize,
    scan_ms: f64,
    prefetch: &Run,
    blocking: &Run,
    arm: &CompressedArm,
    parm: &PrunedArm,
    warm: &ParallelArm,
    grid: &[(usize, Run)],
    best_chunk: usize,
    within_20pct: bool,
    counts_exact: bool,
    sums_close: bool,
    max_sum_rel_err: f64,
) -> String {
    let run_obj = |r: &Run| -> String {
        let st = &r.out.output.stats;
        format!(
            "{{\"disk_plus_processing_ms\": {:.2}, \"wall_ms\": {:.2}, \"total_ms\": {:.2}, \
             \"disk_wait_ms\": {:.2}, \"read_ms\": {:.2}, \"decode_ms\": {:.2}, \
             \"processing_ms\": {:.2}, \"transfer_ms\": {:.2}, \"read_bytes\": {}, \
             \"chunk_rows\": {}, \"chunks\": {}, \"pool_workers\": {}}}",
            disk_plus_processing_ms(r),
            r.wall_ms,
            st.total().as_secs_f64() * 1e3,
            st.disk.as_secs_f64() * 1e3,
            r.out.read_time.as_secs_f64() * 1e3,
            r.out.decode_time.as_secs_f64() * 1e3,
            st.processing.as_secs_f64() * 1e3,
            st.transfer.as_secs_f64() * 1e3,
            r.out.read_bytes,
            r.out.chunk_rows,
            r.out.chunks,
            r.out.pool_workers
        )
    };
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"stream\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"workers\": {workers},");
    let _ = writeln!(
        s,
        "  \"cell\": {{\"points\": {n}, \"polygons\": {n_polys}, \"epsilon\": 1000.0, \
         \"aggregate\": \"sum\", \"budget_points\": {budget_points}, \"capacity\": {capacity}}},"
    );
    let _ = writeln!(s, "  \"reader_scan_ms\": {scan_ms:.2},");
    let _ = writeln!(s, "  \"reader_scan_compressed_ms\": {:.2},", arm.scan_z_ms);
    let _ = writeln!(s, "  \"plan\": \"{}\",", prefetch.out.plan.describe());
    let _ = writeln!(s, "  \"prefetch\": {},", run_obj(prefetch));
    let _ = writeln!(s, "  \"blocking\": {},", run_obj(blocking));
    let _ = writeln!(s, "  \"compressed\": {},", run_obj(arm.run));
    let _ = writeln!(s, "  \"pruned\": {},", run_obj(parm.pruned));
    let _ = writeln!(s, "  \"full_cols\": {},", run_obj(parm.full_cols));
    let _ = writeln!(s, "  \"parallel\": {},", run_obj(warm.parallel));
    let _ = writeln!(s, "  \"sequential\": {},", run_obj(warm.sequential));
    // Per-column attribution of the pruned arm's bytes/decode (pruned
    // columns at zero — the satellite visibility of the win).
    s.push_str("  \"pruned_column_io\": [");
    for (i, c) in parm.pruned.out.column_io.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"col\": \"{}\", \"bytes\": {}, \"decode_ms\": {:.2}}}",
            if i > 0 { ", " } else { "" },
            c.name,
            c.bytes_read,
            c.decode_time.as_secs_f64() * 1e3
        );
    }
    s.push_str("],\n");
    s.push_str("  \"grid\": [\n");
    for (i, (chunk, r)) in grid.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"chunk_rows\": {}, \"run\": {}}}{}",
            chunk,
            run_obj(r),
            if i + 1 < grid.len() { ",\n" } else { "\n" }
        );
    }
    s.push_str("  ],\n");
    let prefetch_ms = disk_plus_processing_ms(prefetch);
    let blocking_ms = disk_plus_processing_ms(blocking);
    let best_fixed_ms = grid
        .iter()
        .find(|(c, _)| *c == best_chunk)
        .map(|(_, r)| disk_plus_processing_ms(r))
        .unwrap_or(f64::NAN);
    s.push_str("  \"summary\": {\n");
    let _ = writeln!(
        s,
        "    \"prefetch_beats_blocking\": {},",
        prefetch_ms < blocking_ms
    );
    let _ = writeln!(
        s,
        "    \"prefetch_ms\": {prefetch_ms:.2}, \"blocking_ms\": {blocking_ms:.2}, \
         \"prefetch_speedup\": {:.3},",
        blocking_ms / prefetch_ms.max(1e-9)
    );
    let _ = writeln!(
        s,
        "    \"planner_chunk_rows\": {}, \"best_fixed_chunk_rows\": {best_chunk},",
        prefetch.out.chunk_rows
    );
    let _ = writeln!(
        s,
        "    \"planner_ms\": {prefetch_ms:.2}, \"best_fixed_ms\": {best_fixed_ms:.2}, \
         \"planner_within_20pct_of_best_fixed\": {within_20pct},"
    );
    let compressed_ms = disk_plus_processing_ms(arm.run);
    let _ = writeln!(
        s,
        "    \"compressed_ms\": {compressed_ms:.2}, \"compressed_speedup_vs_raw\": {:.3},",
        prefetch_ms / compressed_ms.max(1e-9)
    );
    let _ = writeln!(
        s,
        "    \"raw_file_bytes\": {}, \"compressed_file_bytes\": {}, \
         \"raw_read_bytes\": {}, \"compressed_read_bytes\": {},",
        arm.raw_file_bytes, arm.z_file_bytes, prefetch.out.read_bytes, arm.run.out.read_bytes
    );
    let _ = writeln!(
        s,
        "    \"bytes_reduction\": {:.3}, \"compressed_beats_raw_prefetch\": {},",
        arm.bytes_reduction, arm.beats_raw
    );
    let _ = writeln!(
        s,
        "    \"compressed_counts_exact\": {}, \"compressed_sums_exact\": {},",
        arm.counts_exact, arm.sums_exact
    );
    let pruned_ms = disk_plus_processing_ms(parm.pruned);
    let full_cols_ms = disk_plus_processing_ms(parm.full_cols);
    let _ = writeln!(
        s,
        "    \"pruned_ms\": {pruned_ms:.2}, \"full_cols_ms\": {full_cols_ms:.2}, \
         \"pruned_speedup_vs_full\": {:.3},",
        full_cols_ms / pruned_ms.max(1e-9)
    );
    let _ = writeln!(
        s,
        "    \"pruned_read_bytes\": {}, \"full_cols_read_bytes\": {}, \
         \"pruned_bytes_reduction\": {:.3}, \"pruned_beats_full_compressed\": {},",
        parm.pruned.out.read_bytes,
        parm.full_cols.out.read_bytes,
        parm.bytes_reduction,
        parm.beats_full
    );
    let _ = writeln!(
        s,
        "    \"pruned_counts_exact\": {}, \"pruned_sums_exact\": {},",
        parm.counts_exact, parm.sums_exact
    );
    let parallel_ms = disk_plus_processing_ms(warm.parallel);
    let sequential_ms = disk_plus_processing_ms(warm.sequential);
    let _ = writeln!(
        s,
        "    \"parallel_ms\": {parallel_ms:.2}, \"sequential_ms\": {sequential_ms:.2}, \
         \"parallel_speedup_vs_sequential\": {:.3},",
        warm.speedup
    );
    let _ = writeln!(
        s,
        "    \"parallel_pool_workers\": {}, \"parallel_requested_workers\": {},",
        warm.parallel.out.pool_workers, warm.requested_workers
    );
    let _ = writeln!(
        s,
        "    \"parallel_counts_exact\": {}, \"parallel_sums_exact\": {},",
        warm.counts_exact, warm.sums_exact
    );
    let _ = writeln!(
        s,
        "    \"counts_exact\": {counts_exact}, \"sums_within_tolerance\": {sums_close}, \
         \"max_sum_rel_err\": {max_sum_rel_err:.3e}"
    );
    s.push_str("  }\n}\n");
    s
}
