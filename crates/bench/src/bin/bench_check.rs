#![forbid(unsafe_code)]
//! `bench_check` — the CI bench-regression gate.
//!
//! Compares freshly produced quick-run `BENCH_binning.json` /
//! `BENCH_planner.json` / `BENCH_stream.json` against committed baselines
//! (`crates/bench/baselines/`) and fails on regression:
//!
//! * **Ratio metrics** (speedups, byte reductions, quality fractions) are
//!   machine-portable — absolute milliseconds are not compared at all.
//!   Each carries a direction; a regression is a move past the tolerance
//!   *in the bad direction* (default ±25%, `--tolerance`), so an
//!   improvement never fails the gate.
//! * **Exactness flags** (counts bit-identical, sums exact/within
//!   tolerance) are compared exactly: a baseline `true` that turns
//!   `false` fails regardless of tolerance.
//!
//! A markdown table of every metric goes to `--summary PATH` (appended —
//! point it at `$GITHUB_STEP_SUMMARY` in CI; the file is also written
//! when the env var `GITHUB_STEP_SUMMARY` is set) and to stdout. Exit
//! code 1 on any regression or on missing/mismatched inputs.
//!
//! ```text
//! bench_check [--fresh DIR] [--baseline DIR] [--tolerance 0.25] [--summary PATH]
//! ```

use bench::arg_value;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Which way a ratio metric is allowed to drift freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ok,
    Improved,
    Regressed,
    Missing,
    /// Present in the fresh run but absent from the committed baseline:
    /// a newly added bench arm. Passes with a note — the gate must not
    /// demand hand-editing the baseline before an arm can land; the next
    /// baseline refresh starts gating it.
    New,
}

#[derive(Debug)]
struct Row {
    bench: &'static str,
    metric: String,
    baseline: String,
    fresh: String,
    status: Status,
    detail: String,
}

/// Extract every number following `"key":` in a JSON document (the bench
/// files are flat enough that positional occurrence order is stable).
fn extract_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let trimmed = rest.trim_start();
        let end = trimmed
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(trimmed.len());
        if let Ok(v) = trimmed[..end].parse() {
            out.push(v);
        }
    }
    out
}

/// Extract every boolean following `"key":`.
fn extract_bools(json: &str, key: &str) -> Vec<bool> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let trimmed = rest.trim_start();
        if trimmed.starts_with("true") {
            out.push(true);
        } else if trimmed.starts_with("false") {
            out.push(false);
        }
        rest = trimmed;
    }
    out
}

/// Compare one ratio metric occurrence-by-occurrence.
fn check_ratios(
    rows: &mut Vec<Row>,
    bench: &'static str,
    key: &str,
    dir: Direction,
    tol: f64,
    baseline: &str,
    fresh: &str,
) {
    let base = extract_numbers(baseline, key);
    let new = extract_numbers(fresh, key);
    if base.is_empty() && !new.is_empty() {
        rows.push(Row {
            bench,
            metric: key.to_string(),
            baseline: "absent".into(),
            fresh: format!("{} values", new.len()),
            status: Status::New,
            detail: "new bench arm — no baseline yet; gated after the next baseline refresh".into(),
        });
        return;
    }
    if base.is_empty() || base.len() != new.len() {
        rows.push(Row {
            bench,
            metric: key.to_string(),
            baseline: format!("{} values", base.len()),
            fresh: format!("{} values", new.len()),
            status: Status::Missing,
            detail: "metric missing or occurrence count mismatch (stale baseline?)".into(),
        });
        return;
    }
    for (i, (b, f)) in base.iter().zip(&new).enumerate() {
        let metric = if base.len() == 1 {
            key.to_string()
        } else {
            format!("{key}[{i}]")
        };
        // Parity guard: quick-run cells whose ratio sits near 1.0 (e.g.
        // single-tile binning cells, where the stage under test is
        // skipped) jitter by scheduler noise alone; a regression must
        // clear the relative tolerance AND an absolute step, so a
        // 0.98→0.79 parity wobble can't fail the gate while a real
        // 2.6×→1.9× collapse still does.
        const MIN_ABS_STEP: f64 = 0.2;
        let meaningful = (f - b).abs() > MIN_ABS_STEP;
        let (regressed, improved) = match dir {
            Direction::HigherIsBetter => (*f < b * (1.0 - tol) && meaningful, *f > b * (1.0 + tol)),
            Direction::LowerIsBetter => (*f > b * (1.0 + tol) && meaningful, *f < b * (1.0 - tol)),
        };
        let status = if regressed {
            Status::Regressed
        } else if improved {
            Status::Improved
        } else {
            Status::Ok
        };
        rows.push(Row {
            bench,
            metric,
            baseline: format!("{b:.3}"),
            fresh: format!("{f:.3}"),
            status,
            detail: format!(
                "{:+.1}% ({})",
                (f / b - 1.0) * 100.0,
                match dir {
                    Direction::HigherIsBetter => "higher is better",
                    Direction::LowerIsBetter => "lower is better",
                }
            ),
        });
    }
}

/// Compare one exactness flag: every baseline `true` must stay `true`.
fn check_flags(rows: &mut Vec<Row>, bench: &'static str, key: &str, baseline: &str, fresh: &str) {
    let base = extract_bools(baseline, key);
    let new = extract_bools(fresh, key);
    if base.is_empty() && !new.is_empty() {
        // Exactness flags are absolute — they need no baseline to judge.
        // A brand-new arm may pass with a note, but only if its flags
        // hold; shipping a new arm that is already inexact is a
        // regression, not a novelty.
        let false_count = new.iter().filter(|b| !**b).count();
        rows.push(Row {
            bench,
            metric: key.to_string(),
            baseline: "absent".into(),
            fresh: format!("{}/{} true", new.iter().filter(|b| **b).count(), new.len()),
            status: if false_count > 0 {
                Status::Regressed
            } else {
                Status::New
            },
            detail: if false_count > 0 {
                format!("new exactness flag is false in {false_count} occurrence(s)")
            } else {
                "new bench arm — no baseline yet; gated after the next baseline refresh".into()
            },
        });
        return;
    }
    if base.is_empty() || base.len() != new.len() {
        rows.push(Row {
            bench,
            metric: key.to_string(),
            baseline: format!("{} flags", base.len()),
            fresh: format!("{} flags", new.len()),
            status: Status::Missing,
            detail: "flag missing or occurrence count mismatch (stale baseline?)".into(),
        });
        return;
    }
    let broken = base.iter().zip(&new).filter(|(b, f)| **b && !**f).count();
    rows.push(Row {
        bench,
        metric: key.to_string(),
        baseline: format!(
            "{}/{} true",
            base.iter().filter(|b| **b).count(),
            base.len()
        ),
        fresh: format!("{}/{} true", new.iter().filter(|b| **b).count(), new.len()),
        status: if broken > 0 {
            Status::Regressed
        } else {
            Status::Ok
        },
        detail: if broken > 0 {
            format!("{broken} exactness flag(s) flipped true→false")
        } else {
            "exact".into()
        },
    });
}

fn check_bench(
    rows: &mut Vec<Row>,
    bench: &'static str,
    file: &str,
    fresh_dir: &Path,
    baseline_dir: &Path,
    tol: f64,
) {
    let load = |dir: &Path| -> Option<String> { std::fs::read_to_string(dir.join(file)).ok() };
    let (Some(baseline), Some(fresh)) = (load(baseline_dir), load(fresh_dir)) else {
        rows.push(Row {
            bench,
            metric: file.to_string(),
            baseline: if load(baseline_dir).is_some() {
                "present"
            } else {
                "MISSING"
            }
            .into(),
            fresh: if load(fresh_dir).is_some() {
                "present"
            } else {
                "MISSING"
            }
            .into(),
            status: Status::Missing,
            detail: "bench artifact not found".into(),
        });
        return;
    };
    // A quick-run artifact must gate against a quick-run baseline: the
    // grids differ between modes and positional compares would misalign.
    let mode = |s: &str| extract_bools(s, "quick").first().copied();
    if mode(&baseline) != mode(&fresh) {
        rows.push(Row {
            bench,
            metric: "quick".into(),
            baseline: format!("{:?}", mode(&baseline)),
            fresh: format!("{:?}", mode(&fresh)),
            status: Status::Missing,
            detail: "quick/full mode mismatch between baseline and fresh run".into(),
        });
        return;
    }
    use Direction::{HigherIsBetter, LowerIsBetter};
    match bench {
        "binning" => {
            for key in [
                "binned_vs_naive",
                "sharded_vs_naive",
                "binned_sharded_vs_naive",
            ] {
                check_ratios(rows, bench, key, HigherIsBetter, tol, &baseline, &fresh);
            }
            check_flags(rows, bench, "counts_match_naive", &baseline, &fresh);
        }
        "planner" => {
            check_ratios(
                rows,
                bench,
                "within_15pct_fraction",
                HigherIsBetter,
                tol,
                &baseline,
                &fresh,
            );
            // Calibrated-vs-best measured total: the decision-quality
            // headline, as a machine-portable ratio.
            let derived = |s: &str| -> Option<f64> {
                let cal = extract_numbers(s, "calibrated_total_ms").first().copied()?;
                let best = extract_numbers(s, "best_total_ms").first().copied()?;
                (best > 0.0).then_some(cal / best)
            };
            match (derived(&baseline), derived(&fresh)) {
                (Some(b), Some(f)) => {
                    let pseudo_b = format!("{{\"calibrated_over_best\": {b}}}");
                    let pseudo_f = format!("{{\"calibrated_over_best\": {f}}}");
                    check_ratios(
                        rows,
                        bench,
                        "calibrated_over_best",
                        LowerIsBetter,
                        tol,
                        &pseudo_b,
                        &pseudo_f,
                    );
                }
                _ => rows.push(Row {
                    bench,
                    metric: "calibrated_over_best".into(),
                    baseline: "?".into(),
                    fresh: "?".into(),
                    status: Status::Missing,
                    detail: "totals missing".into(),
                }),
            }
            check_flags(
                rows,
                bench,
                "calibrated_never_worse_than_builtin",
                &baseline,
                &fresh,
            );
        }
        "stream" => {
            for key in [
                "prefetch_speedup",
                "bytes_reduction",
                "compressed_speedup_vs_raw",
                "pruned_bytes_reduction",
                "pruned_speedup_vs_full",
                // Chunk-pool arm: near 1.0 on a single core (both sides
                // run the same plan, and thread time-slicing can put the
                // pool slightly under), genuinely >1 with real cores.
                "parallel_speedup_vs_sequential",
            ] {
                check_ratios(rows, bench, key, HigherIsBetter, tol, &baseline, &fresh);
            }
            for key in [
                "counts_exact",
                "sums_within_tolerance",
                "compressed_counts_exact",
                "compressed_sums_exact",
                "pruned_counts_exact",
                "pruned_sums_exact",
                // Pool determinism: counts vs the in-memory reference,
                // sums bitwise vs the blocking path at the same width.
                "parallel_counts_exact",
                "parallel_sums_exact",
            ] {
                check_flags(rows, bench, key, &baseline, &fresh);
            }
        }
        _ => unreachable!("unknown bench {bench}"),
    }
}

fn render_markdown(rows: &[Row], tol: f64, failed: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "## Bench regression gate ({})",
        if failed { "FAILED" } else { "passed" }
    );
    let _ = writeln!(
        s,
        "\nRatios: ±{:.0}% tolerance against the committed quick-run baselines \
         (regression side only); exactness flags compared exactly.\n",
        tol * 100.0
    );
    let _ = writeln!(s, "| bench | metric | baseline | fresh | status | detail |");
    let _ = writeln!(s, "|---|---|---|---|---|---|");
    for r in rows {
        let status = match r.status {
            Status::Ok => "✅ ok",
            Status::Improved => "🎉 improved",
            Status::Regressed => "❌ REGRESSED",
            Status::Missing => "❌ missing",
            Status::New => "🆕 new",
        };
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} | {} |",
            r.bench, r.metric, r.baseline, r.fresh, status, r.detail
        );
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fresh_dir = PathBuf::from(arg_value(&args, "--fresh").unwrap_or_else(|| ".".into()));
    let baseline_dir = PathBuf::from(
        arg_value(&args, "--baseline").unwrap_or_else(|| "crates/bench/baselines".into()),
    );
    let tol: f64 = arg_value(&args, "--tolerance")
        .map(|v| v.parse().expect("--tolerance FRACTION"))
        .unwrap_or(0.25);
    assert!(tol > 0.0 && tol < 1.0, "--tolerance must be in (0, 1)");
    let summary_path = arg_value(&args, "--summary")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("GITHUB_STEP_SUMMARY").map(PathBuf::from));

    let mut rows = Vec::new();
    for (bench, file) in [
        ("binning", "BENCH_binning.json"),
        ("planner", "BENCH_planner.json"),
        ("stream", "BENCH_stream.json"),
    ] {
        check_bench(&mut rows, bench, file, &fresh_dir, &baseline_dir, tol);
    }
    let failed = rows
        .iter()
        .any(|r| matches!(r.status, Status::Regressed | Status::Missing));
    let md = render_markdown(&rows, tol, failed);
    println!("{md}");
    if let Some(path) = summary_path {
        use std::io::Write as _;
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut f) => {
                let _ = writeln!(f, "{md}");
            }
            Err(e) => eprintln!("could not append step summary {}: {e}", path.display()),
        }
    }
    if failed {
        eprintln!("bench gate FAILED (tolerance ±{:.0}%)", tol * 100.0);
        std::process::exit(1);
    }
    eprintln!("bench gate passed (tolerance ±{:.0}%)", tol * 100.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM_BASE: &str = r#"{
      "bench": "stream", "quick": true,
      "summary": {
        "prefetch_speedup": 1.50,
        "bytes_reduction": 2.30, "compressed_speedup_vs_raw": 1.80,
        "pruned_bytes_reduction": 1.25, "pruned_speedup_vs_full": 1.05,
        "parallel_speedup_vs_sequential": 1.02,
        "compressed_counts_exact": true, "compressed_sums_exact": true,
        "pruned_counts_exact": true, "pruned_sums_exact": true,
        "parallel_counts_exact": true, "parallel_sums_exact": true,
        "counts_exact": true, "sums_within_tolerance": true
      }
    }"#;

    /// A baseline from before the pruned and chunk-pool arms existed.
    const STREAM_BASE_PRE_PRUNING: &str = r#"{
      "bench": "stream", "quick": true,
      "summary": {
        "prefetch_speedup": 1.50,
        "bytes_reduction": 2.30, "compressed_speedup_vs_raw": 1.80,
        "compressed_counts_exact": true, "compressed_sums_exact": true,
        "counts_exact": true, "sums_within_tolerance": true
      }
    }"#;

    fn dirs_with(base: &str, fresh: &str) -> (tempdir::Dir, tempdir::Dir) {
        let b = tempdir::Dir::new("base");
        let f = tempdir::Dir::new("fresh");
        std::fs::write(b.path.join("BENCH_stream.json"), base).unwrap();
        std::fs::write(f.path.join("BENCH_stream.json"), fresh).unwrap();
        (b, f)
    }

    /// Minimal self-cleaning temp dirs for the gate tests.
    mod tempdir {
        pub struct Dir {
            pub path: std::path::PathBuf,
        }
        impl Dir {
            pub fn new(tag: &str) -> Dir {
                let path = std::env::temp_dir().join(format!(
                    "rjr-bench-check-{tag}-{}-{:?}",
                    std::process::id(),
                    std::thread::current().id()
                ));
                std::fs::create_dir_all(&path).unwrap();
                Dir { path }
            }
        }
        impl Drop for Dir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.path);
            }
        }
    }

    fn stream_rows(base: &str, fresh: &str) -> Vec<Row> {
        let (b, f) = dirs_with(base, fresh);
        let mut rows = Vec::new();
        check_bench(
            &mut rows,
            "stream",
            "BENCH_stream.json",
            &f.path,
            &b.path,
            0.25,
        );
        rows
    }

    fn any_regression(rows: &[Row]) -> bool {
        rows.iter()
            .any(|r| matches!(r.status, Status::Regressed | Status::Missing))
    }

    #[test]
    fn extraction_handles_repeats_and_formats() {
        let json = r#"{"a": 1.5, "x": {"a": -2e3, "b": true}, "a": 7, "b": false}"#;
        assert_eq!(extract_numbers(json, "a"), vec![1.5, -2000.0, 7.0]);
        assert_eq!(extract_bools(json, "b"), vec![true, false]);
        assert!(extract_numbers(json, "missing").is_empty());
    }

    #[test]
    fn identical_runs_pass() {
        let rows = stream_rows(STREAM_BASE, STREAM_BASE);
        assert!(!any_regression(&rows), "{rows:?}");
    }

    #[test]
    fn small_drift_within_tolerance_passes_and_improvement_never_fails() {
        let fresh = STREAM_BASE
            .replace("1.50", "1.30") // −13% drift: inside ±25%
            .replace("2.30", "4.60"); // 2× better: improvement
        let rows = stream_rows(STREAM_BASE, &fresh);
        assert!(!any_regression(&rows), "{rows:?}");
        assert!(rows.iter().any(|r| r.status == Status::Improved));
    }

    #[test]
    fn new_arm_without_baseline_passes_with_note() {
        // A fresh run carrying arms the committed baseline predates must
        // pass (with a 🆕 note), not demand a hand-edited baseline.
        let rows = stream_rows(STREAM_BASE_PRE_PRUNING, STREAM_BASE);
        assert!(!any_regression(&rows), "{rows:?}");
        let new: Vec<&str> = rows
            .iter()
            .filter(|r| r.status == Status::New)
            .map(|r| r.metric.as_str())
            .collect();
        assert_eq!(
            new,
            vec![
                "pruned_bytes_reduction",
                "pruned_speedup_vs_full",
                "parallel_speedup_vs_sequential",
                "pruned_counts_exact",
                "pruned_sums_exact",
                "parallel_counts_exact",
                "parallel_sums_exact"
            ]
        );
        let md = render_markdown(&rows, 0.25, false);
        assert!(md.contains("🆕 new"), "{md}");
        // A new arm whose exactness flag is already false is a
        // regression, not a novelty — flags are absolute.
        let broken_new = STREAM_BASE.replace(
            "\"pruned_sums_exact\": true",
            "\"pruned_sums_exact\": false",
        );
        let rows = stream_rows(STREAM_BASE_PRE_PRUNING, &broken_new);
        let bad = rows
            .iter()
            .find(|r| r.metric == "pruned_sums_exact")
            .expect("flag row");
        assert_eq!(bad.status, Status::Regressed, "{rows:?}");
        // Once both sides carry the arm, it is gated normally: a pruned
        // exactness flip now fails.
        let broken = STREAM_BASE.replace(
            "\"pruned_sums_exact\": true",
            "\"pruned_sums_exact\": false",
        );
        let rows = stream_rows(STREAM_BASE, &broken);
        assert!(any_regression(&rows), "{rows:?}");
        // A metric present in the baseline but gone from the fresh run is
        // still a hard failure (stale gate config, not a new arm).
        let rows = stream_rows(STREAM_BASE, STREAM_BASE_PRE_PRUNING);
        assert!(any_regression(&rows), "{rows:?}");
    }

    #[test]
    fn doctored_baseline_fails_the_gate() {
        // A baseline doctored to claim a 9× byte reduction must make the
        // honest fresh run regress.
        let doctored = STREAM_BASE.replace("\"bytes_reduction\": 2.30", "\"bytes_reduction\": 9.0");
        let rows = stream_rows(&doctored, STREAM_BASE);
        assert!(any_regression(&rows), "{rows:?}");
        let bad = rows
            .iter()
            .find(|r| r.metric == "bytes_reduction")
            .expect("bytes_reduction row");
        assert_eq!(bad.status, Status::Regressed);
    }

    #[test]
    fn exactness_flag_flip_fails_regardless_of_tolerance() {
        let fresh = STREAM_BASE.replace(
            "\"compressed_sums_exact\": true",
            "\"compressed_sums_exact\": false",
        );
        let rows = stream_rows(STREAM_BASE, &fresh);
        let bad = rows
            .iter()
            .find(|r| r.metric == "compressed_sums_exact")
            .expect("flag row");
        assert_eq!(bad.status, Status::Regressed);
    }

    #[test]
    fn missing_artifact_and_mode_mismatch_fail() {
        let b = tempdir::Dir::new("nobase");
        let f = tempdir::Dir::new("nofresh");
        std::fs::write(f.path.join("BENCH_stream.json"), STREAM_BASE).unwrap();
        let mut rows = Vec::new();
        check_bench(
            &mut rows,
            "stream",
            "BENCH_stream.json",
            &f.path,
            &b.path,
            0.25,
        );
        assert!(any_regression(&rows));

        // quick baseline vs full fresh run must refuse to compare.
        let full = STREAM_BASE.replace("\"quick\": true", "\"quick\": false");
        let rows = stream_rows(STREAM_BASE, &full);
        assert!(rows
            .iter()
            .any(|r| r.metric == "quick" && r.status == Status::Missing));
    }

    #[test]
    fn markdown_lists_every_metric() {
        let rows = stream_rows(STREAM_BASE, STREAM_BASE);
        let md = render_markdown(&rows, 0.25, false);
        for key in [
            "prefetch_speedup",
            "bytes_reduction",
            "compressed_counts_exact",
        ] {
            assert!(md.contains(key), "missing {key} in:\n{md}");
        }
        assert!(md.contains("| bench | metric |"));
    }
}
