#![forbid(unsafe_code)]
//! `bench_binning` — the binning/sharding ablation benchmark.
//!
//! Measures the bounded raster join under the four binning × sharding
//! configurations over a points × tiles grid and writes the results (plus
//! naive-relative speedups and a count-equivalence verdict) to
//! `BENCH_binning.json`. This is the perf baseline for the tile-binned
//! pipeline: the headline number is `binned_sharded` vs `naive` at the
//! largest point count with a multi-tile canvas, where the rescan path
//! pays O(points × tiles).
//!
//! ```text
//! bench_binning [--quick] [--reps N] [--out PATH]
//! ```
//!
//! `--quick` shrinks the sweep (100k/1M points) for CI smoke runs; the
//! default sweep is 1M/10M points × 1/4/16 canvas tiles.

use bench::arg_value;
use raster_data::generators::TaxiModel;
use raster_data::polygons::synthetic_polygons;
use raster_data::PointTable;
use raster_gpu::{Device, DeviceConfig, RasterConfig};
use raster_join::{BoundedRasterJoin, Query};
use std::fmt::Write as _;
use std::time::Instant;

/// ε giving a ~2046² canvas over the NYC-like extent, so max FBO dims of
/// 2048 / 1024 / 512 yield exactly 1 / 4 / 16 tiles.
const EPSILON: f64 = 40.1;

const MODES: [(&str, RasterConfig); 4] = [
    (
        "naive",
        RasterConfig {
            binning: false,
            sharding: false,
        },
    ),
    (
        "binned",
        RasterConfig {
            binning: true,
            sharding: false,
        },
    ),
    (
        "sharded",
        RasterConfig {
            binning: false,
            sharding: true,
        },
    ),
    (
        "binned_sharded",
        RasterConfig {
            binning: true,
            sharding: true,
        },
    ),
];

struct Row {
    points: usize,
    tiles: u32,
    mode: &'static str,
    best_ms: f64,
    binning_ms: f64,
    merge_ms: f64,
    counts_match_naive: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = arg_value(&args, "--reps")
        .map(|v| v.parse().expect("--reps N"))
        .unwrap_or(3usize)
        .max(1);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_binning.json".to_string());

    let point_counts: &[usize] = if quick {
        &[100_000, 1_000_000]
    } else {
        &[1_000_000, 10_000_000]
    };
    let tile_dims: &[(u32, u32)] = &[(2048, 1), (1024, 4), (512, 16)];

    let model = TaxiModel::default();
    let extent = raster_data::generators::nyc_extent();
    let polys = synthetic_polygons(64, &extent, 7);
    let q = Query::count().with_epsilon(EPSILON);
    let workers = raster_gpu::exec::default_workers();

    let mut rows: Vec<Row> = Vec::new();
    for &n in point_counts {
        eprintln!("generating {n} points…");
        let pts: PointTable = model.generate(n, 7);
        for &(max_dim, tiles) in tile_dims {
            let dev = Device::new(DeviceConfig::small(3 << 30, max_dim));
            let mut naive_counts: Option<Vec<u64>> = None;
            for (mode, config) in MODES {
                let join = BoundedRasterJoin::with_config(workers, config);
                let prepared = join.prepare(&polys, q.epsilon, &dev);
                assert_eq!(prepared.passes_per_batch(), tiles, "tile layout");
                let mut best = f64::INFINITY;
                let mut binning_ms = 0.0;
                let mut merge_ms = 0.0;
                let mut counts_match_naive = true;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let out = join.execute_prepared(&prepared, &pts, &q, &dev);
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    if ms < best {
                        best = ms;
                        binning_ms = out.stats.binning.as_secs_f64() * 1e3;
                        merge_ms = out.stats.shard_merge.as_secs_f64() * 1e3;
                    }
                    match &naive_counts {
                        None => naive_counts = Some(out.counts),
                        Some(base) => counts_match_naive &= *base == out.counts,
                    }
                }
                eprintln!(
                    "{n:>9} pts  {tiles:>2} tiles  {mode:<14} {best:>9.1} ms  \
                     (bin {binning_ms:.1} ms, merge {merge_ms:.1} ms)  counts_ok={counts_match_naive}"
                );
                assert!(counts_match_naive, "{mode} counts diverged from naive");
                rows.push(Row {
                    points: n,
                    tiles,
                    mode,
                    best_ms: best,
                    binning_ms,
                    merge_ms,
                    counts_match_naive,
                });
            }
        }
    }

    let json = render_json(&rows, quick, reps, workers);
    std::fs::write(&out_path, &json).expect("write BENCH_binning.json");
    eprintln!("wrote {out_path}");
}

fn render_json(rows: &[Row], quick: bool, reps: usize, workers: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"binning\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"workers\": {workers},");
    let _ = writeln!(s, "  \"epsilon\": {EPSILON},");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"points\": {}, \"tiles\": {}, \"mode\": \"{}\", \"best_ms\": {:.2}, \
             \"binning_ms\": {:.2}, \"merge_ms\": {:.2}, \"counts_match_naive\": {}}}",
            r.points, r.tiles, r.mode, r.best_ms, r.binning_ms, r.merge_ms, r.counts_match_naive
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");

    // Naive-relative speedups per (points, tiles) cell.
    s.push_str("  \"speedups\": [\n");
    let mut speedup_lines = Vec::new();
    let cells: Vec<(usize, u32)> = {
        let mut c: Vec<(usize, u32)> = rows.iter().map(|r| (r.points, r.tiles)).collect();
        c.dedup();
        c
    };
    let speedup_of = |points: usize, tiles: u32, mode: &str| -> f64 {
        let time_of = |m: &str| {
            rows.iter()
                .find(|r| r.points == points && r.tiles == tiles && r.mode == m)
                .map(|r| r.best_ms)
                .unwrap_or(f64::NAN)
        };
        time_of("naive") / time_of(mode)
    };
    for &(points, tiles) in &cells {
        speedup_lines.push(format!(
            "    {{\"points\": {points}, \"tiles\": {tiles}, \
             \"binned_vs_naive\": {:.2}, \"sharded_vs_naive\": {:.2}, \
             \"binned_sharded_vs_naive\": {:.2}}}",
            speedup_of(points, tiles, "binned"),
            speedup_of(points, tiles, "sharded"),
            speedup_of(points, tiles, "binned_sharded"),
        ));
    }
    s.push_str(&speedup_lines.join(",\n"));
    s.push('\n');
    s.push_str("  ],\n");

    // Headline: the conservative (worst-case) binned+sharded speedup over
    // naive at the largest point count among multi-tile canvases.
    let max_points = cells.iter().map(|&(p, _)| p).max().unwrap_or(0);
    let headline = cells
        .iter()
        .filter(|&&(p, t)| p == max_points && t >= 4)
        .map(|&(p, t)| (p, t, speedup_of(p, t, "binned_sharded")))
        .min_by(|a, b| a.2.total_cmp(&b.2));
    let (hp, ht, hs) = headline.unwrap_or((0, 0, f64::NAN));
    let _ = writeln!(
        s,
        "  \"headline\": {{\"points\": {hp}, \"tiles\": {ht}, \
         \"binned_sharded_vs_naive\": {hs:.2}}}"
    );
    s.push_str("}\n");
    s
}
