#![forbid(unsafe_code)]
//! `bench_planner` — planner calibration + decision-quality benchmark.
//!
//! Three phases over a micro-workload grid (points × ε × selectivity ×
//! memory budget on the NYC-like extent):
//!
//! 1. **Measure** every plan key ({bounded × binning × sharding} ∪
//!    {accurate × sharding}) on every cell, best-of-`--reps` processing
//!    time, recording the planner's feature vectors alongside.
//! 2. **Fit** the cost-model weights from those samples
//!    (`Calibration::fit`) and serialize the calibration (`--calibration
//!    PATH`, default `planner_calibration.json`).
//! 3. **Feed back & evaluate**: an [`AutoRasterJoin`] loaded with the
//!    fitted calibration executes each cell once (folding
//!    predicted-vs-actual into the per-key corrections), then its
//!    decisions are scored against the measured grid — and against the
//!    uncalibrated constant-weight model — into `BENCH_planner.json`.
//!
//! The headline summary reports the fraction of cells where the
//! calibrated planner's pick is within 15% of the best measured plan,
//! and whether it ever does worse than the built-in constants.
//!
//! A fourth phase exercises the plan space's **worker dimension**: each
//! small in-core cell's favourite pipeline is measured at 1/2/4 workers,
//! the (predicted, actual) pairs are folded into the per-worker-bucket
//! corrections, and the planner then chooses with a 4-worker budget. The
//! chosen widths land in `worker_choice` in the JSON — on a multi-core
//! box the amortized stages open the pool up, on a single core the
//! feedback learns that extra threads buy nothing and keeps pipelines
//! narrow; either way the width is a per-cell decision, not a constant.
//!
//! The worker budget for the measured grid follows
//! [`raster_gpu::exec::default_workers`], so `RJ_WORKERS=4 bench_planner`
//! exercises the multi-worker plan space on any box.
//!
//! ```text
//! bench_planner [--quick] [--reps N] [--out PATH] [--calibration PATH]
//! ```

use bench::arg_value;
use raster_data::filter::{CmpOp, Predicate};
use raster_data::generators::{nyc_extent, TaxiModel};
use raster_data::polygons::synthetic_polygons;
use raster_data::PointTable;
use raster_gpu::{Device, DeviceConfig, RasterConfig};
use raster_join::optimizer::{
    effective_key, features, plan_workload, Calibration, Plan, Variant, Workload, KEY_NAMES,
    NWEIGHTS,
};
use raster_join::{AutoRasterJoin, Query};
use std::fmt::Write as _;

struct Cell {
    label: String,
    n: usize,
    epsilon: f64,
    selective: bool,
    /// Device point budget; `None` keeps the cell in-core.
    budget_points: Option<usize>,
}

struct CellResult {
    label: String,
    n: usize,
    epsilon: f64,
    selective: bool,
    tiles: u32,
    batches: u32,
    /// (key name, measured ms, calibrated predicted ms, point-stage ms,
    /// polygon-stage ms). The stage breakdown comes from the executors'
    /// `ExecStats` calibration timers.
    measured: Vec<(&'static str, f64, f64, f64, f64)>,
    best_key: &'static str,
    best_ms: f64,
    calibrated_key: &'static str,
    calibrated_ms: f64,
    builtin_key: &'static str,
    builtin_ms: f64,
    within_15pct: bool,
}

/// One phase-4 decision: the width the planner spends on one cell's
/// pipeline after seeing it measured at every candidate width.
struct WorkerChoice {
    label: String,
    key: &'static str,
    chosen_workers: usize,
    /// Best-of-`reps` processing ms at 1 / 2 / 4 workers.
    measured_ms: [f64; 3],
}

/// The measured plan keys: every bounded config plus accurate ± sharding.
fn measured_plans(batch: usize, workers: usize) -> Vec<Plan> {
    let mut plans = Vec::new();
    for (binning, sharding) in [(false, false), (false, true), (true, false), (true, true)] {
        plans.push(Plan {
            variant: Variant::Bounded,
            config: RasterConfig { binning, sharding },
            batch_points: batch,
            canvas_dim: 2048,
            index_dim: 1024,
            workers,
        });
    }
    for sharding in [false, true] {
        plans.push(Plan {
            variant: Variant::Accurate,
            config: RasterConfig {
                binning: false,
                sharding,
            },
            batch_points: batch,
            canvas_dim: 2048,
            index_dim: 1024,
            workers,
        });
    }
    plans
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = arg_value(&args, "--reps")
        .map(|v| v.parse().expect("--reps N"))
        .unwrap_or(2usize)
        .max(1);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_planner.json".to_string());
    let cal_path =
        arg_value(&args, "--calibration").unwrap_or_else(|| "planner_calibration.json".to_string());

    let sizes: &[usize] = if quick {
        &[40_000, 120_000]
    } else {
        &[150_000, 600_000]
    };
    // ε=200 → a 411² single-tile canvas dense enough to engage the shard
    // merge; ε=50 → 1641², single tile, gate off; ε=12 → 6834², 16 tiles.
    let epsilons = [200.0f64, 50.0, 12.0];
    let max_fbo = 2048u32;
    let workers = raster_gpu::exec::default_workers();

    let mut cells: Vec<Cell> = Vec::new();
    for &n in sizes {
        for &epsilon in &epsilons {
            for selective in [false, true] {
                cells.push(Cell {
                    label: format!(
                        "n{}k_eps{}_{}",
                        n / 1000,
                        epsilon,
                        if selective { "sel10" } else { "nopred" }
                    ),
                    n,
                    epsilon,
                    selective,
                    budget_points: None,
                });
            }
        }
    }
    // Out-of-core cells exercise the batch dimension of the plan space.
    let big = *sizes.last().unwrap();
    for &epsilon in &epsilons {
        cells.push(Cell {
            label: format!("n{}k_eps{}_oocore", big / 1000, epsilon),
            n: big,
            epsilon,
            selective: false,
            budget_points: Some(big / 3),
        });
    }

    let extent = nyc_extent();
    let polys = synthetic_polygons(32, &extent, 7);
    let model = TaxiModel::default();
    eprintln!("generating {big} points…");
    let full = model.generate(big, 7);
    let hour = full.attr_index("hour").expect("taxi hour attr");

    // ---------------------------------------------------- phase 1: measure
    struct Measured {
        wl: Workload,
        query: Query,
        device: Device,
        /// Per plan: (plan, best seconds, point-stage ms, polygon-stage
        /// ms of the best rep — the ExecStats calibration timers).
        runs: Vec<(Plan, f64, f64, f64)>,
    }
    let mut grid: Vec<Measured> = Vec::new();
    let mut samples: Vec<([f64; NWEIGHTS], f64)> = Vec::new();
    for cell in &cells {
        let pts = full.prefix(cell.n);
        let mut query = Query::count().with_epsilon(cell.epsilon);
        if cell.selective {
            // hour < 16.8 passes ~10% of the uniform [0, 168) hours.
            query = query.with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 16.8)]);
        }
        let device = match cell.budget_points {
            Some(b) => Device::new(DeviceConfig {
                memory_budget: b * PointTable::point_bytes(query.attrs_uploaded()),
                max_fbo_dim: max_fbo,
                ..DeviceConfig::default()
            }),
            None => Device::new(DeviceConfig::small(3 << 30, max_fbo)),
        };
        let capacity = device.points_per_batch(PointTable::point_bytes(query.attrs_uploaded()));
        let wl = Workload::sample(&pts, &polys, &query);
        let mut runs = Vec::new();
        for plan in measured_plans(capacity, workers) {
            let mut best = f64::INFINITY;
            let (mut point_ms, mut polygon_ms) = (0.0, 0.0);
            for _ in 0..reps {
                let out = plan.execute(&pts, &polys, &query, &device);
                // The quantity the model predicts: processing time
                // (polygon preprocessing excluded as in §7.1).
                let secs = out.stats.processing.as_secs_f64();
                if secs < best {
                    best = secs;
                    point_ms = out.stats.point_stage.as_secs_f64() * 1e3;
                    polygon_ms = out.stats.polygon_stage.as_secs_f64() * 1e3;
                }
            }
            let f = features(&plan, &wl, &device);
            samples.push((f, best));
            eprintln!(
                "{:<22} {:<24} {:>8.1} ms (pt {:.1} / poly {:.1})",
                cell.label,
                plan.key_name(),
                best * 1e3,
                point_ms,
                polygon_ms
            );
            runs.push((plan, best, point_ms, polygon_ms));
        }
        grid.push(Measured {
            wl,
            query,
            device,
            runs,
        });
    }

    // ------------------------------------------ disk-scan calibration rows
    // The streaming executor's disk features (`read_byte`, `decode_val`)
    // never occur in the in-memory grid; measure them with raw and
    // compressed chunked scans of the same prefixes so the fit can price
    // the decode-cost-vs-bytes-saved trade the compressed format poses.
    {
        use raster_data::disk::{write_table, write_table_compressed, ChunkedReader};
        let scan_rows = if quick { 150_000 } else { 600_000 };
        for compressed in [false, true] {
            for frac in [2usize, 1] {
                let n = scan_rows / frac;
                let t = full.prefix(n);
                let path = std::env::temp_dir().join(format!(
                    "rjr-planner-scan-{}-{n}-{}.bin",
                    if compressed { "z" } else { "raw" },
                    std::process::id()
                ));
                if compressed {
                    write_table_compressed(&path, &t, 1 << 16).expect("write scan table");
                } else {
                    write_table(&path, &t).expect("write scan table");
                }
                let mut best = f64::INFINITY;
                let mut feats = [0.0; NWEIGHTS];
                for _ in 0..reps {
                    let mut r = ChunkedReader::open(&path, 1 << 16).expect("open scan table");
                    let t0 = std::time::Instant::now();
                    while r.next_chunk().expect("scan chunk").is_some() {}
                    let secs = t0.elapsed().as_secs_f64();
                    if secs < best {
                        best = secs;
                        feats = [0.0; NWEIGHTS];
                        feats[raster_join::optimizer::cost::W_READ_BYTE] = r.bytes_read() as f64;
                        if compressed {
                            feats[raster_join::optimizer::cost::W_DECODE_VAL] =
                                (n * (2 + t.attr_count())) as f64;
                        }
                    }
                }
                eprintln!(
                    "scan sample {:>8} rows {}: {:>8.1} ms",
                    n,
                    if compressed {
                        "compressed"
                    } else {
                        "raw       "
                    },
                    best * 1e3
                );
                samples.push((feats, best));
                std::fs::remove_file(&path).ok();
            }
        }
    }

    // -------------------------------------------------------- phase 2: fit
    let mut fitted = Calibration::fit(&samples).expect("calibration fit");
    eprintln!(
        "fitted {} weights from {} samples",
        NWEIGHTS, fitted.samples
    );
    // Replay every measured run through the feedback loop: the
    // per-pipeline corrections start from the whole grid's residuals
    // (e.g. a systematically underpredicted shard merge) instead of 1.0.
    for m in &grid {
        for (plan, secs, _, _) in &m.runs {
            let f = features(plan, &m.wl, &m.device);
            let raw = fitted.raw(&f);
            fitted.observe(effective_key(plan, &m.wl, &m.device), raw, *secs);
        }
    }
    eprintln!(
        "replayed {} observations into the calibration",
        fitted.observations
    );

    // ----------------------------------------- phase 3: feedback + evaluate
    let auto = AutoRasterJoin::with_calibration(fitted.clone());
    for (cell, m) in cells.iter().zip(&grid) {
        let pts = full.prefix(cell.n);
        let (plan, out) = auto.execute(&pts, &polys, &m.query, &m.device);
        eprintln!(
            "feedback {:<22} ran {:<24} {:>8.1} ms",
            cell.label,
            plan.key_name(),
            out.stats.processing.as_secs_f64() * 1e3
        );
    }
    let calibrated = auto.calibration();
    calibrated
        .save(std::path::Path::new(&cal_path))
        .expect("write calibration");
    eprintln!("wrote {cal_path}");
    // Round-trip sanity: the serialized calibration must load.
    let reloaded = Calibration::load(std::path::Path::new(&cal_path)).expect("reload calibration");
    assert_eq!(reloaded.samples, calibrated.samples);

    let builtin = Calibration::builtin();
    let mut results: Vec<CellResult> = Vec::new();
    for (cell, m) in cells.iter().zip(&grid) {
        let choose = |cal: &Calibration| -> Plan {
            plan_workload(&m.wl, &m.query, &m.device, cal, workers, 2048, 1024, None)
                .best()
                .plan
        };
        // Distinct config labels can resolve to the identical physical
        // execution (binning skipped on one tile, shard gate not
        // engaged); merge measurements by effective pipeline so noise
        // between identical runs never scores as a planner error.
        let mut by_pipeline: std::collections::HashMap<usize, f64> =
            std::collections::HashMap::new();
        for (p, s, _, _) in &m.runs {
            let k = effective_key(p, &m.wl, &m.device);
            let e = by_pipeline.entry(k).or_insert(f64::INFINITY);
            *e = e.min(*s);
        }
        let measured_ms_of =
            |plan: &Plan| -> f64 { by_pipeline[&effective_key(plan, &m.wl, &m.device)] * 1e3 };
        let cal_plan = choose(&calibrated);
        let builtin_plan = choose(&builtin);
        let (&best_key, &best_secs) = by_pipeline
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("runs");
        let best_ms = best_secs * 1e3;
        let calibrated_ms = measured_ms_of(&cal_plan);
        let builtin_ms = measured_ms_of(&builtin_plan);
        let within = calibrated_ms <= best_ms * 1.15;
        let measured: Vec<(&'static str, f64, f64, f64, f64)> = m
            .runs
            .iter()
            .map(|(p, s, point_ms, polygon_ms)| {
                let predicted_ms = calibrated.predict(
                    effective_key(p, &m.wl, &m.device),
                    &features(p, &m.wl, &m.device),
                ) * 1e3;
                (p.key_name(), s * 1e3, predicted_ms, *point_ms, *polygon_ms)
            })
            .collect();
        let sh = plan_workload(
            &m.wl,
            &m.query,
            &m.device,
            &calibrated,
            workers,
            2048,
            1024,
            None,
        )
        .best()
        .shape;
        results.push(CellResult {
            label: cell.label.clone(),
            n: cell.n,
            epsilon: cell.epsilon,
            selective: cell.selective,
            tiles: sh.tiles,
            batches: sh.batches,
            measured,
            best_key: KEY_NAMES[best_key],
            best_ms,
            calibrated_key: cal_plan.key_name(),
            calibrated_ms,
            builtin_key: builtin_plan.key_name(),
            builtin_ms,
            within_15pct: within,
        });
    }

    // ------------------------------------------ phase 4: worker choice
    // Sweep each cell's favourite pipeline across pool widths, feed the
    // measurements back per worker bucket (`effective_key` strides by
    // bucket), then let the planner spend a 4-worker budget. A cell
    // chooses width w1 over w4 exactly when its serial fraction
    // `raw(w1)/raw(w4)` sits below its pipeline family's learned
    // `scale(w4)/scale(w1)` threshold. Two details matter for
    // stability: the observation rounds interleave *cells* inside each
    // width block (a per-cell sweep would leave every family threshold
    // dominated by the ALPHA-EMA recency of the cell just measured,
    // parking every cell at a self-made near-tie), and all choices are
    // made only after every observation is in, so each cell is judged
    // against the same converged thresholds. Width is a per-cell
    // decision — `feedback_differentiates_worker_counts_across_cells`
    // in the optimizer pins the divergence deterministically. On a
    // single-core box every width performs the same work plus
    // time-slicing overhead, so the honest converged choice here is
    // one worker everywhere: the planner refusing to spend threads
    // that do not pay. The tiny quarter-size cells ride along to give
    // the family thresholds spread on real multi-core hardware, where
    // compute-bound cells open the pool and overhead-bound ones stay
    // narrow.
    let worker_budget = 4usize;
    let mut wcal = calibrated.clone();
    let widths = [1usize, 2, 4];
    struct SweepCell {
        label: String,
        pts: PointTable,
        wl: Workload,
        query: Query,
        base: Plan,
    }
    // All sweep cells are in-core; they share the in-core grid device.
    let sweep_device = Device::new(DeviceConfig::small(3 << 30, max_fbo));
    let mut sweep: Vec<SweepCell> = Vec::new();
    for (cell, m) in cells
        .iter()
        .zip(&grid)
        .filter(|(c, _)| c.n == sizes[0] && c.budget_points.is_none())
    {
        let base = plan_workload(
            &m.wl,
            &m.query,
            &sweep_device,
            &calibrated,
            1,
            2048,
            1024,
            None,
        )
        .best()
        .plan;
        sweep.push(SweepCell {
            label: cell.label.clone(),
            pts: full.prefix(cell.n),
            wl: m.wl,
            query: m.query.clone(),
            base,
        });
    }
    for &epsilon in &epsilons {
        let n = sizes[0] / 4;
        let pts = full.prefix(n);
        let query = Query::count().with_epsilon(epsilon);
        let wl = Workload::sample(&pts, &polys, &query);
        let base = plan_workload(&wl, &query, &sweep_device, &calibrated, 1, 2048, 1024, None)
            .best()
            .plan;
        sweep.push(SweepCell {
            label: format!("n{}k_eps{}_tiny", n / 1000, epsilon),
            pts,
            wl,
            query,
            base,
        });
    }
    let mut measured = vec![[f64::INFINITY; 3]; sweep.len()];
    // Several alternating rounds per width: the wider buckets start with
    // no correction history (the measured grid ran at the box default),
    // and the ALPHA-EMA needs a handful of observations before a
    // systematically over-optimistic amortization estimate stops
    // winning by default.
    for round in 0..3 {
        for i in 0..widths.len() {
            let slot = if round % 2 == 0 {
                i
            } else {
                widths.len() - 1 - i
            };
            let w = widths[slot];
            for (ci, sc) in sweep.iter().enumerate() {
                let mut plan = sc.base;
                plan.workers = w;
                for _ in 0..reps {
                    let out = plan.execute(&sc.pts, &polys, &sc.query, &sweep_device);
                    let secs = out.stats.processing.as_secs_f64();
                    let raw = wcal.raw(&features(&plan, &sc.wl, &sweep_device));
                    wcal.observe(effective_key(&plan, &sc.wl, &sweep_device), raw, secs);
                    measured[ci][slot] = measured[ci][slot].min(secs * 1e3);
                }
            }
        }
    }
    let mut wchoices: Vec<WorkerChoice> = Vec::new();
    for (ci, sc) in sweep.iter().enumerate() {
        // Closed feedback loop at full budget: the width sweep only
        // taught the corrections about the base pipeline's family, so
        // the first budget-4 choice can escape into a family with no
        // correction history (typically a sharded variant whose
        // amortized raw cost looks free). Execute whatever the planner
        // picks and feed the measurement back until the choice is
        // stable — an unmeasured family earns its corrections the
        // moment it is chosen.
        let mut chosen = plan_workload(
            &sc.wl,
            &sc.query,
            &sweep_device,
            &wcal,
            worker_budget,
            2048,
            1024,
            None,
        )
        .best()
        .plan;
        for _ in 0..4 {
            for _ in 0..reps {
                let out = chosen.execute(&sc.pts, &polys, &sc.query, &sweep_device);
                let secs = out.stats.processing.as_secs_f64();
                let raw = wcal.raw(&features(&chosen, &sc.wl, &sweep_device));
                wcal.observe(effective_key(&chosen, &sc.wl, &sweep_device), raw, secs);
            }
            let next = plan_workload(
                &sc.wl,
                &sc.query,
                &sweep_device,
                &wcal,
                worker_budget,
                2048,
                1024,
                None,
            )
            .best()
            .plan;
            if next == chosen {
                break;
            }
            chosen = next;
        }
        eprintln!(
            "worker choice {:<22} {} worker(s) for {:<24} (1w {:.1} / 2w {:.1} / 4w {:.1} ms)",
            sc.label,
            chosen.workers,
            chosen.key_name(),
            measured[ci][0],
            measured[ci][1],
            measured[ci][2]
        );
        wchoices.push(WorkerChoice {
            label: sc.label.clone(),
            key: chosen.key_name(),
            chosen_workers: chosen.workers,
            measured_ms: measured[ci],
        });
    }
    let distinct_widths: std::collections::BTreeSet<usize> =
        wchoices.iter().map(|c| c.chosen_workers).collect();
    eprintln!(
        "worker choice: {} distinct width(s) across {} cells with a {}-worker budget",
        distinct_widths.len(),
        wchoices.len(),
        worker_budget
    );

    let json = render_json(
        &results,
        &wchoices,
        worker_budget,
        &calibrated,
        quick,
        reps,
        workers,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_planner.json");
    eprintln!("wrote {out_path}");

    let within = results.iter().filter(|r| r.within_15pct).count();
    let never_worse = results
        .iter()
        .all(|r| r.calibrated_ms <= r.builtin_ms * 1.000001);
    eprintln!(
        "calibrated within 15% of best on {}/{} cells; never worse than builtin: {}",
        within,
        results.len(),
        never_worse
    );
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    results: &[CellResult],
    wchoices: &[WorkerChoice],
    worker_budget: usize,
    calibrated: &Calibration,
    quick: bool,
    reps: usize,
    workers: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"planner\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"workers\": {workers},");
    s.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"label\": \"{}\",", r.label);
        let _ = writeln!(
            s,
            "      \"points\": {}, \"epsilon\": {}, \"selective\": {}, \
             \"tiles\": {}, \"batches\": {},",
            r.n, r.epsilon, r.selective, r.tiles, r.batches
        );
        s.push_str("      \"plans\": [");
        for (j, (key, ms, pred_ms, pt_ms, poly_ms)) in r.measured.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"key\": \"{key}\", \"measured_ms\": {ms:.2}, \"predicted_ms\": {pred_ms:.2}, \
                 \"point_stage_ms\": {pt_ms:.2}, \"polygon_stage_ms\": {poly_ms:.2}}}",
                if j == 0 { "" } else { ", " }
            );
        }
        s.push_str("],\n");
        let _ = writeln!(
            s,
            "      \"best\": {{\"key\": \"{}\", \"ms\": {:.2}}},",
            r.best_key, r.best_ms
        );
        let _ = writeln!(
            s,
            "      \"calibrated\": {{\"key\": \"{}\", \"ms\": {:.2}, \"within_15pct\": {}}},",
            r.calibrated_key, r.calibrated_ms, r.within_15pct
        );
        let _ = writeln!(
            s,
            "      \"builtin\": {{\"key\": \"{}\", \"ms\": {:.2}}}",
            r.builtin_key, r.builtin_ms
        );
        let _ = write!(
            s,
            "    }}{}",
            if i + 1 < results.len() { ",\n" } else { "\n" }
        );
    }
    s.push_str("  ],\n");

    let distinct: std::collections::BTreeSet<usize> =
        wchoices.iter().map(|c| c.chosen_workers).collect();
    s.push_str("  \"worker_choice\": {\n");
    let _ = writeln!(s, "    \"budget\": {worker_budget},");
    s.push_str("    \"cells\": [");
    for (i, c) in wchoices.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"label\": \"{}\", \"key\": \"{}\", \"chosen_workers\": {}, \
             \"ms_w1\": {:.2}, \"ms_w2\": {:.2}, \"ms_w4\": {:.2}}}",
            if i == 0 { "" } else { ", " },
            c.label,
            c.key,
            c.chosen_workers,
            c.measured_ms[0],
            c.measured_ms[1],
            c.measured_ms[2]
        );
    }
    s.push_str("],\n");
    let _ = writeln!(s, "    \"distinct_worker_counts\": {}", distinct.len());
    s.push_str("  },\n");

    let within = results.iter().filter(|r| r.within_15pct).count();
    let never_worse = results
        .iter()
        .all(|r| r.calibrated_ms <= r.builtin_ms * 1.000001);
    let sum = |f: fn(&CellResult) -> f64| -> f64 { results.iter().map(f).sum() };
    s.push_str("  \"summary\": {\n");
    let _ = writeln!(s, "    \"cells\": {},", results.len());
    let _ = writeln!(s, "    \"calibrated_within_15pct\": {within},");
    let _ = writeln!(
        s,
        "    \"within_15pct_fraction\": {:.3},",
        within as f64 / results.len().max(1) as f64
    );
    let _ = writeln!(
        s,
        "    \"best_total_ms\": {:.2}, \"calibrated_total_ms\": {:.2}, \"builtin_total_ms\": {:.2},",
        sum(|r| r.best_ms),
        sum(|r| r.calibrated_ms),
        sum(|r| r.builtin_ms)
    );
    let _ = writeln!(
        s,
        "    \"calibrated_never_worse_than_builtin\": {never_worse},"
    );
    let _ = writeln!(s, "    \"worker_choice_distinct\": {},", distinct.len());
    let _ = writeln!(
        s,
        "    \"fit_samples\": {}, \"observations\": {}",
        calibrated.samples, calibrated.observations
    );
    s.push_str("  },\n");
    // The full calibration document, inline, for the artifact reader.
    s.push_str("  \"calibration\": ");
    let cal_json = calibrated.to_json();
    for (i, line) in cal_json.trim_end().lines().enumerate() {
        if i > 0 {
            s.push_str("  ");
        }
        s.push_str(line);
        s.push('\n');
    }
    s.pop();
    s.push('\n');
    s.push_str("}\n");
    s
}
