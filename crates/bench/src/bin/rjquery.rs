#![forbid(unsafe_code)]
//! `rjquery` — run a SQL spatial-aggregation query from the command line.
//!
//! Ties the whole stack together the way §9 envisions ("easy to
//! incorporate as an operator in existing database systems"): a columnar
//! table (binary `.bin` from `raster-data::disk` or `.csv`), a polygon
//! set (generated on the fly), and the paper's SQL dialect.
//!
//! ```text
//! rjquery --points taxi.bin --polygons 64 \
//!         --sql "SELECT AVG(fare) FROM P, R WHERE P.loc INSIDE R.geometry \
//!                AND passengers >= 2 GROUP BY R.id" \
//!         [--epsilon 10] [--exact] [--auto] [--workers N]
//!
//! # no --points: generate a synthetic taxi workload of N points
//! rjquery --generate 1000000 --polygons 32 --sql "..." --epsilon 20
//!
//! # prefix the SQL with EXPLAIN to print the §8 optimizer's plan instead
//! # of executing
//! rjquery --generate 1000000 --sql "EXPLAIN SELECT COUNT(*) FROM P, R \
//!         WHERE P.loc INSIDE R.geometry GROUP BY R.id"
//!
//! # a quoted FROM source streams the table straight off disk through the
//! # planner-driven out-of-core executor (never fully in memory)
//! rjquery --sql "SELECT AVG(fare) FROM 'taxi.bin', R \
//!         WHERE P.loc INSIDE R.geometry GROUP BY R.id" --epsilon 20
//! ```
//!
//! `--workers N` caps the executors' parallelism (the streaming scan's
//! chunk pool and the in-memory joins' intra-batch fan-out); without it
//! the `RJ_WORKERS` environment variable, then the detected core count,
//! decide (`raster_gpu::exec::default_workers`).

use raster_data::generators::{nyc_extent, TaxiModel};
use raster_data::polygons::synthetic_polygons;
use raster_data::PointTable;
use raster_gpu::Device;
use raster_join::optimizer::AutoRasterJoin;
use raster_join::{AccurateRasterJoin, BoundedRasterJoin, Query};
use std::path::PathBuf;

struct Args {
    points: Option<PathBuf>,
    generate: usize,
    polygons: usize,
    sql: String,
    epsilon: f64,
    exact: bool,
    auto: bool,
    top: usize,
    workers: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        points: None,
        generate: 500_000,
        polygons: 32,
        sql: String::new(),
        epsilon: 10.0,
        exact: false,
        auto: false,
        top: 10,
        workers: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let need = |i: usize, argv: &[String]| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[i]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--points" => {
                a.points = Some(PathBuf::from(need(i, &argv)?));
                i += 2;
            }
            "--generate" => {
                a.generate = need(i, &argv)?.parse().map_err(|_| "bad --generate")?;
                i += 2;
            }
            "--polygons" => {
                a.polygons = need(i, &argv)?.parse().map_err(|_| "bad --polygons")?;
                i += 2;
            }
            "--sql" => {
                a.sql = need(i, &argv)?;
                i += 2;
            }
            "--epsilon" => {
                a.epsilon = need(i, &argv)?.parse().map_err(|_| "bad --epsilon")?;
                i += 2;
            }
            "--top" => {
                a.top = need(i, &argv)?.parse().map_err(|_| "bad --top")?;
                i += 2;
            }
            "--workers" => {
                let w: usize = need(i, &argv)?.parse().map_err(|_| "bad --workers")?;
                if w == 0 {
                    return Err("bad --workers (must be >= 1)".into());
                }
                a.workers = Some(w);
                i += 2;
            }
            "--exact" => {
                a.exact = true;
                i += 1;
            }
            "--auto" => {
                a.auto = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if a.sql.is_empty() {
        return Err("required: --sql \"SELECT ...\"".into());
    }
    Ok(a)
}

/// Exit codes, one per failure class, so scripts can branch without
/// parsing stderr: 2 = bad usage or SQL, 3 = plain I/O failure, 4 =
/// on-disk format damage (a typed [`raster_data::codec::FormatError`]
/// rides inside the I/O error), 5 = a contained pipeline panic
/// surfaced as [`raster_join::StreamError::WorkerPanicked`].
const EXIT_USAGE: i32 = 2;
const EXIT_IO: i32 = 3;
const EXIT_CORRUPT: i32 = 4;
const EXIT_PANIC: i32 = 5;

fn io_exit_code(e: &std::io::Error) -> i32 {
    if raster_data::codec::FormatError::of(e).is_some() {
        EXIT_CORRUPT
    } else {
        EXIT_IO
    }
}

/// Print the one-line message and exit with the class code for a
/// streaming-executor error.
fn fail_stream(e: raster_join::StreamError) -> ! {
    use raster_join::StreamError;
    let code = match &e {
        StreamError::Parse(_) | StreamError::NoFileSource => EXIT_USAGE,
        StreamError::Io(io) => io_exit_code(io),
        StreamError::WorkerPanicked(_) => EXIT_PANIC,
    };
    eprintln!("rjquery: {e}");
    std::process::exit(code);
}

fn load_points(args: &Args) -> Result<PointTable, (i32, String)> {
    match &args.points {
        Some(path) => {
            let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
            if ext == "csv" {
                // Default TLC-like projection: lon, lat, then numeric columns
                // named in the header are not introspected here — use the
                // binary format for full schemas.
                let spec = raster_data::csv::CsvSpec::new(0, 1);
                let (t, stats) = raster_data::csv::read_csv_file(path, &spec)
                    .map_err(|e| (io_exit_code(&e), e.to_string()))?;
                eprintln!(
                    "loaded {} rows from {} ({} skipped)",
                    stats.rows_ok,
                    path.display(),
                    stats.rows_skipped
                );
                Ok(t)
            } else {
                raster_data::disk::read_table(path).map_err(|e| (io_exit_code(&e), e.to_string()))
            }
        }
        None => {
            eprintln!("generating {} synthetic taxi points…", args.generate);
            Ok(TaxiModel::default().generate(args.generate, 7))
        }
    }
}

/// Top-`top` result slots, largest value first.
fn print_results(values: &[f64], top: usize) {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
    println!("\n  region |        value");
    println!("  -------+-------------");
    for &i in order.iter().take(top) {
        println!("  {i:6} | {:12.2}", values[i]);
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(EXIT_USAGE);
        }
    };
    let is_explain = args
        .sql
        .trim_start()
        .to_ascii_uppercase()
        .starts_with("EXPLAIN");
    let file_source = raster_join::sql::file_source(&args.sql);

    // A quoted FROM source ("… FROM 'taxi.bin', R …") resolves its schema
    // from the file header; execution streams straight off disk through
    // the planner-driven out-of-core executor — the table is never fully
    // materialised in memory.
    if let Some(source) = file_source {
        // The streaming planner owns the variant choice and the SQL owns
        // the table; refuse flags that would silently be overridden.
        if args.exact {
            eprintln!(
                "error: --exact cannot be combined with a quoted FROM file source \
                 (the streaming planner chooses the variant)"
            );
            std::process::exit(EXIT_USAGE);
        }
        if args.points.is_some() {
            eprintln!(
                "error: --points conflicts with the quoted FROM file source `{source}` \
                 (the SQL names the table)"
            );
            std::process::exit(EXIT_USAGE);
        }
        let polys = synthetic_polygons(args.polygons, &nyc_extent(), 1);
        let device = Device::default();
        let mk_stream = || match args.workers {
            Some(w) => raster_join::StreamingRasterJoin::new(w),
            None => raster_join::StreamingRasterJoin::default(),
        };
        if is_explain {
            // The streaming EXPLAIN: the exact plan the chunk loop would
            // run, plus the chunk-pool width, the pruned column set and
            // predicted read bytes (explain_sql strips the EXPLAIN
            // keyword itself).
            let stream = mk_stream();
            match stream.explain_sql(&args.sql, Some(args.epsilon), &polys, &device) {
                Ok(plan) => {
                    print!("{plan}");
                    return;
                }
                Err(e) => fail_stream(e),
            }
        }
        let stream = mk_stream();
        match stream.execute_sql(&args.sql, Some(args.epsilon), &polys, &device) {
            Ok((query, s)) => {
                println!("executor: streamed {}", s.plan.describe());
                println!(
                    "streamed {} rows in {} chunk(s) of {} on {} pool worker(s) \
                     ({:?} processing, {:?} disk wait, {:?} read)",
                    s.rows,
                    s.chunks,
                    s.chunk_rows,
                    s.pool_workers,
                    s.output.stats.processing,
                    s.output.stats.disk,
                    s.read_time
                );
                let total_attrs = s.column_io.len().saturating_sub(2);
                match &s.projection {
                    Some(p) => println!(
                        "scan: {} bytes read, pruned to {} of {} attribute column(s)",
                        s.read_bytes,
                        p.len(),
                        total_attrs
                    ),
                    None => println!(
                        "scan: {} bytes read, all {} attribute column(s)",
                        s.read_bytes, total_attrs
                    ),
                }
                print_results(&s.output.values(query.aggregate), args.top);
                return;
            }
            Err(e) => fail_stream(e),
        }
    }

    let points = match load_points(&args) {
        Ok(p) => p,
        Err((code, msg)) => {
            eprintln!("rjquery: error loading points: {msg}");
            std::process::exit(code);
        }
    };
    let polys = synthetic_polygons(args.polygons, &nyc_extent(), 1);
    let device = Device::default();

    // EXPLAIN: print the optimizer's plan and stop.
    if is_explain {
        match raster_join::sql::explain_query(&args.sql, &points, points.len(), &polys, &device) {
            Ok(plan) => {
                print!("{plan}");
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(EXIT_USAGE);
            }
        }
    }

    let query: Query = match raster_join::sql::parse_query(&args.sql, &points) {
        Ok(q) => q.with_epsilon(args.epsilon),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(EXIT_USAGE);
        }
    };

    let (label, out) = if args.auto {
        let mut auto = AutoRasterJoin::default();
        if let Some(w) = args.workers {
            auto.workers = w;
        }
        let (plan, out) = auto.execute(&points, &polys, &query, &device);
        (format!("auto → {}", plan.describe()), out)
    } else if args.exact {
        let mut exec = AccurateRasterJoin::default();
        if let Some(w) = args.workers {
            exec.workers = w;
        }
        (
            "accurate".to_string(),
            exec.execute(&points, &polys, &query, &device),
        )
    } else {
        let mut exec = BoundedRasterJoin::default();
        if let Some(w) = args.workers {
            exec.workers = w;
        }
        (
            format!("bounded ε={}", query.epsilon),
            exec.execute(&points, &polys, &query, &device),
        )
    };

    println!("executor: {label}");
    println!(
        "time: {:?} processing, {:?} transfer (modelled), {} PIP tests",
        out.stats.processing, out.stats.transfer, out.stats.pip_tests
    );
    print_results(&out.values(query.aggregate), args.top);
}
