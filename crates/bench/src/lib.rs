#![forbid(unsafe_code)]
//! Benchmark harness for the paper reproduction.
//!
//! * [`workloads`] — lazily built, cached data sets shared by all
//!   experiments (so `repro all` builds each input once);
//! * [`report`] — plain-text table rendering for the `repro` binary;
//! * [`experiments`] — one function per paper table/figure, each printing
//!   the same rows/series the paper reports (see DESIGN.md §4 for the
//!   experiment index).
//!
//! Scale note: the paper runs 10⁸–10⁹ points on a GTX 1060; this harness
//! defaults to 10⁵–10⁶ on the host CPU and exposes `--scale` to grow the
//! sweep. All verified claims are *relative* (speedups, crossovers, error
//! distributions), which are preserved at reduced scale because every
//! executor sees identical inputs.

pub mod experiments;
pub mod report;
pub mod workloads;

/// Value of a `--key VALUE` CLI flag (shared by the bench binaries'
/// minimal argument parsing).
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Global scale knob: multiplies every point-count in the sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Scale {
    pub fn apply(&self, n: usize) -> usize {
        ((n as f64 * self.0) as usize).max(1)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}
