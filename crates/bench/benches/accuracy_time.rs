//! Fig. 12a/14 bench: bounded-join time across the ε sweep (the pass
//! count grows quadratically as ε shrinks), against the ε-independent
//! accurate variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_gpu::exec::default_workers;
use raster_gpu::Device;
use raster_join::{AccurateRasterJoin, BoundedRasterJoin, Query};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12a_accuracy_time");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let polys = bench::workloads::neighborhoods();
    let pts = bench::workloads::taxi(100_000);
    let dev = Device::default();
    let w = default_workers();
    for eps in [20.0f64, 10.0, 5.0, 2.5] {
        let q = Query::count().with_epsilon(eps);
        g.bench_with_input(
            BenchmarkId::new("bounded_eps_m", format!("{eps}")),
            &q,
            |b, q| b.iter(|| BoundedRasterJoin::new(w).execute(&pts, polys, q, &dev)),
        );
    }
    g.bench_function("accurate_reference", |b| {
        b.iter(|| AccurateRasterJoin::new(w).execute(&pts, polys, &Query::count(), &dev))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
