//! Table 2 bench: materializing join \[72\] vs fused Index Join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_gpu::exec::default_workers;
use raster_gpu::Device;
use raster_join::{IndexJoin, MaterializingJoin, Query};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_baseline_choice");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let polys = bench::workloads::neighborhoods();
    let dev = Device::default();
    let w = default_workers();
    let q = Query::count();
    for n in [50_000usize, 100_000] {
        let pts = bench::workloads::taxi(n);
        g.bench_with_input(BenchmarkId::new("materializing", n), &pts, |b, pts| {
            b.iter(|| MaterializingJoin::new(w).execute(pts, polys, &q, &dev))
        });
        g.bench_with_input(BenchmarkId::new("index_join", n), &pts, |b, pts| {
            b.iter(|| IndexJoin::gpu(w).execute(pts, polys, &q, &dev))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
