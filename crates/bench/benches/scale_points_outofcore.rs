//! Fig. 9 bench: point scaling past the device memory budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_data::PointTable;
use raster_gpu::exec::default_workers;
use raster_gpu::{Device, DeviceConfig};
use raster_join::{BoundedRasterJoin, IndexJoin, Query};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_scale_points_outofcore");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let polys = bench::workloads::neighborhoods();
    let w = default_workers();
    let q = Query::count().with_epsilon(10.0);
    // 50k-point budget: the sweep crosses into multi-batch execution.
    let dev = Device::new(DeviceConfig::small(
        50_000 * PointTable::point_bytes(0),
        8192,
    ));
    for n in [100_000usize, 200_000, 400_000] {
        let pts = bench::workloads::taxi(n);
        g.bench_with_input(BenchmarkId::new("bounded_ooc", n), &pts, |b, pts| {
            b.iter(|| BoundedRasterJoin::new(w).execute(pts, polys, &q, &dev))
        });
        g.bench_with_input(BenchmarkId::new("baseline_gpu_ooc", n), &pts, |b, pts| {
            b.iter(|| IndexJoin::gpu(w).execute(pts, polys, &q, &dev))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
