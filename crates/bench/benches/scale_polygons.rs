//! Fig. 10 bench: scaling with the number of query polygons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_gpu::exec::default_workers;
use raster_gpu::Device;
use raster_join::{AccurateRasterJoin, BoundedRasterJoin, IndexJoin, Query};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_scale_polygons");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let pts = bench::workloads::taxi(100_000);
    let dev = Device::default();
    let w = default_workers();
    let q = Query::count().with_epsilon(10.0);
    for count in [256usize, 1_024, 4_096] {
        let polys = bench::workloads::polygon_sweep(count);
        g.bench_with_input(BenchmarkId::new("bounded", count), &polys, |b, polys| {
            b.iter(|| BoundedRasterJoin::new(w).execute(&pts, polys, &q, &dev))
        });
        g.bench_with_input(BenchmarkId::new("accurate", count), &polys, |b, polys| {
            b.iter(|| AccurateRasterJoin::new(w).execute(&pts, polys, &q, &dev))
        });
        g.bench_with_input(
            BenchmarkId::new("baseline_gpu", count),
            &polys,
            |b, polys| b.iter(|| IndexJoin::gpu(w).execute(&pts, polys, &q, &dev)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
