//! Table 1 bench: polygon triangulation and grid-index creation costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_geom::triangulate::triangulate_all;
use raster_gpu::exec::default_workers;
use raster_index::{AssignMode, GridIndex};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_polygon_processing");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let nyc = bench::workloads::neighborhoods();
    let w = default_workers();
    let extent = raster_join::bounded::polygon_extent(nyc);

    g.bench_function("triangulate/nyc260", |b| {
        b.iter(|| triangulate_all(std::hint::black_box(nyc)))
    });
    for (label, mode, workers) in [
        ("index_gpu_mbr", AssignMode::Mbr, w),
        ("index_mcpu_exact", AssignMode::Exact, w),
        ("index_1cpu_exact", AssignMode::Exact, 1),
    ] {
        g.bench_with_input(BenchmarkId::new(label, "nyc260"), &mode, |b, &mode| {
            b.iter(|| GridIndex::build(nyc, extent, 1024, 1024, mode, workers))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
