//! Fig. 8 bench: point scaling when the data fits in device memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raster_gpu::exec::default_workers;
use raster_gpu::Device;
use raster_join::{AccurateRasterJoin, BoundedRasterJoin, IndexJoin, Query};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_scale_points_incore");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let polys = bench::workloads::neighborhoods();
    let dev = Device::default();
    let w = default_workers();
    let q = Query::count().with_epsilon(10.0);
    for n in [50_000usize, 100_000, 200_000] {
        let pts = bench::workloads::taxi(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("bounded", n), &pts, |b, pts| {
            b.iter(|| BoundedRasterJoin::new(w).execute(pts, polys, &q, &dev))
        });
        g.bench_with_input(BenchmarkId::new("accurate", n), &pts, |b, pts| {
            b.iter(|| AccurateRasterJoin::new(w).execute(pts, polys, &q, &dev))
        });
        g.bench_with_input(BenchmarkId::new("baseline_gpu", n), &pts, |b, pts| {
            b.iter(|| IndexJoin::gpu(w).execute(pts, polys, &q, &dev))
        });
        if n == 50_000 {
            g.bench_with_input(BenchmarkId::new("cpu_single", n), &pts, |b, pts| {
                b.iter(|| IndexJoin::cpu_single().execute(pts, polys, &q, &dev))
            });
            g.bench_with_input(BenchmarkId::new("cpu_multi", n), &pts, |b, pts| {
                b.iter(|| IndexJoin::cpu_multi(w).execute(pts, polys, &q, &dev))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
