//! Ablation benches for the design choices DESIGN.md §5 calls out:
//!
//! * grid-index resolution (paper §7.1 weighs 1024² vs 4096²);
//! * MBR vs exact-geometry cell assignment in the index build;
//! * fused aggregation vs materialize-then-aggregate (Table 2 mechanism);
//! * single canvas vs tiled multi-pass rendering (Fig. 5 mechanism);
//! * pixel-center vs conservative rasterization cost;
//! * two-step filter-refine (§2's classical join) vs fused execution;
//! * \[72\]-style 16-bit coordinate truncation vs exact coordinates;
//! * hardware conservative rasterization vs the §6.1 thick-outline
//!   fallback for non-NVIDIA GPUs;
//! * sampling-based vs resolution-based approximation;
//! * one multi-channel moments pass vs three single-aggregate passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_gpu::exec::default_workers;
use raster_gpu::raster::{
    rasterize_segment_conservative, rasterize_segment_thick_outline, rasterize_triangle,
    rasterize_triangle_conservative,
};
use raster_gpu::{Device, DeviceConfig};
use raster_index::{AssignMode, GridIndex, RTree};
use raster_join::moments::{MomentsQuery, MomentsRasterJoin};
use raster_join::{
    BoundedRasterJoin, IndexJoin, MaterializingJoin, Query, SamplingJoin, TwoStepJoin,
};

fn bench(c: &mut Criterion) {
    let w = default_workers();
    let polys = bench::workloads::neighborhoods();
    let extent = raster_join::bounded::polygon_extent(polys);
    let pts = bench::workloads::taxi(100_000);

    // --- index resolution sweep -----------------------------------------
    {
        let mut g = c.benchmark_group("ablation_index_resolution");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        for dim in [256u32, 1_024, 4_096] {
            g.bench_with_input(BenchmarkId::new("build_mbr", dim), &dim, |b, &dim| {
                b.iter(|| GridIndex::build(polys, extent, dim, dim, AssignMode::Mbr, w))
            });
            let dev = Device::default();
            let join = IndexJoin::gpu(w).with_index_dim(dim);
            g.bench_with_input(BenchmarkId::new("query", dim), &dim, |b, _| {
                b.iter(|| join.execute(&pts, polys, &Query::count(), &dev))
            });
        }
        g.finish();
    }

    // --- assignment mode -------------------------------------------------
    {
        let mut g = c.benchmark_group("ablation_assignment_mode");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        for (label, mode) in [("mbr", AssignMode::Mbr), ("exact", AssignMode::Exact)] {
            g.bench_function(BenchmarkId::new("build", label), |b| {
                b.iter(|| GridIndex::build(polys, extent, 1024, 1024, mode, w))
            });
        }
        g.finish();
    }

    // --- fused vs materializing -------------------------------------------
    {
        let mut g = c.benchmark_group("ablation_fused_vs_materializing");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let dev = Device::default();
        g.bench_function("fused_index_join", |b| {
            b.iter(|| IndexJoin::gpu(w).execute(&pts, polys, &Query::count(), &dev))
        });
        g.bench_function("materializing_join", |b| {
            b.iter(|| MaterializingJoin::new(w).execute(&pts, polys, &Query::count(), &dev))
        });
    }

    // --- single canvas vs forced tiling ------------------------------------
    {
        let mut g = c.benchmark_group("ablation_canvas_tiling");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let q = Query::count().with_epsilon(20.0);
        for (label, fbo_dim) in [
            ("single_8192", 8192u32),
            ("tiled_1024", 1024),
            ("tiled_512", 512),
        ] {
            let dev = Device::new(DeviceConfig::small(3 << 30, fbo_dim));
            g.bench_function(BenchmarkId::new("bounded", label), |b| {
                b.iter(|| BoundedRasterJoin::new(w).execute(&pts, polys, &q, &dev))
            });
        }
        g.finish();
    }

    // --- point batching structures (PointGrid vs Zhang-style quadtree) ----
    {
        let mut g = c.benchmark_group("ablation_point_batching");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let raw: Vec<raster_geom::Point> = (0..pts.len()).map(|i| pts.point(i)).collect();
        g.bench_function("point_grid_build", |b| {
            b.iter(|| raster_index::PointGrid::build(&raw, extent, 512, 512))
        });
        g.bench_function("quadtree_build", |b| {
            b.iter(|| raster_index::PointQuadtree::build(&raw, extent))
        });
        let grid = raster_index::PointGrid::build(&raw, extent, 512, 512);
        let qt = raster_index::PointQuadtree::build(&raw, extent);
        let queries: Vec<raster_geom::BBox> = polys.iter().take(32).map(|p| p.bbox()).collect();
        g.bench_function("point_grid_query", |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| grid.points_in_bbox(q).len())
                    .sum::<usize>()
            })
        });
        g.bench_function("quadtree_query", |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| qt.candidates_in_bbox(q).len())
                    .sum::<usize>()
            })
        });
        g.finish();
    }

    // --- §2 pre-aggregation baselines on polygon queries -------------------
    {
        let mut g = c.benchmark_group("ablation_preaggregation_baselines");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let raw: Vec<raster_geom::Point> = (0..pts.len()).map(|i| pts.point(i)).collect();
        let cube = raster_index::AggQuadtree::build(&raw, extent, 9);
        let recs: Vec<(raster_geom::Point, f32)> = raw.iter().map(|&p| (p, 1.0)).collect();
        let artree = raster_index::ARTree::build(&recs);
        let dev = Device::default();
        g.bench_function("cube_polygon_approx", |b| {
            b.iter(|| {
                polys
                    .iter()
                    .map(|p| cube.polygon_count_approx(p))
                    .sum::<u64>()
            })
        });
        g.bench_function("artree_polygon_mbr", |b| {
            b.iter(|| {
                polys
                    .iter()
                    .map(|p| artree.polygon_count_via_mbr(p))
                    .sum::<u64>()
            })
        });
        g.bench_function("bounded_raster_join", |b| {
            b.iter(|| {
                BoundedRasterJoin::new(w).execute(
                    &pts,
                    polys,
                    &Query::count().with_epsilon(20.0),
                    &dev,
                )
            })
        });
        g.finish();
    }

    // --- rasterization flavours --------------------------------------------
    {
        let mut g = c.benchmark_group("ablation_rasterization");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let tris = raster_geom::triangulate::triangulate_all(polys);
        let vp = raster_gpu::Viewport::new(extent, 2048, 2048);
        let screen: Vec<[(f64, f64); 3]> = tris
            .iter()
            .map(|t| [vp.to_screen(t.a), vp.to_screen(t.b), vp.to_screen(t.c)])
            .collect();
        g.bench_function("pixel_center", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for t in &screen {
                    rasterize_triangle(*t, 2048, 2048, |_, _| acc += 1);
                }
                acc
            })
        });
        g.bench_function("conservative", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for t in &screen {
                    rasterize_triangle_conservative(*t, 2048, 2048, |_, _| acc += 1);
                }
                acc
            })
        });
        g.bench_function("triangle_spans", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for t in &screen {
                    raster_gpu::raster::rasterize_triangle_spans(*t, 2048, 2048, |_, x0, x1| {
                        acc += (x1 - x0) as u64
                    });
                }
                acc
            })
        });
        // Whole-polygon scanline (the production fragment path).
        let rings: Vec<Vec<Vec<(f64, f64)>>> = polys
            .iter()
            .map(|p| {
                let mut rs = vec![p
                    .outer()
                    .points()
                    .iter()
                    .map(|&q| vp.to_screen(q))
                    .collect::<Vec<_>>()];
                for h in p.holes() {
                    rs.push(h.points().iter().map(|&q| vp.to_screen(q)).collect());
                }
                rs
            })
            .collect();
        g.bench_function("polygon_scanline", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for poly in &rings {
                    let refs: Vec<&[(f64, f64)]> = poly.iter().map(|r| r.as_slice()).collect();
                    raster_gpu::raster::rasterize_polygon_spans(&refs, 2048, 2048, |_, x0, x1| {
                        acc += (x1 - x0) as u64
                    });
                }
                acc
            })
        });
        g.finish();
    }

    // --- two-step filter-refine vs fused execution --------------------------
    {
        let mut g = c.benchmark_group("ablation_two_step_join");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let dev = Device::default();
        g.bench_function("rtree_build", |b| b.iter(|| RTree::build(polys)));
        g.bench_function("two_step_filter_refine", |b| {
            b.iter(|| TwoStepJoin::new(w).execute(&pts, polys, &Query::count(), &dev))
        });
        g.bench_function("fused_index_join", |b| {
            b.iter(|| IndexJoin::gpu(w).execute(&pts, polys, &Query::count(), &dev))
        });
        g.bench_function("bounded_raster_join", |b| {
            b.iter(|| {
                BoundedRasterJoin::new(w).execute(
                    &pts,
                    polys,
                    &Query::count().with_epsilon(20.0),
                    &dev,
                )
            })
        });
        g.finish();
    }

    // --- [72]-style 16-bit coordinate truncation ----------------------------
    {
        let mut g = c.benchmark_group("ablation_coordinate_quantization");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let dev = Device::default();
        g.bench_function("materializing_exact", |b| {
            b.iter(|| MaterializingJoin::new(w).execute(&pts, polys, &Query::count(), &dev))
        });
        let mut quant = MaterializingJoin::new(w);
        quant.coord_bits = Some(16);
        g.bench_function("materializing_16bit", |b| {
            b.iter(|| quant.execute(&pts, polys, &Query::count(), &dev))
        });
        g.finish();
    }

    // --- conservative rasterization: hardware path vs §6.1 fallback ---------
    {
        let mut g = c.benchmark_group("ablation_conservative");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let vp = raster_gpu::Viewport::new(extent, 2048, 2048);
        let edges: Vec<((f64, f64), (f64, f64))> = polys
            .iter()
            .flat_map(|p| p.all_edges())
            .map(|(a, b)| (vp.to_screen(a), vp.to_screen(b)))
            .collect();
        g.bench_function("dda_traversal", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(a, b2) in &edges {
                    rasterize_segment_conservative(a, b2, 2048, 2048, |_, _| acc += 1);
                }
                acc
            })
        });
        g.bench_function("thick_outline_fallback", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(a, b2) in &edges {
                    rasterize_segment_thick_outline(a, b2, 2048, 2048, |_, _| acc += 1);
                }
                acc
            })
        });
        g.finish();
    }

    // --- approximation knobs: sampling vs canvas resolution -----------------
    {
        let mut g = c.benchmark_group("ablation_sampling_vs_raster");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let dev = Device::default();
        for n in [1_000usize, 10_000] {
            g.bench_with_input(BenchmarkId::new("sampling", n), &n, |b, &n| {
                b.iter(|| SamplingJoin::new(n, 7).execute(&pts, polys, &Query::count(), &dev))
            });
        }
        for eps in [80.0f64, 20.0] {
            g.bench_with_input(
                BenchmarkId::new("bounded_eps", eps as u64),
                &eps,
                |b, &eps| {
                    b.iter(|| {
                        BoundedRasterJoin::new(w).execute(
                            &pts,
                            polys,
                            &Query::count().with_epsilon(eps),
                            &dev,
                        )
                    })
                },
            );
        }
        g.finish();
    }

    // --- temporal: one widened pass vs one filtered query per bucket -------
    {
        let mut g = c.benchmark_group("ablation_temporal");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let dev = Device::default();
        let pts_attr = bench::workloads::taxi(100_000);
        let hour = pts_attr.attr_index("hour").unwrap();
        let n_buckets = 12;
        let buckets = raster_join::TimeBuckets::covering(hour, 0.0, 168.0, n_buckets);
        g.bench_function("one_widened_pass", |b| {
            b.iter(|| {
                raster_join::TemporalRasterJoin::new(w, 20.0)
                    .execute(&pts_attr, polys, &buckets, &dev)
            })
        });
        g.bench_function("query_per_bucket", |b| {
            b.iter(|| {
                let join = BoundedRasterJoin::new(w);
                let mut total = 0u64;
                for bk in 0..n_buckets {
                    let (lo, hi) = buckets.bounds(bk);
                    let q = Query::count().with_epsilon(20.0).with_predicates(vec![
                        raster_data::Predicate::new(hour, raster_data::CmpOp::Ge, lo),
                        raster_data::Predicate::new(hour, raster_data::CmpOp::Lt, hi),
                    ]);
                    total += join.execute(&pts_attr, polys, &q, &dev).total_count();
                }
                total
            })
        });
        g.finish();
    }

    // --- moments: one widened pass vs one pass per aggregate ---------------
    {
        let mut g = c.benchmark_group("ablation_moments");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let dev = Device::default();
        let pts_attr = bench::workloads::taxi(100_000);
        let fare = pts_attr.attr_index("fare").unwrap();
        g.bench_function("moments_single_pass", |b| {
            b.iter(|| {
                MomentsRasterJoin::new(w).execute(
                    &pts_attr,
                    polys,
                    &MomentsQuery::new(vec![fare]).with_epsilon(20.0),
                    &dev,
                )
            })
        });
        g.bench_function("three_separate_passes", |b| {
            b.iter(|| {
                let j = BoundedRasterJoin::new(w);
                let count = j.execute(&pts_attr, polys, &Query::count().with_epsilon(20.0), &dev);
                let sum = j.execute(&pts_attr, polys, &Query::sum(fare).with_epsilon(20.0), &dev);
                // The third (Σx²) pass has no single-aggregate form; model
                // its cost with another sum pass.
                let sumsq = j.execute(&pts_attr, polys, &Query::sum(fare).with_epsilon(20.0), &dev);
                (count.total_count(), sum.sums[0], sumsq.sums[0])
            })
        });
        g.finish();
    }

    // --- binning × sharding pipeline ablation ---------------------------
    // The full points × tiles sweep (with the JSON trajectory artifact)
    // lives in the `bench_binning` binary; this group keeps the four
    // pipeline configurations comparable inside the criterion suite at a
    // fixed, CI-sized workload.
    {
        use raster_gpu::RasterConfig;
        let mut g = c.benchmark_group("ablation_binning_sharding");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));
        let pts_bin = bench::workloads::taxi(400_000);
        // ε → ~2046² canvas; 512-pixel FBO limit → 16 tiles.
        let dev = Device::new(DeviceConfig::small(3 << 30, 512));
        let q = Query::count().with_epsilon(40.1);
        for (label, binning, sharding) in [
            ("naive", false, false),
            ("binned", true, false),
            ("sharded", false, true),
            ("binned_sharded", true, true),
        ] {
            g.bench_function(BenchmarkId::new("bounded_16_tiles", label), |b| {
                let join = BoundedRasterJoin::with_config(w, RasterConfig { binning, sharding });
                let prepared = join.prepare(polys, q.epsilon, &dev);
                b.iter(|| join.execute_prepared(&prepared, &pts_bin, &q, &dev))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
