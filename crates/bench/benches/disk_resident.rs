//! Fig. 13 bench: disk-resident Twitter ⋈ US-Counties (chunked scan +
//! bounded join per chunk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_data::disk::{write_table, ChunkedReader};
use raster_data::PointTable;
use raster_gpu::exec::default_workers;
use raster_gpu::{Device, DeviceConfig};
use raster_join::{BoundedRasterJoin, Query};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_disk_resident");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let polys = bench::workloads::counties();
    let w = default_workers();
    let q = Query::count().with_epsilon(1_000.0);
    let chunk_rows = 100_000usize;
    let dev = Device::new(DeviceConfig::small(
        chunk_rows * PointTable::point_bytes(0),
        8192,
    ));
    for n in [200_000usize, 400_000] {
        let pts = bench::workloads::twitter(n);
        let path = std::env::temp_dir().join(format!("rjr-bench-fig13-{n}.bin"));
        write_table(&path, &pts).expect("write table");
        g.bench_with_input(BenchmarkId::new("bounded_disk", n), &path, |b, path| {
            b.iter(|| {
                let mut reader = ChunkedReader::open(path, chunk_rows).expect("open");
                let joiner = BoundedRasterJoin::new(w);
                let mut total = 0u64;
                while let Some(chunk) = reader.next_chunk().expect("chunk") {
                    let out = joiner.execute(&chunk, polys, &q, &dev);
                    total += out.total_count();
                }
                total
            })
        });
        std::fs::remove_file(&path).ok();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
