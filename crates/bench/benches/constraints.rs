//! Fig. 11 bench: queries with 0–5 attribute constraints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_data::filter::{CmpOp, Predicate};
use raster_gpu::exec::default_workers;
use raster_gpu::Device;
use raster_join::{BoundedRasterJoin, Query};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_constraints");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let polys = bench::workloads::neighborhoods();
    let pts = bench::workloads::taxi(100_000);
    let dev = Device::default();
    let w = default_workers();
    for k in 0..=5usize {
        let preds: Vec<Predicate> = (0..k).map(|a| Predicate::new(a, CmpOp::Ge, 0.0)).collect();
        let q = Query::count().with_epsilon(10.0).with_predicates(preds);
        g.bench_with_input(BenchmarkId::new("bounded", k), &q, |b, q| {
            b.iter(|| BoundedRasterJoin::new(w).execute(&pts, polys, q, &dev))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
