#![forbid(unsafe_code)]
//! Computational-geometry substrate for the raster-join reproduction.
//!
//! This crate provides every geometric primitive the paper's pipeline needs:
//!
//! * [`Point`] / [`BBox`] — planar points and axis-aligned bounding boxes;
//! * [`Polygon`] — simple polygons (optionally with holes) with area,
//!   centroid, perimeter and containment predicates;
//! * [`triangulate`] — ear-clipping polygon triangulation (the paper uses a
//!   constrained Delaunay triangulation via clip2tri; raster join only needs
//!   *a* valid triangulation, see DESIGN.md);
//! * [`clip`] — Cohen–Sutherland segment clipping and Sutherland–Hodgman
//!   polygon clipping (used for the expected result-range estimation of §5);
//! * [`hausdorff`] — the Hausdorff distance underlying the ε-bound of §4.2;
//! * [`voronoi`] — the constrained-Voronoi polygon generator of §7.4,
//!   including merging of adjacent cells into concave polygons.

pub mod bbox;
pub mod clip;
pub mod coverage;
pub mod hausdorff;
pub mod merge;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod proj;
pub mod simplify;
pub mod triangulate;
pub mod validate;
pub mod voronoi;

pub use bbox::BBox;
pub use point::Point;
pub use polygon::{Polygon, Ring};
pub use predicates::{orient2d, point_in_polygon, segments_intersect, Orientation};
pub use triangulate::{triangulate_polygon, Triangle};
