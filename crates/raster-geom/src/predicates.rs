//! Geometric predicates: orientation, segment intersection, point-in-polygon.
//!
//! The point-in-polygon (PIP) test here is the expensive primitive the paper
//! works to avoid: its cost is linear in polygon size, and the index-join
//! baselines of §6.2 execute it for every candidate point/polygon pair.

use crate::{Point, Polygon};

/// Result of the orientation test for an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    CounterClockwise,
    Clockwise,
    Collinear,
}

/// Orientation of the triple `(a, b, c)`: sign of the cross product
/// `(b - a) × (c - a)`.
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    let v = (b - a).cross(c - a);
    if v > 0.0 {
        Orientation::CounterClockwise
    } else if v < 0.0 {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Signed doubled area of the triangle `(a, b, c)` (positive if CCW).
pub fn signed_area2(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// Proper or improper intersection test for closed segments `a1–a2`, `b1–b2`.
pub fn segments_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    let d1 = orient2d(b1, b2, a1);
    let d2 = orient2d(b1, b2, a2);
    let d3 = orient2d(a1, a2, b1);
    let d4 = orient2d(a1, a2, b2);

    if d1 != d2 && d3 != d4 && d1 != Orientation::Collinear && d2 != Orientation::Collinear
        || d1 != d2 && d3 != d4 && d3 != Orientation::Collinear && d4 != Orientation::Collinear
    {
        // General position: strictly crossing provided no endpoint collinearity
        // confusion; fall through to collinear handling otherwise.
        if d1 != Orientation::Collinear
            && d2 != Orientation::Collinear
            && d3 != Orientation::Collinear
            && d4 != Orientation::Collinear
        {
            return true;
        }
    }
    (d1 == Orientation::Collinear && on_segment(b1, b2, a1))
        || (d2 == Orientation::Collinear && on_segment(b1, b2, a2))
        || (d3 == Orientation::Collinear && on_segment(a1, a2, b1))
        || (d4 == Orientation::Collinear && on_segment(a1, a2, b2))
        || (d1 != d2 && d3 != d4)
}

/// Point of intersection of the *lines* through `a1–a2` and `b1–b2`, if they
/// are not parallel.
pub fn line_intersection(a1: Point, a2: Point, b1: Point, b2: Point) -> Option<Point> {
    let r = a2 - a1;
    let s = b2 - b1;
    let denom = r.cross(s);
    if denom == 0.0 {
        return None;
    }
    let t = (b1 - a1).cross(s) / denom;
    Some(a1 + r * t)
}

/// Even–odd (ray crossing) point-in-ring test over a closed vertex loop.
///
/// Points exactly on the boundary may land on either side; the raster-join
/// accuracy story (§4.2 of the paper) explicitly tolerates such boundary
/// ambiguity, so no exact-arithmetic tie-breaking is attempted.
pub fn point_in_ring(ring: &[Point], p: Point) -> bool {
    let n = ring.len();
    if n < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let pi = ring[i];
        let pj = ring[j];
        if (pi.y > p.y) != (pj.y > p.y) {
            let x_at = pi.x + (p.y - pi.y) / (pj.y - pi.y) * (pj.x - pi.x);
            if p.x < x_at {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Point-in-polygon test honouring holes: inside the outer ring and inside an
/// even number of hole rings.
pub fn point_in_polygon(poly: &Polygon, p: Point) -> bool {
    if !poly.bbox().contains(p) {
        return false;
    }
    if !point_in_ring(poly.outer().points(), p) {
        return false;
    }
    for hole in poly.holes() {
        if point_in_ring(hole.points(), p) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ring;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]
    }

    #[test]
    fn orientation_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orient2d(a, b, Point::new(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(a, b, Point::new(0.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn crossing_segments_intersect() {
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0)
        ));
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        assert!(!segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0)
        ));
    }

    #[test]
    fn touching_at_endpoint_counts_as_intersection() {
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0)
        ));
    }

    #[test]
    fn collinear_overlapping_segments_intersect() {
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0)
        ));
        assert!(!segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0)
        ));
    }

    #[test]
    fn line_intersection_point() {
        let p = line_intersection(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0),
        )
        .unwrap();
        assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
        assert!(line_intersection(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0)
        )
        .is_none());
    }

    #[test]
    fn point_in_ring_square() {
        let sq = square();
        assert!(point_in_ring(&sq, Point::new(2.0, 2.0)));
        assert!(!point_in_ring(&sq, Point::new(5.0, 2.0)));
        assert!(!point_in_ring(&sq, Point::new(-1.0, -1.0)));
    }

    #[test]
    fn point_in_concave_ring() {
        // A "U" shape: the notch interior must be outside.
        let u = vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 6.0),
            Point::new(0.0, 6.0),
        ];
        assert!(point_in_ring(&u, Point::new(1.0, 3.0)));
        assert!(point_in_ring(&u, Point::new(5.0, 3.0)));
        assert!(!point_in_ring(&u, Point::new(3.0, 4.0))); // inside the notch
        assert!(point_in_ring(&u, Point::new(3.0, 1.0))); // the bottom bar
    }

    #[test]
    fn polygon_with_hole_excludes_hole_interior() {
        let outer = Ring::new(square());
        let hole = Ring::new(vec![
            Point::new(1.0, 1.0),
            Point::new(3.0, 1.0),
            Point::new(3.0, 3.0),
            Point::new(1.0, 3.0),
        ]);
        let poly = Polygon::with_holes(0, outer, vec![hole]);
        assert!(point_in_polygon(&poly, Point::new(0.5, 0.5)));
        assert!(!point_in_polygon(&poly, Point::new(2.0, 2.0)));
        assert!(!point_in_polygon(&poly, Point::new(9.0, 9.0)));
    }
}
