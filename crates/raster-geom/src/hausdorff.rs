//! Hausdorff distance between polygon boundaries.
//!
//! §4.2 of the paper defines the ε-approximation guarantee of bounded raster
//! join through the Hausdorff distance between the input polygon and its
//! pixelated stand-in: with pixel side ε′ = ε/√2 (pixel diagonal = ε), every
//! false positive/negative lies within ε of the true boundary. This module
//! provides a discretised boundary Hausdorff distance used by the tests to
//! *verify* that guarantee, plus the resolution arithmetic itself.

use crate::{BBox, Point, Polygon};

/// Directed Hausdorff distance from sample set `a` to sample set `b`:
/// `max_{p∈a} min_{q∈b} d(p, q)`.
pub fn directed_hausdorff(a: &[Point], b: &[Point]) -> f64 {
    let mut worst: f64 = 0.0;
    for &p in a {
        let mut best = f64::INFINITY;
        for &q in b {
            let d = p.distance_sq(q);
            if d < best {
                best = d;
            }
        }
        worst = worst.max(best);
    }
    worst.sqrt()
}

/// Symmetric Hausdorff distance between two sample sets.
pub fn hausdorff(a: &[Point], b: &[Point]) -> f64 {
    directed_hausdorff(a, b).max(directed_hausdorff(b, a))
}

/// Sample the boundary of a polygon at spacing at most `step`.
pub fn sample_boundary(poly: &Polygon, step: f64) -> Vec<Point> {
    let mut out = Vec::new();
    for (a, b) in poly.all_edges() {
        let len = a.distance(b);
        let n = (len / step).ceil().max(1.0) as usize;
        for k in 0..n {
            let t = k as f64 / n as f64;
            out.push(a + (b - a) * t);
        }
    }
    out
}

/// Pixel side length ε′ that guarantees a Hausdorff bound of ε: the paper
/// sets the pixel *diagonal* to ε, i.e. side = ε / √2.
pub fn pixel_side_for_epsilon(epsilon: f64) -> f64 {
    epsilon / std::f64::consts::SQRT_2
}

/// Canvas resolution (width, height in pixels) required to render `extent`
/// with the ε guarantee. This is `w/ε′ × h/ε′` from §4.2.
pub fn resolution_for_epsilon(extent: &BBox, epsilon: f64) -> (u32, u32) {
    let side = pixel_side_for_epsilon(epsilon);
    let w = (extent.width() / side).ceil().max(1.0) as u32;
    let h = (extent.height() / side).ceil().max(1.0) as u32;
    (w, h)
}

/// Number of rendering passes needed when the required resolution exceeds
/// the FBO limit `max_dim` per axis (the multi-canvas splitting of Fig. 5).
pub fn passes_for_epsilon(extent: &BBox, epsilon: f64, max_dim: u32) -> u32 {
    let (w, h) = resolution_for_epsilon(extent, epsilon);
    let tiles_x = w.div_ceil(max_dim);
    let tiles_y = h.div_ceil(max_dim);
    tiles_x * tiles_y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hausdorff_of_identical_sets_is_zero() {
        let a = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        assert_eq!(hausdorff(&a, &a), 0.0);
    }

    #[test]
    fn directed_hausdorff_is_asymmetric() {
        let a = vec![Point::new(0.0, 0.0)];
        let b = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        assert_eq!(directed_hausdorff(&a, &b), 0.0);
        assert_eq!(directed_hausdorff(&b, &a), 10.0);
        assert_eq!(hausdorff(&a, &b), 10.0);
    }

    #[test]
    fn boundary_sampling_respects_step() {
        let p = Polygon::from_coords(0, vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let samples = sample_boundary(&p, 1.0);
        assert!(samples.len() >= 40);
        // Consecutive samples along each edge are at most 1.0 apart — verify
        // by checking every sample is on the boundary bbox frame.
        for s in &samples {
            let on_frame = s.x.abs() < 1e-9
                || (s.x - 10.0).abs() < 1e-9
                || s.y.abs() < 1e-9
                || (s.y - 10.0).abs() < 1e-9;
            assert!(on_frame);
        }
    }

    #[test]
    fn pixel_side_matches_diagonal_rule() {
        let e = 20.0;
        let side = pixel_side_for_epsilon(e);
        let diagonal = side * std::f64::consts::SQRT_2;
        assert!((diagonal - e).abs() < 1e-12);
    }

    #[test]
    fn resolution_scales_inversely_with_epsilon() {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 500.0));
        let (w1, h1) = resolution_for_epsilon(&extent, 10.0);
        let (w2, h2) = resolution_for_epsilon(&extent, 5.0);
        assert!(w2 >= 2 * w1 - 1 && h2 >= 2 * h1 - 1);
        assert!(w1 > 0 && h1 > 0);
    }

    #[test]
    fn passes_grow_quadratically_as_epsilon_shrinks() {
        // Fig. 12a: "the number of rendering passes increases quadratically"
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(40_000.0, 40_000.0));
        let max_dim = 8192;
        let p20 = passes_for_epsilon(&extent, 20.0, max_dim);
        let p10 = passes_for_epsilon(&extent, 10.0, max_dim);
        let p5 = passes_for_epsilon(&extent, 5.0, max_dim);
        assert_eq!(p20, 1);
        assert!(p10 >= 1);
        assert!(p5 > p10);
    }
}
