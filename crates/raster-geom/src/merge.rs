//! Merging of adjacent Voronoi cells into complex polygons (§7.4).
//!
//! The paper's polygon generator computes 4n Voronoi cells and repeatedly
//! merges a random pair of *adjacent* cells until n polygons remain, so the
//! output mixes convex, concave and arbitrarily complex shapes. We keep the
//! per-edge neighbour annotations produced by [`crate::voronoi`] and realise
//! a merged region's outline as the chain of member-cell edges whose
//! neighbour lies outside the region.

use crate::voronoi::VoronoiCell;
use crate::{Point, Polygon, Ring};
use rand::Rng;

/// Union-find over cell indices.
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Quantise a point for exact endpoint matching despite floating-point noise.
fn key(p: Point, scale: f64) -> (i64, i64) {
    let q = scale / 1e9;
    ((p.x / q).round() as i64, (p.y / q).round() as i64)
}

/// Assemble the boundary loops of one region (set of cell indices).
///
/// Returns rings ordered by descending absolute area: the first is the outer
/// boundary, any further loops are holes (possible when a region surrounds
/// another after many merges).
fn region_boundary(cells: &[VoronoiCell], members: &[usize], scale: f64) -> Vec<Ring> {
    use std::collections::BTreeMap;
    let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();

    // Directed boundary edges: start -> end. A BTreeMap keeps edge pickup
    // order deterministic (same inputs → identical vertex order).
    let mut by_start: BTreeMap<(i64, i64), Vec<(Point, Point)>> = BTreeMap::new();
    let mut edge_count = 0usize;
    for &ci in members {
        let cell = &cells[ci];
        let n = cell.verts.len();
        for i in 0..n {
            let (p, ann) = cell.verts[i];
            let (q, _) = cell.verts[(i + 1) % n];
            let internal = matches!(ann, Some(nb) if member_set.contains(&nb));
            if !internal {
                by_start.entry(key(p, scale)).or_default().push((p, q));
                edge_count += 1;
            }
        }
    }

    let mut rings = Vec::new();
    let mut consumed = 0usize;
    while consumed < edge_count {
        // Pick any remaining edge as the loop seed.
        let Some((&start_key, _)) = by_start.iter().find(|(_, v)| !v.is_empty()) else {
            break;
        };
        let (first_p, first_q) = by_start.get_mut(&start_key).unwrap().pop().unwrap();
        consumed += 1;
        let mut loop_pts = vec![first_p, first_q];
        let start = key(first_p, scale);
        let mut cursor = key(first_q, scale);
        let mut guard = 0usize;
        while cursor != start {
            let Some(next_edges) = by_start.get_mut(&cursor) else {
                break;
            };
            let Some((_, q)) = next_edges.pop() else {
                break;
            };
            consumed += 1;
            cursor = key(q, scale);
            loop_pts.push(q);
            guard += 1;
            if guard > edge_count + 4 {
                break;
            }
        }
        // Drop the duplicated closing vertex (Ring::new also handles it).
        if loop_pts.len() >= 3 {
            rings.push(Ring::new(loop_pts));
        }
    }
    rings.sort_by(|a, b| {
        b.signed_area()
            .abs()
            .partial_cmp(&a.signed_area().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rings
}

/// Merge Voronoi cells into `target` polygons by repeatedly unioning random
/// adjacent regions, exactly as §7.4 prescribes. IDs are assigned densely
/// `0..target`.
pub fn merge_cells_into_polygons<R: Rng>(
    cells: &[VoronoiCell],
    target: usize,
    rng: &mut R,
) -> Vec<Polygon> {
    let n = cells.len();
    assert!(target >= 1, "target must be at least 1");
    let mut dsu = Dsu::new(n);
    let mut regions = n;

    // Adjacency pairs (deduplicated by ordering).
    let mut adjacency: Vec<(usize, usize)> = Vec::new();
    for c in cells {
        for nb in c.neighbors() {
            if c.site < nb {
                adjacency.push((c.site, nb));
            }
        }
    }

    let mut attempts = 0usize;
    while regions > target && !adjacency.is_empty() {
        let k = rng.gen_range(0..adjacency.len());
        let (a, b) = adjacency.swap_remove(k);
        if dsu.union(a, b) {
            regions -= 1;
        }
        attempts += 1;
        if attempts > 64 * n + 1024 {
            break; // disconnected leftovers; accept more regions than target
        }
    }

    // Group members per region root.
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..n {
        let r = dsu.find(i);
        groups.entry(r).or_default().push(i);
    }

    let scale = cells
        .iter()
        .flat_map(|c| c.verts.iter().map(|(p, _)| p.x.abs().max(p.y.abs())))
        .fold(1.0f64, f64::max);

    let mut polys = Vec::with_capacity(groups.len());
    let mut id = 0u32;
    let mut roots: Vec<usize> = groups.keys().copied().collect();
    roots.sort_unstable(); // deterministic output order
    for root in roots {
        let members = &groups[&root];
        let mut rings = region_boundary(cells, members, scale);
        if rings.is_empty() {
            continue;
        }
        let outer = rings.remove(0);
        if outer.len() < 3 {
            continue;
        }
        polys.push(Polygon::with_holes(id, outer, rings));
        id += 1;
    }
    polys
}

/// Full §7.4 generator: scatter `4 * target` random sites in `extent`,
/// compute the constrained Voronoi diagram and merge down to `target`
/// polygons.
pub fn generate_polygons<R: Rng>(target: usize, extent: &crate::BBox, rng: &mut R) -> Vec<Polygon> {
    let nsites = 4 * target.max(1);
    let sites: Vec<Point> = (0..nsites)
        .map(|_| {
            Point::new(
                rng.gen_range(extent.min.x..extent.max.x),
                rng.gen_range(extent.min.y..extent.max.y),
            )
        })
        .collect();
    let cells = crate::voronoi::voronoi_cells(&sites, extent);
    merge_cells_into_polygons(&cells, target, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voronoi::voronoi_cells;
    use crate::BBox;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn merging_preserves_total_area() {
        let mut rng = StdRng::seed_from_u64(7);
        let sites: Vec<Point> = (0..64)
            .map(|_| {
                Point::new(
                    rand::Rng::gen_range(&mut rng, 0.0..100.0),
                    rand::Rng::gen_range(&mut rng, 0.0..100.0),
                )
            })
            .collect();
        let cells = voronoi_cells(&sites, &extent());
        let polys = merge_cells_into_polygons(&cells, 16, &mut rng);
        let total: f64 = polys.iter().map(Polygon::area).sum();
        assert!(
            (total - 10_000.0).abs() < 1.0,
            "merged polygons must tile the extent, got {total}"
        );
    }

    #[test]
    fn merge_reaches_target_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let polys = generate_polygons(12, &extent(), &mut rng);
        assert_eq!(polys.len(), 12);
        // IDs dense and unique.
        let mut ids: Vec<u32> = polys.iter().map(Polygon::id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn generated_polygons_include_concave_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        let polys = generate_polygons(10, &extent(), &mut rng);
        // After merging, at least one polygon must be concave (a convex
        // polygon's vertex count equals its hull's vertex count).
        let any_concave = polys.iter().any(|p| {
            let pts = p.outer().points();
            let n = pts.len();
            (0..n).any(|i| {
                crate::predicates::signed_area2(pts[(i + n - 1) % n], pts[i], pts[(i + 1) % n])
                    < -1e-9
            })
        });
        assert!(any_concave, "expected concave polygons from merging");
    }

    #[test]
    fn single_target_covers_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let polys = generate_polygons(1, &extent(), &mut rng);
        assert_eq!(polys.len(), 1);
        assert!((polys[0].area() - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn merged_polygons_have_disjoint_interiors() {
        let mut rng = StdRng::seed_from_u64(23);
        let polys = generate_polygons(8, &extent(), &mut rng);
        // Sample a grid of probe points: each must lie in at most one polygon
        // (boundary probes may be ambiguous; use off-grid offsets).
        for gy in 0..20 {
            for gx in 0..20 {
                let p = Point::new(gx as f64 * 5.0 + 2.63, gy as f64 * 5.0 + 1.77);
                let owners = polys.iter().filter(|poly| poly.contains(p)).count();
                assert!(owners <= 1, "point {p:?} owned by {owners} polygons");
            }
        }
    }
}
