//! Clipping algorithms.
//!
//! * [`clip_segment`] — Cohen–Sutherland segment clipping against a box. The
//!   paper's fragment shader uses this to compute the fraction of a boundary
//!   pixel covered by its polygon (§5, "Estimating the Result Range").
//! * [`clip_ring`] — Sutherland–Hodgman polygon clipping against a box, used
//!   to compute exact pixel/polygon intersection areas.

use crate::{BBox, Point};

const INSIDE: u8 = 0;
const LEFT: u8 = 1;
const RIGHT: u8 = 2;
const BOTTOM: u8 = 4;
const TOP: u8 = 8;

fn out_code(b: &BBox, p: Point) -> u8 {
    let mut code = INSIDE;
    if p.x < b.min.x {
        code |= LEFT;
    } else if p.x > b.max.x {
        code |= RIGHT;
    }
    if p.y < b.min.y {
        code |= BOTTOM;
    } else if p.y > b.max.y {
        code |= TOP;
    }
    code
}

/// Cohen–Sutherland: clip the segment `a`–`b` to `bbox`. Returns the clipped
/// segment, or `None` when the segment misses the box entirely.
pub fn clip_segment(bbox: &BBox, mut a: Point, mut b: Point) -> Option<(Point, Point)> {
    let mut code_a = out_code(bbox, a);
    let mut code_b = out_code(bbox, b);
    loop {
        if code_a | code_b == 0 {
            return Some((a, b));
        }
        if code_a & code_b != 0 {
            return None;
        }
        let code_out = if code_a != 0 { code_a } else { code_b };
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let p = if code_out & TOP != 0 {
            Point::new(a.x + dx * (bbox.max.y - a.y) / dy, bbox.max.y)
        } else if code_out & BOTTOM != 0 {
            Point::new(a.x + dx * (bbox.min.y - a.y) / dy, bbox.min.y)
        } else if code_out & RIGHT != 0 {
            Point::new(bbox.max.x, a.y + dy * (bbox.max.x - a.x) / dx)
        } else {
            Point::new(bbox.min.x, a.y + dy * (bbox.min.x - a.x) / dx)
        };
        if code_out == code_a {
            a = p;
            code_a = out_code(bbox, a);
        } else {
            b = p;
            code_b = out_code(bbox, b);
        }
    }
}

#[derive(Clone, Copy)]
enum Side {
    Left(f64),
    Right(f64),
    Bottom(f64),
    Top(f64),
}

impl Side {
    fn inside(&self, p: Point) -> bool {
        match *self {
            Side::Left(x) => p.x >= x,
            Side::Right(x) => p.x <= x,
            Side::Bottom(y) => p.y >= y,
            Side::Top(y) => p.y <= y,
        }
    }

    fn intersect(&self, a: Point, b: Point) -> Point {
        match *self {
            Side::Left(x) | Side::Right(x) => {
                let t = (x - a.x) / (b.x - a.x);
                Point::new(x, a.y + t * (b.y - a.y))
            }
            Side::Bottom(y) | Side::Top(y) => {
                let t = (y - a.y) / (b.y - a.y);
                Point::new(a.x + t * (b.x - a.x), y)
            }
        }
    }
}

/// Sutherland–Hodgman: clip a closed ring to `bbox`. Returns the clipped
/// vertex loop (possibly empty). The input ring may wind either way.
pub fn clip_ring(bbox: &BBox, ring: &[Point]) -> Vec<Point> {
    let mut output: Vec<Point> = ring.to_vec();
    let sides = [
        Side::Left(bbox.min.x),
        Side::Right(bbox.max.x),
        Side::Bottom(bbox.min.y),
        Side::Top(bbox.max.y),
    ];
    for side in sides {
        if output.is_empty() {
            break;
        }
        let input = std::mem::take(&mut output);
        let n = input.len();
        for i in 0..n {
            let cur = input[i];
            let prev = input[(i + n - 1) % n];
            let cur_in = side.inside(cur);
            let prev_in = side.inside(prev);
            if cur_in {
                if !prev_in {
                    output.push(side.intersect(prev, cur));
                }
                output.push(cur);
            } else if prev_in {
                output.push(side.intersect(prev, cur));
            }
        }
    }
    output
}

/// Area of the part of `ring` inside `bbox`, as a fraction of the box area.
///
/// This is `f_i(x, y)` from §5 of the paper: the coverage fraction used for
/// the *expected* result-range intervals. The result is clamped to `[0, 1]`.
pub fn coverage_fraction(bbox: &BBox, ring: &[Point]) -> f64 {
    let clipped = clip_ring(bbox, ring);
    if clipped.len() < 3 {
        return 0.0;
    }
    let mut area2 = 0.0;
    let n = clipped.len();
    for i in 0..n {
        area2 += clipped[i].cross(clipped[(i + 1) % n]);
    }
    let area = area2.abs() * 0.5;
    let cell = bbox.area();
    if cell <= 0.0 {
        0.0
    } else {
        (area / cell).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn segment_fully_inside_unchanged() {
        let b = unit_box();
        let (p, q) = clip_segment(&b, Point::new(0.2, 0.2), Point::new(0.8, 0.8)).unwrap();
        assert_eq!(p, Point::new(0.2, 0.2));
        assert_eq!(q, Point::new(0.8, 0.8));
    }

    #[test]
    fn segment_fully_outside_rejected() {
        let b = unit_box();
        assert!(clip_segment(&b, Point::new(2.0, 2.0), Point::new(3.0, 3.0)).is_none());
        assert!(clip_segment(&b, Point::new(-1.0, 0.5), Point::new(-0.5, 0.5)).is_none());
    }

    #[test]
    fn segment_crossing_is_trimmed() {
        let b = unit_box();
        let (p, q) = clip_segment(&b, Point::new(-1.0, 0.5), Point::new(2.0, 0.5)).unwrap();
        assert!((p.x - 0.0).abs() < 1e-12 && (q.x - 1.0).abs() < 1e-12);
        assert!((p.y - 0.5).abs() < 1e-12 && (q.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn diagonal_segment_clipped_to_corners() {
        let b = unit_box();
        let (p, q) = clip_segment(&b, Point::new(-1.0, -1.0), Point::new(2.0, 2.0)).unwrap();
        assert!(p.distance(Point::new(0.0, 0.0)) < 1e-12);
        assert!(q.distance(Point::new(1.0, 1.0)) < 1e-12);
    }

    #[test]
    fn ring_fully_inside_is_unchanged_up_to_rotation() {
        let b = unit_box();
        let tri = vec![
            Point::new(0.2, 0.2),
            Point::new(0.8, 0.2),
            Point::new(0.5, 0.8),
        ];
        let out = clip_ring(&b, &tri);
        assert_eq!(out.len(), 3);
        for p in &tri {
            assert!(out.iter().any(|q| q.distance(*p) < 1e-12));
        }
    }

    #[test]
    fn ring_fully_outside_clips_to_empty() {
        let b = unit_box();
        let tri = vec![
            Point::new(2.0, 2.0),
            Point::new(3.0, 2.0),
            Point::new(2.5, 3.0),
        ];
        assert!(clip_ring(&b, &tri).is_empty());
    }

    #[test]
    fn half_covering_square_has_half_coverage() {
        let b = unit_box();
        // Square covering the left half of the box (and extending beyond).
        let sq = vec![
            Point::new(-1.0, -1.0),
            Point::new(0.5, -1.0),
            Point::new(0.5, 2.0),
            Point::new(-1.0, 2.0),
        ];
        let f = coverage_fraction(&b, &sq);
        assert!((f - 0.5).abs() < 1e-9, "got {f}");
    }

    #[test]
    fn coverage_is_clamped_and_complete() {
        let b = unit_box();
        let big = vec![
            Point::new(-5.0, -5.0),
            Point::new(5.0, -5.0),
            Point::new(5.0, 5.0),
            Point::new(-5.0, 5.0),
        ];
        assert!((coverage_fraction(&b, &big) - 1.0).abs() < 1e-12);
        let none = vec![
            Point::new(5.0, 5.0),
            Point::new(6.0, 5.0),
            Point::new(6.0, 6.0),
        ];
        assert_eq!(coverage_fraction(&b, &none), 0.0);
    }

    #[test]
    fn coverage_of_diagonal_half() {
        let b = unit_box();
        let tri = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        assert!((coverage_fraction(&b, &tri) - 0.5).abs() < 1e-9);
    }
}
