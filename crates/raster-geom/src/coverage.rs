//! Restricted Voronoi coverage regions.
//!
//! The paper's second motivating application (§1): planners "place new
//! resources (e.g., bus stops, police stations), and again inspect the
//! coverage... commonly computed by using a restricted Voronoi diagram to
//! associate each resource with a polygonal region, and then aggregating
//! the urban data over these polygons." This module turns resource sites
//! directly into the polygon set such a query needs: one coverage region
//! per site, restricted to the domain extent, with polygon IDs equal to
//! site indices so the aggregation result aligns with the input sites.

use crate::voronoi::voronoi_cells;
use crate::{BBox, Point, Polygon, Ring};

/// Coverage regions for `sites` restricted to `extent`: polygon `i` is
/// the region closer to `sites[i]` than to any other site. Sites whose
/// region degenerates (coincident sites) yield `None`.
pub fn coverage_regions(sites: &[Point], extent: &BBox) -> Vec<Option<Polygon>> {
    voronoi_cells(sites, extent)
        .into_iter()
        .map(|cell| {
            let pts = cell.points();
            if pts.len() < 3 {
                return None;
            }
            let ring = Ring::new(pts);
            if ring.len() < 3 || ring.signed_area().abs() < 1e-12 {
                return None;
            }
            Some(Polygon::new(cell.site as u32, ring))
        })
        .collect()
}

/// Convenience: only the valid regions (still carrying site-index IDs).
pub fn coverage_polygons(sites: &[Point], extent: &BBox) -> Vec<Polygon> {
    coverage_regions(sites, extent)
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn every_site_gets_its_own_region() {
        let sites = vec![
            Point::new(25.0, 25.0),
            Point::new(75.0, 25.0),
            Point::new(50.0, 75.0),
        ];
        let regions = coverage_polygons(&sites, &extent());
        assert_eq!(regions.len(), 3);
        for (i, r) in regions.iter().enumerate() {
            assert_eq!(r.id() as usize, i);
            assert!(r.contains(sites[i]), "region {i} must contain its site");
        }
        // Regions tile the extent.
        let total: f64 = regions.iter().map(Polygon::area).sum();
        assert!((total - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn nearest_site_owns_each_probe() {
        let sites: Vec<Point> = (0..9)
            .map(|i| Point::new((i % 3) as f64 * 40.0 + 10.0, (i / 3) as f64 * 40.0 + 10.0))
            .collect();
        let regions = coverage_polygons(&sites, &extent());
        for gy in 0..10 {
            for gx in 0..10 {
                let p = Point::new(gx as f64 * 10.0 + 3.7, gy as f64 * 10.0 + 6.1);
                let nearest = (0..sites.len())
                    .min_by(|&a, &b| {
                        sites[a]
                            .distance_sq(p)
                            .partial_cmp(&sites[b].distance_sq(p))
                            .unwrap()
                    })
                    .unwrap();
                let owner = regions.iter().find(|r| r.contains(p));
                if let Some(owner) = owner {
                    assert_eq!(
                        owner.id() as usize,
                        nearest,
                        "probe {p:?} owned by wrong region"
                    );
                }
            }
        }
    }

    #[test]
    fn coincident_sites_do_not_panic() {
        let sites = vec![Point::new(50.0, 50.0), Point::new(50.0, 50.0)];
        let regions = coverage_regions(&sites, &extent());
        assert_eq!(regions.len(), 2);
        // At least one of the duplicates keeps a region; none panic.
        assert!(regions.iter().any(Option::is_some));
    }
}
