//! Axis-aligned bounding boxes.

use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box (the "MBR" of the spatial-join literature).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    pub min: Point,
    pub max: Point,
}

impl BBox {
    /// Box spanning the two corner points (which need not be ordered).
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The "empty" box: grows to fit anything via [`BBox::expand`].
    pub fn empty() -> Self {
        BBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// True if no point has ever been added.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Smallest box containing every point of the iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(pts: I) -> Self {
        let mut b = BBox::empty();
        for p in pts {
            b.expand(p);
        }
        b
    }

    /// Grow (in place) to contain `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grow (in place) to contain the whole of `other`.
    pub fn union(&mut self, other: &BBox) {
        if other.is_empty() {
            return;
        }
        self.expand(other.min);
        self.expand(other.max);
    }

    /// Closed-set containment test.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True if the two boxes share at least one point.
    pub fn intersects(&self, other: &BBox) -> bool {
        !(self.is_empty() || other.is_empty())
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Grow symmetrically by `margin` on every side.
    pub fn inflate(&self, margin: f64) -> BBox {
        BBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Intersection box, or `None` when disjoint.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(BBox {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_orders_corners() {
        let b = BBox::new(Point::new(3.0, -1.0), Point::new(-2.0, 5.0));
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(3.0, 5.0));
    }

    #[test]
    fn empty_box_contains_nothing_and_unions_identity() {
        let e = BBox::empty();
        assert!(e.is_empty());
        assert!(!e.contains(Point::new(0.0, 0.0)));
        let mut b = BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let before = b;
        b.union(&e);
        assert_eq!(b, before);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 4.0),
            Point::new(-3.0, 2.0),
            Point::new(0.5, -7.0),
        ];
        let b = BBox::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Point::new(-3.0, -7.0));
        assert_eq!(b.max, Point::new(1.0, 4.0));
    }

    #[test]
    fn intersection_and_disjoint() {
        let a = BBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = BBox::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.min, Point::new(1.0, 1.0));
        assert_eq!(i.max, Point::new(2.0, 2.0));
        let c = BBox::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersection(&c).is_none());
        assert!(!a.intersects(&c));
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = BBox::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn inflate_grows_all_sides() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).inflate(0.5);
        assert_eq!(b.min, Point::new(-0.5, -0.5));
        assert_eq!(b.max, Point::new(1.5, 1.5));
        assert!((b.area() - 4.0).abs() < 1e-12);
    }
}
