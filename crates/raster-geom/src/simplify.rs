//! Polygon simplification (Douglas–Peucker).
//!
//! The level-of-detail exploration the paper targets (§4.2) pairs
//! naturally with geometric LOD on the *polygons*: when one pixel spans
//! many metres, boundary detail below the pixel size is invisible and
//! only adds triangulation and rasterization work. `simplify_ring`
//! implements the standard Douglas–Peucker reduction with a tolerance
//! expressed in world units — choosing the pixel side as the tolerance
//! keeps the simplified polygon within one pixel of the original, i.e.
//! within the ε guarantee already being paid for.

use crate::{Point, Polygon, Ring};

fn dp_recurse(pts: &[Point], first: usize, last: usize, tol: f64, keep: &mut [bool]) {
    if last <= first + 1 {
        return;
    }
    let a = pts[first];
    let b = pts[last];
    let mut worst = 0.0f64;
    let mut worst_i = first;
    for (i, &p) in pts.iter().enumerate().take(last).skip(first + 1) {
        let d = p.distance_to_segment(a, b);
        if d > worst {
            worst = d;
            worst_i = i;
        }
    }
    if worst > tol {
        keep[worst_i] = true;
        dp_recurse(pts, first, worst_i, tol, keep);
        dp_recurse(pts, worst_i, last, tol, keep);
    }
}

/// Douglas–Peucker over an *open* polyline.
pub fn simplify_polyline(pts: &[Point], tolerance: f64) -> Vec<Point> {
    let n = pts.len();
    if n <= 2 {
        return pts.to_vec();
    }
    let mut keep = vec![false; n];
    keep[0] = true;
    keep[n - 1] = true;
    dp_recurse(pts, 0, n - 1, tolerance, &mut keep);
    pts.iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(&p, _)| p)
        .collect()
}

/// Simplify a closed ring. The ring is split at its two mutually farthest
/// "anchor" vertices so that the closed shape survives (plain DP on a
/// loop would collapse it). Rings simplify to at least a triangle; rings
/// with fewer than 4 vertices are returned unchanged.
pub fn simplify_ring(ring: &Ring, tolerance: f64) -> Ring {
    let pts = ring.points();
    let n = pts.len();
    if n < 4 {
        return ring.clone();
    }
    // Anchor 0: vertex farthest from the centroid-ish first vertex;
    // anchor 1: vertex farthest from anchor 0.
    let a0 = (0..n)
        .max_by(|&i, &j| {
            pts[i]
                .distance_sq(pts[0])
                .partial_cmp(&pts[j].distance_sq(pts[0]))
                .unwrap()
        })
        .unwrap_or(0);
    let a1 = (0..n)
        .max_by(|&i, &j| {
            pts[i]
                .distance_sq(pts[a0])
                .partial_cmp(&pts[j].distance_sq(pts[a0]))
                .unwrap()
        })
        .unwrap_or(0);
    let (lo, hi) = if a0 < a1 { (a0, a1) } else { (a1, a0) };
    // Two open chains: lo..=hi and hi..=lo (wrapping).
    let chain1: Vec<Point> = pts[lo..=hi].to_vec();
    let mut chain2: Vec<Point> = pts[hi..].to_vec();
    chain2.extend_from_slice(&pts[..=lo]);

    let s1 = simplify_polyline(&chain1, tolerance);
    let s2 = simplify_polyline(&chain2, tolerance);
    // Join, dropping the duplicated anchors.
    let mut out = s1;
    out.extend_from_slice(&s2[1..s2.len().saturating_sub(1)]);
    if out.len() < 3 {
        return ring.clone();
    }
    Ring::new(out)
}

/// Simplify a polygon's rings. Holes that collapse below a triangle are
/// dropped (they are sub-tolerance details).
pub fn simplify_polygon(poly: &Polygon, tolerance: f64) -> Polygon {
    let outer = simplify_ring(poly.outer(), tolerance);
    let holes: Vec<Ring> = poly
        .holes()
        .iter()
        .map(|h| simplify_ring(h, tolerance))
        .filter(|h| h.len() >= 3)
        .collect();
    Polygon::with_holes(poly.id(), outer, holes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hausdorff::{hausdorff, sample_boundary};

    #[test]
    fn polyline_collinear_points_removed() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        let s = simplify_polyline(&pts, 0.01);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], pts[0]);
        assert_eq!(s[1], pts[9]);
    }

    #[test]
    fn polyline_keeps_significant_kinks() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 4.0), // far off the 0-10 chord
            Point::new(10.0, 0.0),
        ];
        let s = simplify_polyline(&pts, 1.0);
        assert_eq!(s.len(), 3);
        let s2 = simplify_polyline(&pts, 10.0);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn ring_survives_simplification() {
        // A circle sampled at 100 vertices simplifies a lot at coarse
        // tolerance but stays a valid ring with near-equal area.
        let pts: Vec<Point> = (0..100)
            .map(|i| {
                let a = i as f64 / 100.0 * std::f64::consts::TAU;
                Point::new(100.0 * a.cos(), 100.0 * a.sin())
            })
            .collect();
        let ring = Ring::new(pts);
        let simple = simplify_ring(&ring, 2.0);
        assert!(simple.len() >= 3);
        assert!(simple.len() < ring.len());
        let area_loss = (ring.signed_area().abs() - simple.signed_area().abs()).abs();
        assert!(area_loss < 0.05 * ring.signed_area().abs());
    }

    #[test]
    fn simplified_boundary_stays_within_tolerance_band() {
        let pts: Vec<Point> = (0..64)
            .map(|i| {
                let a = i as f64 / 64.0 * std::f64::consts::TAU;
                let r = 50.0 + 3.0 * (7.0 * a).sin(); // wiggly circle
                Point::new(r * a.cos(), r * a.sin())
            })
            .collect();
        let poly = Polygon::new(0, Ring::new(pts));
        let tol = 4.0;
        let simple = simplify_polygon(&poly, tol);
        let h = hausdorff(&sample_boundary(&poly, 1.0), &sample_boundary(&simple, 1.0));
        // DP guarantees each removed vertex is within tol of the chord;
        // boundary Hausdorff stays in the same ballpark.
        assert!(h <= 2.0 * tol, "hausdorff {h} > {}", 2.0 * tol);
    }

    #[test]
    fn tiny_rings_unchanged_and_small_holes_dropped() {
        let tri = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.0),
        ]);
        assert_eq!(simplify_ring(&tri, 10.0).len(), 3);

        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
        ]);
        let hole = Ring::new(vec![
            Point::new(50.0, 50.0),
            Point::new(50.2, 50.0),
            Point::new(50.2, 50.2),
            Point::new(50.0, 50.2),
        ]);
        let poly = Polygon::with_holes(3, outer, vec![hole]);
        let simple = simplify_polygon(&poly, 1.0);
        assert_eq!(simple.id(), 3);
        // The sub-tolerance hole collapses (or is dropped): area ≈ square.
        assert!((simple.area() - 10_000.0).abs() < 1.0);
    }
}
