//! Constrained Voronoi diagram over a rectangle.
//!
//! §7.4 of the paper generates synthetic polygon workloads by computing a
//! Voronoi diagram of random sites clipped to the data extent (yielding 4n
//! convex cells) and then repeatedly merging adjacent cells until n
//! polygons — a mix of convex, concave and complex shapes — remain. This
//! module implements the diagram itself; [`crate::merge`] implements the
//! adjacency-preserving merge step.
//!
//! Cells are built by half-plane clipping with the classic security-radius
//! early exit: sites are visited in increasing distance (via a uniform grid)
//! and clipping stops once the next candidate is more than twice the
//! current max site-to-vertex distance away, so cell construction is ~O(1)
//! neighbours per site for uniform-ish sites.

use crate::{BBox, Point};

/// A Voronoi cell: a convex vertex loop where each vertex also names the
/// neighbouring site that generated the edge *starting* at that vertex
/// (`None` for edges lying on the domain boundary).
#[derive(Debug, Clone)]
pub struct VoronoiCell {
    pub site: usize,
    /// `(vertex, neighbour_of_outgoing_edge)` in CCW order.
    pub verts: Vec<(Point, Option<usize>)>,
}

impl VoronoiCell {
    pub fn points(&self) -> Vec<Point> {
        self.verts.iter().map(|(p, _)| *p).collect()
    }

    /// Site indices of all neighbouring cells.
    pub fn neighbors(&self) -> impl Iterator<Item = usize> + '_ {
        self.verts.iter().filter_map(|(_, n)| *n)
    }

    pub fn area(&self) -> f64 {
        let n = self.verts.len();
        if n < 3 {
            return 0.0;
        }
        let mut s = 0.0;
        for i in 0..n {
            s += self.verts[i].0.cross(self.verts[(i + 1) % n].0);
        }
        s.abs() * 0.5
    }
}

/// Clip `cell` by the half-plane of points closer to `site` than to `other`
/// (located at `other_pos`), keeping edge annotations consistent.
fn clip_halfplane(
    cell: &[(Point, Option<usize>)],
    site_pos: Point,
    other: usize,
    other_pos: Point,
) -> Vec<(Point, Option<usize>)> {
    let mid = site_pos.midpoint(other_pos);
    let dir = other_pos - site_pos;
    // f(p) <= 0  ⇔  p is on `site`'s side of the bisector.
    let f = |p: Point| (p - mid).dot(dir);

    let n = cell.len();
    let mut out: Vec<(Point, Option<usize>)> = Vec::with_capacity(n + 2);
    for i in 0..n {
        let (p, ann) = cell[i];
        let (q, _) = cell[(i + 1) % n];
        let fp = f(p);
        let fq = f(q);
        let p_in = fp <= 0.0;
        let q_in = fq <= 0.0;
        if p_in {
            out.push((p, ann));
            if !q_in {
                let t = fp / (fp - fq);
                let ix = p + (q - p) * t;
                // The edge *starting* at the exit intersection runs along the
                // bisector toward the re-entry point: annotate with `other`.
                out.push((ix, Some(other)));
            }
        } else if q_in {
            let t = fp / (fp - fq);
            let ix = p + (q - p) * t;
            // Remainder of the original edge keeps its annotation.
            out.push((ix, ann));
        }
    }
    out
}

/// The constrained Voronoi diagram of `sites` clipped to `extent`.
///
/// Returns one cell per site, in site order. Sites outside the extent still
/// get (possibly empty) cells.
pub fn voronoi_cells(sites: &[Point], extent: &BBox) -> Vec<VoronoiCell> {
    let n = sites.len();
    if n == 0 {
        return Vec::new();
    }
    // Uniform site grid for nearest-first traversal.
    let cells_per_axis = (n as f64).sqrt().ceil().max(1.0) as usize;
    let gw = cells_per_axis;
    let gh = cells_per_axis;
    let cw = extent.width() / gw as f64;
    let ch = extent.height() / gh as f64;
    let cell_of = |p: Point| -> (usize, usize) {
        let cx = (((p.x - extent.min.x) / cw) as isize).clamp(0, gw as isize - 1) as usize;
        let cy = (((p.y - extent.min.y) / ch) as isize).clamp(0, gh as isize - 1) as usize;
        (cx, cy)
    };
    let mut grid: Vec<Vec<usize>> = vec![Vec::new(); gw * gh];
    for (i, &s) in sites.iter().enumerate() {
        let (cx, cy) = cell_of(s);
        grid[cy * gw + cx].push(i);
    }

    let init_cell = |_i: usize| -> Vec<(Point, Option<usize>)> {
        vec![
            (extent.min, None),
            (Point::new(extent.max.x, extent.min.y), None),
            (extent.max, None),
            (Point::new(extent.min.x, extent.max.y), None),
        ]
    };

    let min_cell_side = cw.min(ch).max(1e-12);
    let max_ring = gw.max(gh);

    (0..n)
        .map(|i| {
            let site = sites[i];
            let mut cell = init_cell(i);
            let (scx, scy) = cell_of(site);
            // Candidates ring by ring, each ring sorted by distance.
            let mut ring = 0usize;
            loop {
                // Early exit: every unprocessed site is at least
                // (ring - 1) * min_cell_side away (sites in rings > current).
                if ring > 1 {
                    let min_next = (ring as f64 - 1.0) * min_cell_side;
                    let r_max = cell
                        .iter()
                        .map(|(v, _)| v.distance(site))
                        .fold(0.0f64, f64::max);
                    if min_next > 2.0 * r_max {
                        break;
                    }
                }
                if ring > max_ring {
                    break;
                }
                let mut cand: Vec<usize> = Vec::new();
                let r = ring as isize;
                for dy in -r..=r {
                    for dx in -r..=r {
                        if dx.abs() != r && dy.abs() != r {
                            continue; // interior of ring already visited
                        }
                        let cx = scx as isize + dx;
                        let cy = scy as isize + dy;
                        if cx < 0 || cy < 0 || cx >= gw as isize || cy >= gh as isize {
                            continue;
                        }
                        cand.extend(grid[cy as usize * gw + cx as usize].iter().copied());
                    }
                }
                cand.retain(|&j| j != i);
                cand.sort_by(|&a, &b| {
                    sites[a]
                        .distance_sq(site)
                        .partial_cmp(&sites[b].distance_sq(site))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for j in cand {
                    if cell.is_empty() {
                        break;
                    }
                    cell = clip_halfplane(&cell, site, j, sites[j]);
                }
                ring += 1;
            }
            VoronoiCell {
                site: i,
                verts: cell,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn single_site_owns_whole_extent() {
        let cells = voronoi_cells(&[Point::new(50.0, 50.0)], &extent());
        assert_eq!(cells.len(), 1);
        assert!((cells[0].area() - 10_000.0).abs() < 1e-6);
        assert!(cells[0].neighbors().next().is_none());
    }

    #[test]
    fn two_sites_split_in_half() {
        let cells = voronoi_cells(&[Point::new(25.0, 50.0), Point::new(75.0, 50.0)], &extent());
        assert_eq!(cells.len(), 2);
        assert!((cells[0].area() - 5_000.0).abs() < 1e-6);
        assert!((cells[1].area() - 5_000.0).abs() < 1e-6);
        assert!(cells[0].neighbors().any(|j| j == 1));
        assert!(cells[1].neighbors().any(|j| j == 0));
    }

    #[test]
    fn areas_partition_the_extent() {
        let sites: Vec<Point> = (0..40)
            .map(|i| {
                // Deterministic pseudo-random scatter.
                let x = (i as f64 * 37.0 + 13.0) % 100.0;
                let y = (i as f64 * 61.0 + 29.0) % 100.0;
                Point::new(x, y)
            })
            .collect();
        let cells = voronoi_cells(&sites, &extent());
        let total: f64 = cells.iter().map(VoronoiCell::area).sum();
        assert!(
            (total - 10_000.0).abs() < 1e-3,
            "cells must tile the extent, got area {total}"
        );
    }

    #[test]
    fn every_cell_contains_its_site() {
        let sites: Vec<Point> = (0..25)
            .map(|i| Point::new((i % 5) as f64 * 20.0 + 10.0, (i / 5) as f64 * 20.0 + 10.0))
            .collect();
        let cells = voronoi_cells(&sites, &extent());
        for c in &cells {
            let pts = c.points();
            assert!(
                crate::predicates::point_in_ring(&pts, sites[c.site]),
                "cell {} does not contain its site",
                c.site
            );
        }
    }

    #[test]
    fn cell_vertices_are_closest_to_own_site() {
        // Voronoi property: each cell vertex is (weakly) no closer to any
        // other site than to its own.
        let sites: Vec<Point> = (0..30)
            .map(|i| {
                let x = (i as f64 * 53.0 + 7.0) % 100.0;
                let y = (i as f64 * 19.0 + 43.0) % 100.0;
                Point::new(x, y)
            })
            .collect();
        let cells = voronoi_cells(&sites, &extent());
        for c in &cells {
            for (v, _) in &c.verts {
                let own = v.distance(sites[c.site]);
                for (j, s) in sites.iter().enumerate() {
                    if j == c.site {
                        continue;
                    }
                    assert!(
                        v.distance(*s) >= own - 1e-6,
                        "vertex {v:?} of cell {} closer to site {j}",
                        c.site
                    );
                }
            }
        }
    }

    #[test]
    fn grid_adjacency_is_symmetric() {
        let sites: Vec<Point> = (0..16)
            .map(|i| Point::new((i % 4) as f64 * 25.0 + 12.5, (i / 4) as f64 * 25.0 + 12.5))
            .collect();
        let cells = voronoi_cells(&sites, &extent());
        for c in &cells {
            for nb in c.neighbors() {
                assert!(
                    cells[nb].neighbors().any(|k| k == c.site),
                    "adjacency {} -> {} not symmetric",
                    c.site,
                    nb
                );
            }
        }
    }
}
