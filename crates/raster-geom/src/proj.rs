//! Geographic projection: WGS-84 lon/lat → planar metres.
//!
//! The paper's data sets carry raw GPS coordinates (taxi pickup points,
//! geo-tagged tweets) while all of its spatial reasoning — ε in *metres*,
//! pixel sizes "approximately equal to the average street width" (§4.2) —
//! happens in a planar metric space. This module supplies the bridge the
//! ingestion path needs: a local equirectangular projection (exact enough
//! at city scale: < 0.1% distortion over ~100 km) and spherical Web
//! Mercator for continental extents.

use crate::{BBox, Point};

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A local equirectangular ("plate carrée about a reference latitude")
/// projection: metres east/north of a reference point. Distance-faithful
/// near the reference latitude, which is exactly the city-scale use case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    /// Reference longitude/latitude in degrees.
    pub lon0: f64,
    pub lat0: f64,
}

impl LocalProjection {
    pub fn new(lon0: f64, lat0: f64) -> Self {
        assert!((-180.0..=180.0).contains(&lon0), "bad reference longitude");
        assert!((-90.0..=90.0).contains(&lat0), "bad reference latitude");
        LocalProjection { lon0, lat0 }
    }

    /// Project (lon, lat) degrees to local metres.
    pub fn to_metres(&self, lon: f64, lat: f64) -> Point {
        let k = std::f64::consts::PI / 180.0;
        let x = (lon - self.lon0) * k * EARTH_RADIUS_M * (self.lat0 * k).cos();
        let y = (lat - self.lat0) * k * EARTH_RADIUS_M;
        Point::new(x, y)
    }

    /// Inverse: local metres back to (lon, lat) degrees.
    pub fn to_lonlat(&self, p: Point) -> (f64, f64) {
        let k = std::f64::consts::PI / 180.0;
        let lat = self.lat0 + p.y / (EARTH_RADIUS_M * k);
        let lon = self.lon0 + p.x / (EARTH_RADIUS_M * k * (self.lat0 * k).cos());
        (lon, lat)
    }
}

/// Spherical Web Mercator (EPSG:3857-style, without the WGS-84 ellipsoid
/// refinement) — for continental extents like the Twitter/counties
/// workload. Not distance-faithful away from the equator; fine for
/// containment tests, which are projection-invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WebMercator;

impl WebMercator {
    pub fn to_metres(&self, lon: f64, lat: f64) -> Point {
        let k = std::f64::consts::PI / 180.0;
        let lat = lat.clamp(-85.051_128, 85.051_128); // Mercator pole guard
        let x = EARTH_RADIUS_M * lon * k;
        let y = EARTH_RADIUS_M * ((std::f64::consts::FRAC_PI_4 + lat * k / 2.0).tan()).ln();
        Point::new(x, y)
    }

    pub fn to_lonlat(&self, p: Point) -> (f64, f64) {
        let k = 180.0 / std::f64::consts::PI;
        let lon = p.x / EARTH_RADIUS_M * k;
        let lat = (2.0 * (p.y / EARTH_RADIUS_M).exp().atan() - std::f64::consts::FRAC_PI_2) * k;
        (lon, lat)
    }
}

/// Project a lon/lat bounding box with a [`LocalProjection`] centred on it.
pub fn project_bbox_local(
    lon_min: f64,
    lat_min: f64,
    lon_max: f64,
    lat_max: f64,
) -> (LocalProjection, BBox) {
    let proj = LocalProjection::new((lon_min + lon_max) / 2.0, (lat_min + lat_max) / 2.0);
    let corners = [
        proj.to_metres(lon_min, lat_min),
        proj.to_metres(lon_max, lat_min),
        proj.to_metres(lon_min, lat_max),
        proj.to_metres(lon_max, lat_max),
    ];
    (proj, BBox::from_points(corners))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NYC-ish reference: 40.75°N, -73.98°E.
    fn nyc() -> LocalProjection {
        LocalProjection::new(-73.98, 40.75)
    }

    #[test]
    fn local_projection_roundtrips() {
        let p = nyc();
        for &(lon, lat) in &[(-73.98, 40.75), (-74.1, 40.6), (-73.7, 40.9)] {
            let m = p.to_metres(lon, lat);
            let (lon2, lat2) = p.to_lonlat(m);
            assert!((lon - lon2).abs() < 1e-9, "{lon} vs {lon2}");
            assert!((lat - lat2).abs() < 1e-9);
        }
    }

    #[test]
    fn one_degree_of_latitude_is_111_km() {
        let p = nyc();
        let m = p.to_metres(-73.98, 41.75);
        assert!((m.y - 111_195.0).abs() < 100.0, "got {}", m.y);
        assert!(m.x.abs() < 1e-6);
    }

    #[test]
    fn longitude_shrinks_with_cos_latitude() {
        let p = nyc();
        let m = p.to_metres(-72.98, 40.75);
        let expected = 111_195.0 * (40.75f64.to_radians()).cos();
        assert!(
            (m.x - expected).abs() < 200.0,
            "got {} want {expected}",
            m.x
        );
    }

    #[test]
    fn local_distances_match_haversine_at_city_scale() {
        let p = nyc();
        // Two points ~20 km apart.
        let a = p.to_metres(-74.05, 40.70);
        let b = p.to_metres(-73.90, 40.85);
        let planar = a.distance(b);
        // Haversine reference.
        let (lat1, lat2) = (40.70f64.to_radians(), 40.85f64.to_radians());
        let dlat = lat2 - lat1;
        let dlon = (-73.90f64 + 74.05).to_radians();
        let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let hav = 2.0 * EARTH_RADIUS_M * h.sqrt().asin();
        let rel = (planar - hav).abs() / hav;
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn mercator_roundtrips_and_clamps_poles() {
        let m = WebMercator;
        for &(lon, lat) in &[(0.0, 0.0), (-100.0, 40.0), (151.2, -33.9)] {
            let p = m.to_metres(lon, lat);
            let (lon2, lat2) = m.to_lonlat(p);
            assert!((lon - lon2).abs() < 1e-9);
            assert!((lat - lat2).abs() < 1e-9);
        }
        // Pole latitudes are clamped rather than producing infinities.
        let p = m.to_metres(0.0, 90.0);
        assert!(p.y.is_finite());
    }

    #[test]
    fn projected_bbox_contains_all_corners() {
        let (proj, bbox) = project_bbox_local(-74.3, 40.5, -73.7, 41.0);
        for &(lon, lat) in &[(-74.3, 40.5), (-73.7, 41.0), (-74.0, 40.75)] {
            assert!(bbox.contains(proj.to_metres(lon, lat)));
        }
        // NYC box is ~50 km × 55 km.
        assert!(
            (40_000.0..70_000.0).contains(&bbox.width()),
            "{}",
            bbox.width()
        );
        assert!((45_000.0..65_000.0).contains(&bbox.height()));
    }
}
