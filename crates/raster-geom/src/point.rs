//! Planar points in world coordinates.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Sub};

/// A point (or vector) in the plane, in world coordinates (e.g. metres in a
/// local projection, or degrees — the pipeline is unit-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt when comparing).
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product, treating both points as vectors from the origin.
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product of the two vectors.
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(*self).sqrt()
    }

    /// Midpoint of the segment `self`–`other`.
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Squared distance from this point to the segment `a`–`b`.
    pub fn distance_sq_to_segment(&self, a: Point, b: Point) -> f64 {
        let ab = b - a;
        let len_sq = ab.dot(ab);
        if len_sq == 0.0 {
            return self.distance_sq(a);
        }
        let t = ((*self - a).dot(ab) / len_sq).clamp(0.0, 1.0);
        let proj = a + ab * t;
        self.distance_sq(proj)
    }

    /// Distance from this point to the segment `a`–`b`.
    pub fn distance_to_segment(&self, a: Point, b: Point) -> f64 {
        self.distance_sq_to_segment(a, b).sqrt()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    fn div(self, s: f64) -> Point {
        Point::new(self.x / s, self.y / s)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let right = Point::new(1.0, 0.0);
        let up = Point::new(0.0, 1.0);
        assert!(right.cross(up) > 0.0);
        assert!(up.cross(right) < 0.0);
    }

    #[test]
    fn distance_to_segment_endpoints_and_interior() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // Projects inside the segment.
        assert!((Point::new(5.0, 3.0).distance_to_segment(a, b) - 3.0).abs() < 1e-12);
        // Projects before a.
        assert!((Point::new(-4.0, 3.0).distance_to_segment(a, b) - 5.0).abs() < 1e-12);
        // Degenerate segment.
        assert!((Point::new(3.0, 4.0).distance_to_segment(a, a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(2.0, 4.0));
        assert_eq!(m, Point::new(1.0, 2.0));
    }
}
