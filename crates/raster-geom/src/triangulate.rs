//! Polygon triangulation by ear clipping.
//!
//! The paper triangulates query polygons on the CPU (clip2tri, a constrained
//! Delaunay strategy) before shipping triangles to the GPU (§3, §6.1).
//! Raster join only requires that the triangle set exactly tiles the polygon
//! interior — triangle *quality* is irrelevant to both accuracy and the
//! rasterization fill rule — so this crate uses the simpler and fully
//! self-contained ear-clipping algorithm, with bridge edges to support holes.

use crate::predicates::signed_area2;
use crate::{Point, Polygon, Ring};

/// One triangle of a triangulation, tagged with the source polygon's ID so
/// the rasterizer can route fragments to the right aggregate slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    pub a: Point,
    pub b: Point,
    pub c: Point,
    pub poly_id: u32,
}

impl Triangle {
    pub fn new(a: Point, b: Point, c: Point, poly_id: u32) -> Self {
        Triangle { a, b, c, poly_id }
    }

    pub fn area(&self) -> f64 {
        signed_area2(self.a, self.b, self.c).abs() * 0.5
    }

    /// Containment via barycentric sign tests (boundary counts as inside).
    pub fn contains(&self, p: Point) -> bool {
        let d1 = signed_area2(self.a, self.b, p);
        let d2 = signed_area2(self.b, self.c, p);
        let d3 = signed_area2(self.c, self.a, p);
        let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
        let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
        !(has_neg && has_pos)
    }
}

fn is_ear(ring: &[Point], i: usize) -> bool {
    let n = ring.len();
    let prev = ring[(i + n - 1) % n];
    let cur = ring[i];
    let next = ring[(i + 1) % n];
    // Convex corner (ring is CCW)?
    if signed_area2(prev, cur, next) <= 0.0 {
        return false;
    }
    // No other vertex strictly inside the candidate ear.
    let tri = Triangle::new(prev, cur, next, 0);
    for (j, &p) in ring.iter().enumerate() {
        if j == i || j == (i + n - 1) % n || j == (i + 1) % n {
            continue;
        }
        if p == prev || p == cur || p == next {
            continue; // duplicated bridge vertices
        }
        if tri.contains(p) {
            return false;
        }
    }
    true
}

/// Ear-clip a single CCW ring into triangles.
fn ear_clip(ring_pts: &[Point], poly_id: u32) -> Vec<Triangle> {
    let mut ring: Vec<Point> = ring_pts.to_vec();
    let mut out = Vec::with_capacity(ring.len().saturating_sub(2));
    let mut guard = 0usize;
    while ring.len() > 3 {
        let n = ring.len();
        let mut clipped = false;
        for i in 0..n {
            if is_ear(&ring, i) {
                let prev = ring[(i + n - 1) % n];
                let next = ring[(i + 1) % n];
                out.push(Triangle::new(prev, ring[i], next, poly_id));
                ring.remove(i);
                clipped = true;
                break;
            }
        }
        if !clipped {
            // Numerical dead end (nearly-collinear chains). Drop the most
            // collinear vertex and continue; its triangle has ~zero area so
            // coverage is unaffected.
            let mut best = 0usize;
            let mut best_area = f64::INFINITY;
            for i in 0..ring.len() {
                let n = ring.len();
                let a = signed_area2(ring[(i + n - 1) % n], ring[i], ring[(i + 1) % n]).abs();
                if a < best_area {
                    best_area = a;
                    best = i;
                }
            }
            ring.remove(best);
        }
        guard += 1;
        if guard > 4 * ring_pts.len() * ring_pts.len() + 64 {
            break; // defensive: never loop forever on adversarial input
        }
    }
    if ring.len() == 3 {
        out.push(Triangle::new(ring[0], ring[1], ring[2], poly_id));
    }
    out
}

/// Connects holes to the outer ring with bridge edges, producing one simple
/// (weakly) ring suitable for ear clipping. Standard "bridge to the
/// rightmost hole vertex" construction.
fn merge_holes(outer: &[Point], holes: &[&Ring]) -> Vec<Point> {
    let mut ring: Vec<Point> = outer.to_vec();
    // Process holes right-to-left by their rightmost vertex.
    let mut hole_order: Vec<usize> = (0..holes.len()).collect();
    let rightmost = |h: &Ring| -> (usize, Point) {
        let pts = h.points();
        let mut bi = 0;
        for (i, p) in pts.iter().enumerate() {
            if p.x > pts[bi].x || (p.x == pts[bi].x && p.y > pts[bi].y) {
                bi = i;
            }
        }
        (bi, pts[bi])
    };
    hole_order.sort_by(|&a, &b| {
        let xa = rightmost(holes[a]).1.x;
        let xb = rightmost(holes[b]).1.x;
        xb.partial_cmp(&xa).unwrap_or(std::cmp::Ordering::Equal)
    });

    for &hi in &hole_order {
        let hole = holes[hi];
        let (start, hp) = rightmost(hole);
        // Find the visible outer-ring vertex: the one minimizing distance to
        // hp among vertices to the right whose connecting segment crosses no
        // current ring edge. Fall back to plain nearest if none qualifies.
        let mut best: Option<usize> = None;
        let mut best_d = f64::INFINITY;
        for (i, &op) in ring.iter().enumerate() {
            if op.x < hp.x {
                continue;
            }
            let d = op.distance_sq(hp);
            if d < best_d && bridge_is_clear(&ring, hp, op) {
                best_d = d;
                best = Some(i);
            }
        }
        let bridge_to = best.unwrap_or_else(|| {
            let mut bi = 0;
            let mut bd = f64::INFINITY;
            for (i, &op) in ring.iter().enumerate() {
                let d = op.distance_sq(hp);
                if d < bd {
                    bd = d;
                    bi = i;
                }
            }
            bi
        });
        // Splice: outer[..=bridge_to] ++ hole[start..] ++ hole[..=start]
        //         ++ outer[bridge_to..]
        let hole_pts = hole.points();
        let m = hole_pts.len();
        let mut spliced = Vec::with_capacity(ring.len() + m + 2);
        spliced.extend_from_slice(&ring[..=bridge_to]);
        for k in 0..=m {
            spliced.push(hole_pts[(start + k) % m]);
        }
        spliced.extend_from_slice(&ring[bridge_to..]);
        ring = spliced;
    }
    ring
}

fn bridge_is_clear(ring: &[Point], a: Point, b: Point) -> bool {
    let n = ring.len();
    for i in 0..n {
        let p = ring[i];
        let q = ring[(i + 1) % n];
        if p == a || p == b || q == a || q == b {
            continue;
        }
        if crate::predicates::segments_intersect(a, b, p, q) {
            return false;
        }
    }
    true
}

/// Triangulate a polygon (holes supported). The triangles carry the
/// polygon's ID. The union of the returned triangles equals the polygon up
/// to floating-point error.
pub fn triangulate_polygon(poly: &Polygon) -> Vec<Triangle> {
    let outer = poly.outer().oriented_ccw();
    if outer.len() < 3 {
        return Vec::new();
    }
    if poly.holes().is_empty() {
        ear_clip(outer.points(), poly.id())
    } else {
        // Holes are stored CW by `Polygon::with_holes`, which is the
        // orientation the bridge construction expects.
        let holes: Vec<&Ring> = poly.holes().iter().collect();
        let merged = merge_holes(outer.points(), &holes);
        ear_clip(&merged, poly.id())
    }
}

/// Triangulate many polygons into a single triangle soup (the "VBO" the
/// paper uploads in DrawPolygons).
pub fn triangulate_all(polys: &[Polygon]) -> Vec<Triangle> {
    let mut out = Vec::new();
    for p in polys {
        out.extend(triangulate_polygon(p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_area(tris: &[Triangle]) -> f64 {
        tris.iter().map(Triangle::area).sum()
    }

    #[test]
    fn triangle_of_triangle() {
        let p = Polygon::from_coords(1, vec![(0.0, 0.0), (2.0, 0.0), (1.0, 2.0)]);
        let t = triangulate_polygon(&p);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].poly_id, 1);
        assert!((total_area(&t) - p.area()).abs() < 1e-12);
    }

    #[test]
    fn square_two_triangles() {
        let p = Polygon::from_coords(0, vec![(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let t = triangulate_polygon(&p);
        assert_eq!(t.len(), 2);
        assert!((total_area(&t) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn concave_polygon_area_preserved() {
        // A "U" shape.
        let p = Polygon::from_coords(
            3,
            vec![
                (0.0, 0.0),
                (6.0, 0.0),
                (6.0, 6.0),
                (4.0, 6.0),
                (4.0, 2.0),
                (2.0, 2.0),
                (2.0, 6.0),
                (0.0, 6.0),
            ],
        );
        let t = triangulate_polygon(&p);
        assert_eq!(t.len(), p.outer().len() - 2);
        assert!((total_area(&t) - p.area()).abs() < 1e-9);
        for tri in &t {
            assert_eq!(tri.poly_id, 3);
        }
    }

    #[test]
    fn clockwise_input_is_normalised() {
        let p = Polygon::from_coords(0, vec![(0.0, 4.0), (4.0, 4.0), (4.0, 0.0), (0.0, 0.0)]);
        let t = triangulate_polygon(&p);
        assert!((total_area(&t) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn triangulation_covers_interior_points() {
        let p = Polygon::from_coords(
            0,
            vec![
                (0.0, 0.0),
                (10.0, 0.0),
                (10.0, 4.0),
                (6.0, 4.0),
                (6.0, 8.0),
                (0.0, 8.0),
            ],
        );
        let tris = triangulate_polygon(&p);
        // Sample interior points: they must be covered by exactly >=1 triangle.
        for &(x, y) in &[(1.0, 1.0), (8.0, 2.0), (3.0, 6.0), (5.5, 3.5)] {
            let pt = Point::new(x, y);
            assert!(
                tris.iter().any(|t| t.contains(pt)),
                "point {pt:?} not covered"
            );
        }
        // And exterior points by none.
        for &(x, y) in &[(8.0, 6.0), (11.0, 1.0), (-1.0, -1.0)] {
            let pt = Point::new(x, y);
            assert!(!tris.iter().any(|t| t.contains(pt)));
        }
    }

    #[test]
    fn polygon_with_hole_triangulates_to_ring_area() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(8.0, 8.0),
            Point::new(0.0, 8.0),
        ]);
        let hole = Ring::new(vec![
            Point::new(3.0, 3.0),
            Point::new(5.0, 3.0),
            Point::new(5.0, 5.0),
            Point::new(3.0, 5.0),
        ]);
        let p = Polygon::with_holes(9, outer, vec![hole]);
        let tris = triangulate_polygon(&p);
        assert!(
            (total_area(&tris) - 60.0).abs() < 1e-6,
            "area {}",
            total_area(&tris)
        );
        // Hole interior must not be covered.
        assert!(!tris.iter().any(|t| t.contains(Point::new(4.0, 4.0))));
        // Ring interior must be covered.
        assert!(tris.iter().any(|t| t.contains(Point::new(1.0, 1.0))));
    }

    #[test]
    fn degenerate_inputs_yield_empty() {
        let p = Polygon::from_coords(0, vec![(0.0, 0.0), (1.0, 1.0)]);
        assert!(triangulate_polygon(&p).is_empty());
    }

    #[test]
    fn triangulate_all_tags_ids() {
        let a = Polygon::from_coords(0, vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let b = Polygon::from_coords(1, vec![(2.0, 0.0), (3.0, 0.0), (2.5, 1.0)]);
        let t = triangulate_all(&[a, b]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.iter().filter(|t| t.poly_id == 0).count(), 2);
        assert_eq!(t.iter().filter(|t| t.poly_id == 1).count(), 1);
    }
}
