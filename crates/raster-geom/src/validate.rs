//! Polygon validation and repair.
//!
//! The paper's pipeline assumes *simple* polygons: ear-clipping
//! triangulation (§3) and the even–odd containment test both misbehave on
//! self-intersecting or degenerate rings. Real administrative boundaries
//! (the paper's NYC neighborhoods and US counties come from shapefiles)
//! routinely carry duplicate vertices, collinear runs, zero-area spikes
//! and occasionally genuine self-intersections, so a production ingest
//! path needs a checking/repair pass before the polygons reach the
//! rasterizer. [`validate`] reports every issue found; [`repair`] fixes
//! the mechanical ones (duplicates, orientation, non-finite vertices) and
//! rejects the rest.

use crate::predicates::segments_intersect;
use crate::{Point, Polygon, Ring};

/// One defect found in a polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Issue {
    /// A ring has fewer than 3 distinct vertices (ring index; 0 = outer).
    TooFewVertices(usize),
    /// Two consecutive vertices coincide (ring index).
    DuplicateVertex(usize),
    /// A vertex is NaN or infinite (ring index).
    NonFiniteVertex(usize),
    /// The ring encloses (numerically) no area (ring index).
    ZeroArea(usize),
    /// Two non-adjacent edges of the same ring cross (ring index).
    SelfIntersection(usize),
    /// A hole vertex lies outside the outer ring (hole index, 0-based).
    HoleOutsideOuter(usize),
}

/// Check one polygon; an empty report means it is safe for triangulation
/// and containment tests.
pub fn validate(poly: &Polygon) -> Vec<Issue> {
    let mut issues = Vec::new();
    let rings: Vec<&Ring> = std::iter::once(poly.outer()).chain(poly.holes()).collect();
    for (ri, ring) in rings.iter().enumerate() {
        let pts = ring.points();
        if pts.iter().any(|p| !p.x.is_finite() || !p.y.is_finite()) {
            issues.push(Issue::NonFiniteVertex(ri));
            // Geometry predicates are meaningless on non-finite data;
            // skip the rest of this ring's checks.
            continue;
        }
        let mut distinct: Vec<Point> = Vec::with_capacity(pts.len());
        let mut dup = false;
        for &p in pts {
            if distinct.last().is_some_and(|&q| q == p) {
                dup = true;
            } else {
                distinct.push(p);
            }
        }
        if distinct.len() > 1 && distinct[0] == *distinct.last().unwrap() {
            distinct.pop();
            dup = true;
        }
        if dup {
            issues.push(Issue::DuplicateVertex(ri));
        }
        if distinct.len() < 3 {
            issues.push(Issue::TooFewVertices(ri));
            continue;
        }
        if ring.signed_area().abs() < 1e-12 {
            issues.push(Issue::ZeroArea(ri));
        }
        if ring_self_intersects(&distinct) {
            issues.push(Issue::SelfIntersection(ri));
        }
    }
    // Hole placement (only meaningful when the outer ring is usable).
    if !issues
        .iter()
        .any(|i| matches!(i, Issue::TooFewVertices(0) | Issue::NonFiniteVertex(0)))
    {
        for (hi, hole) in poly.holes().iter().enumerate() {
            if hole
                .points()
                .iter()
                .any(|&p| !crate::predicates::point_in_ring(poly.outer().points(), p))
            {
                // Vertices exactly on the outer boundary are tolerated;
                // point_in_ring's even-odd rule decides ties, which is the
                // same rule the rasterizer uses.
                issues.push(Issue::HoleOutsideOuter(hi));
            }
        }
    }
    issues
}

/// True iff any two non-adjacent edges of the (deduplicated) ring cross.
/// O(n²) — fine for administrative polygons (hundreds of vertices) and
/// only run at ingest time.
fn ring_self_intersects(pts: &[Point]) -> bool {
    let n = pts.len();
    for i in 0..n {
        let (a1, a2) = (pts[i], pts[(i + 1) % n]);
        // Start j at i+2 and skip the wrap-around neighbour of edge 0.
        for j in (i + 2)..n {
            if i == 0 && j == n - 1 {
                continue;
            }
            let (b1, b2) = (pts[j], pts[(j + 1) % n]);
            if segments_intersect(a1, a2, b1, b2) {
                return true;
            }
        }
    }
    false
}

/// Repair the mechanical defects: drop non-finite and consecutive
/// duplicate vertices, close-ring duplicates, and degenerate rings
/// (holes with < 3 distinct vertices are removed; a degenerate outer ring
/// fails the repair). Self-intersections and misplaced holes are NOT
/// repaired — those need human judgment — so a polygon still reporting
/// them after cleaning returns `None`.
pub fn repair(poly: &Polygon) -> Option<Polygon> {
    let clean_ring = |ring: &Ring| -> Option<Ring> {
        let mut pts: Vec<Point> = Vec::with_capacity(ring.len());
        for &p in ring.points() {
            if !p.x.is_finite() || !p.y.is_finite() {
                continue;
            }
            if pts.last().is_some_and(|&q| q == p) {
                continue;
            }
            pts.push(p);
        }
        if pts.len() > 1 && pts[0] == *pts.last().unwrap() {
            pts.pop();
        }
        (pts.len() >= 3).then(|| Ring::new(pts))
    };

    let outer = clean_ring(poly.outer())?;
    let holes: Vec<Ring> = poly.holes().iter().filter_map(clean_ring).collect();
    let fixed = Polygon::with_holes(poly.id(), outer, holes);
    let remaining = validate(&fixed);
    remaining.is_empty().then_some(fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(id: u32) -> Polygon {
        Polygon::from_coords(id, vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)])
    }

    #[test]
    fn clean_polygon_validates() {
        assert!(validate(&square(0)).is_empty());
    }

    #[test]
    fn ring_constructor_normalizes_duplicates() {
        // `Ring::new` drops consecutive and closing duplicates itself, so
        // polygons built through the public constructor never report
        // `DuplicateVertex` (the check guards rings arriving through
        // deserialization). Pin that normalization here.
        let p = Polygon::from_coords(
            0,
            vec![
                (0.0, 0.0),
                (0.0, 0.0), // duplicate
                (10.0, 0.0),
                (10.0, 10.0),
                (0.0, 10.0),
                (0.0, 0.0), // closing duplicate
            ],
        );
        assert!(validate(&p).is_empty());
        assert_eq!(p.outer().len(), 4);
        assert!((p.area() - 100.0).abs() < 1e-9);
        // And repair is an identity on already-clean polygons.
        let fixed = repair(&p).expect("clean polygon");
        assert_eq!(fixed.outer().points(), p.outer().points());
    }

    #[test]
    fn bowtie_self_intersection_detected_not_repaired() {
        let bowtie =
            Polygon::from_coords(0, vec![(0.0, 0.0), (10.0, 10.0), (10.0, 0.0), (0.0, 10.0)]);
        let issues = validate(&bowtie);
        assert!(issues.contains(&Issue::SelfIntersection(0)), "{issues:?}");
        assert!(repair(&bowtie).is_none());
    }

    #[test]
    fn non_finite_vertices_detected_and_dropped() {
        let p = Polygon::from_coords(
            0,
            vec![
                (0.0, 0.0),
                (f64::NAN, 5.0),
                (10.0, 0.0),
                (10.0, 10.0),
                (0.0, 10.0),
            ],
        );
        assert!(validate(&p).contains(&Issue::NonFiniteVertex(0)));
        let fixed = repair(&p).expect("repairable by dropping the NaN");
        assert!(validate(&fixed).is_empty());
        assert_eq!(fixed.outer().len(), 4);
    }

    #[test]
    fn degenerate_rings_detected() {
        let line = Polygon::from_coords(0, vec![(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        let issues = validate(&line);
        assert!(issues.contains(&Issue::ZeroArea(0)), "{issues:?}");
        let two = Polygon::from_coords(0, vec![(0.0, 0.0), (1.0, 1.0), (0.0, 0.0)]);
        let issues = validate(&two);
        assert!(issues.contains(&Issue::TooFewVertices(0)), "{issues:?}");
        assert!(repair(&two).is_none());
    }

    #[test]
    fn hole_placement_checked() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]);
        let inside = Ring::new(vec![
            Point::new(4.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
        ]);
        let outside = Ring::new(vec![
            Point::new(14.0, 4.0),
            Point::new(16.0, 4.0),
            Point::new(16.0, 6.0),
            Point::new(14.0, 6.0),
        ]);
        let good = Polygon::with_holes(0, outer.clone(), vec![inside]);
        assert!(validate(&good).is_empty());
        let bad = Polygon::with_holes(0, outer, vec![outside]);
        assert!(validate(&bad).contains(&Issue::HoleOutsideOuter(0)));
        assert!(repair(&bad).is_none());
    }

    #[test]
    fn degenerate_hole_is_dropped_by_repair() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]);
        let sliver = Ring::new(vec![Point::new(3.0, 3.0), Point::new(4.0, 4.0)]);
        let p = Polygon::with_holes(0, outer, vec![sliver]);
        let fixed = repair(&p).expect("sliver hole removed");
        assert!(fixed.holes().is_empty());
        assert!(validate(&fixed).is_empty());
    }

    #[test]
    fn repaired_polygons_triangulate() {
        // End-to-end: a dirty but repairable polygon goes through repair →
        // triangulation, and the triangle areas sum to the polygon area.
        let p = Polygon::from_coords(
            0,
            vec![
                (0.0, 0.0),
                (5.0, 0.0),
                (5.0, 0.0), // dup
                (10.0, 0.0),
                (10.0, 10.0),
                (5.0, 10.0),
                (0.0, 10.0),
                (0.0, 0.0), // closing dup
            ],
        );
        let fixed = repair(&p).unwrap();
        let tris = crate::triangulate::triangulate_polygon(&fixed);
        let sum: f64 = tris.iter().map(|t| t.area()).sum();
        assert!((sum - fixed.area()).abs() < 1e-9);
    }

    #[test]
    fn generated_polygon_sets_are_valid() {
        // The §7.4 Voronoi-merge generator must emit clean polygons — this
        // pins the invariant the whole pipeline relies on.
        let extent = crate::BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let sites: Vec<Point> = (0..64)
            .map(|i| {
                let k = i as f64;
                Point::new(
                    (k * 137.508).rem_euclid(1000.0),
                    (k * 254.31 + 11.0).rem_euclid(1000.0),
                )
            })
            .collect();
        let cells = crate::voronoi::voronoi_cells(&sites, &extent);
        for c in &cells {
            if c.verts.len() >= 3 {
                let poly = Polygon::new(c.site as u32, Ring::new(c.points()));
                let issues = validate(&poly);
                assert!(issues.is_empty(), "site {}: {issues:?}", c.site);
            }
        }
    }
}
