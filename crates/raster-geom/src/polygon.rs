//! Simple polygons (optionally with holes).

use crate::{BBox, Point};
use serde::{Deserialize, Serialize};

/// A closed vertex loop. The last vertex is implicitly connected to the
/// first; callers should not repeat the first vertex at the end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ring {
    points: Vec<Point>,
}

impl Ring {
    /// Builds a ring from a vertex loop, dropping consecutive duplicates and
    /// a trailing duplicate of the first vertex if present.
    pub fn new(mut points: Vec<Point>) -> Self {
        points.dedup();
        if points.len() > 1 && points.first() == points.last() {
            points.pop();
        }
        Ring { points }
    }

    pub fn points(&self) -> &[Point] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterator over the ring's directed edges, closing the loop.
    pub fn edges(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        let n = self.points.len();
        (0..n).map(move |i| (self.points[i], self.points[(i + 1) % n]))
    }

    /// Signed area via the shoelace formula: positive for counter-clockwise
    /// vertex order.
    pub fn signed_area(&self) -> f64 {
        let n = self.points.len();
        if n < 3 {
            return 0.0;
        }
        let mut s = 0.0;
        for (a, b) in self.edges() {
            s += a.cross(b);
        }
        s * 0.5
    }

    /// True if the vertex order is counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Reverse the vertex order in place.
    pub fn reverse(&mut self) {
        self.points.reverse();
    }

    /// A copy with counter-clockwise orientation.
    pub fn oriented_ccw(&self) -> Ring {
        let mut r = self.clone();
        if !r.is_ccw() {
            r.reverse();
        }
        r
    }

    /// Total edge length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|(a, b)| a.distance(b)).sum()
    }

    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.points.iter().copied())
    }
}

/// A polygon: an outer ring, zero or more hole rings and an application ID.
///
/// The ID plays the role of the OpenGL per-triangle key of §4.1: every
/// fragment generated for this polygon accumulates into result slot `id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    id: u32,
    outer: Ring,
    holes: Vec<Ring>,
    bbox: BBox,
}

impl Polygon {
    /// Simple polygon without holes.
    pub fn new(id: u32, outer: Ring) -> Self {
        Polygon::with_holes(id, outer, Vec::new())
    }

    /// Polygon with holes. The outer ring is normalised to CCW and holes to
    /// CW so that downstream consumers can rely on the orientation.
    pub fn with_holes(id: u32, outer: Ring, holes: Vec<Ring>) -> Self {
        let outer = outer.oriented_ccw();
        let holes = holes
            .into_iter()
            .map(|h| {
                let mut h = h.oriented_ccw();
                h.reverse();
                h
            })
            .collect::<Vec<_>>();
        let bbox = outer.bbox();
        Polygon {
            id,
            outer,
            holes,
            bbox,
        }
    }

    /// Convenience: polygon from a raw outer vertex loop.
    pub fn from_coords(id: u32, coords: Vec<(f64, f64)>) -> Self {
        Polygon::new(id, Ring::new(coords.into_iter().map(Point::from).collect()))
    }

    pub fn id(&self) -> u32 {
        self.id
    }

    pub fn set_id(&mut self, id: u32) {
        self.id = id;
    }

    pub fn outer(&self) -> &Ring {
        &self.outer
    }

    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Number of vertices over all rings (the paper's measure of polygon
    /// complexity; NYC neighborhoods average hundreds of vertices).
    pub fn vertex_count(&self) -> usize {
        self.outer.len() + self.holes.iter().map(Ring::len).sum::<usize>()
    }

    /// Area: outer ring minus holes.
    pub fn area(&self) -> f64 {
        self.outer.signed_area().abs()
            - self
                .holes
                .iter()
                .map(|h| h.signed_area().abs())
                .sum::<f64>()
    }

    /// Perimeter of all rings (outline length — drives the number of
    /// boundary pixels in the accurate variant).
    pub fn perimeter(&self) -> f64 {
        self.outer.perimeter() + self.holes.iter().map(Ring::perimeter).sum::<f64>()
    }

    /// Area-weighted centroid of the outer ring.
    pub fn centroid(&self) -> Point {
        let pts = self.outer.points();
        let n = pts.len();
        if n == 0 {
            return Point::default();
        }
        let a2 = self.outer.signed_area() * 2.0;
        if a2.abs() < 1e-30 {
            // Degenerate: average of vertices.
            let sum = pts.iter().fold(Point::default(), |acc, p| acc + *p);
            return sum / n as f64;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for (a, b) in self.outer.edges() {
            let w = a.cross(b);
            cx += (a.x + b.x) * w;
            cy += (a.y + b.y) * w;
        }
        Point::new(cx / (3.0 * a2), cy / (3.0 * a2))
    }

    /// All boundary edges (outer ring and holes).
    pub fn all_edges(&self) -> Vec<(Point, Point)> {
        let mut e: Vec<(Point, Point)> = self.outer.edges().collect();
        for h in &self.holes {
            e.extend(h.edges());
        }
        e
    }

    /// Containment test. Delegates to [`crate::predicates::point_in_polygon`].
    pub fn contains(&self, p: Point) -> bool {
        crate::predicates::point_in_polygon(self, p)
    }

    /// A geometrically identical copy whose boundary edges are subdivided
    /// to length at most `max_edge`. Densification does not change the
    /// polygon's shape, area or the join result — it only raises the
    /// vertex count, i.e. the cost of every point-in-polygon test. The
    /// paper's real polygon sets "often consist of hundreds of vertices"
    /// (§1); the synthetic stand-ins use this to match that complexity.
    pub fn densified(&self, max_edge: f64) -> Polygon {
        assert!(max_edge > 0.0);
        let densify_ring = |ring: &Ring| -> Ring {
            let mut pts = Vec::with_capacity(ring.len() * 2);
            for (a, b) in ring.edges() {
                let len = a.distance(b);
                let segments = (len / max_edge).ceil().max(1.0) as usize;
                for k in 0..segments {
                    pts.push(a + (b - a) * (k as f64 / segments as f64));
                }
            }
            Ring::new(pts)
        };
        Polygon {
            id: self.id,
            outer: densify_ring(&self.outer),
            holes: self.holes.iter().map(densify_ring).collect(),
            bbox: self.bbox,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square_ring() -> Ring {
        Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
    }

    #[test]
    fn ring_drops_closing_duplicate() {
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn signed_area_orientation() {
        let ccw = unit_square_ring();
        assert!((ccw.signed_area() - 1.0).abs() < 1e-12);
        assert!(ccw.is_ccw());
        let mut cw = ccw.clone();
        cw.reverse();
        assert!((cw.signed_area() + 1.0).abs() < 1e-12);
        assert!(!cw.is_ccw());
    }

    #[test]
    fn polygon_normalises_orientation() {
        let mut cw = unit_square_ring();
        cw.reverse();
        let poly = Polygon::new(7, cw);
        assert!(poly.outer().is_ccw());
        assert_eq!(poly.id(), 7);
    }

    #[test]
    fn area_subtracts_holes() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        let hole = Ring::new(vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 2.0),
        ]);
        let poly = Polygon::with_holes(0, outer, vec![hole]);
        assert!((poly.area() - 15.0).abs() < 1e-12);
        assert_eq!(poly.vertex_count(), 8);
        // Holes are normalised to clockwise.
        assert!(!poly.holes()[0].is_ccw());
    }

    #[test]
    fn centroid_of_square() {
        let poly = Polygon::new(0, unit_square_ring());
        let c = poly.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perimeter_of_square() {
        let poly = Polygon::new(0, unit_square_ring());
        assert!((poly.perimeter() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn densified_preserves_geometry_and_raises_vertex_count() {
        let poly = Polygon::from_coords(
            4,
            vec![(0.0, 0.0), (100.0, 0.0), (100.0, 100.0), (0.0, 100.0)],
        );
        let dense = poly.densified(10.0);
        assert_eq!(dense.id(), 4);
        assert_eq!(dense.vertex_count(), 40);
        assert!((dense.area() - poly.area()).abs() < 1e-9);
        assert!((dense.perimeter() - poly.perimeter()).abs() < 1e-9);
        // Containment is unchanged.
        for &(x, y) in &[(50.0, 50.0), (0.5, 0.5), (101.0, 50.0), (-1.0, -1.0)] {
            let p = Point::new(x, y);
            assert_eq!(dense.contains(p), poly.contains(p), "{p:?}");
        }
        // Adjacent polygons densified with the same step keep shared
        // edges vertex-identical (no cracks in a tiling).
        let right = Polygon::from_coords(
            5,
            vec![(100.0, 0.0), (200.0, 0.0), (200.0, 100.0), (100.0, 100.0)],
        )
        .densified(10.0);
        let shared_left: Vec<Point> = dense
            .outer()
            .points()
            .iter()
            .copied()
            .filter(|p| p.x == 100.0)
            .collect();
        let shared_right: Vec<Point> = right
            .outer()
            .points()
            .iter()
            .copied()
            .filter(|p| p.x == 100.0)
            .collect();
        assert_eq!(shared_left.len(), shared_right.len());
    }

    #[test]
    fn bbox_matches_extent() {
        let poly = Polygon::from_coords(0, vec![(0.0, 0.0), (3.0, 1.0), (1.0, 5.0)]);
        let b = poly.bbox();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(3.0, 5.0));
    }
}
