//! Spatio-temporal raster join (§9 future work).
//!
//! The paper closes with "These approaches could also be applied to
//! perform more complex spatio-temporal joins" (§9), and its motivating
//! UI slices every distribution by a user-chosen time range (Fig. 1). The
//! obvious implementation issues one filtered query per time slice; this
//! module instead widens the FBO — one channel per time bucket, each
//! point blending a one-hot vector selected by its timestamp attribute in
//! the vertex shader — so ONE DrawPoints + DrawPolygons pass yields the
//! full `polygon × time-bucket` histogram. That is exactly the §8
//! "multiple color attachments" mechanism pointed at the time axis, and
//! it is what an animated heat map or the Fig. 1(c) time-brushing chart
//! consumes.
//!
//! Results carry the same ε guarantee as the bounded join: a point can
//! only be mis-assigned spatially (never temporally) and only within ε of
//! a polygon boundary.

use crate::bounded::polygon_extent;
use crate::query::result_slots;
use crate::stats::ExecStats;
use raster_data::filter::passes;
use raster_data::{PointTable, Predicate};
use raster_geom::hausdorff::resolution_for_epsilon;
use raster_geom::triangulate::triangulate_all;
use raster_geom::Polygon;
use raster_gpu::exec::{default_workers, parallel_dynamic, parallel_ranges};
use raster_gpu::raster::rasterize_triangle_spans;
use raster_gpu::ssbo::AtomicU64Array;
use raster_gpu::{Device, MrtFbo, Viewport};
use std::time::Instant;

/// Uniform bucketing of a timestamp attribute into `n` slices.
#[derive(Debug, Clone, Copy)]
pub struct TimeBuckets {
    /// Attribute column holding the timestamp.
    pub attr: usize,
    /// Inclusive lower bound of the first bucket.
    pub start: f32,
    /// Width of each bucket (same attribute units).
    pub width: f32,
    /// Number of buckets.
    pub n: usize,
}

impl TimeBuckets {
    pub fn new(attr: usize, start: f32, width: f32, n: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(n > 0, "need at least one bucket");
        TimeBuckets {
            attr,
            start,
            width,
            n,
        }
    }

    /// Evenly cover `[lo, hi]` with `n` buckets.
    pub fn covering(attr: usize, lo: f32, hi: f32, n: usize) -> Self {
        assert!(hi > lo, "empty time range");
        TimeBuckets::new(attr, lo, (hi - lo) / n as f32 * (1.0 + 1e-6), n)
    }

    /// Bucket of timestamp `t`, or `None` outside the covered range.
    #[inline]
    pub fn bucket_of(&self, t: f32) -> Option<usize> {
        if t < self.start {
            return None;
        }
        let b = ((t - self.start) / self.width) as usize;
        (b < self.n).then_some(b)
    }

    /// `[lo, hi)` bounds of bucket `b`.
    pub fn bounds(&self, b: usize) -> (f32, f32) {
        let lo = self.start + b as f32 * self.width;
        (lo, lo + self.width)
    }
}

/// `polygon × bucket` count matrix plus totals.
#[derive(Debug, Clone)]
pub struct TemporalOutput {
    /// `counts[b][poly]`: points of bucket `b` inside the polygon.
    pub counts: Vec<Vec<u64>>,
    /// Per-polygon totals over ALL buckets (points outside the covered
    /// time range are excluded, like any filtered point).
    pub totals: Vec<u64>,
    pub stats: ExecStats,
}

impl TemporalOutput {
    /// The time series of one polygon: its count in each bucket.
    pub fn series(&self, poly: usize) -> Vec<u64> {
        self.counts.iter().map(|b| b[poly]).collect()
    }

    /// Bucket index holding the most points across all polygons.
    pub fn peak_bucket(&self) -> usize {
        (0..self.counts.len())
            .max_by_key(|&b| self.counts[b].iter().sum::<u64>())
            .unwrap_or(0)
    }
}

/// The spatio-temporal bounded raster join.
pub struct TemporalRasterJoin {
    pub workers: usize,
    pub epsilon: f64,
    /// Extra attribute predicates applied before bucketing.
    pub predicates: Vec<Predicate>,
}

impl Default for TemporalRasterJoin {
    fn default() -> Self {
        TemporalRasterJoin {
            workers: default_workers(),
            epsilon: 10.0,
            predicates: Vec::new(),
        }
    }
}

impl TemporalRasterJoin {
    pub fn new(workers: usize, epsilon: f64) -> Self {
        assert!(epsilon > 0.0);
        TemporalRasterJoin {
            workers,
            epsilon,
            ..Default::default()
        }
    }

    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        buckets: &TimeBuckets,
        device: &Device,
    ) -> TemporalOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = result_slots(polys);
        let k = buckets.n;
        let total_counts = AtomicU64Array::new(nslots);
        let bucket_counts: Vec<AtomicU64Array> =
            (0..k).map(|_| AtomicU64Array::new(nslots)).collect();
        if polys.is_empty() {
            return TemporalOutput {
                counts: vec![Vec::new(); k],
                totals: Vec::new(),
                stats,
            };
        }

        let t0 = Instant::now();
        let tris = triangulate_all(polys);
        stats.triangulation = t0.elapsed();

        let extent = polygon_extent(polys);
        let (w, h) = resolution_for_epsilon(&extent, self.epsilon);
        let tiles = Viewport::new(extent, w, h).split(device.config().max_fbo_dim);

        // Upload: positions + the timestamp column + filter columns.
        let mut up = vec![buckets.attr];
        for p in &self.predicates {
            if !up.contains(&p.attr) {
                up.push(p.attr);
            }
        }
        let point_bytes = PointTable::point_bytes(up.len());
        let per_batch = device.points_per_batch(point_bytes);
        let preds = &self.predicates;
        let times: &[f32] = if points.is_empty() {
            &[]
        } else {
            points.attr(buckets.attr)
        };

        let proc0 = Instant::now();
        let mut start = 0usize;
        loop {
            let end = (start + per_batch).min(points.len());
            device.record_upload(((end - start) * point_bytes) as u64);
            stats.batches += 1;
            for vp in &tiles {
                let fbo = MrtFbo::new(vp.width, vp.height, k);
                // DrawPoints: one-hot blend into the bucket channel. A
                // point outside the covered range is clipped, exactly like
                // a failed §5 constraint.
                parallel_ranges(end - start, self.workers, |s, e| {
                    let mut vals = vec![0f32; k];
                    // Indexes three parallel columns (times, points,
                    // attrs); a range loop is the clear form here.
                    #[allow(clippy::needless_range_loop)]
                    for i in (start + s)..(start + e) {
                        if !preds.is_empty() && !passes(points, i, preds) {
                            continue;
                        }
                        let Some(b) = buckets.bucket_of(times[i]) else {
                            continue;
                        };
                        if let Some((x, y)) = vp.pixel_of(points.point(i)) {
                            vals[b] = 1.0;
                            fbo.blend_add(x, y, &vals);
                            vals[b] = 0.0;
                        }
                    }
                });
                // DrawPolygons: fold the count channel and every bucket
                // channel per span.
                parallel_dynamic(tris.len(), self.workers, 16, |ti| {
                    let t = &tris[ti];
                    let id = t.poly_id as usize;
                    let mut cnt_acc = 0u64;
                    let mut acc = vec![0f64; k];
                    rasterize_triangle_spans(
                        [vp.to_screen(t.a), vp.to_screen(t.b), vp.to_screen(t.c)],
                        vp.width,
                        vp.height,
                        |y, x0, x1| {
                            cnt_acc += fbo.span_totals(y, x0, x1, &mut acc);
                        },
                    );
                    if cnt_acc > 0 {
                        total_counts.add(id, cnt_acc);
                        for (b, bc) in bucket_counts.iter().enumerate() {
                            let v = acc[b].round() as u64;
                            if v > 0 {
                                bc.add(id, v);
                            }
                        }
                    }
                });
                stats.passes += 1;
            }
            if end >= points.len() {
                break;
            }
            start = end;
        }
        stats.processing = proc0.elapsed();

        device.record_download((nslots * 8 * (1 + k)) as u64);
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;
        stats.transfer = device.modelled_transfer_time();

        TemporalOutput {
            counts: bucket_counts.iter().map(AtomicU64Array::to_vec).collect(),
            totals: total_counts.to_vec(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::BoundedRasterJoin;
    use crate::query::Query;
    use raster_data::filter::CmpOp;
    use raster_data::generators::{nyc_extent, TaxiModel};
    use raster_data::polygons::synthetic_polygons;

    fn setup() -> (PointTable, Vec<Polygon>, usize) {
        let pts = TaxiModel::default().generate(4_000, 33);
        let polys = synthetic_polygons(6, &nyc_extent(), 34);
        let hour = pts.attr_index("hour").unwrap();
        (pts, polys, hour)
    }

    /// Reference: one filtered bounded join per bucket.
    fn per_bucket_reference(
        pts: &PointTable,
        polys: &[Polygon],
        buckets: &TimeBuckets,
        eps: f64,
    ) -> Vec<Vec<u64>> {
        let dev = Device::default();
        (0..buckets.n)
            .map(|b| {
                let (lo, hi) = buckets.bounds(b);
                let q = Query::count().with_epsilon(eps).with_predicates(vec![
                    Predicate::new(buckets.attr, CmpOp::Ge, lo),
                    Predicate::new(buckets.attr, CmpOp::Lt, hi),
                ]);
                BoundedRasterJoin::new(2)
                    .execute(pts, polys, &q, &dev)
                    .counts
            })
            .collect()
    }

    #[test]
    fn one_pass_equals_per_bucket_queries() {
        let (pts, polys, hour) = setup();
        let buckets = TimeBuckets::covering(hour, 0.0, 168.0, 7);
        let eps = 15.0;
        let join = TemporalRasterJoin::new(2, eps);
        let got = join.execute(&pts, &polys, &buckets, &Device::default());
        let want = per_bucket_reference(&pts, &polys, &buckets, eps);
        for (b, w) in want.iter().enumerate().take(buckets.n) {
            assert_eq!(got.counts[b], *w, "bucket {b}");
        }
    }

    #[test]
    fn totals_equal_bucket_sums_and_full_join() {
        let (pts, polys, hour) = setup();
        let buckets = TimeBuckets::covering(hour, 0.0, 168.0, 12);
        let eps = 15.0;
        let out =
            TemporalRasterJoin::new(2, eps).execute(&pts, &polys, &buckets, &Device::default());
        // Totals decompose over buckets.
        for poly in 0..out.totals.len() {
            let series_sum: u64 = out.series(poly).iter().sum();
            assert_eq!(series_sum, out.totals[poly], "poly {poly}");
        }
        // And match an untimed bounded join (the hour attribute spans
        // [0, 168) in the taxi model, so no point is clipped).
        let full = BoundedRasterJoin::new(2).execute(
            &pts,
            &polys,
            &Query::count().with_epsilon(eps),
            &Device::default(),
        );
        assert_eq!(out.totals, full.counts);
    }

    #[test]
    fn out_of_range_points_are_clipped() {
        let (pts, polys, hour) = setup();
        // Cover only the first half of the week.
        let buckets = TimeBuckets::covering(hour, 0.0, 84.0, 6);
        let out =
            TemporalRasterJoin::new(2, 15.0).execute(&pts, &polys, &buckets, &Device::default());
        let full = BoundedRasterJoin::new(2).execute(
            &pts,
            &polys,
            &Query::count().with_epsilon(15.0),
            &Device::default(),
        );
        let t_half: u64 = out.totals.iter().sum();
        let t_full: u64 = full.counts.iter().sum();
        assert!(t_half < t_full);
        assert!(t_half > 0);
    }

    #[test]
    fn bucket_of_boundaries() {
        let b = TimeBuckets::new(0, 10.0, 5.0, 4); // [10,15) [15,20) [20,25) [25,30)
        assert_eq!(b.bucket_of(9.9), None);
        assert_eq!(b.bucket_of(10.0), Some(0));
        assert_eq!(b.bucket_of(14.999), Some(0));
        assert_eq!(b.bucket_of(15.0), Some(1));
        assert_eq!(b.bucket_of(29.999), Some(3));
        assert_eq!(b.bucket_of(30.0), None);
        assert_eq!(b.bounds(2), (20.0, 25.0));
    }

    #[test]
    fn predicates_compose_with_bucketing() {
        let (pts, polys, hour) = setup();
        let pass_attr = pts.attr_index("passengers").unwrap();
        let buckets = TimeBuckets::covering(hour, 0.0, 168.0, 4);
        let mut join = TemporalRasterJoin::new(2, 15.0);
        join.predicates = vec![Predicate::new(pass_attr, CmpOp::Ge, 3.0)];
        let filtered = join.execute(&pts, &polys, &buckets, &Device::default());
        let unfiltered =
            TemporalRasterJoin::new(2, 15.0).execute(&pts, &polys, &buckets, &Device::default());
        let (tf, tu) = (
            filtered.totals.iter().sum::<u64>(),
            unfiltered.totals.iter().sum::<u64>(),
        );
        assert!(tf < tu);
        assert!(tf > 0);
    }

    #[test]
    fn peak_bucket_identifies_the_rush() {
        // All points in bucket 2 of 4.
        let extent = nyc_extent();
        let polys = synthetic_polygons(3, &extent, 35);
        let mut pts = PointTable::with_capacity(50, &["t"]);
        let cx = (extent.min.x + extent.max.x) / 2.0;
        let cy = (extent.min.y + extent.max.y) / 2.0;
        for i in 0..50 {
            pts.push(
                raster_geom::Point::new(cx + i as f64, cy - i as f64),
                &[55.0],
            );
        }
        let buckets = TimeBuckets::covering(0, 0.0, 100.0, 4);
        let out =
            TemporalRasterJoin::new(1, 10.0).execute(&pts, &polys, &buckets, &Device::default());
        assert_eq!(out.peak_bucket(), 2);
    }

    #[test]
    fn empty_inputs() {
        let buckets = TimeBuckets::covering(0, 0.0, 10.0, 3);
        let out = TemporalRasterJoin::new(1, 10.0).execute(
            &PointTable::new(),
            &synthetic_polygons(2, &nyc_extent(), 36),
            &buckets,
            &Device::default(),
        );
        assert_eq!(out.totals, vec![0, 0]);
        let out = TemporalRasterJoin::new(1, 10.0).execute(
            &PointTable::new(),
            &[],
            &buckets,
            &Device::default(),
        );
        assert!(out.totals.is_empty());
    }
}
