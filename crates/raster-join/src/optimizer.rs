//! Cost-based choice between the bounded and accurate variants (§8,
//! "Choosing Between the two Raster Variants").
//!
//! The paper observes that a very small ε can make the bounded variant
//! slower than the accurate one (the rendering-pass count grows
//! quadratically, Fig. 12a) and proposes adding "an estimate of the time
//! required for the two variants, so that an optimizer can choose the
//! best option based on the input query". This module implements that
//! optimizer with an analytic cost model in abstract work units:
//!
//! * bounded:  `passes × (N_points + F(resolution))` — every pass
//!   re-renders the resident points and all polygon fragments;
//! * accurate: `N_points + B × C × V̄ + F(canvas)` — one point pass, PIP
//!   work for the expected boundary-pixel points, one polygon pass.
//!
//! `F` estimates fragment counts from polygon area/perimeter at the pixel
//! size in effect; `B` estimates the fraction of points on boundary
//! pixels from total outline length.

use crate::query::{JoinOutput, Query};
use crate::{AccurateRasterJoin, BoundedRasterJoin};
use raster_data::PointTable;
use raster_geom::hausdorff::{pixel_side_for_epsilon, resolution_for_epsilon};
use raster_geom::{BBox, Polygon};
use raster_gpu::Device;

/// Which operator the optimizer picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Bounded,
    Accurate,
}

/// Cost estimates (abstract work units) for both variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    pub bounded: f64,
    pub accurate: f64,
    pub passes: u32,
}

impl CostEstimate {
    pub fn choice(&self) -> Variant {
        if self.bounded <= self.accurate {
            Variant::Bounded
        } else {
            Variant::Accurate
        }
    }
}

/// Aggregate polygon-set shape statistics the model needs.
fn polygon_shape(polys: &[Polygon]) -> (f64, f64, f64) {
    let area: f64 = polys.iter().map(Polygon::area).sum();
    let perimeter: f64 = polys.iter().map(Polygon::perimeter).sum();
    let avg_vertices = if polys.is_empty() {
        0.0
    } else {
        polys.iter().map(|p| p.vertex_count() as f64).sum::<f64>() / polys.len() as f64
    };
    (area, perimeter, avg_vertices)
}

/// Estimated polygon fragments at a given pixel side: interior area
/// fragments plus one extra band along the outlines.
fn fragments(area: f64, perimeter: f64, pixel_side: f64) -> f64 {
    let px2 = pixel_side * pixel_side;
    area / px2 + perimeter / pixel_side
}

// Relative per-operation weights, calibrated against the Fig. 8/12a
// measurements of this reproduction (a fragment is an FBO read that
// usually early-outs; a PIP test walks the candidate polygon's vertices;
// accurate's point stage adds the boundary-FBO lookup).
const C_POINT_BOUNDED: f64 = 1.0;
const C_POINT_ACCURATE: f64 = 1.5;
const C_FRAG: f64 = 0.1;
const C_PIP_VERTEX: f64 = 1.0;
const C_OUTLINE: f64 = 1.5;
const C_INDEX_CELL: f64 = 1.0;

/// Build the cost estimate for a query.
pub fn estimate(
    n_points: usize,
    polys: &[Polygon],
    extent: &BBox,
    query: &Query,
    device: &Device,
    accurate_canvas_dim: u32,
) -> CostEstimate {
    let (area, perimeter, avg_v) = polygon_shape(polys);
    let n = n_points as f64;

    // ---- bounded ---------------------------------------------------------
    // Every pass re-transforms the resident points (they are clipped per
    // tile), but the *total* fragment volume is resolution-bound, not
    // pass-bound: each tile rasterizes only its own pixels.
    let side = pixel_side_for_epsilon(query.epsilon);
    let (w, h) = resolution_for_epsilon(extent, query.epsilon);
    let max_dim = device.config().max_fbo_dim;
    let passes = w.div_ceil(max_dim) * h.div_ceil(max_dim);
    let bounded = passes as f64 * n * C_POINT_BOUNDED + C_FRAG * fragments(area, perimeter, side);

    // ---- accurate --------------------------------------------------------
    let dim = accurate_canvas_dim.min(max_dim) as f64;
    let acc_side = extent.width().max(extent.height()) / dim;
    // Probability a point lands on a boundary pixel ≈ outline-band area
    // over the extent area (supercover marks up to ~3 pixels per crossed
    // column), clamped to 1.
    let boundary_band = (perimeter * 3.0 * acc_side) / extent.area().max(1e-30);
    let p_boundary = boundary_band.clamp(0.0, 1.0);
    // Each boundary point PIP-tests its grid-cell candidates, linear in
    // vertex count.
    let candidates = 2.0f64.min(polys.len() as f64).max(1.0);
    let pip_cost = n * p_boundary * candidates * avg_v * C_PIP_VERTEX;
    // On-the-fly index build touches every cell under each polygon's MBR.
    let cell_area = extent.area() / (1024.0 * 1024.0);
    let index_cells: f64 = polys
        .iter()
        .map(|p| (p.bbox().area() / cell_area).max(1.0))
        .sum();
    let accurate = n * C_POINT_ACCURATE
        + pip_cost
        + C_FRAG * fragments(area, perimeter, acc_side)
        + C_OUTLINE * perimeter / acc_side
        + C_INDEX_CELL * index_cells;

    CostEstimate {
        bounded,
        accurate,
        passes,
    }
}

/// The auto-selecting operator: estimates both costs and dispatches.
pub struct AutoRasterJoin {
    pub workers: usize,
    pub accurate_canvas_dim: u32,
}

impl Default for AutoRasterJoin {
    fn default() -> Self {
        AutoRasterJoin {
            workers: raster_gpu::exec::default_workers(),
            accurate_canvas_dim: 2048,
        }
    }
}

impl AutoRasterJoin {
    /// Estimate, pick a variant, and run it. Returns the chosen variant
    /// alongside the output (the caller may care that the result became
    /// exact).
    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> (Variant, JoinOutput) {
        let extent = crate::bounded::polygon_extent(polys);
        let est = estimate(
            points.len(),
            polys,
            &extent,
            query,
            device,
            self.accurate_canvas_dim,
        );
        match est.choice() {
            Variant::Bounded => (
                Variant::Bounded,
                BoundedRasterJoin::new(self.workers).execute(points, polys, query, device),
            ),
            Variant::Accurate => {
                let j = AccurateRasterJoin {
                    workers: self.workers,
                    canvas_dim: self.accurate_canvas_dim,
                    index_dim: 1024,
                    ..Default::default()
                };
                (Variant::Accurate, j.execute(points, polys, query, device))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_data::generators::{nyc_extent, uniform_points};
    use raster_data::polygons::synthetic_polygons;

    fn setup() -> (Vec<Polygon>, BBox) {
        let e = nyc_extent();
        (synthetic_polygons(10, &e, 3), e)
    }

    #[test]
    fn coarse_epsilon_prefers_bounded() {
        let (polys, extent) = setup();
        let dev = Device::default();
        // Large inputs are where the bounded variant's PIP-freedom pays.
        let est = estimate(
            2_000_000,
            &polys,
            &extent,
            &Query::count().with_epsilon(20.0),
            &dev,
            2048,
        );
        assert_eq!(est.passes, 1);
        assert_eq!(est.choice(), Variant::Bounded);
    }

    #[test]
    fn tiny_epsilon_prefers_accurate() {
        let (polys, extent) = setup();
        let dev = Device::default();
        // ε = 0.05 m over a 58 km extent → ~1.6M px per axis → ~40k passes.
        let est = estimate(
            1_000_000,
            &polys,
            &extent,
            &Query::count().with_epsilon(0.05),
            &dev,
            2048,
        );
        assert!(est.passes > 10_000);
        assert_eq!(est.choice(), Variant::Accurate);
    }

    #[test]
    fn cost_is_monotone_in_passes() {
        let (polys, extent) = setup();
        let dev = Device::default();
        let coarse = estimate(
            100_000,
            &polys,
            &extent,
            &Query::count().with_epsilon(20.0),
            &dev,
            2048,
        );
        let fine = estimate(
            100_000,
            &polys,
            &extent,
            &Query::count().with_epsilon(1.0),
            &dev,
            2048,
        );
        assert!(fine.passes > coarse.passes);
        assert!(fine.bounded > coarse.bounded);
        // Accurate cost does not depend on ε.
        assert!((fine.accurate - coarse.accurate).abs() < 1e-6);
    }

    #[test]
    fn auto_join_runs_the_chosen_variant_and_is_sane() {
        let (polys, extent) = setup();
        let pts = uniform_points(2_000, &nyc_extent(), 5);
        let dev = Device::default();
        // The dispatched variant must match the advertised estimate.
        let q = Query::count().with_epsilon(20.0);
        let est = estimate(pts.len(), &polys, &extent, &q, &dev, 2048);
        let (variant, out) = AutoRasterJoin::default().execute(&pts, &polys, &q, &dev);
        assert_eq!(variant, est.choice());
        assert!(out.total_count() > 0);

        let (variant2, out2) = AutoRasterJoin::default().execute(
            &pts,
            &polys,
            &Query::count().with_epsilon(0.05),
            &dev,
        );
        assert_eq!(variant2, Variant::Accurate);
        // Accurate path is exact: compare against brute force.
        for (i, poly) in polys.iter().enumerate() {
            let truth = (0..pts.len())
                .filter(|&k| poly.contains(pts.point(k)))
                .count() as u64;
            assert_eq!(out2.counts[i], truth);
        }
    }
}
