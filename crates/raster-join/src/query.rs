//! Query model and result container.
//!
//! The paper's query shape (§1):
//!
//! ```sql
//! SELECT AGG(a_i) FROM P, R
//! WHERE P.loc INSIDE R.geometry [AND filterCondition]*
//! GROUP BY R.id
//! ```

use crate::stats::ExecStats;
use raster_data::filter::{attrs_referenced, Predicate};

/// Aggregate function. The paper implements COUNT, SUM and AVG (§5) —
/// i.e. distributive and algebraic aggregates; holistic ones (median) are
/// out of scope by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    Count,
    /// Sum of the attribute column with this index.
    Sum(usize),
    /// Average of the attribute column with this index (computed as
    /// SUM/COUNT from two accumulators, §5).
    Avg(usize),
}

impl Aggregate {
    /// Attribute column shipped to the GPU for this aggregate, if any.
    pub fn attr(&self) -> Option<usize> {
        match self {
            Aggregate::Count => None,
            Aggregate::Sum(a) | Aggregate::Avg(a) => Some(*a),
        }
    }
}

/// A spatial aggregation query.
#[derive(Debug, Clone)]
pub struct Query {
    pub aggregate: Aggregate,
    /// Conjunctive attribute constraints (§5 "Query Parameters").
    pub predicates: Vec<Predicate>,
    /// Hausdorff error bound ε in world units — bounded variant only
    /// (§4.2). Paper defaults: 10 m for NYC, 1 km for US counties.
    pub epsilon: f64,
}

impl Query {
    pub fn count() -> Self {
        Query {
            aggregate: Aggregate::Count,
            predicates: Vec::new(),
            epsilon: 10.0,
        }
    }

    pub fn sum(attr: usize) -> Self {
        Query {
            aggregate: Aggregate::Sum(attr),
            ..Query::count()
        }
    }

    pub fn avg(attr: usize) -> Self {
        Query {
            aggregate: Aggregate::Avg(attr),
            ..Query::count()
        }
    }

    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "ε must be positive");
        self.epsilon = epsilon;
        self
    }

    pub fn with_predicates(mut self, preds: Vec<Predicate>) -> Self {
        assert!(
            preds.len() <= raster_data::filter::MAX_CONSTRAINTS,
            "at most {} constraints (§6.1)",
            raster_data::filter::MAX_CONSTRAINTS
        );
        self.predicates = preds;
        self
    }

    /// Number of attribute columns that must be transferred with the
    /// points: filter attributes plus the aggregated attribute (§5).
    pub fn attrs_uploaded(&self) -> usize {
        self.attr_columns().len()
    }

    /// The distinct attribute columns this query touches (filter
    /// attributes plus the aggregated attribute), ascending. This is the
    /// set the streaming scan materializes — every other column is
    /// pruned and its bytes never leave the disk (§7.1: "the required
    /// columns are loaded into main memory").
    pub fn attr_columns(&self) -> Vec<usize> {
        let mut attrs = attrs_referenced(&self.predicates);
        if let Some(a) = self.aggregate.attr() {
            if !attrs.contains(&a) {
                attrs.push(a);
                attrs.sort_unstable();
            }
        }
        attrs
    }

    /// Rewrite the query's attribute indices into positions within
    /// `columns` — the column order of a projected table that
    /// materializes exactly those attribute columns (ascending, a
    /// superset of [`Query::attr_columns`]). The streaming executor
    /// pairs this with a column-pruned reader so predicates and the
    /// aggregate address the pruned table correctly.
    ///
    /// Panics if the query references an attribute not in `columns`.
    pub fn project_attrs(&self, columns: &[usize]) -> Query {
        let pos = |a: usize| {
            columns
                .iter()
                .position(|&c| c == a)
                .unwrap_or_else(|| panic!("attribute column {a} is not in the projection"))
        };
        Query {
            aggregate: match self.aggregate {
                Aggregate::Count => Aggregate::Count,
                Aggregate::Sum(a) => Aggregate::Sum(pos(a)),
                Aggregate::Avg(a) => Aggregate::Avg(pos(a)),
            },
            predicates: self
                .predicates
                .iter()
                .map(|p| Predicate::new(pos(p.attr), p.op, p.value))
                .collect(),
            epsilon: self.epsilon,
        }
    }
}

/// Result of one join execution: the raw COUNT/SUM accumulators per
/// polygon plus execution statistics.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    pub counts: Vec<u64>,
    pub sums: Vec<f64>,
    pub stats: ExecStats,
}

impl JoinOutput {
    /// Final per-polygon aggregate values.
    pub fn values(&self, agg: Aggregate) -> Vec<f64> {
        match agg {
            Aggregate::Count => self.counts.iter().map(|&c| c as f64).collect(),
            Aggregate::Sum(_) => self.sums.clone(),
            Aggregate::Avg(_) => self
                .counts
                .iter()
                .zip(&self.sums)
                .map(|(&c, &s)| if c == 0 { 0.0 } else { s / c as f64 })
                .collect(),
        }
    }

    /// Total count over all polygons (diagnostics).
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Shared sizing rule: the result arrays are indexed by polygon ID, so
/// their length is `max(id) + 1`.
pub fn result_slots(polys: &[raster_geom::Polygon]) -> usize {
    polys.iter().map(|p| p.id() as usize + 1).max().unwrap_or(0)
}

/// Folds per-chunk [`JoinOutput`]s of one query into the final answer —
/// the §5 combination rule for distributive aggregates: COUNT and SUM
/// accumulators add slot-wise, and the algebraic AVG derives from the
/// merged accumulators via [`JoinOutput::values`]. Every chunked scan
/// (the streaming executor, the Fig. 13 experiment, SQL over a file
/// source) merges through here, so none of them can drop an accumulator —
/// the original Fig. 13 loop folded only `counts` and silently zeroed
/// every SUM/AVG answer over chunked streams.
///
/// [`ExecStats`] fold additively for the per-chunk quantities (times,
/// bytes, batches, passes, work counters); the per-query preparation
/// times (`triangulation`, `index_build`) take the maximum, since a
/// prepared chunk loop reports the same one-off preparation each chunk.
///
/// `fold` is order-sensitive for the f32-accumulated SUM/AVG slots:
/// floating-point addition does not associate, so callers that fold the
/// same chunks in a different order get (tolerably) different sums. The
/// chunk-parallel streaming executor therefore never folds results in
/// completion order — workers tag each chunk with its sequence number
/// and a reorder buffer feeds this merger in ascending chunk order, which
/// is what makes the pool's sums *bitwise* equal to the sequential scan's
/// (the determinism rule in `stream.rs`).
#[derive(Debug, Clone)]
pub struct AggregateMerger {
    counts: Vec<u64>,
    sums: Vec<f64>,
    stats: ExecStats,
    chunks: u32,
}

impl AggregateMerger {
    /// A merger for `nslots` result slots (see [`result_slots`]).
    pub fn new(nslots: usize) -> Self {
        AggregateMerger {
            counts: vec![0; nslots],
            sums: vec![0.0; nslots],
            stats: ExecStats::default(),
            chunks: 0,
        }
    }

    /// Fold one chunk's output in. Panics if the chunk's result arrays
    /// are longer than the merger's (shorter is fine: an executor given a
    /// polygon subset still merges correctly).
    pub fn fold(&mut self, out: &JoinOutput) {
        assert!(
            out.counts.len() <= self.counts.len() && out.sums.len() <= self.sums.len(),
            "chunk output has more result slots than the merger"
        );
        for (acc, &c) in self.counts.iter_mut().zip(&out.counts) {
            *acc += c;
        }
        for (acc, &s) in self.sums.iter_mut().zip(&out.sums) {
            *acc += s;
        }
        let s = &mut self.stats;
        let o = &out.stats;
        s.processing += o.processing;
        s.transfer += o.transfer;
        s.disk += o.disk;
        s.upload_bytes += o.upload_bytes;
        s.download_bytes += o.download_bytes;
        s.binning += o.binning;
        s.shard_merge += o.shard_merge;
        s.binned_points += o.binned_points;
        s.point_stage += o.point_stage;
        s.polygon_stage += o.polygon_stage;
        s.batches += o.batches;
        s.passes += o.passes;
        s.pip_tests += o.pip_tests;
        s.fragments += o.fragments;
        s.materialized_pairs += o.materialized_pairs;
        s.candidate_pairs += o.candidate_pairs;
        s.triangulation = s.triangulation.max(o.triangulation);
        s.index_build = s.index_build.max(o.index_build);
        self.chunks += 1;
    }

    /// Chunks folded so far.
    pub fn chunks(&self) -> u32 {
        self.chunks
    }

    /// The merged result.
    pub fn finish(self) -> JoinOutput {
        JoinOutput {
            counts: self.counts,
            sums: self.sums,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_data::filter::CmpOp;

    #[test]
    fn aggregate_attr_extraction() {
        assert_eq!(Aggregate::Count.attr(), None);
        assert_eq!(Aggregate::Sum(2).attr(), Some(2));
        assert_eq!(Aggregate::Avg(0).attr(), Some(0));
    }

    #[test]
    fn attrs_uploaded_counts_filters_and_aggregate() {
        let q = Query::avg(0).with_predicates(vec![
            Predicate::new(1, CmpOp::Gt, 0.0),
            Predicate::new(0, CmpOp::Lt, 5.0),
        ]);
        // attrs {0, 1}: aggregate attr 0 coincides with a filter attr.
        assert_eq!(q.attrs_uploaded(), 2);
        assert_eq!(Query::count().attrs_uploaded(), 0);
        assert_eq!(Query::sum(3).attrs_uploaded(), 1);
    }

    #[test]
    fn attr_columns_is_the_sorted_union() {
        let q = Query::avg(1).with_predicates(vec![
            Predicate::new(4, CmpOp::Gt, 0.0),
            Predicate::new(0, CmpOp::Lt, 5.0),
        ]);
        assert_eq!(q.attr_columns(), vec![0, 1, 4]);
        assert!(Query::count().attr_columns().is_empty());
        assert_eq!(Query::sum(3).attr_columns(), vec![3]);
        // Aggregate attr coinciding with a filter attr is not duplicated.
        let q = Query::sum(2).with_predicates(vec![Predicate::new(2, CmpOp::Gt, 0.0)]);
        assert_eq!(q.attr_columns(), vec![2]);
    }

    #[test]
    fn project_attrs_remaps_into_projected_positions() {
        let q = Query::avg(4).with_predicates(vec![Predicate::new(1, CmpOp::Lt, 9.0)]);
        // A pruned table materializing stored columns {1, 4} holds them
        // at positions 0 and 1.
        let p = q.project_attrs(&[1, 4]);
        assert_eq!(p.aggregate, Aggregate::Avg(1));
        assert_eq!(p.predicates, vec![Predicate::new(0, CmpOp::Lt, 9.0)]);
        assert_eq!(p.epsilon, q.epsilon);
        // COUNT with no predicates projects to itself.
        let c = Query::count().project_attrs(&[]);
        assert_eq!(c.aggregate, Aggregate::Count);
        assert!(c.predicates.is_empty());
    }

    #[test]
    #[should_panic(expected = "not in the projection")]
    fn project_attrs_rejects_uncovered_attributes() {
        let _ = Query::sum(3).project_attrs(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_constraints_rejected() {
        let preds = (0..6).map(|i| Predicate::new(i, CmpOp::Gt, 0.0)).collect();
        let _ = Query::count().with_predicates(preds);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_epsilon_rejected() {
        let _ = Query::count().with_epsilon(0.0);
    }

    #[test]
    fn merger_folds_counts_sums_and_stats() {
        use std::time::Duration;
        let chunk = |c: Vec<u64>, s: Vec<f64>, ms: u64| JoinOutput {
            counts: c,
            sums: s,
            stats: ExecStats {
                processing: Duration::from_millis(ms),
                triangulation: Duration::from_millis(7),
                batches: 1,
                passes: 2,
                ..ExecStats::default()
            },
        };
        let mut m = AggregateMerger::new(3);
        m.fold(&chunk(vec![1, 0, 2], vec![0.5, 0.0, 2.0], 10));
        m.fold(&chunk(vec![0, 3, 1], vec![0.0, 3.0, 1.0], 20));
        assert_eq!(m.chunks(), 2);
        let out = m.finish();
        assert_eq!(out.counts, vec![1, 3, 3]);
        assert_eq!(out.sums, vec![0.5, 3.0, 3.0]);
        // AVG derives from the merged accumulators (the Fig. 13 bug:
        // dropping sums made every chunked AVG zero).
        assert_eq!(out.values(Aggregate::Avg(0)), vec![0.5, 1.0, 1.0]);
        assert_eq!(out.stats.processing, Duration::from_millis(30));
        // One-off preparation is not double-counted across chunks.
        assert_eq!(out.stats.triangulation, Duration::from_millis(7));
        assert_eq!(out.stats.batches, 2);
        assert_eq!(out.stats.passes, 4);
    }

    #[test]
    fn merger_accepts_shorter_chunk_outputs() {
        let mut m = AggregateMerger::new(3);
        m.fold(&JoinOutput {
            counts: vec![5],
            sums: vec![1.5],
            stats: ExecStats::default(),
        });
        let out = m.finish();
        assert_eq!(out.counts, vec![5, 0, 0]);
        assert_eq!(out.sums, vec![1.5, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "more result slots")]
    fn merger_rejects_oversized_chunks() {
        let mut m = AggregateMerger::new(1);
        m.fold(&JoinOutput {
            counts: vec![1, 2],
            sums: vec![0.0, 0.0],
            stats: ExecStats::default(),
        });
    }

    #[test]
    fn values_for_each_aggregate() {
        let out = JoinOutput {
            counts: vec![2, 0, 4],
            sums: vec![10.0, 0.0, 2.0],
            stats: ExecStats::default(),
        };
        assert_eq!(out.values(Aggregate::Count), vec![2.0, 0.0, 4.0]);
        assert_eq!(out.values(Aggregate::Sum(0)), vec![10.0, 0.0, 2.0]);
        assert_eq!(out.values(Aggregate::Avg(0)), vec![5.0, 0.0, 0.5]);
        assert_eq!(out.total_count(), 6);
    }
}
