//! Result-range estimation for the bounded raster join (§5, "Estimating
//! the Result Range").
//!
//! Only boundary pixels contribute approximation error, so counting the
//! points they hold bounds the result:
//!
//! * **Worst case** (100% confidence): every point in a false-positive
//!   pixel may be an overcount and every point in a false-negative pixel
//!   may be an undercount → `[A − ε⁺, A + ε⁻]`.
//! * **Expected**: assuming uniform point placement within a pixel, weight
//!   each boundary pixel by the fraction of its area on the relevant side
//!   of the polygon boundary. (The paper's formula as printed weights P⁺
//!   pixels by the *covered* fraction `f`; the statistically consistent
//!   overcount weight is the *uncovered* fraction `1 − f`, which is what
//!   we implement — it reproduces the tight intervals of Fig. 12c.)
//!
//! False-positive pixels are found by drawing the outline (they are
//! rasterized pixels crossed by the boundary); false-negative pixels are
//! outline pixels whose center falls outside the polygon — exactly the
//! conservative-minus-regular rasterization the paper computes with
//! `GL_NV_conservative_raster` (§6.1).

use crate::query::Query;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::clip::coverage_fraction;
use raster_geom::hausdorff::resolution_for_epsilon;
use raster_geom::Polygon;
use raster_gpu::exec::{default_workers, parallel_dynamic, parallel_ranges};
use raster_gpu::raster::rasterize_segment_conservative;
use raster_gpu::{Device, PointFbo, Viewport};
use std::collections::HashSet;

/// Per-polygon result interval for a COUNT query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultRange {
    /// The approximate aggregate `A[i]` this range qualifies.
    pub value: f64,
    /// 100%-confidence interval `[A − ε⁺, A + ε⁻]`.
    pub worst_lo: f64,
    pub worst_hi: f64,
    /// Expected interval under within-pixel uniformity.
    pub expected_lo: f64,
    pub expected_hi: f64,
}

impl ResultRange {
    /// Whether `exact` falls within the 100%-confidence interval.
    pub fn worst_contains(&self, exact: f64) -> bool {
        exact >= self.worst_lo - 1e-9 && exact <= self.worst_hi + 1e-9
    }

    pub fn expected_width(&self) -> f64 {
        self.expected_hi - self.expected_lo
    }

    pub fn worst_width(&self) -> f64 {
        self.worst_hi - self.worst_lo
    }
}

/// Compute the bounded-join COUNT per polygon together with its result
/// ranges. Uses the same canvas geometry as
/// [`crate::bounded::BoundedRasterJoin`], so `value` here equals the
/// bounded join's count.
pub fn estimate_count_ranges(
    points: &PointTable,
    polys: &[Polygon],
    query: &Query,
    device: &Device,
    workers: usize,
) -> Vec<ResultRange> {
    estimate_ranges_impl(points, polys, query, device, workers, None)
}

/// The §5 extension: "The corresponding intervals for sum and average can
/// be computed in a similar fashion." Same boundary-pixel machinery as
/// [`estimate_count_ranges`], but the FBO channel carries Σattr, so the
/// corrections bound the SUM aggregate.
pub fn estimate_sum_ranges(
    points: &PointTable,
    polys: &[Polygon],
    query: &Query,
    attr: usize,
    device: &Device,
    workers: usize,
) -> Vec<ResultRange> {
    estimate_ranges_impl(points, polys, query, device, workers, Some(attr))
}

/// AVG interval from a SUM and a COUNT interval over the same polygon:
/// the extreme ratios of the two 100%-confidence boxes (and likewise for
/// the expected pair). Lower bounds clamp at zero — a sum of a
/// non-negative attribute cannot go negative.
pub fn avg_range(sum: &ResultRange, count: &ResultRange) -> ResultRange {
    let ratio = |s: f64, c: f64| if c <= 0.0 { 0.0 } else { (s / c).max(0.0) };
    ResultRange {
        value: ratio(sum.value, count.value),
        worst_lo: ratio(sum.worst_lo.max(0.0), count.worst_hi),
        worst_hi: ratio(sum.worst_hi, count.worst_lo.max(1.0)),
        expected_lo: ratio(sum.expected_lo.max(0.0), count.expected_hi),
        expected_hi: ratio(sum.expected_hi, count.expected_lo.max(1.0)),
    }
}

fn estimate_ranges_impl(
    points: &PointTable,
    polys: &[Polygon],
    query: &Query,
    device: &Device,
    workers: usize,
    attr: Option<usize>,
) -> Vec<ResultRange> {
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    };
    let nslots = crate::query::result_slots(polys);
    let mut out = vec![
        ResultRange {
            value: 0.0,
            worst_lo: 0.0,
            worst_hi: 0.0,
            expected_lo: 0.0,
            expected_hi: 0.0,
        };
        nslots
    ];
    if polys.is_empty() {
        return out;
    }
    let extent = crate::bounded::polygon_extent(polys);
    let (w, h) = resolution_for_epsilon(&extent, query.epsilon);
    let full = Viewport::new(extent, w, h);
    let tiles = full.split(device.config().max_fbo_dim);
    let preds = &query.predicates;

    // Accumulators per polygon: A, ε⁺/ε⁻ worst, ε⁺/ε⁻ expected.
    let a = raster_gpu::AtomicF64Array::new(nslots);
    let worst_plus = raster_gpu::AtomicF64Array::new(nslots);
    let worst_minus = raster_gpu::AtomicF64Array::new(nslots);
    let exp_plus = raster_gpu::AtomicF64Array::new(nslots);
    let exp_minus = raster_gpu::AtomicF64Array::new(nslots);
    let tris = raster_geom::triangulate::triangulate_all(polys);

    for vp in &tiles {
        let fbo = PointFbo::new(vp.width, vp.height);
        // Draw points (same as the bounded pipeline); the sum channel
        // carries the aggregated attribute when one is requested.
        parallel_ranges(points.len(), workers, |s, e| {
            for i in s..e {
                if !preds.is_empty() && !passes(points, i, preds) {
                    continue;
                }
                if let Some((x, y)) = vp.pixel_of(points.point(i)) {
                    let v = attr.map_or(0.0, |c| points.attr(c)[i]);
                    fbo.blend_add(x, y, v);
                }
            }
        });

        // Draw polygons for A.
        parallel_dynamic(tris.len(), workers, 16, |ti| {
            let t = &tris[ti];
            let mut acc = 0f64;
            raster_gpu::raster::rasterize_triangle_spans(
                [vp.to_screen(t.a), vp.to_screen(t.b), vp.to_screen(t.c)],
                vp.width,
                vp.height,
                |y, x0, x1| {
                    acc += match attr {
                        Some(_) => fbo.span_totals(y, x0, x1).1,
                        None => fbo.span_count(y, x0, x1) as f64,
                    };
                },
            );
            if acc != 0.0 {
                a.add(t.poly_id as usize, acc);
            }
        });

        // Boundary-pixel corrections, polygon by polygon.
        parallel_dynamic(polys.len(), workers, 2, |pi| {
            let poly = &polys[pi];
            let id = poly.id() as usize;
            let mut seen: HashSet<(u32, u32)> = HashSet::new();
            for (ea, eb) in poly.all_edges() {
                let sa = vp.to_screen(ea);
                let sb = vp.to_screen(eb);
                rasterize_segment_conservative(sa, sb, vp.width, vp.height, |x, y| {
                    seen.insert((x, y));
                });
            }
            let mut wp = 0.0f64; // worst ε⁺ (false positives → subtract)
            let mut wm = 0.0f64; // worst ε⁻ (false negatives → add)
            let mut ep = 0.0f64;
            let mut em = 0.0f64;
            for (x, y) in seen {
                let cnt = match attr {
                    Some(_) => fbo.sum_at(x, y) as f64,
                    None => fbo.count_at(x, y) as f64,
                };
                if cnt == 0.0 {
                    continue;
                }
                let center = vp.pixel_center(x, y);
                let f = coverage_fraction(&vp.pixel_bbox(x, y), poly.outer().points());
                if poly.contains(center) {
                    // Rasterized pixel straddling the boundary: its points
                    // outside the polygon are false positives.
                    wp += cnt;
                    ep += (1.0 - f).clamp(0.0, 1.0) * cnt;
                } else if f > 0.0 {
                    // Partially covered, not rasterized: false negatives.
                    wm += cnt;
                    em += f.min(1.0) * cnt;
                }
            }
            if wp > 0.0 {
                worst_plus.add(id, wp);
                exp_plus.add(id, ep);
            }
            if wm > 0.0 {
                worst_minus.add(id, wm);
                exp_minus.add(id, em);
            }
        });
    }

    for (i, slot) in out.iter_mut().enumerate().take(nslots) {
        let val = a.get(i);
        *slot = ResultRange {
            value: val,
            worst_lo: val - worst_plus.get(i),
            worst_hi: val + worst_minus.get(i),
            expected_lo: val - exp_plus.get(i),
            expected_hi: val + exp_minus.get(i),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accurate::AccurateRasterJoin;
    use crate::bounded::BoundedRasterJoin;
    use raster_data::generators::{nyc_extent, uniform_points};
    use raster_data::polygons::synthetic_polygons;

    #[test]
    fn value_matches_bounded_join() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(6, &extent, 50);
        let pts = uniform_points(2_000, &extent, 51);
        let q = Query::count().with_epsilon(400.0);
        let dev = Device::default();
        let ranges = estimate_count_ranges(&pts, &polys, &q, &dev, 4);
        let bounded = BoundedRasterJoin::new(4).execute(&pts, &polys, &q, &dev);
        for (i, r) in ranges.iter().enumerate() {
            assert_eq!(r.value, bounded.counts[i] as f64, "polygon {i}");
        }
    }

    #[test]
    fn worst_case_interval_contains_exact_answer() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, 52);
        let pts = uniform_points(3_000, &extent, 53);
        // Coarse ε so the intervals are non-trivial.
        let q = Query::count().with_epsilon(800.0);
        let dev = Device::default();
        let ranges = estimate_count_ranges(&pts, &polys, &q, &dev, 4);
        let exact = AccurateRasterJoin::new(4).execute(&pts, &polys, &Query::count(), &dev);
        for (i, r) in ranges.iter().enumerate() {
            assert!(
                r.worst_contains(exact.counts[i] as f64),
                "polygon {i}: exact {} outside [{}, {}] (A = {})",
                exact.counts[i],
                r.worst_lo,
                r.worst_hi,
                r.value
            );
        }
    }

    #[test]
    fn expected_interval_is_nested_in_worst_case() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(5, &extent, 54);
        let pts = uniform_points(2_000, &extent, 55);
        let q = Query::count().with_epsilon(700.0);
        let ranges = estimate_count_ranges(&pts, &polys, &q, &Device::default(), 4);
        for r in &ranges {
            assert!(r.expected_lo >= r.worst_lo - 1e-9);
            assert!(r.expected_hi <= r.worst_hi + 1e-9);
            assert!(r.expected_width() <= r.worst_width() + 1e-9);
        }
    }

    #[test]
    fn sum_value_matches_bounded_join() {
        use raster_data::generators::TaxiModel;
        let polys = synthetic_polygons(5, &nyc_extent(), 60);
        let pts = TaxiModel::default().generate(2_000, 61);
        let fare = pts.attr_index("fare").unwrap();
        let q = Query::sum(fare).with_epsilon(400.0);
        let dev = Device::default();
        let ranges = estimate_sum_ranges(&pts, &polys, &q, fare, &dev, 4);
        let bounded = BoundedRasterJoin::new(4).execute(&pts, &polys, &q, &dev);
        for (i, r) in ranges.iter().enumerate() {
            assert!(
                (r.value - bounded.sums[i]).abs() < 1e-6 * bounded.sums[i].abs().max(1.0),
                "polygon {i}: {} vs {}",
                r.value,
                bounded.sums[i]
            );
        }
    }

    #[test]
    fn sum_worst_case_contains_exact_sum() {
        use raster_data::generators::TaxiModel;
        let polys = synthetic_polygons(6, &nyc_extent(), 62);
        let pts = TaxiModel::default().generate(2_500, 63);
        let fare = pts.attr_index("fare").unwrap();
        let q = Query::sum(fare).with_epsilon(800.0);
        let dev = Device::default();
        let ranges = estimate_sum_ranges(&pts, &polys, &q, fare, &dev, 4);
        let exact = AccurateRasterJoin::new(4).execute(&pts, &polys, &Query::sum(fare), &dev);
        for (i, r) in ranges.iter().enumerate() {
            assert!(
                r.worst_contains(exact.sums[i]),
                "polygon {i}: exact {} outside [{}, {}]",
                exact.sums[i],
                r.worst_lo,
                r.worst_hi
            );
            assert!(r.expected_lo >= r.worst_lo - 1e-9);
            assert!(r.expected_hi <= r.worst_hi + 1e-9);
        }
    }

    #[test]
    fn avg_range_contains_exact_average() {
        use raster_data::generators::TaxiModel;
        let polys = synthetic_polygons(5, &nyc_extent(), 64);
        let pts = TaxiModel::default().generate(2_500, 65);
        let fare = pts.attr_index("fare").unwrap();
        let q = Query::count().with_epsilon(800.0);
        let dev = Device::default();
        let counts = estimate_count_ranges(&pts, &polys, &q, &dev, 4);
        let sums = estimate_sum_ranges(
            &pts,
            &polys,
            &Query::sum(fare).with_epsilon(800.0),
            fare,
            &dev,
            4,
        );
        let exact = AccurateRasterJoin::new(4).execute(&pts, &polys, &Query::avg(fare), &dev);
        let exact_avg = exact.values(crate::query::Aggregate::Avg(fare));
        for i in 0..counts.len() {
            if exact.counts[i] == 0 {
                continue;
            }
            let r = avg_range(&sums[i], &counts[i]);
            assert!(
                r.worst_contains(exact_avg[i]),
                "polygon {i}: avg {} outside [{}, {}]",
                exact_avg[i],
                r.worst_lo,
                r.worst_hi
            );
        }
    }

    #[test]
    fn intervals_shrink_with_epsilon() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(4, &extent, 56);
        let pts = uniform_points(2_000, &extent, 57);
        let dev = Device::default();
        let coarse =
            estimate_count_ranges(&pts, &polys, &Query::count().with_epsilon(1_000.0), &dev, 4);
        let fine =
            estimate_count_ranges(&pts, &polys, &Query::count().with_epsilon(100.0), &dev, 4);
        let wc: f64 = coarse.iter().map(ResultRange::worst_width).sum();
        let wf: f64 = fine.iter().map(ResultRange::worst_width).sum();
        assert!(wf < wc, "finer ε must tighten intervals: {wf} !< {wc}");
    }
}
