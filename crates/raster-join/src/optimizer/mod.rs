//! The query planner (§8, "Choosing Between the two Raster Variants",
//! grown into a cost-based planner over the full physical plan space).
//!
//! The paper observes that a very small ε can make the bounded variant
//! slower than the accurate one (the rendering-pass count grows
//! quadratically, Fig. 12a) and proposes adding "an estimate of the time
//! required for the two variants, so that an optimizer can choose the
//! best option based on the input query". This module implements that
//! optimizer — and extends it from a two-way variant choice to a plan
//! space that covers every knob the PR-1 pipeline exposed:
//!
//! # Plan space
//!
//! A [`Plan`] is a point in
//!
//! ```text
//! {Bounded, Accurate} × RasterConfig { binning, sharding } × batch size
//! ```
//!
//! plus the accurate variant's canvas/index resolutions and the worker
//! count. [`plan_workload`] enumerates the candidates (bounded: all four
//! binning × sharding combinations; accurate: sharding on/off — it has no
//! tiles to bin; batch sizes: device-capacity fill plus a half-capacity
//! alternative when the workload is out-of-core; worker counts: halving
//! steps from the available pool down to 1, costed with the
//! amortization/contention scaling in [`cost`]), costs each with the
//! per-stage model of [`cost`], and ranks them. For streaming scans the
//! chosen `Plan::workers` is the *chunk pool* width (each chunk's join
//! runs single-threaded — see `stream.rs`); for in-memory execution it is
//! the intra-batch fan-out.
//!
//! # Cost model and calibration
//!
//! Costs are `dot(weights, features)` over per-stage work counts (see
//! [`cost`] for the feature definitions). The weights come from, in order
//! of preference:
//!
//! 1. a fitted [`Calibration`] (the `bench_planner` binary measures a
//!    micro-workload grid, fits the weights by ridge least squares and
//!    serializes them — see [`calibration`] for the file format);
//! 2. the built-in constants ([`cost::Weights::BUILTIN`]), hand-tuned
//!    against this reproduction's Fig. 8/12a measurements.
//!
//! On top of either, [`AutoRasterJoin`] records every execution's
//! predicted-vs-actual cost and folds it back into the calibration as a
//! per-plan-key multiplicative correction (online reweighting,
//! [`Calibration::observe`]), exposing the full [`Decision`] history via
//! [`AutoRasterJoin::decision_trace`].
//!
//! # Selectivity
//!
//! Both variants apply the filter predicates before any raster work, so
//! the model costs the *surviving* points: [`cost::Workload::sample`]
//! estimates the predicate pass rate (and the in-extent rate) from a
//! deterministic evenly-spaced sample of ≤ 1024 rows. Feeding the model
//! raw `points.len()` — the pre-calibration behaviour — made highly
//! selective queries look bounded-friendly even when the fixed raster
//! costs dominated.

pub mod calibration;
pub mod cost;

pub use calibration::{Calibration, KEY_NAMES, NKEYS};
pub use cost::{effective_key, features, PlanShape, Weights, Workload, NWEIGHTS, WEIGHT_NAMES};

use crate::query::{JoinOutput, Query};
use crate::{AccurateRasterJoin, BoundedRasterJoin};
use parking_lot::Mutex;
use raster_data::PointTable;
use raster_geom::Polygon;
use raster_gpu::exec::default_workers;
use raster_gpu::{Device, RasterConfig};
use std::time::Duration;

/// Which operator a plan runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Bounded,
    Accurate,
}

/// One point of the physical plan space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    pub variant: Variant,
    /// Pipeline toggles (the accurate variant ignores `binning`).
    pub config: RasterConfig,
    /// Points per out-of-core batch (capped by the device budget at
    /// execution time).
    pub batch_points: usize,
    /// Accurate-variant canvas resolution per axis.
    pub canvas_dim: u32,
    /// Accurate-variant grid-index resolution per axis.
    pub index_dim: u32,
    pub workers: usize,
}

impl Plan {
    /// Dense encoding `variant*4 + binning*2 + sharding` — the index into
    /// the calibration's per-key corrections ([`KEY_NAMES`]).
    pub fn key(&self) -> usize {
        let v = match self.variant {
            Variant::Bounded => 0,
            Variant::Accurate => 4,
        };
        v + (self.config.binning as usize) * 2 + self.config.sharding as usize
    }

    /// Stable name of this plan's key.
    pub fn key_name(&self) -> &'static str {
        KEY_NAMES[self.key()]
    }

    /// Human-readable one-liner for EXPLAIN output and traces.
    pub fn describe(&self) -> String {
        match self.variant {
            Variant::Bounded => format!(
                "BOUNDED raster join [binning={}, sharding={}, batch={}, workers={}]",
                onoff(self.config.binning),
                onoff(self.config.sharding),
                self.batch_points,
                self.workers
            ),
            Variant::Accurate => format!(
                "ACCURATE raster join [sharding={}, canvas={}, index={}, batch={}, workers={}]",
                onoff(self.config.sharding),
                self.canvas_dim,
                self.index_dim,
                self.batch_points,
                self.workers
            ),
        }
    }

    /// The bounded executor this plan configures, with `batch_points`
    /// overriding the plan's own batch size (chunked scans batch by
    /// chunk). The single source of the plan→executor field mapping,
    /// shared by [`Plan::execute`] and the streaming executor.
    pub fn bounded_executor(&self, batch_points: usize) -> BoundedRasterJoin {
        BoundedRasterJoin {
            workers: self.workers,
            config: self.config,
            batch_points: Some(batch_points),
        }
    }

    /// The accurate executor this plan configures (see
    /// [`Plan::bounded_executor`]); the accurate variant never bins — its
    /// canvas is a single FBO.
    pub fn accurate_executor(&self, batch_points: usize) -> AccurateRasterJoin {
        AccurateRasterJoin {
            workers: self.workers,
            canvas_dim: self.canvas_dim,
            index_dim: self.index_dim,
            config: RasterConfig {
                binning: false,
                sharding: self.config.sharding,
            },
            batch_points: Some(batch_points),
            ..Default::default()
        }
    }

    /// Run exactly this plan. [`AutoRasterJoin::execute`] goes through
    /// here, so a caller can re-run the returned plan and get the same
    /// execution.
    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> JoinOutput {
        match self.variant {
            Variant::Bounded => self
                .bounded_executor(self.batch_points)
                .execute(points, polys, query, device),
            Variant::Accurate => self
                .accurate_executor(self.batch_points)
                .execute(points, polys, query, device),
        }
    }
}

fn onoff(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}

/// One costed candidate plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    pub plan: Plan,
    /// Corrected predicted cost (the ranking criterion).
    pub cost: f64,
    /// Uncorrected model cost (what feedback ratios are measured against).
    pub raw: f64,
    pub shape: PlanShape,
}

/// The planner's output: every candidate, cheapest first.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// Candidates sorted by ascending predicted cost (ties keep
    /// enumeration order, which lists capacity-filling batches first) —
    /// except that the near-tie rule may promote a simpler plan from
    /// within 5% of the cheapest to the front; the remainder stays
    /// cheapest-first.
    pub candidates: Vec<PlanCost>,
    pub workload: Workload,
}

impl PlanChoice {
    pub fn best(&self) -> &PlanCost {
        &self.candidates[0]
    }

    pub fn choice(&self) -> Variant {
        self.best().plan.variant
    }

    /// Cheapest candidate running `variant`, if any was enumerated.
    /// Selected by cost, not position — the near-tie promotion can move a
    /// slightly costlier plan to the front.
    pub fn best_of(&self, variant: Variant) -> Option<&PlanCost> {
        self.candidates
            .iter()
            .filter(|c| c.plan.variant == variant)
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
    }
}

/// Enumerate and cost the plan space for a summarised workload. The free
/// function form exists so EXPLAIN (which may have a bare schema and an
/// assumed workload) and the bench harness share the planner's exact
/// ranking logic.
#[allow(clippy::too_many_arguments)]
pub fn plan_workload(
    wl: &Workload,
    query: &Query,
    device: &Device,
    cal: &Calibration,
    workers: usize,
    canvas_dim: u32,
    index_dim: u32,
    config_override: Option<RasterConfig>,
) -> PlanChoice {
    let capacity = device.points_per_batch(PointTable::point_bytes(query.attrs_uploaded()));
    let mut batches = vec![capacity];
    if wl.n_points > capacity {
        // Out-of-core: offer a half-capacity alternative (more, smaller
        // batches — the model decides whether the extra per-batch
        // overhead is worth it; ties prefer capacity fill).
        batches.push((capacity / 2).max(1));
    }

    let mut plans: Vec<Plan> = Vec::new();
    let bounded_configs: Vec<RasterConfig> = match config_override {
        Some(c) => vec![c],
        None => [(true, true), (true, false), (false, true), (false, false)]
            .iter()
            .map(|&(binning, sharding)| RasterConfig { binning, sharding })
            .collect(),
    };
    let accurate_shardings: Vec<bool> = match config_override {
        Some(c) => vec![c.sharding],
        None => vec![true, false],
    };
    // Worker counts, widest first: enumeration order breaks exact cost
    // ties toward the full pool, so worker enumeration never changes a
    // decision unless the model actually separates the counts.
    for &workers in &worker_alternatives(workers) {
        for &batch_points in &batches {
            for &config in &bounded_configs {
                plans.push(Plan {
                    variant: Variant::Bounded,
                    config,
                    batch_points,
                    canvas_dim,
                    index_dim,
                    workers,
                });
            }
            for &sharding in &accurate_shardings {
                plans.push(Plan {
                    variant: Variant::Accurate,
                    config: RasterConfig {
                        binning: false,
                        sharding,
                    },
                    batch_points,
                    canvas_dim,
                    index_dim,
                    workers,
                });
            }
        }
    }

    let mut candidates: Vec<PlanCost> = plans
        .into_iter()
        .map(|plan| {
            if wl.n_polys == 0 {
                // Degenerate: nothing to join; every plan is free.
                return PlanCost {
                    plan,
                    cost: 0.0,
                    raw: 0.0,
                    shape: PlanShape {
                        tiles: 0,
                        batches: 0,
                        passes: 0,
                        pixels: 0.0,
                        sharded: false,
                    },
                };
            }
            let sh = cost::shape(&plan, wl, device);
            let f = cost::features_for(&plan, wl, device, &sh);
            let raw = cal.raw(&f);
            // Corrections are keyed by the *effective* pipeline: two
            // config labels that resolve to the identical execution (e.g.
            // binning on a single-tile canvas) must share a correction,
            // or feedback on one would artificially split the tie.
            PlanCost {
                plan,
                cost: cal.predict(cost::effective_key_of(&plan, &sh), &f),
                raw,
                shape: sh,
            }
        })
        .collect();
    candidates.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    // Near-tie rule: the model's relative accuracy is no better than a few
    // percent, so a predicted edge inside NEAR_TIE is noise. Within that
    // band prefer the plan that engages the shard merge machinery last —
    // the simpler pipeline is the safer bet when predictions can't
    // separate them. (Enumeration order already prefers capacity-filling
    // batches on exact ties.)
    const NEAR_TIE: f64 = 1.05;
    if candidates.len() > 1 {
        let band = candidates[0].cost * NEAR_TIE;
        if let Some(simplest) = candidates
            .iter()
            .position(|c| c.cost <= band && !c.shape.sharded)
        {
            // Promote without disturbing the rest of the ordering, so
            // `runner_up` still sees the remaining candidates
            // cheapest-first (`best_of` selects by cost, not position).
            let promoted = candidates.remove(simplest);
            candidates.insert(0, promoted);
        }
    }
    PlanChoice {
        candidates,
        workload: *wl,
    }
}

/// Candidate worker counts for a pool of `max`: halving steps down to 1
/// (`[8, 4, 2, 1]` for 8). Widest first — see the enumeration-order note
/// in [`plan_workload`].
pub fn worker_alternatives(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut w = max.max(1);
    loop {
        v.push(w);
        if w == 1 {
            break;
        }
        w /= 2;
    }
    v
}

/// One planner decision plus its measured outcome.
#[derive(Debug, Clone, Copy)]
pub struct Decision {
    pub plan: Plan,
    /// Corrected predicted cost of the chosen plan.
    pub predicted: f64,
    /// Uncorrected model cost (the feedback baseline).
    pub predicted_raw: f64,
    /// The best alternative's plan and corrected cost, when more than one
    /// candidate existed.
    pub runner_up: Option<(Plan, f64)>,
    /// Measured processing time of the chosen plan (the quantity the
    /// cost model predicts; polygon preprocessing excluded as in §7.1).
    pub actual: Duration,
    /// Number of candidates considered.
    pub candidates: usize,
}

/// The auto-planning operator: summarises the workload, ranks the plan
/// space, runs the winner, and feeds the measured outcome back into its
/// calibration.
pub struct AutoRasterJoin {
    pub workers: usize,
    pub accurate_canvas_dim: u32,
    pub accurate_index_dim: u32,
    /// Restrict the plan space to one pipeline config (ablation/debug).
    pub config_override: Option<RasterConfig>,
    /// Fold each execution's predicted-vs-actual ratio back into the
    /// calibration (on by default).
    pub feedback: bool,
    calibration: Mutex<Calibration>,
    /// When set, the calibration was loaded from this file at
    /// construction and is re-saved after every feedback fold, so the
    /// per-machine corrections survive the process (the ROADMAP
    /// "persist the feedback-updated calibration" item).
    calibration_path: Option<std::path::PathBuf>,
    trace: Mutex<Vec<Decision>>,
}

impl Default for AutoRasterJoin {
    fn default() -> Self {
        AutoRasterJoin::with_calibration(Calibration::builtin())
    }
}

impl AutoRasterJoin {
    /// A planner starting from the given calibration (e.g. one loaded
    /// from `bench_planner`'s serialized output).
    pub fn with_calibration(cal: Calibration) -> Self {
        AutoRasterJoin {
            workers: default_workers(),
            accurate_canvas_dim: 2048,
            accurate_index_dim: 1024,
            config_override: None,
            feedback: true,
            calibration: Mutex::new(cal),
            calibration_path: None,
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Persist the calibration at `path` across processes: load it now if
    /// the file exists (keeping the current calibration otherwise) and
    /// re-save after every feedback fold. Save failures are reported on
    /// the next explicit [`AutoRasterJoin::persist`]; the periodic
    /// autosaves are best-effort so a read-only filesystem can't poison
    /// query execution.
    pub fn with_calibration_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        let path = path.into();
        if let Ok(cal) = Calibration::load(&path) {
            *self.calibration.lock() = cal;
        }
        self.calibration_path = Some(path);
        self
    }

    /// Write the current calibration to the configured path now.
    pub fn persist(&self) -> std::io::Result<()> {
        match &self.calibration_path {
            Some(path) => self.calibration.lock().save(path),
            None => Ok(()),
        }
    }

    fn autosave(&self) {
        if let Some(path) = &self.calibration_path {
            let _ = self.calibration.lock().save(path);
        }
    }

    /// Restrict the plan space to one pipeline config (builder form).
    pub fn with_config_override(mut self, config: RasterConfig) -> Self {
        self.config_override = Some(config);
        self
    }

    /// Toggle the online feedback loop (builder form).
    pub fn with_feedback(mut self, on: bool) -> Self {
        self.feedback = on;
        self
    }

    /// Snapshot of the current calibration (including feedback updates).
    pub fn calibration(&self) -> Calibration {
        self.calibration.lock().clone()
    }

    /// Replace the calibration wholesale.
    pub fn set_calibration(&self, cal: Calibration) {
        *self.calibration.lock() = cal;
    }

    /// Every decision taken so far, oldest first.
    pub fn decision_trace(&self) -> Vec<Decision> {
        self.trace.lock().clone()
    }

    /// Fold one externally-measured execution into the calibration — the
    /// streaming executor drives its own chunk loop and feeds each
    /// chunk's predicted-vs-actual outcome through here (honouring the
    /// `feedback` toggle). Unlike [`AutoRasterJoin::execute`] this does
    /// NOT autosave — a scan feeds once per chunk, and one file write per
    /// chunk on the consumer hot path buys nothing; loop drivers call
    /// [`AutoRasterJoin::persist`] once when their loop ends.
    pub fn feed(&self, effective_key: usize, predicted_raw: f64, actual: Duration) {
        if !self.feedback {
            return;
        }
        self.calibration
            .lock()
            .observe(effective_key, predicted_raw, actual.as_secs_f64());
    }

    /// Rank the plan space for this query without executing anything.
    pub fn plan(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> PlanChoice {
        let wl = Workload::sample(points, polys, query);
        self.plan_summary(&wl, query, device)
    }

    /// Rank the plan space for an already-summarised workload.
    pub fn plan_summary(&self, wl: &Workload, query: &Query, device: &Device) -> PlanChoice {
        let cal = self.calibration.lock();
        plan_workload(
            wl,
            query,
            device,
            &cal,
            self.workers,
            self.accurate_canvas_dim,
            self.accurate_index_dim,
            self.config_override,
        )
    }

    /// Plan, run the winner, record the decision and (when `feedback` is
    /// on) fold the predicted-vs-actual outcome into the calibration.
    /// Returns the executed plan alongside the output so callers can
    /// audit exactly what ran.
    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> (Plan, JoinOutput) {
        let choice = self.plan(points, polys, query, device);
        let best = *choice.best();
        let out = best.plan.execute(points, polys, query, device);
        // The model predicts processing time: transfer is plan-invariant
        // and polygon preprocessing (triangulation, index build) is
        // excluded from query time as in §7.1 — the features charge
        // nothing for it, so feedback must compare the same quantity.
        let actual = out.stats.processing;
        if self.feedback {
            let eff = cost::effective_key(&best.plan, &choice.workload, device);
            self.calibration
                .lock()
                .observe(eff, best.raw, actual.as_secs_f64());
            self.autosave();
        }
        self.trace.lock().push(Decision {
            plan: best.plan,
            predicted: best.cost,
            predicted_raw: best.raw,
            runner_up: choice.candidates.get(1).map(|c| (c.plan, c.cost)),
            actual,
            candidates: choice.candidates.len(),
        });
        (best.plan, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_data::filter::{CmpOp, Predicate};
    use raster_data::generators::{nyc_extent, uniform_points, TaxiModel};
    use raster_data::polygons::synthetic_polygons;
    use raster_geom::BBox;

    fn setup() -> (Vec<Polygon>, BBox) {
        let e = nyc_extent();
        (synthetic_polygons(10, &e, 3), e)
    }

    fn assumed_choice(n: usize, polys: &[Polygon], q: &Query, dev: &Device) -> PlanChoice {
        let wl = Workload::assumed(n, polys, q);
        plan_workload(&wl, q, dev, &Calibration::builtin(), 4, 2048, 1024, None)
    }

    #[test]
    fn coarse_epsilon_prefers_bounded() {
        let (polys, _) = setup();
        let dev = Device::default();
        // Large inputs are where the bounded variant's PIP-freedom pays.
        let q = Query::count().with_epsilon(20.0);
        let choice = assumed_choice(2_000_000, &polys, &q, &dev);
        assert_eq!(choice.best().shape.passes, 1);
        assert_eq!(choice.choice(), Variant::Bounded);
    }

    #[test]
    fn tiny_epsilon_prefers_accurate() {
        let (polys, _) = setup();
        let dev = Device::default();
        // ε = 0.05 m over a 58 km extent → ~1.6M px per axis → ~40k
        // passes for any bounded plan.
        let q = Query::count().with_epsilon(0.05);
        let choice = assumed_choice(1_000_000, &polys, &q, &dev);
        assert_eq!(choice.choice(), Variant::Accurate);
        let bounded = choice.best_of(Variant::Bounded).unwrap();
        assert!(bounded.shape.passes > 10_000);
    }

    #[test]
    fn bounded_cost_is_monotone_in_epsilon() {
        let (polys, _) = setup();
        let dev = Device::default();
        let coarse = assumed_choice(100_000, &polys, &Query::count().with_epsilon(20.0), &dev);
        let fine = assumed_choice(100_000, &polys, &Query::count().with_epsilon(1.0), &dev);
        let (cb, fb) = (
            coarse.best_of(Variant::Bounded).unwrap(),
            fine.best_of(Variant::Bounded).unwrap(),
        );
        assert!(fb.shape.passes > cb.shape.passes);
        assert!(fb.cost > cb.cost);
        // Accurate cost does not depend on ε.
        let (ca, fa) = (
            coarse.best_of(Variant::Accurate).unwrap(),
            fine.best_of(Variant::Accurate).unwrap(),
        );
        assert!((ca.cost - fa.cost).abs() <= 1e-9 * ca.cost.abs());
    }

    /// The selectivity regression (the old model fed raw `points.len()`
    /// into the cost even though both variants filter first): a highly
    /// selective predicate removes the point-side work where the bounded
    /// variant has the edge, leaving the resolution-bound raster costs —
    /// and those favour the accurate variant. The planner must flip.
    #[test]
    fn selective_predicate_flips_the_decision() {
        let (polys, _) = setup();
        let dev = Device::default();
        let pts = TaxiModel::default().generate(50_000, 11);
        let hour = pts.attr_index("hour").unwrap();
        // hour < 0.17 passes ~0.1% of the uniform [0, 168) hours.
        let selective = vec![Predicate::new(hour, CmpOp::Lt, 0.17)];

        // Find an ε where the full-selectivity model says Bounded; the
        // flip must then appear at the same ε once selectivity is
        // sampled. Scanning a small band keeps the test robust to the
        // synthetic polygons' exact shape statistics.
        let mut flipped = false;
        for eps in [4.0, 6.0, 8.0, 12.0, 16.0, 24.0] {
            let q_raw = Query::count().with_epsilon(eps);
            let q_sel = q_raw.clone().with_predicates(selective.clone());
            // What the pre-fix planner saw: every row survives.
            let blind = Workload::assumed(3_000_000, &polys, &q_sel);
            // What the sampling planner sees for a 3M-row table with this
            // predicate (rates sampled from the real generator output).
            let sampled = Workload {
                n_points: 3_000_000,
                ..Workload::sample(&pts, &polys, &q_sel)
            };
            assert!(sampled.selectivity < 0.02, "predicate must be selective");
            let cal = Calibration::builtin();
            let blind_choice =
                plan_workload(&blind, &q_sel, &dev, &cal, 4, 2048, 1024, None).choice();
            let sampled_choice =
                plan_workload(&sampled, &q_sel, &dev, &cal, 4, 2048, 1024, None).choice();
            if blind_choice == Variant::Bounded && sampled_choice == Variant::Accurate {
                flipped = true;
            }
            // Selectivity must never flip the other way: removing point
            // work can only hurt the point-dominant bounded variant.
            assert!(
                !(blind_choice == Variant::Accurate && sampled_choice == Variant::Bounded),
                "selectivity flipped Accurate→Bounded at ε={eps}"
            );
            let _ = q_raw;
        }
        assert!(
            flipped,
            "a highly selective predicate must flip Bounded→Accurate somewhere in the ε band"
        );
    }

    #[test]
    fn auto_join_runs_the_chosen_plan_and_reports_it() {
        let (polys, _) = setup();
        let pts = uniform_points(2_000, &nyc_extent(), 5);
        let dev = Device::default();
        let auto = AutoRasterJoin::default();
        let q = Query::count().with_epsilon(20.0);
        let advertised = auto.plan(&pts, &polys, &q, &dev).best().plan;
        let (plan, out) = auto.execute(&pts, &polys, &q, &dev);
        assert_eq!(plan, advertised, "executed plan must match the ranking");
        assert!(out.total_count() > 0);

        let (plan2, out2) = auto.execute(&pts, &polys, &Query::count().with_epsilon(0.05), &dev);
        assert_eq!(plan2.variant, Variant::Accurate);
        // The plan's canvas/index dims came from the planner, not a
        // hard-coded rebuild.
        assert_eq!(plan2.canvas_dim, auto.accurate_canvas_dim);
        assert_eq!(plan2.index_dim, auto.accurate_index_dim);
        // Accurate path is exact: compare against brute force.
        for (i, poly) in polys.iter().enumerate() {
            let truth = (0..pts.len())
                .filter(|&k| poly.contains(pts.point(k)))
                .count() as u64;
            assert_eq!(out2.counts[i], truth);
        }
    }

    #[test]
    fn feedback_and_trace_accumulate() {
        let (polys, _) = setup();
        let pts = uniform_points(3_000, &nyc_extent(), 6);
        let dev = Device::default();
        let auto = AutoRasterJoin::default();
        assert!(!auto.calibration().is_calibrated());
        for eps in [20.0, 20.0, 0.5] {
            auto.execute(&pts, &polys, &Query::count().with_epsilon(eps), &dev);
        }
        let trace = auto.decision_trace();
        assert_eq!(trace.len(), 3);
        assert!(trace.iter().all(|d| d.candidates >= 2));
        assert!(trace.iter().all(|d| d.predicted_raw > 0.0));
        let cal = auto.calibration();
        assert_eq!(cal.observations, 3);
        assert!(cal.is_calibrated());

        // Feedback off: observations stay frozen.
        let frozen = AutoRasterJoin {
            feedback: false,
            ..AutoRasterJoin::default()
        };
        frozen.execute(&pts, &polys, &Query::count().with_epsilon(20.0), &dev);
        assert_eq!(frozen.calibration().observations, 0);
        assert_eq!(frozen.decision_trace().len(), 1);
    }

    /// The ROADMAP "persist the feedback-updated calibration across
    /// processes" item: a planner with a calibration path saves after
    /// every feedback fold, and a fresh planner (a new process, as far as
    /// the file is concerned) resumes from the saved state.
    #[test]
    fn calibration_persists_across_planner_instances() {
        let (polys, _) = setup();
        let pts = uniform_points(2_000, &nyc_extent(), 9);
        let dev = Device::default();
        let path =
            std::env::temp_dir().join(format!("rjr-cal-roundtrip-{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();

        // Missing file: construction keeps the builtin calibration.
        let first = AutoRasterJoin::default().with_calibration_path(&path);
        assert!(!first.calibration().is_calibrated());
        for eps in [20.0, 20.0, 0.5] {
            first.execute(&pts, &polys, &Query::count().with_epsilon(eps), &dev);
        }
        let saved = first.calibration();
        assert_eq!(saved.observations, 3);
        drop(first);

        // "Next process": loads the feedback-updated state.
        let second = AutoRasterJoin::default().with_calibration_path(&path);
        let resumed = second.calibration();
        assert_eq!(resumed.observations, saved.observations);
        for k in 0..NKEYS {
            assert!(
                (resumed.scale[k] - saved.scale[k]).abs() <= 1e-9 * saved.scale[k].abs(),
                "scale {k} must survive the round trip"
            );
        }
        // feed() accumulates without touching disk (a chunk loop feeds
        // per chunk; one write per chunk would be waste) — persist()
        // flushes explicitly, as the streaming executor does per scan.
        second.feed(0, 100.0, Duration::from_millis(5));
        let unflushed = AutoRasterJoin::default().with_calibration_path(&path);
        assert_eq!(unflushed.calibration().observations, 3);
        second.persist().unwrap();
        let third = AutoRasterJoin::default().with_calibration_path(&path);
        assert_eq!(third.calibration().observations, 4);

        // Feedback off: feed() is inert.
        let frozen = AutoRasterJoin::default()
            .with_feedback(false)
            .with_calibration_path(&path);
        frozen.feed(0, 100.0, Duration::from_millis(5));
        assert_eq!(frozen.calibration().observations, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_override_restricts_the_plan_space() {
        let (polys, _) = setup();
        let pts = uniform_points(1_000, &nyc_extent(), 7);
        let dev = Device::default();
        for &(binning, sharding) in &[(false, false), (true, false), (false, true), (true, true)] {
            let auto = AutoRasterJoin {
                config_override: Some(RasterConfig { binning, sharding }),
                ..AutoRasterJoin::default()
            };
            let choice = auto.plan(&pts, &polys, &Query::count().with_epsilon(20.0), &dev);
            for c in &choice.candidates {
                match c.plan.variant {
                    Variant::Bounded => {
                        assert_eq!(c.plan.config, RasterConfig { binning, sharding })
                    }
                    Variant::Accurate => {
                        assert!(!c.plan.config.binning);
                        assert_eq!(c.plan.config.sharding, sharding);
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_core_workloads_enumerate_batch_alternatives() {
        let (polys, _) = setup();
        let q = Query::count().with_epsilon(20.0);
        let wl = Workload::assumed(1_000_000, &polys, &q);
        // Budget of ~200k points forces 5 batches at capacity fill.
        let dev = Device::new(raster_gpu::DeviceConfig::small(
            200_000 * PointTable::point_bytes(0),
            8192,
        ));
        let choice = plan_workload(&wl, &q, &dev, &Calibration::builtin(), 4, 2048, 1024, None);
        let sizes: std::collections::BTreeSet<usize> = choice
            .candidates
            .iter()
            .map(|c| c.plan.batch_points)
            .collect();
        assert_eq!(sizes.len(), 2, "capacity and half-capacity candidates");
        // Fewer, larger batches carry less per-batch overhead: the best
        // plan fills the device budget.
        assert_eq!(
            choice.best().plan.batch_points,
            *sizes.iter().max().unwrap()
        );
        assert!(choice.best().shape.batches >= 5);
    }

    #[test]
    fn planner_enumerates_halving_worker_counts() {
        assert_eq!(worker_alternatives(8), vec![8, 4, 2, 1]);
        assert_eq!(worker_alternatives(6), vec![6, 3, 1]);
        assert_eq!(worker_alternatives(1), vec![1]);
        assert_eq!(worker_alternatives(0), vec![1]);
        let (polys, _) = setup();
        let q = Query::count().with_epsilon(20.0);
        let wl = Workload::assumed(100_000, &polys, &q);
        let dev = Device::default();
        let choice = plan_workload(&wl, &q, &dev, &Calibration::builtin(), 4, 2048, 1024, None);
        let counts: std::collections::BTreeSet<usize> =
            choice.candidates.iter().map(|c| c.plan.workers).collect();
        assert_eq!(
            counts,
            [1, 2, 4].into_iter().collect(),
            "every halving worker count must be enumerated"
        );
        // More workers never cost more under the pure amortization model
        // (contention only bites sharded shapes), so the widest pool wins
        // here — and exact ties break toward it by enumeration order.
        assert_eq!(choice.best().plan.workers, 4);
    }

    /// Worker width is a *per-cell* decision once feedback arrives: a
    /// cell whose pipeline family measured no gain from widening (what a
    /// saturated or contended box reports) narrows to one worker, while
    /// a cell in a family whose amortization held up keeps the full
    /// pool. Feedback is keyed by `effective_key`, which strides by
    /// worker bucket, so the penalty lands on the wide buckets only.
    #[test]
    fn feedback_differentiates_worker_counts_across_cells() {
        let (polys, _) = setup();
        let dev = Device::default();
        // Big points-dominant cell: bounded wins by a wide margin, so the
        // worker penalty below can only move its width, not its variant.
        let q_coarse = Query::count().with_epsilon(20.0);
        let wl_coarse = Workload::assumed(2_000_000, &polys, &q_coarse);
        let q_fine = Query::count().with_epsilon(0.05);
        let wl_fine = Workload::assumed(1_000_000, &polys, &q_fine);

        let mut cal = Calibration::builtin();
        // Uncorrected amortization opens the pool for both cells.
        for (wl, q) in [(&wl_coarse, &q_coarse), (&wl_fine, &q_fine)] {
            let best = plan_workload(wl, q, &dev, &cal, 4, 2048, 1024, None)
                .best()
                .plan;
            assert_eq!(best.workers, 4);
        }

        // Feed back measurements for the coarse cell's bounded families:
        // any pool wider than one runs at 6x the single-worker per-unit
        // rate (more than the model's maximum 4-worker amortization of
        // 3.55x, i.e. widening strictly lost). The fine cell's accurate
        // family gets no observations and keeps its clean amortization.
        for _ in 0..30 {
            let choice = plan_workload(&wl_coarse, &q_coarse, &dev, &cal, 4, 2048, 1024, None);
            for c in &choice.candidates {
                if c.plan.variant != Variant::Bounded {
                    continue;
                }
                let raw = cal.raw(&features(&c.plan, &wl_coarse, &dev));
                let secs = raw * if c.plan.workers == 1 { 1.0 } else { 6.0 };
                cal.observe(effective_key(&c.plan, &wl_coarse, &dev), raw, secs);
            }
        }

        let coarse = plan_workload(&wl_coarse, &q_coarse, &dev, &cal, 4, 2048, 1024, None)
            .best()
            .plan;
        let fine = plan_workload(&wl_fine, &q_fine, &dev, &cal, 4, 2048, 1024, None)
            .best()
            .plan;
        assert_eq!(
            coarse.variant,
            Variant::Bounded,
            "penalty must not push the coarse cell off its variant"
        );
        assert_eq!(coarse.workers, 1, "measured-contended cell narrows");
        assert_eq!(fine.workers, 4, "unpenalized cell keeps the pool");
    }

    #[test]
    fn empty_polygon_set_yields_a_trivial_plan() {
        let pts = uniform_points(100, &nyc_extent(), 8);
        let dev = Device::default();
        let auto = AutoRasterJoin::default();
        let (plan, out) = auto.execute(&pts, &[], &Query::count(), &dev);
        assert!(out.counts.is_empty());
        assert_eq!(plan.workers, auto.workers);
    }
}
