//! The per-stage cost model: workload summaries, plan shapes and the
//! feature vectors whose weighted sum is a plan's predicted cost.
//!
//! Every candidate plan is costed as `dot(weights, features(plan))` where
//! the feature vector counts how many times each pipeline stage runs:
//! points filtered, points binned, points blended, pixels shard-merged,
//! pixels cleared, polygon fragments folded, PIP vertices visited, outline
//! pixels marked, index cells touched, render passes, out-of-core batches
//! and accurate-variant per-point overhead. The weights are either the
//! built-in constants ([`Weights::BUILTIN`], hand-tuned against this
//! reproduction's Fig. 8/12a measurements) or fitted from measured
//! [`crate::ExecStats`] by the calibration pass (`bench_planner`).
//!
//! The features mirror the PR-1 pipeline exactly: binning scans the batch
//! once and replays survivors per tile, the rescan path re-filters the
//! whole batch per tile, the sharding density gate
//! ([`raster_gpu::RasterConfig::use_shards`]) decides whether the shard
//! merge runs,
//! and single-tile canvases skip binning entirely.
//!
//! # The worker-count dimension
//!
//! `Plan::workers` is a real plan dimension: the planner enumerates
//! halving worker counts and costs each one. Stages that parallelize
//! (filter, bin, blend, fragments, PIP, decode, …) amortize by
//! `1 + PARALLEL_EFFICIENCY·(w−1)`; the shard merge *grows* with the
//! worker count (`1 + MERGE_CONTENTION·(w−1)` — more shards to fold),
//! and fixed per-pass/per-batch overheads plus the storage-byte term stay
//! serial (one paced reader). Which stages shard at all depends on the
//! *intra-chunk* worker count ([`intra_workers`]): streaming chunks run
//! their join single-threaded inside the chunk pool (the determinism
//! rule in `stream.rs`), so their shard gate is evaluated at one worker
//! and never engages.

use super::{Plan, Variant};
use crate::query::Query;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::hausdorff::{pixel_side_for_epsilon, resolution_for_epsilon};
use raster_geom::{BBox, Polygon};
use raster_gpu::{Device, SHARD_MIN_DENSITY};

/// Number of per-stage cost terms.
pub const NWEIGHTS: usize = 14;

/// Stable names for the weight slots — the keys of the calibration file.
pub const WEIGHT_NAMES: [&str; NWEIGHTS] = [
    "filter",
    "bin",
    "blend",
    "merge_px",
    "clear_px",
    "frag",
    "pip_vertex",
    "outline_px",
    "index_cell",
    "pass",
    "batch",
    "point_accurate",
    "read_byte",
    "decode_val",
];

/// Feature/weight slot indices.
pub const W_FILTER: usize = 0; // per raw point scanned by the predicate filter
pub const W_BIN: usize = 1; // per surviving point staged by the binner
pub const W_BLEND: usize = 2; // per surviving point blended into the FBO
pub const W_MERGE_PX: usize = 3; // per pixel folded by a shard merge
pub const W_CLEAR_PX: usize = 4; // per pixel cleared on FBO acquire
pub const W_FRAG: usize = 5; // per polygon fragment folded
pub const W_PIP_VERTEX: usize = 6; // per vertex visited by a PIP test
pub const W_OUTLINE_PX: usize = 7; // per conservative outline pixel marked
pub const W_INDEX_CELL: usize = 8; // per grid-index cell touched at build
pub const W_PASS: usize = 9; // fixed overhead per render pass
pub const W_BATCH: usize = 10; // fixed overhead per out-of-core batch
pub const W_POINT_ACC: usize = 11; // per surviving point, accurate extra (boundary lookup)
pub const W_READ_BYTE: usize = 12; // per byte fetched from storage (disk scans only)
pub const W_DECODE_VAL: usize = 13; // per stored value decompressed (compressed scans only)

/// A weight vector: the cost (abstract units for the built-in fallback,
/// seconds once calibrated) of one unit of each feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights(pub [f64; NWEIGHTS]);

impl Weights {
    /// The hand-tuned fallback, in abstract point-op units: a blended
    /// point costs 1. Used until a calibration is fitted; online feedback
    /// then scales whole plans, not individual weights.
    pub const BUILTIN: Weights = Weights([
        0.3,    // filter: predicate eval + early reject
        0.7,    // bin: classify + stage one entry
        1.0,    // blend: transform + FBO add
        0.25,   // merge_px: one pixel of one shard folded
        0.05,   // clear_px: zeroing reused FBO memory
        0.12,   // frag: span-walk FBO read, usually early-out
        1.0,    // pip_vertex: one edge test of a PIP walk
        1.5,    // outline_px: conservative segment traversal
        1.0,    // index_cell: scanline index build per cell
        500.0,  // pass: viewport setup + worker fan-out
        2000.0, // batch: upload bookkeeping + binner reset
        1.0,    // point_accurate: boundary-FBO lookup per point
        0.05,   // read_byte: page-cache-speed storage fetch per byte
        0.5,    // decode_val: bit-unpack / XOR-unshuffle one value
    ]);

    pub fn dot(&self, f: &[f64; NWEIGHTS]) -> f64 {
        self.0.iter().zip(f).map(|(w, x)| w * x).sum()
    }
}

/// How many rows the deterministic selectivity sample visits at most.
pub const SELECTIVITY_SAMPLE: usize = 1024;

/// Fraction of the ideal per-worker speedup the parallel stages actually
/// realize (scheduling overhead, memory-bandwidth sharing): a parallel
/// feature is divided by `1 + PARALLEL_EFFICIENCY·(workers − 1)`.
pub const PARALLEL_EFFICIENCY: f64 = 0.85;

/// Per-extra-worker growth of the shard-merge term: every worker owns a
/// private shard, so the merge folds `O(pixels × workers)` and contends
/// on the shared FBO; [`W_MERGE_PX`] is multiplied by
/// `1 + MERGE_CONTENTION·(workers − 1)`.
pub const MERGE_CONTENTION: f64 = 0.6;

/// The worker count the *join inside one unit of work* runs at. Streaming
/// workloads (`stored_row_bytes > 0`) parallelize across chunks, not
/// within them — every chunk executes single-threaded so f32 blend order
/// (hence AVG sums) is bitwise identical at any pool size — while
/// in-memory workloads fan the batch itself out over `plan.workers`.
pub fn intra_workers(plan: &Plan, wl: &Workload) -> usize {
    if wl.stored_row_bytes > 0.0 {
        1
    } else {
        plan.workers.max(1)
    }
}

/// Calibration key bucket for a worker count: 1 / 2–3 / 4–7 / 8+. Worker
/// counts in one bucket share a per-pipeline correction scale, so online
/// feedback learned at one pool size never pollutes another's.
pub fn worker_bucket(workers: usize) -> usize {
    match workers {
        0 | 1 => 0,
        2..=3 => 1,
        4..=7 => 2,
        _ => 3,
    }
}

/// Everything the cost model needs to know about one (points, polygons,
/// query) triple, summarised so plan enumeration is O(plans) not
/// O(plans × data).
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub n_points: usize,
    /// Fraction of points passing the filter predicates (deterministic
    /// evenly-spaced sample of ≤ [`SELECTIVITY_SAMPLE`] rows).
    pub selectivity: f64,
    /// Fraction passing the predicates AND inside the polygon extent —
    /// the points that actually reach the blend stage.
    pub surviving: f64,
    /// Rows the selectivity sample actually visited (0 ⇒ assumed 1.0).
    pub sampled_rows: usize,
    pub epsilon: f64,
    pub n_polys: usize,
    pub area: f64,
    pub perimeter: f64,
    pub avg_vertices: f64,
    /// Σ polygon-MBR areas — drives the index-build cell count.
    pub bbox_area: f64,
    pub extent: BBox,
    /// Storage bytes fetched per row when the points stream off disk.
    /// This is the *pruned* storage profile: the streaming executor
    /// derives it from the file's per-column stored sizes
    /// (`TableMeta::pruned_scan_bytes`) over the column set the query
    /// actually touches, so compressed files read fewer than the logical
    /// row width's worth and column-pruned scans fewer still — the
    /// [`W_READ_BYTE`] feature scales with what the scan really fetches.
    /// `0.0` for in-memory workloads — the disk features vanish.
    pub stored_row_bytes: f64,
    /// Stored columns decompressed per row (coordinates + *materialized*
    /// attributes — pruned columns are never decoded) on a compressed
    /// scan; `0.0` for raw or in-memory sources. Together with
    /// `stored_row_bytes` this is the planner's
    /// decode-cost-vs-bytes-saved trade: compressed chunks are cheaper
    /// to read ([`W_READ_BYTE`] × fewer bytes) but cost decode CPU
    /// ([`W_DECODE_VAL`] × values).
    pub decode_cols: f64,
}

impl Workload {
    /// Summarise real inputs: polygon shape statistics plus sampled
    /// predicate selectivity. This is the fix for the planner's old
    /// `points.len()` blindness — both variants filter first, so costs
    /// must be charged to the *surviving* points.
    pub fn sample(points: &PointTable, polys: &[Polygon], query: &Query) -> Workload {
        let mut wl = Workload::assumed(points.len(), polys, query);
        let n = points.len();
        if n == 0 {
            return wl;
        }
        let sample = n.min(SELECTIVITY_SAMPLE);
        // Stride rounded up so the sample spans the whole table (taxi
        // tables are time-ordered; a head-only sample would bias
        // hour-correlated predicates).
        let step = n.div_ceil(sample);
        let preds = &query.predicates;
        let (mut pass, mut surv, mut checked) = (0usize, 0usize, 0usize);
        let mut i = 0;
        while i < n && checked < sample {
            if preds.is_empty() || passes(points, i, preds) {
                pass += 1;
                if wl.extent.contains(points.point(i)) {
                    surv += 1;
                }
            }
            checked += 1;
            i += step;
        }
        wl.selectivity = pass as f64 / checked.max(1) as f64;
        wl.surviving = surv as f64 / checked.max(1) as f64;
        wl.sampled_rows = checked;
        wl
    }

    /// Summarise with *assumed* full selectivity (no point data at hand —
    /// e.g. EXPLAIN against a bare schema).
    pub fn assumed(n_points: usize, polys: &[Polygon], query: &Query) -> Workload {
        let extent = crate::bounded::polygon_extent(polys);
        let area: f64 = polys.iter().map(Polygon::area).sum();
        let perimeter: f64 = polys.iter().map(Polygon::perimeter).sum();
        let avg_vertices = if polys.is_empty() {
            0.0
        } else {
            polys.iter().map(|p| p.vertex_count() as f64).sum::<f64>() / polys.len() as f64
        };
        let bbox_area: f64 = polys.iter().map(|p| p.bbox().area()).sum();
        Workload {
            n_points,
            selectivity: 1.0,
            surviving: 1.0,
            sampled_rows: 0,
            epsilon: query.epsilon,
            n_polys: polys.len(),
            area,
            perimeter,
            avg_vertices,
            bbox_area,
            extent,
            stored_row_bytes: 0.0,
            decode_cols: 0.0,
        }
    }
}

/// Derived execution shape of one plan over one workload: how the canvas
/// tiles, how the points batch, and how many passes result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanShape {
    pub tiles: u32,
    pub batches: u32,
    pub passes: u32,
    /// Total canvas pixels (all tiles of one batch).
    pub pixels: f64,
    /// Whether the sharding density gate is predicted to engage.
    pub sharded: bool,
}

/// Estimated polygon fragments at a given pixel side: interior area
/// fragments plus one extra band along the outlines.
fn fragments(area: f64, perimeter: f64, pixel_side: f64) -> f64 {
    let px2 = pixel_side * pixel_side;
    area / px2 + perimeter / pixel_side
}

/// The execution shape a plan implies for a workload.
pub fn shape(plan: &Plan, wl: &Workload, device: &Device) -> PlanShape {
    let batches = wl.n_points.div_ceil(plan.batch_points.max(1)).max(1) as u32;
    let max_dim = device.config().max_fbo_dim;
    let intra = intra_workers(plan, wl);
    match plan.variant {
        Variant::Bounded => {
            let (w, h) = resolution_for_epsilon(&wl.extent, wl.epsilon);
            let tiles = w.div_ceil(max_dim) * h.div_ceil(max_dim);
            let pixels = w as f64 * h as f64;
            let tile_px = pixels / tiles as f64;
            let surv_per_tile = wl.n_points as f64 * wl.surviving / batches as f64 / tiles as f64;
            // Mirrors the executor: with binning on, a single-tile canvas
            // skips both the binner and the shard path; a single blending
            // worker never shards; the density gate then applies per tile.
            let shard_possible =
                plan.config.sharding && intra > 1 && !(plan.config.binning && tiles <= 1);
            let sharded = shard_possible && surv_per_tile >= SHARD_MIN_DENSITY * tile_px;
            PlanShape {
                tiles,
                batches,
                passes: tiles * batches,
                pixels,
                sharded,
            }
        }
        Variant::Accurate => {
            // Shared rule with AccurateRasterJoin::execute.
            let (w, h) =
                raster_gpu::Viewport::canvas_for_extent(&wl.extent, plan.canvas_dim.min(max_dim));
            let pixels = w as f64 * h as f64;
            let surv_per_batch = wl.n_points as f64 * wl.surviving / batches as f64;
            let sharded = plan
                .config
                .use_shards(surv_per_batch as usize, pixels as usize, intra);
            PlanShape {
                tiles: 1,
                batches,
                // Outline pass + polygon pass (the point stage is a
                // compute pass, not a render pass — matching ExecStats).
                passes: 2,
                pixels,
                sharded,
            }
        }
    }
}

/// The *effective* pipeline a plan resolves to on a workload, encoded
/// like [`Plan::key`] plus a [`worker_bucket`] stride: binning is skipped
/// on single-tile canvases and the sharding density gate may not engage,
/// so distinct configs can collapse to the identical execution. The bench
/// evaluation compares decisions by effective pipeline rather than by
/// label, so noise between physically identical runs never scores as a
/// planner error. The worker bucket keeps online feedback separated per
/// pool size — the cost model's amortization error is systematic in the
/// worker count, and a shared scale would smear it across counts.
pub fn effective_key(plan: &Plan, wl: &Workload, device: &Device) -> usize {
    effective_key_of(plan, &shape(plan, wl, device))
}

/// [`effective_key`] for an already-computed shape.
pub fn effective_key_of(plan: &Plan, sh: &PlanShape) -> usize {
    let binning = matches!(plan.variant, Variant::Bounded) && plan.config.binning && sh.tiles > 1;
    let v = match plan.variant {
        Variant::Bounded => 0,
        Variant::Accurate => 4,
    };
    v + (binning as usize) * 2 + sh.sharded as usize + 8 * worker_bucket(plan.workers)
}

/// The feature vector of one plan over one workload: how many times each
/// pipeline stage runs.
pub fn features(plan: &Plan, wl: &Workload, device: &Device) -> [f64; NWEIGHTS] {
    features_for(plan, wl, device, &shape(plan, wl, device))
}

/// [`features`] for an already-computed shape (the planner derives the
/// shape once per candidate and reuses it here, for the effective key and
/// for the reported layout).
pub fn features_for(
    plan: &Plan,
    wl: &Workload,
    device: &Device,
    sh: &PlanShape,
) -> [f64; NWEIGHTS] {
    let n = wl.n_points as f64;
    let surv = n * wl.surviving;
    let batches = sh.batches as f64;
    let tiles = sh.tiles as f64;
    let mut f = [0.0; NWEIGHTS];
    f[W_BATCH] = batches;
    f[W_PASS] = sh.passes as f64;
    // Disk-scan terms, variant-independent: the whole table is fetched
    // (and, when compressed, decoded) exactly once however it is joined.
    f[W_READ_BYTE] = n * wl.stored_row_bytes;
    f[W_DECODE_VAL] = n * wl.decode_cols;
    match plan.variant {
        Variant::Bounded => {
            let side = pixel_side_for_epsilon(wl.epsilon);
            // DrawPolygons re-runs per (tile × batch); the tile split
            // keeps total fragments resolution-bound, but every batch
            // folds the full fragment volume again.
            f[W_FRAG] = fragments(wl.area, wl.perimeter, side) * batches;
            // FBOs are cleared per (tile × batch) on acquire.
            f[W_CLEAR_PX] = sh.pixels * batches;
            let binned = plan.config.binning && sh.tiles > 1;
            if binned {
                // One filter scan per batch over its own points; survivors
                // staged once and replayed once.
                f[W_FILTER] = n;
                f[W_BIN] = surv;
            } else {
                // Rescan: every tile pass re-filters the whole batch.
                f[W_FILTER] = n * tiles;
            }
            f[W_BLEND] = surv;
            if sh.sharded {
                // Each tile's shard set folds its pixels once per batch.
                f[W_MERGE_PX] = sh.pixels * batches;
            }
        }
        Variant::Accurate => {
            let dim = plan.canvas_dim.min(device.config().max_fbo_dim);
            let acc_side = wl.extent.width().max(wl.extent.height()) / (dim as f64).max(1.0);
            f[W_FILTER] = n;
            f[W_POINT_ACC] = surv;
            f[W_BLEND] = surv;
            // Probability a point lands on a boundary pixel ≈ outline-band
            // area over the extent area (supercover marks up to ~3 pixels
            // per crossed column), clamped to 1.
            let p_boundary =
                (wl.perimeter * 3.0 * acc_side / wl.extent.area().max(1e-30)).clamp(0.0, 1.0);
            // Each boundary point PIP-tests its grid-cell candidates,
            // linear in vertex count.
            let candidates = 2.0f64.min(wl.n_polys as f64).max(1.0);
            f[W_PIP_VERTEX] = surv * p_boundary * candidates * wl.avg_vertices;
            f[W_OUTLINE_PX] = wl.perimeter / acc_side.max(1e-30);
            // The on-the-fly grid-index build is deliberately NOT charged:
            // it is polygon preprocessing, excluded from query time as in
            // §7.1 (ExecStats::total does the same), reported separately
            // (Table 1) and cacheable across queries — charging it here
            // would bias the accurate variant by work the measured target
            // never contains. W_INDEX_CELL stays reserved in the weight
            // vector for a future prepared-polygon plan dimension.
            f[W_FRAG] = fragments(wl.area, wl.perimeter, acc_side);
            // Single canvas + boundary FBO, cleared once per query.
            f[W_CLEAR_PX] = sh.pixels;
            if sh.sharded {
                f[W_MERGE_PX] = sh.pixels * batches;
            }
        }
    }
    // Worker-count scaling (see the module docs): per-point and per-pixel
    // stages amortize over the pool, the shard merge grows with it, and
    // fixed per-pass/per-batch overheads plus the paced storage read stay
    // serial. Uniform in everything but `plan.workers`, so relative plan
    // ranking at a fixed worker count is unchanged.
    let w = plan.workers.max(1) as f64;
    let amort = 1.0 + PARALLEL_EFFICIENCY * (w - 1.0);
    for slot in [
        W_FILTER,
        W_BIN,
        W_BLEND,
        W_CLEAR_PX,
        W_FRAG,
        W_PIP_VERTEX,
        W_POINT_ACC,
        W_DECODE_VAL,
    ] {
        f[slot] /= amort;
    }
    f[W_MERGE_PX] *= 1.0 + MERGE_CONTENTION * (w - 1.0);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_data::filter::{CmpOp, Predicate};
    use raster_data::generators::{nyc_extent, TaxiModel};
    use raster_data::polygons::synthetic_polygons;
    use raster_gpu::RasterConfig;

    // Fixed at 4 workers (not `default_workers()`): the shard gate needs
    // a multi-worker blend to engage at all, and the tests must not
    // depend on the host's core count.
    fn plan_w(
        variant: Variant,
        binning: bool,
        sharding: bool,
        batch: usize,
        workers: usize,
    ) -> Plan {
        Plan {
            variant,
            config: RasterConfig { binning, sharding },
            batch_points: batch,
            canvas_dim: 2048,
            index_dim: 1024,
            workers,
        }
    }

    fn plan(variant: Variant, binning: bool, sharding: bool, batch: usize) -> Plan {
        plan_w(variant, binning, sharding, batch, 4)
    }

    #[test]
    fn sampled_selectivity_tracks_predicates() {
        let pts = TaxiModel::default().generate(10_000, 9);
        let polys = synthetic_polygons(8, &nyc_extent(), 9);
        let hour = pts.attr_index("hour").unwrap();
        // hour is uniform over [0, 168): < 16.8 passes ~10%.
        let q = Query::count().with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 16.8)]);
        let wl = Workload::sample(&pts, &polys, &q);
        assert!(wl.sampled_rows > 0);
        assert!(
            (wl.selectivity - 0.1).abs() < 0.05,
            "sampled selectivity {} should be ≈ 0.1",
            wl.selectivity
        );
        assert!(wl.surviving <= wl.selectivity);
        let open = Workload::sample(&pts, &polys, &Query::count());
        assert!((open.selectivity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rescan_refilters_per_tile_but_binned_does_not() {
        let polys = synthetic_polygons(8, &nyc_extent(), 3);
        let q = Query::count().with_epsilon(12.0);
        let wl = Workload::assumed(1_000_000, &polys, &q);
        let dev = Device::new(raster_gpu::DeviceConfig::small(3 << 30, 2048));
        // One worker: feature values are raw stage counts (no
        // amortization), so the exact-count assertions below hold.
        let binned = features(
            &plan_w(Variant::Bounded, true, false, usize::MAX, 1),
            &wl,
            &dev,
        );
        let rescan = features(
            &plan_w(Variant::Bounded, false, false, usize::MAX, 1),
            &wl,
            &dev,
        );
        let sh = shape(
            &plan_w(Variant::Bounded, true, false, usize::MAX, 1),
            &wl,
            &dev,
        );
        assert!(sh.tiles > 1, "ε=12 over NYC must tile at max_fbo=2048");
        assert_eq!(rescan[W_FILTER], binned[W_FILTER] * sh.tiles as f64);
        assert_eq!(binned[W_BIN], 1_000_000.0);
        assert_eq!(rescan[W_BIN], 0.0);
        assert_eq!(binned[W_BLEND], rescan[W_BLEND]);
    }

    #[test]
    fn shard_gate_mirrors_the_executor() {
        let polys = synthetic_polygons(8, &nyc_extent(), 3);
        let q = Query::count().with_epsilon(12.0);
        let dense = Workload::assumed(50_000_000, &polys, &q);
        let sparse = Workload::assumed(1_000, &polys, &q);
        // max_fbo 2048 tiles the ε=12 canvas (~6836²) into 16 tiles.
        let dev = Device::new(raster_gpu::DeviceConfig::small(3 << 30, 2048));
        let p = plan(Variant::Bounded, true, true, usize::MAX);
        assert!(shape(&p, &dense, &dev).sharded);
        assert!(!shape(&p, &sparse, &dev).sharded);
        // Binning on + single tile ⇒ no shard path, no matter the density
        // (the executor skips the binner there).
        let coarse = Workload::assumed(50_000_000, &polys, &Query::count().with_epsilon(500.0));
        let sh = shape(&p, &coarse, &dev);
        assert_eq!(sh.tiles, 1);
        assert!(!sh.sharded);
        assert_eq!(features(&p, &coarse, &dev)[W_MERGE_PX], 0.0);
    }

    #[test]
    fn batch_size_drives_batch_and_pass_features() {
        let polys = synthetic_polygons(8, &nyc_extent(), 3);
        let q = Query::count().with_epsilon(12.0);
        let wl = Workload::assumed(1_000_000, &polys, &q);
        let dev = Device::default();
        let one = shape(&plan(Variant::Bounded, true, true, usize::MAX), &wl, &dev);
        let four = shape(&plan(Variant::Bounded, true, true, 250_000), &wl, &dev);
        assert_eq!(one.batches, 1);
        assert_eq!(four.batches, 4);
        assert_eq!(four.passes, 4 * four.tiles);
        let f1 = features(&plan(Variant::Bounded, true, true, usize::MAX), &wl, &dev);
        let f4 = features(&plan(Variant::Bounded, true, true, 250_000), &wl, &dev);
        assert!(f4[W_BATCH] > f1[W_BATCH]);
        assert!(f4[W_CLEAR_PX] > f1[W_CLEAR_PX]);
    }

    #[test]
    fn worker_scaling_amortizes_parallel_stages_only() {
        let polys = synthetic_polygons(8, &nyc_extent(), 3);
        let q = Query::count().with_epsilon(12.0);
        let wl = Workload::assumed(50_000_000, &polys, &q);
        let dev = Device::new(raster_gpu::DeviceConfig::small(3 << 30, 2048));
        let f1 = features(
            &plan_w(Variant::Bounded, true, true, usize::MAX, 1),
            &wl,
            &dev,
        );
        let f4 = features(
            &plan_w(Variant::Bounded, true, true, usize::MAX, 4),
            &wl,
            &dev,
        );
        let amort = 1.0 + PARALLEL_EFFICIENCY * 3.0;
        assert_eq!(f4[W_FILTER], f1[W_FILTER] / amort);
        assert_eq!(f4[W_BLEND], f1[W_BLEND] / amort);
        // Serial slots are untouched.
        assert_eq!(f4[W_PASS], f1[W_PASS]);
        assert_eq!(f4[W_BATCH], f1[W_BATCH]);
        // The dense workload shards at 4 workers but cannot at 1 — merge
        // cost appears and carries the contention factor.
        assert_eq!(f1[W_MERGE_PX], 0.0);
        assert!(f4[W_MERGE_PX] > 0.0);
    }

    #[test]
    fn streaming_chunks_never_shard() {
        // A stored (streaming) workload executes each chunk at one
        // intra-chunk worker, so the shard gate must stay closed however
        // dense the data and however wide the pool.
        let polys = synthetic_polygons(8, &nyc_extent(), 3);
        let q = Query::count().with_epsilon(12.0);
        let mut wl = Workload::assumed(50_000_000, &polys, &q);
        let dev = Device::new(raster_gpu::DeviceConfig::small(3 << 30, 2048));
        let p = plan_w(Variant::Bounded, true, true, usize::MAX, 8);
        assert!(shape(&p, &wl, &dev).sharded, "in-memory baseline shards");
        wl.stored_row_bytes = 20.0;
        assert_eq!(intra_workers(&p, &wl), 1);
        assert!(!shape(&p, &wl, &dev).sharded);
    }

    #[test]
    fn effective_key_strides_by_worker_bucket() {
        let polys = synthetic_polygons(8, &nyc_extent(), 3);
        let q = Query::count().with_epsilon(12.0);
        let wl = Workload::assumed(1_000, &polys, &q);
        let dev = Device::default();
        for (w, bucket) in [(1, 0), (2, 1), (3, 1), (4, 2), (7, 2), (8, 3), (64, 3)] {
            let p = plan_w(Variant::Bounded, true, false, usize::MAX, w);
            let base = effective_key_of(
                &plan_w(Variant::Bounded, true, false, usize::MAX, 1),
                &shape(&p, &wl, &dev),
            );
            assert_eq!(
                effective_key(&p, &wl, &dev),
                base + 8 * bucket,
                "workers {w}"
            );
        }
    }

    #[test]
    fn accurate_features_are_epsilon_independent() {
        let polys = synthetic_polygons(8, &nyc_extent(), 3);
        let wl_fine = Workload::assumed(100_000, &polys, &Query::count().with_epsilon(0.5));
        let wl_coarse = Workload::assumed(100_000, &polys, &Query::count().with_epsilon(50.0));
        let dev = Device::default();
        let p = plan(Variant::Accurate, false, false, usize::MAX);
        assert_eq!(features(&p, &wl_fine, &dev), features(&p, &wl_coarse, &dev));
    }
}
