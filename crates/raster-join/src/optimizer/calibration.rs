//! Calibration: fitting the cost-model weights from measured executions
//! and folding per-query predicted-vs-actual feedback back in.
//!
//! # File format
//!
//! A calibration serializes to a small flat JSON document (written by
//! `bench_planner`, loaded with [`Calibration::load`]):
//!
//! ```json
//! {
//!   "version": 1,
//!   "samples": 48,
//!   "observations": 10,
//!   "unit": 1.0e-7,
//!   "weights": { "filter": 2.1e-9, "bin": ..., ... },
//!   "scale": { "bounded_rescan": 1.0, "bounded_binned_sharded": ..., ... }
//! }
//! ```
//!
//! `weights` holds one entry per [`WEIGHT_NAMES`] slot (seconds per
//! feature unit once fitted). `scale` holds one multiplicative correction
//! per plan key ([`KEY_NAMES`]) maintained by the online feedback loop;
//! `unit` is the running global units→seconds factor the per-key
//! corrections are measured against. Every key is optional on load —
//! missing entries keep their built-in value — so the format is
//! forward-compatible with added stages.
//!
//! # Fitting
//!
//! [`Calibration::fit`] solves a ridge-regularised least-squares problem
//! over (feature-vector, measured-seconds) samples: columns are
//! normalised, the normal equations solved by Gaussian elimination, and
//! negative weights clamped to zero with one re-solve over the remaining
//! columns (a single active-set step — enough for 12 well-scaled
//! features). Feature columns never exercised by the sample grid fall
//! back to the built-in constant converted at the fitted unit rate, so an
//! uncalibrated stage still costs something plausible.
//!
//! # Online feedback
//!
//! [`Calibration::observe`] receives each executed plan's raw predicted
//! cost and measured seconds. It maintains `unit` as an EMA of the
//! global seconds-per-unit ratio and, per plan key, an EMA of the
//! *residual* ratio relative to `unit`. Predictions are multiplied by the
//! plan key's residual, so systematic per-pipeline bias (e.g. a machine
//! whose shard merge is unusually slow) corrects within a few queries
//! without disturbing the fitted weights.

use super::cost::{Weights, NWEIGHTS, WEIGHT_NAMES};
use std::io;
use std::path::Path;

/// Plan-key count: {Bounded, Accurate} × binning × sharding × worker
/// bucket. The accurate variant ignores binning, but the encoding stays
/// uniform. Online corrections are attributed to the *effective* pipeline
/// (`cost::effective_key`) — binning skipped on single-tile canvases, the
/// shard gate possibly not engaging — so labels that resolve to the same
/// execution share one correction. The worker bucket
/// (`cost::worker_bucket`: 1 / 2–3 / 4–7 / 8+) strides the key by 8, so
/// the amortization model's systematic error at one pool size never
/// contaminates the correction learned at another.
pub const NKEYS: usize = 32;

/// Stable names for plan keys — `variant*4 + binning*2 + sharding`, then
/// a `_w2`/`_w4`/`_w8` suffix per worker bucket (bare names are the
/// single-worker bucket, which keeps pre-worker-dimension calibration
/// files loading into the right slots).
pub const KEY_NAMES: [&str; NKEYS] = [
    "bounded_rescan",
    "bounded_rescan_sharded",
    "bounded_binned",
    "bounded_binned_sharded",
    "accurate",
    "accurate_sharded",
    "accurate_binned",
    "accurate_binned_sharded",
    "bounded_rescan_w2",
    "bounded_rescan_sharded_w2",
    "bounded_binned_w2",
    "bounded_binned_sharded_w2",
    "accurate_w2",
    "accurate_sharded_w2",
    "accurate_binned_w2",
    "accurate_binned_sharded_w2",
    "bounded_rescan_w4",
    "bounded_rescan_sharded_w4",
    "bounded_binned_w4",
    "bounded_binned_sharded_w4",
    "accurate_w4",
    "accurate_sharded_w4",
    "accurate_binned_w4",
    "accurate_binned_sharded_w4",
    "bounded_rescan_w8",
    "bounded_rescan_sharded_w8",
    "bounded_binned_w8",
    "bounded_binned_sharded_w8",
    "accurate_w8",
    "accurate_sharded_w8",
    "accurate_binned_w8",
    "accurate_binned_sharded_w8",
];

/// EMA step for the online feedback loop.
const ALPHA: f64 = 0.3;

/// Serialized format version.
pub const CALIBRATION_VERSION: u32 = 1;

/// The planner's knowledge: fitted (or built-in) stage weights plus the
/// online per-plan-key corrections.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    pub weights: Weights,
    /// Multiplicative correction per plan key, updated by feedback.
    pub scale: [f64; NKEYS],
    /// Cumulative mean units→seconds factor across all observations —
    /// the common denominator per-key residuals are measured against
    /// (rankings only depend on the per-key residuals, which stay
    /// comparable precisely because this denominator is burst-stable).
    pub unit: f64,
    /// Number of measured samples the weights were fitted from (0 ⇒
    /// built-in constants).
    pub samples: u32,
    /// Number of predicted-vs-actual observations folded back in.
    pub observations: u64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::builtin()
    }
}

impl Calibration {
    /// The uncalibrated fallback: hand-tuned constants, neutral scales.
    pub fn builtin() -> Self {
        Calibration {
            weights: Weights::BUILTIN,
            scale: [1.0; NKEYS],
            unit: 1.0,
            samples: 0,
            observations: 0,
        }
    }

    /// Has any measurement informed this calibration?
    pub fn is_calibrated(&self) -> bool {
        self.samples > 0 || self.observations > 0
    }

    /// Raw model cost (no per-key correction) of a feature vector.
    pub fn raw(&self, feats: &[f64; NWEIGHTS]) -> f64 {
        self.weights.dot(feats)
    }

    /// Corrected predicted cost for a plan with key `key`.
    pub fn predict(&self, key: usize, feats: &[f64; NWEIGHTS]) -> f64 {
        self.raw(feats) * self.scale[key.min(NKEYS - 1)]
    }

    /// Fold one execution's predicted-vs-actual outcome back in (simple
    /// online reweighting). `predicted_raw` is the *uncorrected* model
    /// cost; `actual_secs` the measured processing time.
    pub fn observe(&mut self, key: usize, predicted_raw: f64, actual_secs: f64) {
        // NaN or non-positive values carry no usable signal.
        let usable = |x: f64| x.is_finite() && x > 0.0;
        if !usable(predicted_raw) || !usable(actual_secs) {
            return;
        }
        let r = actual_secs / predicted_raw;
        // The global unit is a *cumulative* mean of r, not a recency EMA:
        // it is the common denominator every per-key residual is measured
        // against, so it must stay put when one plan family is observed
        // in a burst. A recency-weighted unit would chase the burst
        // (r/unit → 1), letting a slow newly-explored plan wash out its
        // own penalty while silently devaluing every other key's stored
        // scale.
        self.observations += 1;
        self.unit += (r - self.unit) / self.observations as f64;
        let residual = r / self.unit.max(1e-300);
        let k = key.min(NKEYS - 1);
        self.scale[k] = (self.scale[k] * (1.0 - ALPHA) + residual * ALPHA).clamp(0.05, 20.0);
    }

    /// Fit weights from `(features, measured_seconds)` samples. Returns
    /// `None` when the system is hopelessly underdetermined (fewer samples
    /// than two, or all-zero features).
    pub fn fit(raw_samples: &[([f64; NWEIGHTS], f64)]) -> Option<Calibration> {
        // Fit in *relative* space — scale each sample by 1/measured so the
        // loss is relative error, not absolute seconds. A grid mixes 2 ms
        // and 40 ms cells; in absolute space the big cells dominate and
        // the model can be 2× off on the small ones, which is exactly
        // where plan rankings are tight.
        let samples: Vec<([f64; NWEIGHTS], f64)> = raw_samples
            .iter()
            .filter(|(_, y)| y.is_finite() && *y > 0.0)
            .map(|(f, y)| (f.map(|x| x / y), 1.0))
            .collect();
        let samples = samples.as_slice();
        if samples.len() < 2 {
            return None;
        }
        // Column norms for scaling; remember never-exercised columns.
        let mut norm = [0.0f64; NWEIGHTS];
        for (f, _) in samples {
            for (j, x) in f.iter().enumerate() {
                norm[j] += x * x;
            }
        }
        for n in &mut norm {
            *n = n.sqrt();
        }
        if norm.iter().all(|&n| n == 0.0) {
            return None;
        }
        // Global unit estimate: measured seconds per built-in unit —
        // the fallback rate for unexercised columns.
        let total_builtin: f64 = samples.iter().map(|(f, _)| Weights::BUILTIN.dot(f)).sum();
        let total_secs: f64 = samples.iter().map(|(_, y)| *y).sum();
        let unit = if total_builtin > 0.0 {
            total_secs / total_builtin
        } else {
            1.0
        };

        let active: Vec<usize> = (0..NWEIGHTS).filter(|&j| norm[j] > 0.0).collect();
        let mut w = solve_ridge(samples, &active, &norm);
        // One active-set step: clamp negatives to zero, re-solve the rest.
        if w.iter().any(|&x| x < 0.0) {
            let keep: Vec<usize> = active.iter().copied().filter(|&j| w[j] >= 0.0).collect();
            let mut w2 = solve_ridge(samples, &keep, &norm);
            for x in &mut w2 {
                if *x < 0.0 {
                    *x = 0.0;
                }
            }
            w = w2;
        }
        // Unexercised columns: built-in constant at the fitted unit rate.
        // Exercised columns are floored at a small fraction of the same —
        // least squares happily zeroes a stage whose contribution sits in
        // its noise floor (e.g. a shard merge worth ~1 ms inside 40 ms
        // cells), and a zero-cost stage would let the planner rank a plan
        // that does strictly more work as tied with one that does not.
        for j in 0..NWEIGHTS {
            if norm[j] == 0.0 {
                w[j] = Weights::BUILTIN.0[j] * unit;
            } else {
                w[j] = w[j].max(0.02 * Weights::BUILTIN.0[j] * unit);
            }
        }
        Some(Calibration {
            weights: Weights(w),
            scale: [1.0; NKEYS],
            unit: 1.0,
            samples: samples.len() as u32,
            observations: 0,
        })
    }

    // ------------------------------------------------------------ ser/de

    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": {},", CALIBRATION_VERSION);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(s, "  \"observations\": {},", self.observations);
        let _ = writeln!(s, "  \"unit\": {:e},", self.unit);
        s.push_str("  \"weights\": {");
        for (j, name) in WEIGHT_NAMES.iter().enumerate() {
            let _ = write!(
                s,
                "{}\"{}\": {:e}",
                if j == 0 { "" } else { ", " },
                name,
                self.weights.0[j]
            );
        }
        s.push_str("},\n  \"scale\": {");
        for (k, name) in KEY_NAMES.iter().enumerate() {
            let _ = write!(
                s,
                "{}\"{}\": {:e}",
                if k == 0 { "" } else { ", " },
                name,
                self.scale[k]
            );
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parse the flat JSON document written by [`Calibration::to_json`].
    /// Unknown keys are ignored; missing keys keep built-in values.
    pub fn from_json(json: &str) -> Result<Calibration, String> {
        if let Some(v) = extract_number(json, "version") {
            if v as u32 > CALIBRATION_VERSION {
                return Err(format!("unsupported calibration version {v}"));
            }
        }
        let mut cal = Calibration::builtin();
        let mut any = false;
        for (j, name) in WEIGHT_NAMES.iter().enumerate() {
            if let Some(v) = extract_number(json, name) {
                cal.weights.0[j] = v;
                any = true;
            }
        }
        for (k, name) in KEY_NAMES.iter().enumerate() {
            if let Some(v) = extract_number(json, name) {
                cal.scale[k] = v;
            }
        }
        if let Some(v) = extract_number(json, "unit") {
            cal.unit = v;
        }
        if let Some(v) = extract_number(json, "samples") {
            cal.samples = v as u32;
        }
        if let Some(v) = extract_number(json, "observations") {
            cal.observations = v as u64;
        }
        if !any {
            return Err("no weight entries found".into());
        }
        Ok(cal)
    }

    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    pub fn load(path: &Path) -> io::Result<Calibration> {
        let text = std::fs::read_to_string(path)?;
        Calibration::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Extract the number following `"key":` in a flat JSON document. All our
/// keys are globally unique, so no nesting tracking is needed.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Ridge least squares over the `active` feature columns with per-column
/// normalisation: solve (A'ᵀA' + λI) w' = A'ᵀy with A' = A / colnorm,
/// return w (inactive slots zero).
fn solve_ridge(
    samples: &[([f64; NWEIGHTS], f64)],
    active: &[usize],
    norm: &[f64; NWEIGHTS],
) -> [f64; NWEIGHTS] {
    let k = active.len();
    let mut out = [0.0; NWEIGHTS];
    if k == 0 {
        return out;
    }
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (f, y) in samples {
        for (a, &ja) in active.iter().enumerate() {
            let xa = f[ja] / norm[ja];
            aty[a] += xa * y;
            for (b, &jb) in active.iter().enumerate() {
                ata[a][b] += xa * f[jb] / norm[jb];
            }
        }
    }
    const LAMBDA: f64 = 1e-4;
    // Scale the ridge to the problem: λ relative to the mean diagonal.
    let mean_diag: f64 = (0..k).map(|i| ata[i][i]).sum::<f64>() / k as f64;
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += LAMBDA * mean_diag.max(1e-30);
    }
    // Gaussian elimination with partial pivoting.
    let mut m = ata;
    let mut y = aty;
    for col in 0..k {
        let (pivot, _) = (col..k)
            .map(|r| (r, m[r][col].abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        m.swap(col, pivot);
        y.swap(col, pivot);
        let p = m[col][col];
        if p.abs() < 1e-300 {
            continue;
        }
        for r in (col + 1)..k {
            let factor = m[r][col] / p;
            if factor == 0.0 {
                continue;
            }
            let (pivot_rows, lower) = m.split_at_mut(r);
            for (c, cell) in lower[0].iter_mut().enumerate().skip(col) {
                *cell -= factor * pivot_rows[col][c];
            }
            y[r] -= factor * y[col];
        }
    }
    let mut w = vec![0.0f64; k];
    for col in (0..k).rev() {
        let mut acc = y[col];
        for c in (col + 1)..k {
            acc -= m[col][c] * w[c];
        }
        let p = m[col][col];
        w[col] = if p.abs() < 1e-300 { 0.0 } else { acc / p };
    }
    for (a, &j) in active.iter().enumerate() {
        out[j] = w[a] / norm[j];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_known_weights() {
        // Synthesize samples from a known weight vector over random-ish
        // deterministic features; the fit must reproduce the costs.
        let mut truth = [0.0; NWEIGHTS];
        for (j, t) in truth.iter_mut().enumerate() {
            *t = 1e-9 * (j as f64 + 1.0);
        }
        let mut samples = Vec::new();
        let mut state = 0x1234_5678u64;
        for _ in 0..64 {
            let mut f = [0.0; NWEIGHTS];
            for x in &mut f {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *x = ((state >> 33) % 1_000_000) as f64;
            }
            let y: f64 = truth.iter().zip(&f).map(|(w, x)| w * x).sum();
            samples.push((f, y));
        }
        let cal = Calibration::fit(&samples).expect("fit");
        assert_eq!(cal.samples, 64);
        for (f, y) in &samples {
            let pred = cal.raw(f);
            assert!(
                (pred - y).abs() <= 0.02 * y.abs().max(1e-12),
                "pred {pred} vs truth {y}"
            );
        }
    }

    #[test]
    fn fit_handles_unexercised_columns() {
        // Only the blend feature varies; the merge column is never hit.
        let samples: Vec<([f64; NWEIGHTS], f64)> = (1..20)
            .map(|i| {
                let mut f = [0.0; NWEIGHTS];
                f[super::super::cost::W_BLEND] = i as f64 * 1000.0;
                (f, i as f64 * 1e-3)
            })
            .collect();
        let cal = Calibration::fit(&samples).expect("fit");
        let w = cal.weights.0;
        assert!((w[super::super::cost::W_BLEND] - 1e-6).abs() < 1e-8);
        // Unseen column got the built-in constant at the fitted unit rate.
        assert!(w[super::super::cost::W_MERGE_PX] > 0.0);
    }

    #[test]
    fn fit_never_returns_negative_weights() {
        // Collinear + noisy samples that push naive LS negative.
        let mut samples = Vec::new();
        for i in 1..40 {
            let mut f = [0.0; NWEIGHTS];
            f[0] = i as f64;
            f[1] = i as f64 * 2.0; // collinear with column 0
            samples.push((f, i as f64 * 3.0 + if i % 2 == 0 { 0.5 } else { -0.5 }));
        }
        let cal = Calibration::fit(&samples).expect("fit");
        assert!(cal.weights.0.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn observe_corrects_systematic_bias() {
        let mut cal = Calibration::builtin();
        // Key 3's pipeline consistently runs 4x the global rate.
        for _ in 0..50 {
            cal.observe(0, 1000.0, 1.0e-3);
            cal.observe(3, 1000.0, 4.0e-3);
        }
        assert!(cal.observations == 100);
        assert!(
            cal.scale[3] > 1.5 * cal.scale[0],
            "key 3 must be scaled up relative to key 0 ({} vs {})",
            cal.scale[3],
            cal.scale[0]
        );
        // Rankings flip accordingly.
        let mut f = [0.0; NWEIGHTS];
        f[super::super::cost::W_BLEND] = 1000.0;
        assert!(cal.predict(3, &f) > cal.predict(0, &f));
    }

    #[test]
    fn observe_burst_does_not_dilute_penalty() {
        // A newly-explored slow pipeline observed in a *burst* (as the
        // planner's closed feedback loop does when it escapes into an
        // unmeasured family) must still end up penalized relative to a
        // well-measured fast key. With a recency-EMA unit the burst
        // would drag the denominator to its own level and the residual
        // would collapse toward 1.
        let mut cal = Calibration::builtin();
        for _ in 0..40 {
            cal.observe(0, 1000.0, 1.0e-3);
        }
        for _ in 0..8 {
            cal.observe(3, 1000.0, 3.0e-3);
        }
        assert!(
            cal.scale[3] > 1.5 * cal.scale[0],
            "burst-observed slow key must stay penalized ({} vs {})",
            cal.scale[3],
            cal.scale[0]
        );
        let mut f = [0.0; NWEIGHTS];
        f[super::super::cost::W_BLEND] = 1000.0;
        assert!(cal.predict(3, &f) > 1.5 * cal.predict(0, &f));
    }

    #[test]
    fn observe_ignores_degenerate_inputs() {
        let mut cal = Calibration::builtin();
        cal.observe(0, 0.0, 1.0);
        cal.observe(0, 1.0, 0.0);
        cal.observe(0, -1.0, 1.0);
        assert_eq!(cal.observations, 0);
        assert_eq!(cal, Calibration::builtin());
    }

    #[test]
    fn json_round_trip() {
        let mut cal = Calibration::builtin();
        cal.samples = 48;
        cal.weights.0[0] = 2.25e-9;
        cal.weights.0[11] = 7.5e-8;
        cal.scale[3] = 1.75;
        cal.observe(2, 100.0, 1e-4);
        let json = cal.to_json();
        let back = Calibration::from_json(&json).expect("parse");
        assert_eq!(back.samples, cal.samples);
        assert_eq!(back.observations, cal.observations);
        for j in 0..NWEIGHTS {
            assert!(
                (back.weights.0[j] - cal.weights.0[j]).abs()
                    <= 1e-12 * cal.weights.0[j].abs().max(1e-30),
                "weight {j}"
            );
        }
        for k in 0..NKEYS {
            assert!((back.scale[k] - cal.scale[k]).abs() <= 1e-12 * cal.scale[k].abs());
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Calibration::from_json("{}").is_err());
        assert!(Calibration::from_json("not json at all").is_err());
        // Future versions refused, current accepted.
        let v999 = "{\"version\": 999, \"weights\": {\"filter\": 1.0}}";
        assert!(Calibration::from_json(v999).is_err());
    }

    #[test]
    fn builtin_is_not_calibrated() {
        let mut cal = Calibration::builtin();
        assert!(!cal.is_calibrated());
        cal.observe(0, 1.0, 1.0);
        assert!(cal.is_calibrated());
    }
}
