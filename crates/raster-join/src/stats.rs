//! Execution statistics.
//!
//! The paper's figures break total query time into *processing* (time on
//! the GPU) and *memory transfer* (Fig. 9 right, Fig. 11, Fig. 13 right).
//! Each executor fills an [`ExecStats`] so the bench harness can print the
//! same decomposition.
//!
//! # Parallel executions
//!
//! Under the streaming chunk pool (`stream.rs`), per-stage timers
//! (`binning`, `shard_merge`, `point_stage`, `polygon_stage`) fold
//! additively across workers, so they report *cumulative worker time*
//! and may sum past wall clock when chunks overlap. The headline split
//! stays wall-clock honest instead: `processing` is the union of the
//! intervals during which ≥ 1 worker was decoding or joining, and `disk`
//! is the remaining stall, so `total()` still tracks elapsed time.

use std::time::Duration;

/// Statistics of one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Wall-clock compute time (the "GPU processing" component).
    pub processing: Duration,
    /// Modelled CPU↔GPU transfer time (bytes / bandwidth; see
    /// `raster_gpu::device`).
    pub transfer: Duration,
    /// Wall-clock time spent reading from disk (Fig. 13 only; zero for
    /// in-memory executions).
    pub disk: Duration,
    /// Bytes shipped host→device.
    pub upload_bytes: u64,
    /// Bytes shipped device→host (results, materialized pairs).
    pub download_bytes: u64,
    /// Wall-clock time binning points to canvas tiles (subset of
    /// `processing`; zero when binning is disabled or the canvas has a
    /// single tile batch path).
    pub binning: Duration,
    /// Wall-clock time merging per-worker shards into the point FBO
    /// (subset of `processing`; zero when sharding is disabled).
    pub shard_merge: Duration,
    /// Point fragments routed through the binned path (entries emitted by
    /// the binner across all batches).
    pub binned_points: u64,
    /// Wall-clock time of the point stage — filtering, transforming and
    /// blending points into the FBO, including binning/shard time (subset
    /// of `processing`; recorded per run by the planner's calibration
    /// bench as a sanity check on the fitted stage weights).
    pub point_stage: Duration,
    /// Wall-clock time of the polygon stage — scan-converting polygons
    /// and folding pixel partials into result slots (subset of
    /// `processing`; recorded per run by the planner's calibration
    /// bench as a sanity check on the fitted stage weights).
    pub polygon_stage: Duration,
    /// Out-of-core point batches executed (§5).
    pub batches: u32,
    /// Rendering passes (canvas tiles × batches) executed (Fig. 5).
    pub passes: u32,
    /// Point-in-polygon tests performed (the cost the paper eliminates).
    pub pip_tests: u64,
    /// Polygon fragments processed by the fragment shader.
    pub fragments: u64,
    /// Join pairs materialized (materializing baselines only).
    pub materialized_pairs: u64,
    /// Candidate pairs produced by the filtering step (two-step baseline
    /// only): MBR hits handed to refinement, before PIP pruning.
    pub candidate_pairs: u64,
    /// Time spent triangulating polygons (reported separately, Table 1).
    pub triangulation: Duration,
    /// Time spent building the polygon index (reported separately, Table 1).
    pub index_build: Duration,
}

impl ExecStats {
    /// The paper's "total time": processing + transfer (+ disk when
    /// present). Polygon preprocessing is excluded, as in §7.1
    /// ("we do not include the polygon processing time in the reported
    /// query execution time").
    pub fn total(&self) -> Duration {
        self.processing + self.transfer + self.disk
    }

    /// Total including the polygon preprocessing components.
    pub fn total_with_preprocessing(&self) -> Duration {
        self.total() + self.triangulation + self.index_build
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let s = ExecStats {
            processing: Duration::from_millis(100),
            transfer: Duration::from_millis(40),
            disk: Duration::from_millis(10),
            triangulation: Duration::from_millis(5),
            index_build: Duration::from_millis(3),
            ..Default::default()
        };
        assert_eq!(s.total(), Duration::from_millis(150));
        assert_eq!(s.total_with_preprocessing(), Duration::from_millis(158));
    }

    #[test]
    fn default_is_zeroed() {
        let s = ExecStats::default();
        assert_eq!(s.total(), Duration::ZERO);
        assert_eq!(s.pip_tests, 0);
        assert_eq!(s.fragments, 0);
        assert_eq!(s.binning, Duration::ZERO);
        assert_eq!(s.shard_merge, Duration::ZERO);
        assert_eq!(s.binned_points, 0);
        assert_eq!(s.point_stage, Duration::ZERO);
        assert_eq!(s.polygon_stage, Duration::ZERO);
    }

    #[test]
    fn binning_and_merge_are_subsets_of_processing() {
        // They are sub-measurements, not additional components: total()
        // must not double-count them.
        let s = ExecStats {
            processing: Duration::from_millis(100),
            binning: Duration::from_millis(30),
            shard_merge: Duration::from_millis(20),
            ..Default::default()
        };
        assert_eq!(s.total(), Duration::from_millis(100));
    }
}
