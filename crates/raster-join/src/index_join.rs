//! The index-join baseline (§6.2): grid index + PIP test for *every* point.
//!
//! The paper uses this as both the GPU baseline (a compute shader running
//! Procedure IndexJoin, with the aggregation fused so no join result is
//! materialized) and the CPU baseline (single-threaded and OpenMP
//! variants, §7.1). All three flavours share the same algorithm and differ
//! in parallelism and in whether transfers are charged:
//!
//! * [`IndexJoin::gpu`] — parallel, atomics into SSBO-style arrays,
//!   transfer ledger active, MBR-based on-the-fly index build (§6.1);
//! * [`IndexJoin::cpu_multi`] — parallel with thread-local accumulators
//!   merged at the end ("to avoid locking delays, each thread maintains
//!   the aggregates in a thread-local data structure", §7.1), exact-
//!   geometry index build;
//! * [`IndexJoin::cpu_single`] — sequential reference implementation.

use crate::query::{result_slots, JoinOutput, Query};
use crate::stats::ExecStats;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::Polygon;
use raster_gpu::exec::parallel_ranges;
use raster_gpu::ssbo::{AtomicF64Array, AtomicU64Array};
use raster_gpu::Device;
use raster_index::{AssignMode, GridIndex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Execution flavour of the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// GPU-style: parallel + atomics + transfer accounting.
    Gpu { workers: usize },
    /// OpenMP-style: parallel + thread-local accumulators, no transfers.
    CpuMulti { workers: usize },
    /// Sequential reference.
    CpuSingle,
}

/// The index-join baseline operator.
pub struct IndexJoin {
    pub mode: Parallelism,
    /// Grid resolution per axis (paper §7.1: 1024 for the GPU, 4096 for
    /// the CPU on US counties).
    pub index_dim: u32,
}

impl IndexJoin {
    pub fn gpu(workers: usize) -> Self {
        IndexJoin {
            mode: Parallelism::Gpu { workers },
            index_dim: 1024,
        }
    }

    pub fn cpu_multi(workers: usize) -> Self {
        IndexJoin {
            mode: Parallelism::CpuMulti { workers },
            index_dim: 1024,
        }
    }

    pub fn cpu_single() -> Self {
        IndexJoin {
            mode: Parallelism::CpuSingle,
            index_dim: 1024,
        }
    }

    pub fn with_index_dim(mut self, dim: u32) -> Self {
        self.index_dim = dim;
        self
    }

    fn workers(&self) -> usize {
        match self.mode {
            Parallelism::Gpu { workers } | Parallelism::CpuMulti { workers } => workers.max(1),
            Parallelism::CpuSingle => 1,
        }
    }

    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> JoinOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = result_slots(polys);
        if polys.is_empty() {
            return JoinOutput {
                counts: Vec::new(),
                sums: Vec::new(),
                stats,
            };
        }
        let extent = crate::bounded::polygon_extent(polys);

        // Exact-geometry assignment for every flavour: the paper builds
        // MBR-based on the GPU (§6.1) because exact assignment was slow
        // there, but our scanline build is fast and the merged synthetic
        // polygons have much looser MBRs than real neighborhoods, which
        // would otherwise inflate candidate counts unrealistically. The
        // ablation bench quantifies the difference.
        let assign = AssignMode::Exact;
        let t0 = Instant::now();
        let index = GridIndex::build(
            polys,
            extent,
            self.index_dim,
            self.index_dim,
            assign,
            self.workers(),
        );
        stats.index_build = t0.elapsed();

        let agg_attr = query.aggregate.attr();
        let preds = &query.predicates;
        let is_gpu = matches!(self.mode, Parallelism::Gpu { .. });

        // Out-of-core batching applies to the GPU flavour only.
        let point_bytes = PointTable::point_bytes(query.attrs_uploaded());
        let per_batch = if is_gpu {
            device.points_per_batch(point_bytes)
        } else {
            points.len().max(1)
        };

        let proc0 = Instant::now();
        let (counts_v, sums_v, pip_total) = match self.mode {
            Parallelism::CpuMulti { .. } => {
                // Thread-local accumulators merged at the end (§7.1).
                self.run_thread_local(points, polys, &index, agg_attr, preds, nslots)
            }
            _ => {
                let counts = AtomicU64Array::new(nslots);
                let sums = AtomicF64Array::new(nslots);
                let pip = AtomicU64::new(0);
                let mut start = 0usize;
                while start < points.len() {
                    let end = (start + per_batch).min(points.len());
                    if is_gpu {
                        device.record_upload(((end - start) * point_bytes) as u64);
                        stats.batches += 1;
                    }
                    parallel_ranges(end - start, self.workers(), |s, e| {
                        let mut local_pip = 0u64;
                        for i in (start + s)..(start + e) {
                            if !preds.is_empty() && !passes(points, i, preds) {
                                continue;
                            }
                            local_pip += crate::accurate::join_point(
                                &index,
                                polys,
                                points.point(i),
                                i,
                                agg_attr,
                                points,
                                &counts,
                                &sums,
                            );
                        }
                        pip.fetch_add(local_pip, Ordering::Relaxed);
                    });
                    start = end;
                }
                (counts.to_vec(), sums.to_vec(), pip.load(Ordering::Relaxed))
            }
        };
        stats.processing = proc0.elapsed();
        stats.pip_tests = pip_total;

        if is_gpu {
            device.record_download((nslots * 16) as u64);
            let ts = device.stats();
            stats.upload_bytes = ts.bytes_up;
            stats.download_bytes = ts.bytes_down;
            stats.transfer = device.modelled_transfer_time();
            if stats.batches == 0 {
                stats.batches = 1;
            }
        }

        JoinOutput {
            counts: counts_v,
            sums: sums_v,
            stats,
        }
    }

    /// OpenMP-style evaluation: per-thread accumulators, merged once.
    fn run_thread_local(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        index: &GridIndex,
        agg_attr: Option<usize>,
        preds: &[raster_data::Predicate],
        nslots: usize,
    ) -> (Vec<u64>, Vec<f64>, u64) {
        let workers = self.workers();
        let merged = parking_lot::Mutex::new((vec![0u64; nslots], vec![0f64; nslots], 0u64));
        parallel_ranges(points.len(), workers, |s, e| {
            let mut counts = vec![0u64; nslots];
            let mut sums = vec![0f64; nslots];
            let mut pip = 0u64;
            for i in s..e {
                if !preds.is_empty() && !passes(points, i, preds) {
                    continue;
                }
                let p = points.point(i);
                for &cand in index.candidates(p) {
                    pip += 1;
                    if polys[cand as usize].contains(p) {
                        counts[cand as usize] += 1;
                        if let Some(a) = agg_attr {
                            sums[cand as usize] += points.attr(a)[i] as f64;
                        }
                    }
                }
            }
            let mut m = merged.lock();
            for i in 0..nslots {
                m.0[i] += counts[i];
                m.1[i] += sums[i];
            }
            m.2 += pip;
        });
        merged.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_data::generators::{nyc_extent, uniform_points, TaxiModel};
    use raster_data::polygons::synthetic_polygons;

    #[test]
    fn all_three_flavours_agree_with_brute_force() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(10, &extent, 31);
        let pts = uniform_points(3_000, &extent, 32);
        let truth: Vec<u64> = polys
            .iter()
            .map(|poly| {
                (0..pts.len())
                    .filter(|&i| poly.contains(pts.point(i)))
                    .count() as u64
            })
            .collect();
        let dev = Device::default();
        for j in [
            IndexJoin::gpu(4),
            IndexJoin::cpu_multi(4),
            IndexJoin::cpu_single(),
        ] {
            let out = j.execute(&pts, &polys, &Query::count(), &dev);
            assert_eq!(out.counts, truth, "{:?}", j.mode);
        }
    }

    #[test]
    fn avg_aggregate_consistent_across_flavours() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(6, &extent, 8);
        let pts = TaxiModel::default().generate(2_000, 4);
        let fare = pts.attr_index("fare").unwrap();
        let q = Query::avg(fare);
        let dev = Device::default();
        let a = IndexJoin::gpu(4).execute(&pts, &polys, &q, &dev);
        let b = IndexJoin::cpu_single().execute(&pts, &polys, &q, &dev);
        let va = a.values(q.aggregate);
        let vb = b.values(q.aggregate);
        for i in 0..va.len() {
            assert!((va[i] - vb[i]).abs() < 1e-6, "slot {i}");
        }
    }

    #[test]
    fn gpu_flavour_charges_transfers_cpu_does_not() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(4, &extent, 2);
        let pts = uniform_points(500, &extent, 3);
        let dev = Device::default();
        let g = IndexJoin::gpu(2).execute(&pts, &polys, &Query::count(), &dev);
        assert!(g.stats.upload_bytes > 0);
        let c = IndexJoin::cpu_multi(2).execute(&pts, &polys, &Query::count(), &dev);
        assert_eq!(c.stats.upload_bytes, 0);
    }

    #[test]
    fn exact_index_assignment_reduces_pip_tests() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(24, &extent, 13);
        let pts = uniform_points(2_000, &extent, 14);
        let dev = Device::default();
        let gpu = IndexJoin::gpu(2).execute(&pts, &polys, &Query::count(), &dev);
        let cpu = IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &dev);
        assert_eq!(gpu.counts, cpu.counts);
        assert!(
            cpu.stats.pip_tests <= gpu.stats.pip_tests,
            "exact assignment must not increase candidates"
        );
    }

    #[test]
    fn predicates_filter_points() {
        use raster_data::filter::{CmpOp, Predicate};
        let extent = nyc_extent();
        let polys = synthetic_polygons(4, &extent, 6);
        let pts = TaxiModel::default().generate(1_000, 5);
        let hour = pts.attr_index("hour").unwrap();
        let q = Query::count().with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 84.0)]);
        let full =
            IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &Device::default());
        let half = IndexJoin::cpu_single().execute(&pts, &polys, &q, &Device::default());
        // Roughly half the (time-ordered) points pass the hour < 84 filter.
        let tf: u64 = full.total_count();
        let th: u64 = half.total_count();
        assert!(th < tf);
        assert!((th as f64 - tf as f64 / 2.0).abs() < tf as f64 * 0.1);
    }

    #[test]
    fn out_of_core_gpu_batches_keep_results() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(5, &extent, 9);
        let pts = uniform_points(1_000, &extent, 10);
        let small = Device::new(raster_gpu::DeviceConfig::small(
            100 * PointTable::point_bytes(0),
            8192,
        ));
        let out = IndexJoin::gpu(2).execute(&pts, &polys, &Query::count(), &small);
        let reference =
            IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &Device::default());
        assert_eq!(out.counts, reference.counts);
        assert_eq!(out.stats.batches, 10);
    }
}
