//! A miniature SQL front-end for the paper's query shape.
//!
//! The paper presents every workload as SQL (§1):
//!
//! ```sql
//! SELECT AGG(a_i) FROM P, R
//! WHERE P.loc INSIDE R.geometry [AND filterCondition]*
//! GROUP BY R.id
//! ```
//!
//! and positions raster join as "an operator in existing database
//! systems" (§9). This module parses exactly that dialect into a
//! [`Query`], resolving attribute names against a [`PointTable`] schema:
//!
//! ```
//! use raster_join::sql::parse_query;
//! use raster_data::PointTable;
//!
//! let schema = PointTable::with_capacity(0, &["fare", "tip"]);
//! let q = parse_query(
//!     "SELECT AVG(fare) FROM pts, polys \
//!      WHERE pts.loc INSIDE polys.geometry AND tip > 2.5 AND fare <= 100 \
//!      GROUP BY polys.id",
//!     &schema,
//! ).unwrap();
//! assert_eq!(q.predicates.len(), 2);
//! ```
//!
//! Supported: `COUNT(*)`, `SUM(attr)`, `AVG(attr)`; filter comparisons
//! `>, >=, <, <=, =` between an attribute and a numeric literal, plus
//! `attr BETWEEN lo AND hi` (desugared to `attr >= lo AND attr <= hi`,
//! staying inside the paper's §5 operator set). This is deliberately the
//! paper's fragment of SQL, not a general parser.
//!
//! [`explain_query`] prefixes the dialect with `EXPLAIN` and prints the
//! physical plan the §8 optimizer would pick, with its cost estimates.

use crate::optimizer::{plan_workload, Calibration, Variant, Workload};
use crate::query::{Aggregate, Query};
use raster_data::filter::{CmpOp, Predicate};
use raster_data::PointTable;
use raster_geom::Polygon;
use raster_gpu::Device;

/// Parse failure with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Tokenize: words, numbers, parens, commas, comparison operators, and
/// single-quoted strings (file table sources, kept as one token with the
/// quotes preserved).
fn tokenize(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let flush = |cur: &mut String, out: &mut Vec<String>| {
        if !cur.is_empty() {
            out.push(std::mem::take(cur));
        }
    };
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\'' => {
                flush(&mut cur, &mut out);
                let mut lit = String::from('\'');
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    lit.push(chars[i]);
                    i += 1;
                }
                // An unterminated quote yields a token without the
                // closing quote; the FROM-source extraction rejects it.
                if i < chars.len() {
                    lit.push('\'');
                }
                out.push(lit);
            }
            c if c.is_whitespace() => flush(&mut cur, &mut out),
            '(' | ')' | ',' | '*' => {
                flush(&mut cur, &mut out);
                out.push(c.to_string());
            }
            '>' | '<' | '=' => {
                flush(&mut cur, &mut out);
                if (c == '>' || c == '<') && i + 1 < chars.len() && chars[i + 1] == '=' {
                    out.push(format!("{c}="));
                    i += 1;
                } else {
                    out.push(c.to_string());
                }
            }
            _ => cur.push(c),
        }
        i += 1;
    }
    flush(&mut cur, &mut out);
    out
}

struct Cursor {
    toks: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<&str> {
        let t = self.toks.get(self.pos).map(String::as_str);
        self.pos += 1;
        t
    }

    /// Consume a token equal (case-insensitively) to `kw`.
    fn expect(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
            Some(t) => err(format!("expected `{kw}`, found `{t}`")),
            None => err(format!("expected `{kw}`, found end of input")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.eq_ignore_ascii_case(kw))
    }
}

fn resolve_attr(name: &str, schema: &PointTable) -> Result<usize, ParseError> {
    // Strip an optional table qualifier ("pts.fare" → "fare").
    let bare = name.rsplit('.').next().unwrap_or(name);
    schema
        .attr_index(bare)
        .ok_or_else(|| ParseError(format!("unknown attribute `{bare}`")))
}

fn parse_aggregate(c: &mut Cursor, schema: &PointTable) -> Result<Aggregate, ParseError> {
    let Some(func) = c.next().map(str::to_ascii_uppercase) else {
        return err("expected aggregate function");
    };
    c.expect("(")?;
    let agg = match func.as_str() {
        "COUNT" => {
            c.expect("*")?;
            Aggregate::Count
        }
        "SUM" | "AVG" => {
            let Some(attr) = c.next() else {
                return err("expected attribute name");
            };
            let idx = resolve_attr(attr, schema)?;
            if func == "SUM" {
                Aggregate::Sum(idx)
            } else {
                Aggregate::Avg(idx)
            }
        }
        other => return err(format!("unsupported aggregate `{other}`")),
    };
    c.expect(")")?;
    Ok(agg)
}

fn parse_literal(c: &mut Cursor) -> Result<f32, ParseError> {
    let Some(lit) = c.next().map(str::to_string) else {
        return err("expected numeric literal");
    };
    lit.parse()
        .map_err(|_| ParseError(format!("bad numeric literal `{lit}`")))
}

fn parse_op(tok: &str) -> Result<CmpOp, ParseError> {
    Ok(match tok {
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        "=" => CmpOp::Eq,
        other => return err(format!("unsupported operator `{other}`")),
    })
}

/// The on-disk table source of a query's point relation, when the FROM
/// clause names a file instead of a bare relation:
/// `SELECT … FROM 'taxi.bin', R WHERE …`. The schema then comes from the
/// file's column names and the query runs straight off disk through the
/// streaming executor (`raster_join::stream`). Returns `None` when the
/// FROM clause holds a plain relation name (or the SQL has no FROM at
/// all — the caller's parse will produce the real error).
pub fn file_source(sql: &str) -> Option<String> {
    let toks = tokenize(sql);
    let from = toks.iter().position(|t| t.eq_ignore_ascii_case("FROM"))?;
    let src = toks.get(from + 1)?;
    let inner = src.strip_prefix('\'')?.strip_suffix('\'')?;
    if inner.is_empty() {
        return None;
    }
    Some(inner.to_string())
}

/// Parse one query of the paper's dialect against `schema` (a table whose
/// column names define the attribute namespace).
pub fn parse_query(sql: &str, schema: &PointTable) -> Result<Query, ParseError> {
    let mut c = Cursor {
        toks: tokenize(sql),
        pos: 0,
    };
    c.expect("SELECT")?;
    let aggregate = parse_aggregate(&mut c, schema)?;
    c.expect("FROM")?;
    // FROM P, R — two relation names.
    let Some(_p) = c.next() else {
        return err("expected point relation");
    };
    c.expect(",")?;
    let Some(_r) = c.next() else {
        return err("expected polygon relation");
    };
    c.expect("WHERE")?;
    // The join predicate: <x>.loc INSIDE <y>.geometry (or CONTAINS form).
    let Some(lhs) = c.next().map(str::to_string) else {
        return err("expected join predicate");
    };
    let Some(verb) = c.next().map(str::to_ascii_uppercase) else {
        return err("expected INSIDE/CONTAINS");
    };
    let Some(_rhs) = c.next() else {
        return err("expected join predicate right side");
    };
    if verb != "INSIDE" && verb != "CONTAINS" {
        return err(format!("expected INSIDE or CONTAINS, found `{verb}`"));
    }
    if verb == "INSIDE" && !lhs.to_ascii_lowercase().ends_with("loc") {
        return err("INSIDE expects `<points>.loc` on the left");
    }

    // Zero or more `AND attr op literal` / `AND attr BETWEEN lo AND hi`.
    let mut predicates = Vec::new();
    while c.at_keyword("AND") {
        c.expect("AND")?;
        let Some(attr) = c.next().map(str::to_string) else {
            return err("expected attribute in filter");
        };
        let idx = resolve_attr(&attr, schema)?;
        if c.at_keyword("BETWEEN") {
            c.expect("BETWEEN")?;
            let lo = parse_literal(&mut c)?;
            c.expect("AND")?;
            let hi = parse_literal(&mut c)?;
            if lo > hi {
                return err(format!("BETWEEN range is empty ({lo} > {hi})"));
            }
            predicates.push(Predicate::new(idx, CmpOp::Ge, lo));
            predicates.push(Predicate::new(idx, CmpOp::Le, hi));
            continue;
        }
        let Some(op_tok) = c.next().map(str::to_string) else {
            return err("expected comparison operator");
        };
        let op = parse_op(&op_tok)?;
        let value = parse_literal(&mut c)?;
        predicates.push(Predicate::new(idx, op, value));
    }

    c.expect("GROUP")?;
    c.expect("BY")?;
    let Some(_gb) = c.next() else {
        return err("expected GROUP BY column");
    };
    if let Some(extra) = c.peek() {
        return err(format!("unexpected trailing token `{extra}`"));
    }
    if predicates.len() > raster_data::filter::MAX_CONSTRAINTS {
        return err(format!(
            "at most {} filter constraints are supported (§6.1)",
            raster_data::filter::MAX_CONSTRAINTS
        ));
    }

    Ok(Query {
        aggregate,
        predicates,
        epsilon: Query::count().epsilon,
    })
}

/// Parse an `EXPLAIN <query>` statement and render the physical plan the
/// §8 planner picks for the given data shape: chosen variant and
/// `RasterConfig`, batch layout, sampled selectivity, per-variant cost
/// estimates, and the attribute columns that would be uploaded.
///
/// `schema` doubles as the sample source for the selectivity estimate:
/// when it holds rows, the planner samples the filter pass rate from
/// them; a bare schema (no rows) assumes full selectivity. `n_points` is
/// the advertised table size the plan is costed for (it may exceed the
/// sampled rows — e.g. EXPLAIN over a prefix of a big table).
///
/// Pass a fitted [`Calibration`] via [`explain_query_calibrated`] to see
/// the calibrated ranking; this entry point uses the built-in constants.
///
/// The returned text is stable line-oriented output suitable for the
/// `rjquery` CLI and for tests; the plain query (without `EXPLAIN`) is
/// also accepted.
pub fn explain_query(
    sql: &str,
    schema: &PointTable,
    n_points: usize,
    polys: &[Polygon],
    device: &Device,
) -> Result<String, ParseError> {
    explain_query_calibrated(
        sql,
        schema,
        n_points,
        polys,
        device,
        &Calibration::builtin(),
    )
}

/// [`explain_query`] with an explicit planner calibration.
pub fn explain_query_calibrated(
    sql: &str,
    schema: &PointTable,
    n_points: usize,
    polys: &[Polygon],
    device: &Device,
    cal: &Calibration,
) -> Result<String, ParseError> {
    let trimmed = sql.trim_start();
    let body = trimmed
        .strip_prefix("EXPLAIN")
        .or_else(|| trimmed.strip_prefix("explain"))
        .unwrap_or(trimmed);
    let query = parse_query(body, schema)?;

    let wl = if !schema.is_empty() {
        Workload {
            n_points,
            ..Workload::sample(schema, polys, &query)
        }
    } else {
        Workload::assumed(n_points, polys, &query)
    };
    let workers = raster_gpu::exec::default_workers();
    let choice = plan_workload(&wl, &query, device, cal, workers, 2048, 1024, None);
    let best = choice.best();

    let mut out = String::new();
    out.push_str("RasterJoin plan\n");
    out.push_str(&format!(
        "  aggregate: {}\n",
        match query.aggregate {
            Aggregate::Count => "COUNT(*)".to_string(),
            Aggregate::Sum(a) => format!("SUM(#{a})"),
            Aggregate::Avg(a) => format!("AVG(#{a})"),
        }
    ));
    out.push_str(&format!(
        "  filters: {} predicate(s), {} attribute column(s) uploaded\n",
        query.predicates.len(),
        query.attrs_uploaded()
    ));
    out.push_str(&format!("  epsilon: {} world units\n", query.epsilon));
    out.push_str(&format!(
        "  inputs: {} points x {} polygons\n",
        n_points,
        polys.len()
    ));
    out.push_str(&format!(
        "  selectivity: {:.4} predicate, {:.4} surviving ({})\n",
        wl.selectivity,
        wl.surviving,
        if wl.sampled_rows > 0 {
            format!("sampled {} rows", wl.sampled_rows)
        } else {
            "assumed; no sample rows".to_string()
        }
    ));
    out.push_str(&format!("  operator: {}\n", best.plan.describe()));
    out.push_str(&format!(
        "  layout: {} batch(es) x {} tile(s), {} render pass(es)\n",
        best.shape.batches, best.shape.tiles, best.shape.passes
    ));
    let fmt_best = |v: Variant| {
        choice
            .best_of(v)
            .map(|c| format!("{:.3e}", c.cost))
            .unwrap_or_else(|| "n/a".to_string())
    };
    out.push_str(&format!(
        "  cost: chosen={:.3e} bounded={} accurate={} ({} candidate plan(s))\n",
        best.cost,
        fmt_best(Variant::Bounded),
        fmt_best(Variant::Accurate),
        choice.candidates.len()
    ));
    out.push_str(&format!(
        "  calibration: {} ({} sample(s), {} observation(s))\n",
        if cal.is_calibrated() {
            "fitted"
        } else {
            "builtin constants"
        },
        cal.samples,
        cal.observations
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> PointTable {
        PointTable::with_capacity(0, &["fare", "tip", "distance", "passengers", "hour"])
    }

    #[test]
    fn parses_the_papers_headline_query() {
        let q = parse_query(
            "SELECT COUNT(*) FROM Dpt, Dpoly \
             WHERE Dpoly.region CONTAINS Dpt.location \
             GROUP BY Dpoly.id",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.aggregate, Aggregate::Count);
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn parses_aggregates_and_filters() {
        let q = parse_query(
            "SELECT AVG(fare) FROM P, R WHERE P.loc INSIDE R.geometry \
             AND tip > 2.5 AND hour <= 12 AND passengers = 2 GROUP BY R.id",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.aggregate, Aggregate::Avg(0));
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.predicates[0], Predicate::new(1, CmpOp::Gt, 2.5));
        assert_eq!(q.predicates[1], Predicate::new(4, CmpOp::Le, 12.0));
        assert_eq!(q.predicates[2], Predicate::new(3, CmpOp::Eq, 2.0));
    }

    #[test]
    fn parses_sum_with_qualified_names() {
        let q = parse_query(
            "select sum(P.distance) from P, R where P.loc inside R.geometry \
             and P.fare >= 10 group by R.id",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.aggregate, Aggregate::Sum(2));
        assert_eq!(q.predicates, vec![Predicate::new(0, CmpOp::Ge, 10.0)]);
    }

    #[test]
    fn rejects_unknown_attribute() {
        let e = parse_query(
            "SELECT SUM(speed) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id",
            &schema(),
        )
        .unwrap_err();
        assert!(e.0.contains("unknown attribute"), "{e}");
    }

    #[test]
    fn rejects_wrong_join_verb() {
        let e = parse_query(
            "SELECT COUNT(*) FROM P, R WHERE P.loc NEAR R.geometry GROUP BY R.id",
            &schema(),
        )
        .unwrap_err();
        assert!(e.0.contains("INSIDE or CONTAINS"));
    }

    #[test]
    fn rejects_too_many_constraints() {
        let sql = format!(
            "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry {} GROUP BY R.id",
            (0..6).map(|_| "AND fare > 1").collect::<Vec<_>>().join(" ")
        );
        let e = parse_query(&sql, &schema()).unwrap_err();
        assert!(e.0.contains("at most"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_literals() {
        assert!(parse_query(
            "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id LIMIT 5",
            &schema()
        )
        .is_err());
        assert!(parse_query(
            "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry AND fare > abc GROUP BY R.id",
            &schema()
        )
        .is_err());
    }

    #[test]
    fn between_desugars_to_two_predicates() {
        let q = parse_query(
            "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry \
             AND fare BETWEEN 5 AND 20 AND tip > 1 GROUP BY R.id",
            &schema(),
        )
        .unwrap();
        assert_eq!(
            q.predicates,
            vec![
                Predicate::new(0, CmpOp::Ge, 5.0),
                Predicate::new(0, CmpOp::Le, 20.0),
                Predicate::new(1, CmpOp::Gt, 1.0),
            ]
        );
    }

    #[test]
    fn between_counts_toward_the_constraint_limit() {
        // 2 BETWEENs + 2 plain = 6 predicates > MAX_CONSTRAINTS (5).
        let e = parse_query(
            "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry \
             AND fare BETWEEN 1 AND 2 AND tip BETWEEN 0 AND 9 \
             AND hour > 3 AND passengers < 4 GROUP BY R.id",
            &schema(),
        )
        .unwrap_err();
        assert!(e.0.contains("at most"), "{e}");
    }

    #[test]
    fn empty_between_range_rejected() {
        let e = parse_query(
            "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry \
             AND fare BETWEEN 20 AND 5 GROUP BY R.id",
            &schema(),
        )
        .unwrap_err();
        assert!(e.0.contains("empty"), "{e}");
    }

    #[test]
    fn file_source_extracts_quoted_from_paths() {
        let sql = "SELECT AVG(fare) FROM 'data/taxi trips.bin', R \
                   WHERE P.loc INSIDE R.geometry GROUP BY R.id";
        assert_eq!(file_source(sql), Some("data/taxi trips.bin".to_string()));
        // The quoted source still parses as a relation token.
        let q = parse_query(sql, &schema()).unwrap();
        assert_eq!(q.aggregate, Aggregate::Avg(0));
        // Plain relations, missing FROM, empty and unterminated quotes.
        assert_eq!(
            file_source("SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id"),
            None
        );
        assert_eq!(file_source("SELECT COUNT(*)"), None);
        assert_eq!(file_source("SELECT COUNT(*) FROM '', R"), None);
        assert_eq!(file_source("SELECT COUNT(*) FROM 'unterminated"), None);
    }

    #[test]
    fn explain_renders_a_plan() {
        use raster_data::polygons::synthetic_polygons;
        let polys = synthetic_polygons(6, &raster_data::generators::nyc_extent(), 40);
        let plan = explain_query(
            "EXPLAIN SELECT AVG(fare) FROM P, R WHERE P.loc INSIDE R.geometry \
             AND tip > 2 GROUP BY R.id",
            &schema(),
            1_000_000,
            &polys,
            &raster_gpu::Device::default(),
        )
        .unwrap();
        assert!(plan.contains("AVG(#0)"), "{plan}");
        assert!(plan.contains("1 predicate(s)"), "{plan}");
        assert!(
            plan.contains("BOUNDED") || plan.contains("ACCURATE"),
            "{plan}"
        );
        assert!(plan.contains("render pass(es)"), "{plan}");
        // The keyword is optional.
        assert!(explain_query(
            "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id",
            &schema(),
            100,
            &polys,
            &raster_gpu::Device::default(),
        )
        .is_ok());
    }

    #[test]
    fn explain_reports_config_selectivity_and_calibration() {
        use raster_data::generators::TaxiModel;
        use raster_data::polygons::synthetic_polygons;
        let polys = synthetic_polygons(6, &raster_data::generators::nyc_extent(), 40);
        // With sample rows, the selectivity line reflects the predicate.
        let pts = TaxiModel::default().generate(4_000, 41);
        let plan = explain_query(
            "EXPLAIN SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry \
             AND hour < 16.8 GROUP BY R.id",
            &pts,
            1_000_000,
            &polys,
            &raster_gpu::Device::default(),
        )
        .unwrap();
        assert!(plan.contains("selectivity: 0.1"), "{plan}");
        assert!(plan.contains("sampled"), "{plan}");
        // The selective predicate flips the choice to ACCURATE (the
        // surviving points no longer amortise bounded's canvas costs).
        assert!(plan.contains("ACCURATE raster join [sharding="), "{plan}");
        assert!(plan.contains("batch="), "{plan}");
        assert!(plan.contains("candidate plan(s)"), "{plan}");
        assert!(plan.contains("builtin constants"), "{plan}");
        // A bare schema (no rows) assumes full selectivity.
        let bare = explain_query(
            "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id",
            &schema(),
            1_000_000,
            &polys,
            &raster_gpu::Device::default(),
        )
        .unwrap();
        assert!(bare.contains("assumed; no sample rows"), "{bare}");
        // A fitted calibration is reported as such.
        let mut cal = crate::optimizer::Calibration::builtin();
        cal.samples = 12;
        let fitted = explain_query_calibrated(
            "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id",
            &schema(),
            1_000_000,
            &polys,
            &raster_gpu::Device::default(),
            &cal,
        )
        .unwrap();
        assert!(fitted.contains("fitted (12 sample(s)"), "{fitted}");
    }

    #[test]
    fn explain_propagates_parse_errors() {
        let e = explain_query(
            "EXPLAIN SELECT MEDIAN(fare) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id",
            &schema(),
            100,
            &[],
            &raster_gpu::Device::default(),
        )
        .unwrap_err();
        assert!(e.0.contains("unsupported aggregate"), "{e}");
    }

    #[test]
    fn parsed_query_executes() {
        use raster_data::generators::{nyc_extent, TaxiModel};
        use raster_data::polygons::synthetic_polygons;
        let pts = TaxiModel::default().generate(2_000, 1);
        let polys = synthetic_polygons(4, &nyc_extent(), 1);
        let q = parse_query(
            "SELECT COUNT(*) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry \
             AND passengers >= 2 GROUP BY hoods.id",
            &pts,
        )
        .unwrap()
        .with_epsilon(20.0);
        let out = crate::BoundedRasterJoin::new(2).execute(
            &pts,
            &polys,
            &q,
            &raster_gpu::Device::default(),
        );
        assert!(out.total_count() > 0);
    }
}
