#![forbid(unsafe_code)]
//! Raster join: spatial aggregation by rasterization (the paper's core).
//!
//! Implements the operators of *GPU Rasterization for Real-Time Spatial
//! Aggregation over Arbitrary Polygons* (PVLDB 11(3), 2017):
//!
//! * [`bounded::BoundedRasterJoin`] — the approximate raster join of
//!   §4.1–4.2: points are additively blended into an FBO, polygons are
//!   triangulated and rasterized over it, and per-pixel partial aggregates
//!   are folded into the per-polygon result array. Accuracy is governed by
//!   an ε Hausdorff bound translated into canvas resolution; canvases
//!   larger than the FBO limit are split into multiple render passes.
//! * [`accurate::AccurateRasterJoin`] — the exact variant of §4.3: polygon
//!   outlines are drawn conservatively into a boundary FBO and only points
//!   landing on boundary pixels take the index + point-in-polygon path.
//! * [`index_join::IndexJoin`] — the §6.2 baseline (grid index + PIP for
//!   every point) in GPU-style parallel, multi-core CPU and single-core
//!   CPU flavours.
//! * [`materializing::MaterializingJoin`] — a Zhang-et-al-style \[72\]
//!   baseline that materializes the join result before aggregating
//!   (Table 2's comparison point).
//! * [`stream::StreamingRasterJoin`] — the §7.7 disk-resident scan as a
//!   planner-driven streaming executor: chunk sizes from the planner's
//!   batch model, polygon side prepared once, disk reads overlapped with
//!   join processing by a prefetching reader thread, per-chunk results
//!   merged by the §5 distributive-aggregate rule.
//! * [`ranges`] — the §5 result-range estimation (worst-case and expected
//!   intervals from boundary pixels).
//! * [`accuracy`] — error metrics used by the §7.6 accuracy analysis,
//!   including the just-noticeable-difference (JND) visualization check.

pub mod accuracy;
pub mod accurate;
pub mod bounded;
mod containment;
pub mod index_join;
pub mod lod;
pub mod materializing;
pub mod minmax;
pub mod moments;
pub mod multi;
pub mod optimizer;
pub mod quantize;
pub mod query;
pub mod ranges;
pub mod sampling;
pub mod sql;
pub mod stats;
pub mod stream;
pub mod temporal;
pub mod two_step;

pub use accurate::{AccurateRasterJoin, ConservativeMode};
pub use bounded::BoundedRasterJoin;
pub use index_join::{IndexJoin, Parallelism};
pub use lod::LodExplorer;
pub use materializing::MaterializingJoin;
pub use minmax::MinMaxRasterJoin;
pub use moments::{MomentsOutput, MomentsQuery, MomentsRasterJoin};
pub use multi::{MultiBoundedRasterJoin, MultiQuery};
pub use optimizer::{AutoRasterJoin, Calibration, Decision, Plan, PlanChoice, Variant};
pub use query::{Aggregate, AggregateMerger, JoinOutput, Query};
pub use raster_gpu::RasterConfig;
pub use sampling::{SamplingJoin, SamplingOutput};
pub use stats::ExecStats;
pub use stream::{StreamError, StreamOutput, StreamingRasterJoin};
pub use temporal::{TemporalRasterJoin, TimeBuckets};
pub use two_step::TwoStepJoin;
