//! Level-of-detail (LOD) exploration (§4.2).
//!
//! "If we fix a resolution as is common in visualization interfaces, when
//! the user zooms into an area of interest, a smaller region is rendered
//! with a larger number of pixels. Effectively, this is equivalent to
//! computing the aggregation with a higher accuracy without any
//! significant change in computation times."
//!
//! [`LodExplorer`] captures that interaction: a fixed canvas resolution,
//! a moving viewport. Zooming shrinks the world-space pixel and therefore
//! the *effective* ε of the answer, at constant rendering cost.

use crate::query::{result_slots, JoinOutput, Query};
use crate::stats::ExecStats;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::triangulate::triangulate_all;
use raster_geom::{BBox, Polygon};
use raster_gpu::exec::{default_workers, parallel_dynamic, parallel_ranges};
use raster_gpu::raster::rasterize_triangle_spans;
use raster_gpu::ssbo::{AtomicF64Array, AtomicU64Array};
use raster_gpu::{Device, PointFbo, Viewport};
use std::time::Instant;

/// Fixed-resolution, movable-viewport raster join for interactive LOD
/// exploration.
pub struct LodExplorer {
    pub workers: usize,
    /// Fixed canvas resolution (like a screen): width × height.
    pub canvas: (u32, u32),
}

impl Default for LodExplorer {
    fn default() -> Self {
        LodExplorer {
            workers: default_workers(),
            canvas: (1920, 1080),
        }
    }
}

impl LodExplorer {
    /// The effective Hausdorff bound of a query over `view` at this
    /// canvas: the world-space pixel diagonal.
    pub fn effective_epsilon(&self, view: &BBox) -> f64 {
        let pw = view.width() / self.canvas.0 as f64;
        let ph = view.height() / self.canvas.1 as f64;
        (pw * pw + ph * ph).sqrt()
    }

    /// Run the bounded raster join over the visible region only. Points
    /// and polygon fragments outside `view` are clipped by the pipeline,
    /// exactly as when the paper's UI zooms. Polygons straddling the view
    /// edge aggregate only their visible part (that is what the screen
    /// shows).
    pub fn query_view(
        &self,
        view: &BBox,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> JoinOutput {
        assert!(view.width() > 0.0 && view.height() > 0.0, "empty view");
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = result_slots(polys);
        let counts = AtomicU64Array::new(nslots);
        let sums = AtomicF64Array::new(nslots);
        if polys.is_empty() {
            return JoinOutput {
                counts: Vec::new(),
                sums: Vec::new(),
                stats,
            };
        }
        let t0 = Instant::now();
        let tris = triangulate_all(polys);
        stats.triangulation = t0.elapsed();

        let vp = Viewport::new(*view, self.canvas.0, self.canvas.1);
        let agg_attr = query.aggregate.attr();
        let preds = &query.predicates;
        let point_bytes = PointTable::point_bytes(query.attrs_uploaded());
        device.record_upload(points.upload_bytes(query.attrs_uploaded()));

        let proc0 = Instant::now();
        let fbo = PointFbo::new(vp.width, vp.height);
        parallel_ranges(points.len(), self.workers, |s, e| {
            for i in s..e {
                if !preds.is_empty() && !passes(points, i, preds) {
                    continue;
                }
                if let Some((x, y)) = vp.pixel_of(points.point(i)) {
                    let v = agg_attr.map_or(0.0, |a| points.attr(a)[i]);
                    fbo.blend_add(x, y, v);
                }
            }
        });
        parallel_dynamic(tris.len(), self.workers, 16, |ti| {
            let t = &tris[ti];
            let id = t.poly_id as usize;
            let mut cnt_acc = 0u64;
            let mut sum_acc = 0f64;
            rasterize_triangle_spans(
                [vp.to_screen(t.a), vp.to_screen(t.b), vp.to_screen(t.c)],
                vp.width,
                vp.height,
                |y, x0, x1| {
                    let (c, s) = fbo.span_totals(y, x0, x1);
                    cnt_acc += c;
                    sum_acc += s;
                },
            );
            if cnt_acc > 0 {
                counts.add(id, cnt_acc);
            }
            if sum_acc != 0.0 {
                sums.add(id, sum_acc);
            }
        });
        stats.processing = proc0.elapsed();
        stats.passes = 1;
        stats.batches = 1;
        let _ = point_bytes;
        device.record_download((nslots * 16) as u64);
        stats.transfer = device.modelled_transfer_time();
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;

        JoinOutput {
            counts: counts.to_vec(),
            sums: sums.to_vec(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_data::generators::{nyc_extent, uniform_points};
    use raster_data::polygons::synthetic_polygons;
    use raster_geom::Point;

    #[test]
    fn effective_epsilon_shrinks_with_zoom() {
        let lod = LodExplorer {
            workers: 1,
            canvas: (1000, 1000),
        };
        let full = BBox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
        let half = BBox::new(Point::new(0.0, 0.0), Point::new(5_000.0, 5_000.0));
        let e_full = lod.effective_epsilon(&full);
        let e_half = lod.effective_epsilon(&half);
        assert!((e_full / e_half - 2.0).abs() < 1e-9, "zoom 2x halves ε");
    }

    #[test]
    fn zooming_improves_accuracy_at_constant_canvas() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(12, &extent, 23);
        let pts = uniform_points(20_000, &extent, 24);
        let dev = Device::default();
        let lod = LodExplorer {
            workers: 4,
            canvas: (512, 512),
        };
        // Zoom window: the central quarter.
        let view = BBox::new(
            Point::new(
                extent.min.x + 0.25 * extent.width(),
                extent.min.y + 0.25 * extent.height(),
            ),
            Point::new(
                extent.min.x + 0.75 * extent.width(),
                extent.min.y + 0.75 * extent.height(),
            ),
        );
        // Ground truth restricted to the view: points in view ∩ polygon.
        let truth: Vec<u64> = polys
            .iter()
            .map(|poly| {
                (0..pts.len())
                    .filter(|&i| {
                        let p = pts.point(i);
                        view.contains(p) && poly.contains(p)
                    })
                    .count() as u64
            })
            .collect();

        let overview = lod.query_view(&extent, &pts, &polys, &Query::count(), &dev);
        let zoomed = lod.query_view(&view, &pts, &polys, &Query::count(), &dev);

        // Error of the zoomed answer vs truth must beat the overview's
        // answer *restricted to the same view* — approximated by comparing
        // total absolute deviation.
        let err_zoom: i64 = truth
            .iter()
            .zip(&zoomed.counts)
            .map(|(&t, &g)| (t as i64 - g as i64).abs())
            .sum();
        // The overview counts include out-of-view points, so compare only
        // aggregate error magnitude per covered polygon on a same-view
        // reference run at the coarser effective ε.
        let coarse = LodExplorer {
            workers: 4,
            canvas: (128, 128),
        }
        .query_view(&view, &pts, &polys, &Query::count(), &dev);
        let err_coarse: i64 = truth
            .iter()
            .zip(&coarse.counts)
            .map(|(&t, &g)| (t as i64 - g as i64).abs())
            .sum();
        assert!(
            err_zoom <= err_coarse,
            "finer pixels must not be less accurate: {err_zoom} vs {err_coarse}"
        );
        assert!(overview.total_count() >= zoomed.total_count());
    }

    #[test]
    fn constant_cost_across_zoom_levels() {
        // Same canvas → same pixel count → similar fragment volume; the
        // *answer* sharpens, the work does not blow up.
        let extent = nyc_extent();
        let polys = synthetic_polygons(6, &extent, 29);
        let pts = uniform_points(5_000, &extent, 30);
        let dev = Device::default();
        let lod = LodExplorer {
            workers: 2,
            canvas: (256, 256),
        };
        let quarter = BBox::new(
            extent.min,
            Point::new(
                extent.min.x + 0.5 * extent.width(),
                extent.min.y + 0.5 * extent.height(),
            ),
        );
        let a = lod.query_view(&extent, &pts, &polys, &Query::count(), &dev);
        let b = lod.query_view(&quarter, &pts, &polys, &Query::count(), &dev);
        assert_eq!(a.stats.passes, b.stats.passes);
        // Both render one pass on the same canvas; counts differ because
        // of clipping.
        assert!(b.total_count() <= a.total_count());
    }

    #[test]
    #[should_panic(expected = "empty view")]
    fn rejects_degenerate_view() {
        let lod = LodExplorer::default();
        let view = BBox::new(Point::new(0.0, 0.0), Point::new(0.0, 10.0));
        let _ = lod.query_view(
            &view,
            &PointTable::new(),
            &[],
            &Query::count(),
            &Device::default(),
        );
    }
}
