//! The classical two-step spatial join baseline (§1, §2).
//!
//! This is the evaluation strategy the paper argues against: *filter* with
//! MBR approximations through an R-tree, materialize the candidate pairs,
//! *refine* the candidates with exact point-in-polygon tests into a
//! materialized join result, and only then aggregate. Section 1 describes
//! exactly this pipeline ("The join is first solved using approximations
//! ... Then, false matches are removed by comparing the geometries ...
//! Finally, the aggregates are computed over the materialized join
//! results and incur additional query processing costs").
//!
//! Compared to [`IndexJoin`](crate::IndexJoin) (which fuses refinement and
//! aggregation) and the raster variants (which skip refinement entirely),
//! this baseline pays:
//!
//! * materialization of every MBR candidate pair (filter output);
//! * materialization of every surviving join pair (refinement output);
//! * a third pass over the result pairs for the aggregation.
//!
//! The extra buffers are charged to the transfer ledger like the
//! [`MaterializingJoin`](crate::MaterializingJoin)'s flush passes, so the
//! Table-2-style comparison extends to this baseline too.

use crate::query::{result_slots, JoinOutput, Query};
use crate::stats::ExecStats;
use parking_lot::Mutex;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::Polygon;
use raster_gpu::exec::{default_workers, parallel_ranges};
use raster_gpu::Device;
use raster_index::RTree;
use std::time::Instant;

/// `(point row, polygon id)` — 8 bytes, the unit of both intermediate
/// buffers.
type Pair = (u32, u32);

/// The filter → refine → aggregate baseline.
pub struct TwoStepJoin {
    pub workers: usize,
    /// Cap on each intermediate pair buffer. When the filter output
    /// exceeds the cap, the filter/refine/aggregate pipeline runs in
    /// multiple rounds (each round charging its buffer transfers), the
    /// same memory-pressure model as the materializing baseline.
    pub pair_buffer_cap: usize,
}

impl Default for TwoStepJoin {
    fn default() -> Self {
        TwoStepJoin {
            workers: default_workers(),
            pair_buffer_cap: 1 << 22,
        }
    }
}

impl TwoStepJoin {
    pub fn new(workers: usize) -> Self {
        TwoStepJoin {
            workers,
            ..Default::default()
        }
    }

    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> JoinOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = result_slots(polys);
        if polys.is_empty() || points.is_empty() {
            return JoinOutput {
                counts: vec![0; nslots],
                sums: vec![0.0; nslots],
                stats,
            };
        }

        // Index build: R-tree over polygon MBRs (the filtering structure).
        let t0 = Instant::now();
        let rtree = RTree::build(polys);
        stats.index_build = t0.elapsed();

        device.record_upload(points.upload_bytes(query.attrs_uploaded()));

        let agg_attr = query.aggregate.attr();
        let preds = &query.predicates;
        let workers = self.workers.max(1);

        let proc0 = Instant::now();

        // Step 1 — filter: probe the R-tree per point and materialize the
        // MBR candidate pairs. Attribute predicates are pushed below the
        // join, as a DBMS scan would. Workers accumulate into private
        // buffers and merge exactly once — the shard-then-merge idiom of
        // the binned pipeline. (The previous version extended a global
        // Mutex-guarded buffer per worker chunk and could even run the
        // whole serial refinement step under that lock, stalling every
        // other filter worker behind it.)
        let filtered: Mutex<Vec<(usize, Vec<Pair>)>> = Mutex::new(Vec::new());
        parallel_ranges(points.len(), workers, |s, e| {
            let mut local: Vec<Pair> = Vec::new();
            let mut cand_buf: Vec<u32> = Vec::new();
            for i in s..e {
                if !preds.is_empty() && !passes(points, i, preds) {
                    continue;
                }
                cand_buf.clear();
                rtree.candidates_into(points.point(i), &mut cand_buf);
                local.extend(cand_buf.iter().map(|&id| (i as u32, id)));
            }
            filtered.lock().push((s, local));
        });
        let mut buffers = filtered.into_inner();
        buffers.sort_unstable_by_key(|(s, _)| *s); // deterministic pair order
        let candidates: Vec<Pair> = buffers.into_iter().flat_map(|(_, b)| b).collect();

        let mut st = TwoStepState {
            counts: vec![0u64; nslots],
            sums: vec![0f64; nslots],
            candidate_pairs: candidates.len() as u64,
            result_pairs: 0,
            pip: 0,
            rounds: 0,
        };

        // Steps 2+3 in buffer-cap-sized rounds. The cap bounds what the
        // modelled *device* holds at once — each round ships at most
        // `pair_buffer_cap` pairs through refinement and charges its
        // buffer transfers, as before. (Host-side the simulation now
        // stages the full candidate list; the per-round transfer ledger,
        // round count and results are unchanged.)
        for chunk in candidates.chunks(self.pair_buffer_cap.max(1)) {
            refine_and_aggregate(&mut st, chunk, points, polys, agg_attr, device);
        }
        stats.processing = proc0.elapsed();

        device.record_download((nslots * 16) as u64);
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;
        stats.transfer = device.modelled_transfer_time();
        stats.pip_tests = st.pip;
        stats.candidate_pairs = st.candidate_pairs;
        stats.materialized_pairs = st.result_pairs;
        stats.batches = st.rounds;

        JoinOutput {
            counts: st.counts,
            sums: st.sums,
            stats,
        }
    }
}

struct TwoStepState {
    counts: Vec<u64>,
    sums: Vec<f64>,
    candidate_pairs: u64,
    result_pairs: u64,
    pip: u64,
    rounds: u32,
}

/// Steps 2 and 3 — refinement and aggregation over one buffered round.
/// Both intermediate buffers are charged to the transfer ledger: the
/// candidate pairs are shipped into the refinement stage and the
/// surviving result pairs out of it, which is the materialization cost
/// fused execution avoids (Insight 1).
fn refine_and_aggregate(
    st: &mut TwoStepState,
    candidates: &[Pair],
    points: &PointTable,
    polys: &[Polygon],
    agg_attr: Option<usize>,
    device: &Device,
) {
    if candidates.is_empty() {
        return;
    }
    device.record_download((candidates.len() * 8) as u64);

    // Step 2 — refine: exact PIP test per candidate pair, materializing
    // the surviving join result.
    let mut result: Vec<Pair> = Vec::new();
    for &(row, pid) in candidates {
        st.pip += 1;
        if polys[pid as usize].contains(points.point(row as usize)) {
            result.push((row, pid));
        }
    }
    device.record_download((result.len() * 8) as u64);
    st.result_pairs += result.len() as u64;

    // Step 3 — aggregate the materialized join result.
    for &(row, pid) in &result {
        st.counts[pid as usize] += 1;
        if let Some(a) = agg_attr {
            st.sums[pid as usize] += points.attr(a)[row as usize] as f64;
        }
    }
    st.rounds += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_join::IndexJoin;
    use crate::query::Aggregate;
    use raster_data::generators::{nyc_extent, uniform_points, TaxiModel};
    use raster_data::polygons::synthetic_polygons;

    #[test]
    fn matches_fused_index_join() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(10, &extent, 51);
        let pts = uniform_points(4_000, &extent, 52);
        let dev = Device::default();
        let two = TwoStepJoin::new(4).execute(&pts, &polys, &Query::count(), &dev);
        let fused = IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &dev);
        assert_eq!(two.counts, fused.counts);
    }

    #[test]
    fn candidates_dominate_results() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(12, &extent, 53);
        let pts = uniform_points(3_000, &extent, 54);
        let out = TwoStepJoin::new(2).execute(&pts, &polys, &Query::count(), &Device::default());
        // Every result pair was once a candidate, and every candidate was
        // PIP-tested.
        assert!(out.stats.candidate_pairs >= out.stats.materialized_pairs);
        assert_eq!(out.stats.pip_tests, out.stats.candidate_pairs);
        assert_eq!(out.stats.materialized_pairs, out.total_count());
        // The merged §7.4 polygons are non-convex, so MBR filtering must
        // produce strictly more candidates than true matches.
        assert!(out.stats.candidate_pairs > out.stats.materialized_pairs);
    }

    #[test]
    fn charges_both_intermediate_buffers() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, 55);
        let pts = uniform_points(2_000, &extent, 56);
        let dev = Device::default();
        let two = TwoStepJoin::new(2).execute(&pts, &polys, &Query::count(), &dev);
        let fused = IndexJoin::gpu(2).execute(&pts, &polys, &Query::count(), &dev);
        // candidates + results + final array vs final array only.
        let expected = two.stats.candidate_pairs * 8
            + two.stats.materialized_pairs * 8
            + two.counts.len() as u64 * 16;
        assert_eq!(two.stats.download_bytes, expected);
        assert!(two.stats.download_bytes > fused.stats.download_bytes);
    }

    #[test]
    fn buffer_cap_forces_rounds_and_keeps_results() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(6, &extent, 57);
        let pts = uniform_points(2_500, &extent, 58);
        let mut j = TwoStepJoin::new(2);
        j.pair_buffer_cap = 256;
        let out = j.execute(&pts, &polys, &Query::count(), &Device::default());
        assert!(out.stats.batches > 1, "expected multiple rounds");
        // Rounds follow the cap exactly: ceil(candidates / cap).
        assert_eq!(
            out.stats.batches as u64,
            out.stats.candidate_pairs.div_ceil(256),
        );
        let fused =
            IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &Device::default());
        assert_eq!(out.counts, fused.counts);
    }

    #[test]
    fn worker_count_does_not_change_output() {
        // The worker-local merge must be order-deterministic: any worker
        // count yields identical counts, pair totals and round structure.
        let extent = nyc_extent();
        let polys = synthetic_polygons(9, &extent, 67);
        let pts = uniform_points(3_000, &extent, 68);
        let dev = Device::default();
        let a = TwoStepJoin::new(1).execute(&pts, &polys, &Query::count(), &dev);
        let b = TwoStepJoin::new(8).execute(&pts, &polys, &Query::count(), &dev);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.stats.candidate_pairs, b.stats.candidate_pairs);
        assert_eq!(a.stats.materialized_pairs, b.stats.materialized_pairs);
        assert_eq!(a.stats.batches, b.stats.batches);
    }

    #[test]
    fn avg_aggregate_matches_fused() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(5, &extent, 59);
        let pts = TaxiModel::default().generate(2_000, 60);
        let fare = pts.attr_index("fare").unwrap();
        let q = Query::avg(fare);
        let dev = Device::default();
        let two = TwoStepJoin::new(2).execute(&pts, &polys, &q, &dev);
        let fused = IndexJoin::cpu_single().execute(&pts, &polys, &q, &dev);
        let (va, vb) = (
            two.values(Aggregate::Avg(fare)),
            fused.values(Aggregate::Avg(fare)),
        );
        for i in 0..va.len() {
            assert!((va[i] - vb[i]).abs() < 1e-6, "slot {i}");
        }
    }

    #[test]
    fn predicates_prune_before_filtering() {
        use raster_data::filter::{CmpOp, Predicate};
        let extent = nyc_extent();
        let polys = synthetic_polygons(4, &extent, 61);
        let pts = TaxiModel::default().generate(1_500, 62);
        let hour = pts.attr_index("hour").unwrap();
        let q = Query::count().with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 84.0)]);
        let dev = Device::default();
        let full = TwoStepJoin::new(2).execute(&pts, &polys, &Query::count(), &dev);
        let half = TwoStepJoin::new(2).execute(&pts, &polys, &q, &dev);
        assert!(half.stats.candidate_pairs < full.stats.candidate_pairs);
        assert!(half.total_count() < full.total_count());
    }

    #[test]
    fn empty_inputs() {
        let polys = synthetic_polygons(3, &nyc_extent(), 63);
        let out = TwoStepJoin::new(1).execute(
            &PointTable::new(),
            &polys,
            &Query::count(),
            &Device::default(),
        );
        assert_eq!(out.counts, vec![0, 0, 0]);
        let out = TwoStepJoin::new(1).execute(
            &uniform_points(10, &nyc_extent(), 1),
            &[],
            &Query::count(),
            &Device::default(),
        );
        assert!(out.counts.is_empty());
    }
}
