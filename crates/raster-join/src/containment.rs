//! Panic containment for the streaming pool's threads.
//!
//! A panicking worker must degrade *one query*, not the process: the
//! streaming executor wraps each pool thread's work in [`contained`] and
//! converts an unwound panic into a typed
//! [`StreamError::WorkerPanicked`](crate::stream::StreamError) at the API
//! boundary. The panic payload travels through the pipeline's existing
//! `io::Result` channels as an [`io::Error`] carrying a [`PanicMarker`],
//! so the first-error shutdown protocol (drain the ring, return every
//! canvas, error wins over partial results) needs no second code path.
//!
//! This is the **only** module in the workspace allowed to call
//! `catch_unwind` — enforced by the `xtask lint` `catch-unwind-containment`
//! rule — so every swallowed panic in the codebase is accounted for here:
//! [`contained`] never discards the payload, it always surfaces as a
//! typed error.
//!
//! The pool's shared state stays sound across an unwind by construction,
//! which is what makes the blanket `AssertUnwindSafe` below honest:
//! workers own their chunk exclusively (`EncodedChunk` by value, a fresh
//! per-chunk `Device`), the cross-thread channels transfer ownership
//! rather than sharing it, `parking_lot` mutexes do not poison, and the
//! one fold that mutates cross-chunk state (merger + planner feedback)
//! runs on the consumer thread *outside* any contained region. A canvas
//! held by a panicking worker is dropped, not leaked back into the
//! `FboPool` free list mid-write.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The payload of a contained panic, boxed into an [`io::Error`] so it
/// can ride the pipeline's result channels; recover it with
/// [`panic_of`].
#[derive(Debug)]
pub(crate) struct PanicMarker(pub(crate) String);

impl std::fmt::Display for PanicMarker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked: {}", self.0)
    }
}

impl std::error::Error for PanicMarker {}

/// Run `f`, converting an unwound panic into the panic message. The
/// caller decides how the message travels (usually [`panic_error`] into
/// an error channel).
pub(crate) fn contained<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_msg(p.as_ref()))
}

/// Best-effort text of a panic payload (`&str` and `String` payloads —
/// i.e. every `panic!` with a message — are recovered verbatim).
pub(crate) fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Wrap a contained panic's message as an [`io::Error`] for the result
/// channels.
pub(crate) fn panic_error(msg: String) -> io::Error {
    io::Error::other(PanicMarker(msg))
}

/// Recover the panic message from an error produced by [`panic_error`],
/// if it carries one.
pub(crate) fn panic_of(e: &io::Error) -> Option<&str> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<PanicMarker>())
        .map(|m| m.0.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contained_passes_values_and_catches_panics() {
        assert_eq!(contained(|| 7).unwrap(), 7);
        let msg = contained(|| -> i32 { panic!("boom {}", 3) }).unwrap_err();
        assert_eq!(msg, "boom 3");
        let msg = contained(|| -> i32 { panic!("static") }).unwrap_err();
        assert_eq!(msg, "static");
    }

    #[test]
    fn panic_marker_roundtrips_through_io_error() {
        let e = panic_error("worker 2 died".to_string());
        assert_eq!(panic_of(&e), Some("worker 2 died"));
        assert!(e.to_string().contains("worker panicked: worker 2 died"));
        assert_eq!(panic_of(&io::Error::other("plain")), None);
    }
}
