//! Streaming out-of-core executor: the §7.7 disk-resident scan grown
//! into a planner-driven, pipelined subsystem.
//!
//! The paper's disk-resident experiment (§7.7 / Fig. 13) "simply reads
//! data from disk as and when required to transfer to the GPU" — a
//! blocking reader: every chunk is read, then processed, then the next
//! read starts, so the disk sits idle while the join runs and the join
//! sits idle while the disk runs. [`StreamingRasterJoin`] keeps that
//! blocking loop as the paper-faithful ablation arm (`prefetch: false`)
//! and grows two pipelined paths on top of it, selected by the planner's
//! chosen worker count:
//!
//! ```text
//! blocking (§7.7 arm):   [fetch+decode] → [join] → [fetch+decode] → …
//!
//! 1 worker, prefetch:    reader thread:  [fetch+decode k+1 … k+R] ─┐
//!                        this thread:    [join k] ←────────────────┘
//!
//! pool (workers ≥ 2):    reader thread:  [paced fetch] → ring of
//!                                        encoded chunks (seq-tagged)
//!                        W pool workers: steal next chunk →
//!                                        [decode] → [join, intra=1,
//!                                        fresh per-chunk Device]
//!                        this thread:    [join sample (seq 0)], then
//!                                        reorder buffer → fold in
//!                                        ascending seq through the
//!                                        merger + planner feedback
//! ```
//!
//! The single-consumer paths overlap the reads of chunks *k+1 … k+R*
//! with the processing of chunk *k* via a bounded *readahead ring*
//! ([`DEFAULT_READAHEAD`] decoded chunks deep,
//! [`StreamingRasterJoin::with_readahead`]) — the storage/compute
//! pipelining that SPADE-style disk-resident engines show is where
//! out-of-core spatial aggregation wins. The pool path additionally
//! overlaps the *processing* of several chunks with each other: column
//! decode moves from the reader onto the pool (the reader paces raw
//! fetches only), and each worker decodes and joins whole chunks
//! concurrently with its peers.
//!
//! # Determinism
//!
//! Every chunk joins with **intra-chunk workers = 1 in all modes** —
//! parallelism lives at chunk granularity only. Each chunk's counts and
//! sums are therefore bitwise-reproducible, and the consumer folds
//! finished chunks through the [`AggregateMerger`] **in ascending chunk
//! order** (a reorder buffer holds early finishers), so the merged
//! counts are bit-identical and the merged float sums bitwise-equal
//! across pool sizes {1, 2, 4, …}, the prefetch arm and the blocking
//! arm. The planner's per-chunk feedback folds in the same order, so
//! calibration walks are reproducible too. The cost model encodes the
//! same rule: [`cost::intra_workers`] pins streaming plans (workloads
//! with `stored_row_bytes > 0`) to intra-chunk width 1, which also keeps
//! the shard path off ([`RasterConfig::use_shards`] wants intra-chunk
//! contention), while [`Plan`]'s `workers` dimension — enumerated and
//! costed with contention-aware amortization — becomes the chunk-pool
//! width.
//!
//! The concurrency invariants behind this guarantee — every chunk folded
//! exactly once, in ascending sequence order, at any worker interleaving
//! — are enumerated in `docs/INVARIANTS.md` and model-checked
//! exhaustively by `crates/checker` (run
//! `cargo run --release -p checker --bin modelcheck`), whose ring model
//! is a step-for-step small model of this reader → ring → workers →
//! reorder-buffer pipeline.
//!
//! # Sizing: readahead vs. workers
//!
//! The ring and the pool size multiply the peak in-flight footprint:
//! the pool holds up to `max(readahead, workers+1)` fetched-but-unjoined
//! chunks (a shallow readahead is widened so the ring can feed every
//! worker), plus one chunk decoding or joining per worker, plus whatever
//! early finishers the reorder buffer holds while an older chunk is
//! still in flight. Readahead rides out per-chunk *read* jitter against
//! the modelled disk; workers ride out per-chunk *processing* jitter and
//! buy genuine multi-core overlap — on a single-core box the pool
//! degenerates gracefully (the busy-interval union equals the sum of
//! busy spans, and 1-worker scans keep the historical pipeline
//! bit-for-bit).
//!
//! The executor is planner-driven end to end:
//!
//! 1. the table file's header ([`raster_data::disk::TableMeta`]) plus a
//!    sampled first chunk summarise the scan as a
//!    [`Workload`] — full row count,
//!    sampled predicate selectivity;
//! 2. the [`AutoRasterJoin`] planner ranks the full plan space for that
//!    workload; the chosen plan's *batch size becomes the chunk size*
//!    (replacing Fig. 13's hard-coded 250 k rows with the planner's
//!    batch model);
//! 3. the polygon side is prepared once
//!    ([`crate::BoundedRasterJoin::prepare`] /
//!    [`crate::AccurateRasterJoin::prepare`])
//!    and every chunk runs `execute_prepared`;
//! 4. per-chunk outputs fold through the shared
//!    [`AggregateMerger`] — the §5 distributive-aggregate combination
//!    rule (counts and sums both; AVG derives from the merged
//!    accumulators) — and each chunk's predicted-vs-actual processing
//!    time feeds the planner's calibration, which persists across
//!    processes when a calibration path is configured
//!    ([`StreamingRasterJoin::with_calibration_path`]).
//!
//! SQL runs straight off disk through the same loop: a query whose FROM
//! clause names a file (`SELECT AVG(fare) FROM 'taxi.bin', R …`,
//! [`crate::sql::file_source`]) resolves its schema from the file header
//! and streams via [`StreamingRasterJoin::execute_sql`].
//!
//! Compressed tables (`raster_data::disk::write_table_compressed`, format
//! v2/v3) stream through the identical loop: the reader decodes stored
//! chunk blocks transparently, the prefetch thread overlaps that decode
//! with both the next read and the join processing, the modelled disk
//! charges the *compressed* bytes (that is the whole win — the §7.7
//! experiment is bandwidth-bound), and the planner's workload carries the
//! storage profile ([`Workload`]'s `stored_row_bytes`/`decode_cols`) so
//! plan costs reflect the decode-CPU-vs-bytes-saved trade.
//!
//! # Projection pushdown (column pruning)
//!
//! The executor computes the set of attribute columns the query actually
//! touches ([`Query::attr_columns`]: coordinates + aggregate attribute +
//! predicate attributes) and opens the reader with exactly that
//! projection (`ChunkedReader::open_projected`): v1 files skip the
//! positioned reads of pruned columns, v3 files fetch only the needed
//! column entries of each block via the per-column directory, and legacy
//! v2 files fall back to full-block reads with a post-decode projection —
//! behavior is uniform, only the bytes differ. The query's attribute
//! indices are remapped onto the pruned table
//! ([`Query::project_attrs`]), the planner's `read_byte`/`decode_val`
//! features are charged for the *pruned* storage profile, the modelled
//! disk paces by the bytes actually fetched, and
//! [`StreamOutput::column_io`] attributes bytes and decode time per
//! column so the pruning win is auditable. `with_column_pruning(false)`
//! restores the full-column scan (the ablation arm `bench_stream`
//! compares against).
//!
//! # Accounting
//!
//! The merged [`ExecStats`](crate::ExecStats)' `disk` field is the time
//! the *chunk loop actually waited* for data: with the blocking reader
//! that is the full read time; with prefetching it is only the residual
//! stall (first chunk plus whatever the reader could not hide), so
//! `stats.total()` tracks the real wall clock and the prefetch win shows
//! up as a shrinking `disk` component. The pool path generalizes the
//! same split: `processing` becomes the *busy-interval union* — wall
//! time during which at least one worker was decoding or joining — and
//! `disk` its complement (the sample read plus the time the whole pool
//! starved for data), so `total()` still tracks the real wall clock and
//! chunk-level overlap shows up the same way prefetch overlap always
//! has. Per-stage timers (`point_stage`, `binning`, `shard_merge`, …)
//! stay cumulative *across* workers and can sum past `processing` when
//! chunks overlap. The reader thread's own wall time is reported
//! separately as [`StreamOutput::read_time`].

use crate::containment;
use crate::optimizer::{cost, AutoRasterJoin, Plan, Variant, Workload};
use crate::query::{result_slots, AggregateMerger, JoinOutput, Query};
use crate::sql::{file_source, parse_query, ParseError};
use raster_data::disk::{table_schema, ChunkedReader, ColumnIo, EncodedChunk, FaultRecovery};
use raster_data::faults;
use raster_data::PointTable;
use raster_geom::Polygon;
use raster_gpu::exec::default_workers;
use raster_gpu::{Device, RasterConfig};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows of the first chunk, read synchronously to sample the workload
/// before planning. Small enough that re-processing it as an ordinary
/// (short) chunk costs nothing measurable; large enough for the strided
/// ≤1024-row selectivity sample inside to be representative.
const SAMPLE_ROWS: usize = 4096;

/// Modelled disk bandwidth for the disk-resident experiments, following
/// the transfer model's calibration rationale
/// ([`raster_gpu::device::SIM_SLOWDOWN`]): the software rasterizer's
/// processing throughput sits roughly that factor below the paper's GPU,
/// so an SSD-class 1.5 GB/s scaled by the same factor keeps the
/// **disk : processing ratio** — the quantity Fig. 13 actually reports —
/// faithful even though this box's page cache serves reads at RAM speed.
/// Unlike the PCIe transfer model (a ledger entry), disk pacing must
/// consume *real wall time* — the prefetch arm exists precisely to hide
/// it behind processing — so paced reads sleep out the remainder of
/// their modelled duration.
pub const MODELLED_DISK_BANDWIDTH: f64 = 1.5e9 / raster_gpu::device::SIM_SLOWDOWN;

/// Default depth of the prefetch readahead ring: how many decoded chunks
/// the background reader may buffer ahead of the join
/// ([`StreamingRasterJoin::with_readahead`] overrides per scan). One more
/// chunk is always in flight inside the reader itself, so depth 3 keeps
/// up to 4 pruned chunk reads ahead of processing — enough to ride out
/// per-chunk processing jitter against the modelled disk without
/// buffering an unbounded slice of the table in memory (peak extra
/// footprint ≈ `readahead + 1` decoded chunks).
pub const DEFAULT_READAHEAD: usize = 3;

/// One streamed query's result and provenance.
#[derive(Debug, Clone)]
pub struct StreamOutput {
    /// Merged counts/sums/stats over all chunks (see module docs for the
    /// `disk` accounting).
    pub output: JoinOutput,
    /// The plan the chunk loop executed.
    pub plan: Plan,
    /// Rows per chunk actually used (the plan's batch size unless
    /// overridden, capped by the device budget).
    pub chunk_rows: usize,
    /// Chunks processed (including the sampled first chunk).
    pub chunks: u32,
    /// Chunk-pool width the scan actually ran with: the plan's worker
    /// count capped by the executor's configured parallelism; 1 means
    /// the historical single-consumer pipeline (always 1 in blocking
    /// mode).
    pub pool_workers: usize,
    /// Total rows streamed.
    pub rows: u64,
    /// Reader-side wall time summed over all `next_chunk` calls —
    /// overlapped with processing when prefetching, so it can exceed the
    /// loop's `stats.disk` wait time.
    pub read_time: Duration,
    /// Bytes actually fetched from storage: the raw data section for v1
    /// files, the compressed blocks for v2 (the §7.7 experiment is
    /// bandwidth-bound, so this is the quantity compression shrinks).
    pub read_bytes: u64,
    /// Time the reader spent decompressing chunk blocks (zero for raw
    /// files) — overlapped with join processing in prefetch mode, and
    /// with the modelled disk budget in both modes.
    pub decode_time: Duration,
    /// Attribute columns the scan materialized, ascending stored indices
    /// (`None` when pruning was off — every column was read).
    pub projection: Option<Vec<usize>>,
    /// Per stored column I/O: bytes fetched and decode time, pruned
    /// columns at zero — the per-column breakdown of `read_bytes` and
    /// `decode_time` that makes pruning wins attributable.
    pub column_io: Vec<ColumnIo>,
    /// Retry / degradation counters of the scan's reader: transient-read
    /// retries absorbed, corrupt blocks recovered by re-read, and whether
    /// the v3 column directory was rebuilt. All-zero on a healthy scan.
    pub recovery: FaultRecovery,
}

/// Errors from the streaming executor and the SQL-over-file entry point.
#[derive(Debug)]
pub enum StreamError {
    Io(io::Error),
    Parse(ParseError),
    /// The FROM clause does not name a file source.
    NoFileSource,
    /// A pool thread (reader or worker) panicked mid-scan. The panic was
    /// contained (the `containment` module): the pipeline drained, every
    /// canvas returned to its pool, and the query failed with this typed
    /// error instead of aborting the process.
    WorkerPanicked(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream I/O error: {e}"),
            StreamError::Parse(e) => write!(f, "{e}"),
            StreamError::NoFileSource => {
                write!(
                    f,
                    "query has no file table source (FROM 'path.bin' expected)"
                )
            }
            StreamError::WorkerPanicked(msg) => {
                write!(f, "streaming pool thread panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<io::Error> for StreamError {
    /// Classify an error off the pipeline's result channels: a contained
    /// panic travelling as a `containment::PanicMarker` becomes the
    /// typed [`StreamError::WorkerPanicked`]; everything else stays I/O.
    fn from(e: io::Error) -> Self {
        match containment::panic_of(&e) {
            Some(msg) => StreamError::WorkerPanicked(msg.to_string()),
            None => StreamError::Io(e),
        }
    }
}

impl From<ParseError> for StreamError {
    fn from(e: ParseError) -> Self {
        StreamError::Parse(e)
    }
}

/// Wraps a table-open error with the file path it came from while keeping
/// the original error reachable through [`std::error::Error::source`].
/// Formatting the path into a string would flatten a typed
/// `FormatError` payload into text; this keeps the chain intact so
/// `FormatError::of` (and rjquery's exit-code mapping) still see it.
#[derive(Debug)]
struct SourceContext {
    source: String,
    inner: io::Error,
}

impl std::fmt::Display for SourceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "table source '{}': {}", self.source, self.inner)
    }
}

impl std::error::Error for SourceContext {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.inner)
    }
}

/// Everything the chunk loop needs after opening, sampling and planning
/// (see [`StreamingRasterJoin::open_and_plan`]).
struct ScanSetup {
    reader: ChunkedReader,
    rows: u64,
    sample: PointTable,
    sample_read: Duration,
    wl: Workload,
    plan: Plan,
    chunk_rows: usize,
    /// The query with attribute indices remapped onto the projected
    /// table's column order (identical to the caller's query when
    /// pruning is off).
    exec_query: Query,
    /// Attribute columns materialized (`None` = all, pruning off).
    projection: Option<Vec<usize>>,
}

/// One (possibly paced) read: pulls the next chunk and, when a modelled
/// disk bandwidth is set, sleeps out the remainder of the chunk's
/// modelled read time. Pacing charges the bytes the reader *actually
/// fetched* — compressed files are charged their compressed bytes, which
/// is exactly where the compression win comes from — and the chunk's
/// decode time counts toward the same budget, so decompression hides
/// under the modelled disk whenever it is cheaper than the read it
/// saved. Returns the chunk and the read's effective duration.
fn paced_next(
    reader: &mut ChunkedReader,
    bandwidth: Option<f64>,
) -> io::Result<Option<(PointTable, Duration)>> {
    let before = reader.bytes_read();
    let t0 = Instant::now();
    let Some(chunk) = reader.next_chunk()? else {
        return Ok(None);
    };
    let mut dt = t0.elapsed();
    if let Some(bw) = bandwidth {
        let bytes = reader.bytes_read() - before;
        let target = Duration::from_secs_f64(bytes as f64 / bw);
        if dt < target {
            std::thread::sleep(target - dt);
            dt = t0.elapsed();
        }
    }
    Ok(Some((chunk, dt)))
}

/// [`paced_next`]'s fetch-only sibling for the chunk-parallel pool: pulls
/// the next *encoded* chunk and paces the bytes actually fetched, leaving
/// decode to a pool worker. Only the raw read sits inside the modelled
/// disk budget here — decode overlaps processing on the workers, which is
/// exactly the overlap the pool exists to buy (the single-consumer paths
/// keep decode inside the budget via [`paced_next`], preserving their
/// historical accounting).
fn paced_fetch(
    reader: &mut ChunkedReader,
    bandwidth: Option<f64>,
) -> io::Result<Option<(EncodedChunk, Duration)>> {
    let before = reader.bytes_read();
    let t0 = Instant::now();
    let Some(enc) = reader.fetch_chunk()? else {
        return Ok(None);
    };
    let mut dt = t0.elapsed();
    if let Some(bw) = bandwidth {
        let bytes = reader.bytes_read() - before;
        let target = Duration::from_secs_f64(bytes as f64 / bw);
        if dt < target {
            std::thread::sleep(target - dt);
            dt = t0.elapsed();
        }
    }
    Ok(Some((enc, dt)))
}

/// Busy-interval union for the pool path's `disk` accounting: the total
/// wall time during which *at least one* worker was decoding or joining a
/// chunk. `wall − covered()` is then the time the whole pool sat starved
/// for data — the multi-worker generalization of the single-consumer
/// recv-stall measurement (with one worker the union degenerates to the
/// sum of its busy spans and the residual is exactly the old stall).
struct BusyUnion {
    inner: parking_lot::Mutex<BusyState>,
}

struct BusyState {
    active: usize,
    since: Instant,
    covered: Duration,
}

impl BusyUnion {
    fn new() -> Self {
        BusyUnion {
            inner: parking_lot::Mutex::new(BusyState {
                active: 0,
                since: Instant::now(),
                covered: Duration::ZERO,
            }),
        }
    }

    /// Run `f` with this thread counted busy; nesting across threads
    /// extends the covered union rather than double-counting overlap.
    fn track<T>(&self, f: impl FnOnce() -> T) -> T {
        {
            let mut g = self.inner.lock();
            if g.active == 0 {
                g.since = Instant::now();
            }
            g.active += 1;
        }
        let out = f();
        {
            let mut g = self.inner.lock();
            g.active -= 1;
            if g.active == 0 {
                let since = g.since;
                g.covered += since.elapsed();
            }
        }
        out
    }

    fn covered(&self) -> Duration {
        let g = self.inner.lock();
        let mut c = g.covered;
        if g.active > 0 {
            c += g.since.elapsed();
        }
        c
    }
}

/// The pool consumer's reorder buffer: finished chunks arrive in
/// whatever order the workers complete them and leave strictly in
/// ascending sequence order, so the serial fold (merger + planner
/// feedback) sees the same chunk order as the sequential loop.
///
/// The release protocol — no chunk lost, duplicated, or folded out of
/// order, at any worker interleaving — is model-checked exhaustively by
/// `crates/checker`'s ring model (its `Reorder` shim mirrors this type
/// step for step); see `docs/INVARIANTS.md`.
struct ReorderBuffer<T> {
    pending: BTreeMap<u64, T>,
    next_seq: u64,
}

impl<T> ReorderBuffer<T> {
    fn new(first_seq: u64) -> Self {
        ReorderBuffer {
            pending: BTreeMap::new(),
            next_seq: first_seq,
        }
    }

    /// Buffer a completed item until its turn. Sequence tags are unique
    /// by construction (the reader allocates them monotonically), so a
    /// stale or duplicate tag is a protocol bug, not a data condition.
    fn insert(&mut self, seq: u64, v: T) {
        debug_assert!(seq >= self.next_seq, "stale seq tag {seq}");
        let prev = self.pending.insert(seq, v);
        debug_assert!(prev.is_none(), "duplicate seq tag {seq}");
    }

    /// The next in-order item, if it has already arrived.
    fn pop_next(&mut self) -> Option<T> {
        let v = self.pending.remove(&self.next_seq)?;
        self.next_seq += 1;
        Some(v)
    }
}

/// A pool worker's finished chunk, travelling back to the folding
/// consumer tagged with its sequence number.
struct ChunkDone {
    out: JoinOutput,
    /// Calibration key + raw predicted cost for the planner feedback fold
    /// (computed on the worker; *fed* by the consumer in chunk order so
    /// the calibration walk is deterministic).
    key: usize,
    raw: f64,
    /// The reader-side paced fetch time of this chunk.
    fetch: Duration,
    /// Worker-side decode wall time and its per-stored-column split.
    decode: Duration,
    col_decode: Vec<Duration>,
}

/// The streaming out-of-core operator (see module docs).
pub struct StreamingRasterJoin {
    pub workers: usize,
    /// Overlap disk reads with join processing via a background reader
    /// thread (the default). `false` is the paper-faithful §7.7 blocking
    /// reader, kept as the ablation arm.
    pub prefetch: bool,
    /// Depth of the prefetch readahead ring: decoded chunks the reader
    /// may buffer ahead of the join ([`DEFAULT_READAHEAD`]); clamped to
    /// ≥ 1. Ignored in blocking mode.
    pub readahead: usize,
    /// Materialize only the columns the query touches (the default).
    /// `false` reads every column — the full-scan ablation arm.
    pub prune_columns: bool,
    /// Fixed chunk-size override (bench grids, tests). `None` — the
    /// default — lets the planner's batch model choose.
    pub chunk_rows: Option<usize>,
    /// Pace reads to this modelled disk bandwidth (bytes/second, see
    /// [`MODELLED_DISK_BANDWIDTH`]); `None` — the default — reads at the
    /// storage's real speed.
    pub disk_bandwidth: Option<f64>,
    planner: AutoRasterJoin,
}

impl Default for StreamingRasterJoin {
    fn default() -> Self {
        StreamingRasterJoin {
            workers: default_workers(),
            prefetch: true,
            readahead: DEFAULT_READAHEAD,
            prune_columns: true,
            chunk_rows: None,
            disk_bandwidth: None,
            planner: AutoRasterJoin::default(),
        }
    }
}

impl StreamingRasterJoin {
    pub fn new(workers: usize) -> Self {
        let mut planner = AutoRasterJoin::default();
        planner.workers = workers;
        StreamingRasterJoin {
            workers,
            planner,
            ..Default::default()
        }
    }

    /// The §7.7 blocking reader (builder form).
    pub fn blocking(mut self) -> Self {
        self.prefetch = false;
        self
    }

    /// Set the readahead ring depth (builder form; clamped to ≥ 1).
    pub fn with_readahead(mut self, depth: usize) -> Self {
        self.readahead = depth.max(1);
        self
    }

    /// Toggle projection pushdown (builder form): `false` reads every
    /// column — the full-scan ablation arm.
    pub fn with_column_pruning(mut self, on: bool) -> Self {
        self.prune_columns = on;
        self
    }

    /// Fix the chunk size instead of asking the planner (builder form).
    pub fn with_chunk_rows(mut self, rows: usize) -> Self {
        self.chunk_rows = Some(rows);
        self
    }

    /// Pace reads to a modelled disk bandwidth (builder form).
    pub fn with_disk_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "disk bandwidth must be positive");
        self.disk_bandwidth = Some(bytes_per_sec);
        self
    }

    /// Restrict the planner to one pipeline config (builder form).
    pub fn with_config_override(mut self, config: RasterConfig) -> Self {
        self.planner.config_override = Some(config);
        self
    }

    /// Persist the planner's calibration at `path` across processes:
    /// loaded now, re-saved after every per-chunk feedback fold (see
    /// [`AutoRasterJoin::with_calibration_path`]).
    pub fn with_calibration_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.planner = self.planner.with_calibration_path(path);
        self
    }

    /// The embedded planner (decision audit, calibration snapshots).
    pub fn planner(&self) -> &AutoRasterJoin {
        &self.planner
    }

    /// Plan the scan of `path` without executing it: the workload summary
    /// from the file header plus a sampled first chunk, and the chunk
    /// size the plan implies. Shares the open/sample/summarise/plan
    /// preamble with [`StreamingRasterJoin::execute`], so the advertised
    /// plan is exactly what an execution would run.
    pub fn plan_scan(
        &self,
        path: &Path,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> Result<(Plan, usize), StreamError> {
        let setup = self.open_and_plan(path, polys, query, device)?;
        Ok((setup.plan, setup.chunk_rows))
    }

    fn chunk_size_for(&self, plan: &Plan, query: &Query, device: &Device) -> usize {
        let capacity = device.points_per_batch(PointTable::point_bytes(query.attrs_uploaded()));
        self.chunk_rows
            .unwrap_or(plan.batch_points)
            .clamp(1, capacity.max(1))
    }

    /// Open the table (projected down to the query's column set when
    /// pruning is on), read the (paced) sample chunk, summarise the
    /// workload and pick the plan + chunk size — everything before the
    /// chunk loop, shared by `plan_scan`, `explain` and `execute`.
    fn open_and_plan(
        &self,
        path: &Path,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> io::Result<ScanSetup> {
        // Projection pushdown: the reader materializes only the columns
        // the query touches, and the query's attribute indices are
        // remapped onto the pruned table.
        let (projection, exec_query) = if self.prune_columns {
            let required = query.attr_columns();
            let exec = query.project_attrs(&required);
            (Some(required), exec)
        } else {
            (None, query.clone())
        };
        let mut reader = ChunkedReader::open_projected(path, SAMPLE_ROWS, projection.as_deref())?;
        let rows = reader.meta().rows;
        // Storage profile for the planner's disk features: bytes this
        // scan fetches per row — the *pruned* column set's stored bytes,
        // derived from the file's per-column block sizes (compressed
        // files fetch fewer than the logical row width; pruned scans
        // fewer still) — and the stored columns each row pays to decode.
        let scan_bytes = match &projection {
            Some(p) => reader.meta().pruned_scan_bytes(p),
            None => reader.meta().scan_bytes(),
        };
        let stored_row_bytes = if rows > 0 {
            scan_bytes as f64 / rows as f64
        } else {
            0.0
        };
        let decode_cols = if reader.meta().is_compressed() {
            let mat = projection
                .as_ref()
                .map_or(reader.meta().attr_names.len(), Vec::len);
            (2 + mat) as f64
        } else {
            0.0
        };

        // Sample chunk: read synchronously (it doubles as chunk #1), then
        // summarise and plan.
        let (sample, sample_read) = match paced_next(&mut reader, self.disk_bandwidth)? {
            Some((chunk, dt)) => (chunk, dt),
            None => (PointTable::default(), Duration::ZERO),
        };
        let wl = Workload {
            n_points: rows as usize,
            stored_row_bytes,
            decode_cols,
            ..Workload::sample(&sample, polys, &exec_query)
        };
        let plan = self
            .planner
            .plan_summary(&wl, &exec_query, device)
            .best()
            .plan;
        let chunk_rows = self.chunk_size_for(&plan, &exec_query, device);
        reader.set_chunk_rows(chunk_rows);
        Ok(ScanSetup {
            reader,
            rows,
            sample,
            sample_read,
            wl,
            plan,
            chunk_rows,
            exec_query,
            projection,
        })
    }

    /// Stream the columnar table at `path` through the join.
    ///
    /// Error paths are hardened: transient read faults are retried and
    /// recoverable corruption degrades inside the reader (see
    /// [`FaultRecovery`] echoed in [`StreamOutput::recovery`]); a panic on
    /// a pool thread is contained and surfaces as
    /// [`StreamError::WorkerPanicked`] after the pipeline drains — never a
    /// process abort, never a silent partial aggregate.
    pub fn execute(
        &self,
        path: &Path,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> Result<StreamOutput, StreamError> {
        let ScanSetup {
            mut reader,
            rows,
            sample,
            sample_read,
            wl,
            plan,
            chunk_rows,
            exec_query,
            projection,
        } = self.open_and_plan(path, polys, query, device)?;
        // Every chunk below is a *projected* table, so the remapped
        // query addresses it (identical to `query` when pruning is off).
        let query = &exec_query;

        // Prepare the polygon side once; every chunk is one device batch
        // (the executors come from the same plan→executor mapping as
        // `Plan::execute`, with the chunk as the batch size).
        //
        // Determinism rule: every chunk joins with intra-chunk workers=1
        // in *all* modes. Parallelism comes from the chunk pool below
        // processing several chunks at once; within a chunk the join is
        // single-threaded, so each chunk's counts and sums are
        // bitwise-reproducible, and the ordered fold then makes the whole
        // scan's output bitwise-identical across pool sizes and the
        // blocking arm. The planner costs the same rule
        // (`cost::intra_workers` pins streaming plans to intra=1), which
        // also disables the shard path — `RasterConfig::use_shards` needs
        // intra-chunk workers > 1 to have contention worth deflecting.
        let mut bounded = plan.bounded_executor(chunk_rows);
        bounded.workers = 1;
        let mut accurate = plan.accurate_executor(chunk_rows);
        accurate.workers = 1;
        enum Prepared<'a> {
            Bounded(crate::bounded::PreparedBounded),
            Accurate(crate::accurate::PreparedAccurate<'a>),
        }
        let prepared = match plan.variant {
            Variant::Bounded => Prepared::Bounded(bounded.prepare(polys, query.epsilon, device)),
            Variant::Accurate => Prepared::Accurate(accurate.prepare(polys, device)),
        };

        // The calibration snapshot for raw (uncorrected) per-chunk costs;
        // feedback only moves the per-key corrections, so a snapshot
        // taken once stays the right baseline for the whole scan.
        let cal = self.planner.calibration();
        let mut merger = AggregateMerger::new(result_slots(polys));
        let mut read_time = sample_read;
        // Time the loop observably waited for data; the sample read is a
        // wait in both modes.
        let mut stall = sample_read;
        // Reader-side byte/decode accounting; covers the sample read now,
        // finalized from wherever the reader ends up (the prefetch thread
        // hands its counters back on join).
        let mut read_bytes = reader.bytes_read();
        let mut decode_time = reader.decode_time();
        let mut column_io = reader.column_io().to_vec();
        // Retry/degradation counters; the reader threads hand their final
        // tallies back on join, superseding this open-time snapshot.
        let mut recovery = reader.recovery().clone();

        // One chunk's join + its planner-feedback ingredients, against an
        // explicit device so pool workers can substitute a fresh one.
        // Captures only `Sync` state — safe to share across the pool.
        let run_chunk_on = |chunk: &PointTable, dev: &Device| -> (JoinOutput, usize, f64) {
            let out = match &prepared {
                Prepared::Bounded(p) => bounded.execute_prepared(p, chunk, query, dev),
                Prepared::Accurate(p) => accurate.execute_prepared(p, chunk, query, dev),
            };
            let chunk_wl = Workload {
                n_points: chunk.len(),
                ..wl
            };
            let sh = cost::shape(&plan, &chunk_wl, dev);
            let mut features = cost::features_for(&plan, &chunk_wl, dev, &sh);
            // The accurate variant's outline pass is a per-query one-off
            // that `execute_prepared` (rightly) does not re-run per
            // chunk; its feature must not be charged against per-chunk
            // actuals or every chunk would observe biased-low and drag
            // the plan key's correction down.
            features[cost::W_OUTLINE_PX] = 0.0;
            // Read and decode happen off the join's critical path (the
            // reader thread or a pool worker overlaps them with other
            // chunks' processing), so they are not in the measured
            // per-chunk processing either.
            features[cost::W_READ_BYTE] = 0.0;
            features[cost::W_DECODE_VAL] = 0.0;
            (out, cost::effective_key_of(&plan, &sh), cal.raw(&features))
        };
        // The serial fold: planner feedback + merger, always called in
        // ascending chunk order (the pool's reorder buffer guarantees it)
        // so calibration walks and merged sums are deterministic.
        let mut absorb = |out: JoinOutput, key: usize, raw: f64| {
            self.planner.feed(key, raw, out.stats.processing);
            merger.fold(&out);
        };

        // Chunk-pool width: the planner's chosen worker count, capped by
        // this executor's configured parallelism. Blocking mode and
        // width ≤ 1 take the historical single-consumer paths, which keep
        // chunk decode inside the paced-disk budget; the pool paces raw
        // fetches only and lets decode overlap processing on the workers.
        let pool_workers = if self.prefetch {
            plan.workers.min(self.workers.max(1))
        } else {
            1
        };
        // Pool-mode (wall, busy-union) pair for the finale's accounting.
        let mut pool_times: Option<(Duration, Duration)> = None;

        if !sample.is_empty() {
            // Defer the sample chunk's processing until after the reader
            // thread is spawned, so the read of chunk #2 overlaps it.
            if self.prefetch && pool_workers > 1 {
                // Chunk-parallel pool. Three stages:
                //   reader thread — paced fetch of *encoded* chunks
                //     (I/O only) into a bounded ring;
                //   pool workers  — steal the next fetched chunk, decode
                //     it and run the single-threaded join against a
                //     fresh per-chunk Device (the transfer ledger is the
                //     one piece of cross-chunk mutable device state);
                //   this thread   — processes the sample chunk (seq 0),
                //     then folds finished chunks in ascending sequence
                //     through the merger and planner feedback.
                let bandwidth = self.disk_bandwidth;
                // The ring must hold at least one fetched chunk per
                // worker plus one spare, or a shallow readahead setting
                // would starve the pool it is supposed to feed.
                let ring = self.readahead.max(1).max(pool_workers + 1);
                let busy = BusyUnion::new();
                let wall0 = Instant::now();
                type Fetched = (u64, io::Result<(EncodedChunk, Duration)>);
                let (work_tx, work_rx) = mpsc::sync_channel::<Fetched>(ring);
                let work_rx = Arc::new(parking_lot::Mutex::new(work_rx));
                let (res_tx, res_rx) = mpsc::channel::<(u64, io::Result<ChunkDone>)>();

                let (first_err, bytes, sample_decode, cols, rec, pool_read, pool_decode, pool_cols) =
                    crossbeam::thread::scope(|s| {
                        // Reader: fetch + pace only; decode runs on the
                        // pool. Hands its byte/per-column counters back.
                        // The fetch loop runs contained: a panic inside
                        // the reader (or the `stream.reader` failpoint's
                        // panic kind) becomes one more error on the ring,
                        // taking the same first-error shutdown path as an
                        // I/O failure.
                        let reader_handle = s.spawn(move |_| {
                            let mut seq = 1u64; // the sample is seq 0
                            let ran = containment::contained(|| loop {
                                if let Some(kind) = faults::hit(faults::STREAM_READER) {
                                    if kind == faults::FaultKind::Panic {
                                        panic!("injected fault: stream.reader");
                                    }
                                    let _ = work_tx.send((seq, Err(faults::io_error(kind))));
                                    break;
                                }
                                match paced_fetch(&mut reader, bandwidth) {
                                    Ok(Some(pair)) => {
                                        if work_tx.send((seq, Ok(pair))).is_err() {
                                            break; // pool bailed
                                        }
                                        seq += 1;
                                    }
                                    Ok(None) => break,
                                    Err(e) => {
                                        let _ = work_tx.send((seq, Err(e)));
                                        break;
                                    }
                                }
                            });
                            if let Err(msg) = ran {
                                let _ = work_tx.send((seq, Err(containment::panic_error(msg))));
                            }
                            (
                                reader.bytes_read(),
                                reader.decode_time(),
                                reader.column_io().to_vec(),
                                reader.recovery().clone(),
                            )
                        });
                        for _ in 0..pool_workers {
                            let work_rx = Arc::clone(&work_rx);
                            let res_tx = res_tx.clone();
                            let busy = &busy;
                            let run_chunk_on = &run_chunk_on;
                            let dev_cfg = device.config();
                            s.spawn(move |_| loop {
                                // Work stealing at chunk granularity:
                                // whichever worker goes idle first takes
                                // the next fetched chunk off the shared
                                // ring (a blocking recv under a mutex —
                                // the queue itself is the steal point).
                                let Ok((seq, fetched)) = work_rx.lock().recv() else {
                                    break; // reader hung up, ring drained
                                };
                                // Contained decode+join: a panicking
                                // worker still sends *something* for its
                                // claimed seq — otherwise the consumer's
                                // reorder buffer would wait on that seq
                                // forever and the query would either hang
                                // or fold a silent partial aggregate.
                                let done = match containment::contained(|| {
                                    fetched.and_then(|(enc, fetch)| {
                                        match faults::hit(faults::STREAM_WORKER) {
                                            Some(faults::FaultKind::Panic) => {
                                                panic!("injected fault: stream.worker")
                                            }
                                            Some(kind) => return Err(faults::io_error(kind)),
                                            None => {}
                                        }
                                        busy.track(|| {
                                            enc.decode().map(|dec| {
                                                let dev = Device::new(dev_cfg);
                                                let (out, key, raw) =
                                                    run_chunk_on(&dec.table, &dev);
                                                ChunkDone {
                                                    out,
                                                    key,
                                                    raw,
                                                    fetch,
                                                    decode: dec.decode_time,
                                                    col_decode: dec.col_decode,
                                                }
                                            })
                                        })
                                    })
                                }) {
                                    Ok(done) => done,
                                    Err(msg) => Err(containment::panic_error(msg)),
                                };
                                if res_tx.send((seq, done)).is_err() {
                                    break; // consumer bailed
                                }
                            });
                        }
                        drop(res_tx);

                        // The sample is seq 0: processed here, inside the
                        // busy union, while the pool already fetches and
                        // joins chunks 1…R behind it.
                        let sample_done = busy.track(|| {
                            let (out, key, raw) = run_chunk_on(&sample, device);
                            ChunkDone {
                                out,
                                key,
                                raw,
                                fetch: Duration::ZERO,
                                decode: Duration::ZERO,
                                col_decode: Vec::new(),
                            }
                        });

                        // Ordered fold: the reorder buffer releases chunks
                        // in ascending seq, so merged sums, calibration
                        // feedback and error precedence are identical to
                        // the sequential loop's.
                        let mut pending: ReorderBuffer<io::Result<ChunkDone>> =
                            ReorderBuffer::new(0);
                        pending.insert(0, Ok(sample_done));
                        let mut first_err: Option<io::Error> = None;
                        let mut pool_read = Duration::ZERO;
                        let mut pool_decode = Duration::ZERO;
                        let mut pool_cols: Vec<Duration> = Vec::new();
                        loop {
                            while first_err.is_none() {
                                match pending.pop_next() {
                                    Some(Ok(done)) => {
                                        pool_read += done.fetch;
                                        pool_decode += done.decode;
                                        for (ci, d) in done.col_decode.iter().enumerate() {
                                            if pool_cols.len() <= ci {
                                                pool_cols.resize(ci + 1, Duration::ZERO);
                                            }
                                            pool_cols[ci] += *d;
                                        }
                                        absorb(done.out, done.key, done.raw);
                                    }
                                    Some(Err(e)) => first_err = Some(e),
                                    None => break,
                                }
                            }
                            if first_err.is_some() {
                                break;
                            }
                            match res_rx.recv() {
                                Ok((seq, done)) => {
                                    pending.insert(seq, done);
                                }
                                Err(_) => break, // every worker finished
                            }
                        }
                        // Unblock the pipeline before the scope joins:
                        // dropping the receivers fails the workers' sends,
                        // the workers exit and drop their ring handles,
                        // and the reader's ring send then fails too.
                        drop(res_rx);
                        drop(work_rx);
                        // The reader loop itself is contained, so a join
                        // error here means the panic escaped the fetch
                        // loop (e.g. inside the counter hand-back). Fold
                        // it into the error slot instead of aborting; the
                        // counters are unknowable, so they stay zero.
                        let (bytes, sample_decode, cols, rec) = match reader_handle.join() {
                            Ok(counters) => counters,
                            Err(p) => {
                                let msg = containment::panic_msg(p.as_ref());
                                first_err.get_or_insert_with(|| containment::panic_error(msg));
                                (0, Duration::ZERO, Vec::new(), FaultRecovery::default())
                            }
                        };
                        (
                            first_err,
                            bytes,
                            sample_decode,
                            cols,
                            rec,
                            pool_read,
                            pool_decode,
                            pool_cols,
                        )
                    })
                    .map_err(|p| {
                        // A pool worker's spawn closure unwound outside
                        // its contained region; crossbeam re-raises it at
                        // scope exit. Surface it typed.
                        StreamError::WorkerPanicked(containment::panic_msg(p.as_ref()))
                    })?;
                if let Some(e) = first_err {
                    return Err(e.into());
                }
                recovery = rec;
                read_time += pool_read;
                read_bytes = bytes;
                // The reader only saw the sample decode; the chunks'
                // decode ran on the workers.
                decode_time = sample_decode + pool_decode;
                column_io = cols;
                for (ci, d) in pool_cols.iter().enumerate() {
                    if let Some(c) = column_io.get_mut(ci) {
                        c.decode_time += *d;
                    }
                }
                pool_times = Some((wall0.elapsed(), busy.covered()));
            } else if self.prefetch {
                let bandwidth = self.disk_bandwidth;
                // The readahead ring: a bounded channel holding up to
                // `readahead` decoded chunks, with one more always in
                // flight inside the reader — several pruned chunk reads
                // stay ahead of the join instead of the old two slots.
                let (tx, rx) =
                    mpsc::sync_channel::<io::Result<(PointTable, Duration)>>(self.readahead.max(1));
                // The reader thread reads AND decodes: decompression of
                // chunk k+1 overlaps the join processing of chunk k just
                // like the read itself does. It hands its cumulative
                // byte/decode/per-column counters back when it finishes.
                let handle = std::thread::spawn(move || {
                    // Contained like the pool reader: a panic becomes one
                    // more error on the ring and the consumer below turns
                    // it into a typed `WorkerPanicked`.
                    let ran = containment::contained(|| loop {
                        if let Some(kind) = faults::hit(faults::STREAM_READER) {
                            if kind == faults::FaultKind::Panic {
                                panic!("injected fault: stream.reader");
                            }
                            let _ = tx.send(Err(faults::io_error(kind)));
                            break;
                        }
                        match paced_next(&mut reader, bandwidth) {
                            Ok(Some(pair)) => {
                                if tx.send(Ok(pair)).is_err() {
                                    break; // consumer bailed
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                let _ = tx.send(Err(e));
                                break;
                            }
                        }
                    });
                    if let Err(msg) = ran {
                        let _ = tx.send(Err(containment::panic_error(msg)));
                    }
                    (
                        reader.bytes_read(),
                        reader.decode_time(),
                        reader.column_io().to_vec(),
                        reader.recovery().clone(),
                    )
                });
                let (out, key, raw) = run_chunk_on(&sample, device);
                absorb(out, key, raw);
                loop {
                    let w0 = Instant::now();
                    match rx.recv() {
                        Ok(Ok((chunk, dt))) => {
                            stall += w0.elapsed();
                            read_time += dt;
                            let (out, key, raw) = run_chunk_on(&chunk, device);
                            absorb(out, key, raw);
                        }
                        Ok(Err(e)) => {
                            drop(rx);
                            let _ = handle.join();
                            return Err(e.into());
                        }
                        Err(_) => break, // reader finished and hung up
                    }
                }
                let (bytes, decode, cols, rec) = match handle.join() {
                    Ok(counters) => counters,
                    Err(p) => {
                        return Err(StreamError::WorkerPanicked(containment::panic_msg(
                            p.as_ref(),
                        )));
                    }
                };
                read_bytes = bytes;
                decode_time = decode;
                column_io = cols;
                recovery = rec;
            } else {
                // Paper-faithful §7.7: read, then process, strictly
                // alternating on one buffer.
                let (out, key, raw) = run_chunk_on(&sample, device);
                absorb(out, key, raw);
                while let Some((chunk, dt)) = paced_next(&mut reader, self.disk_bandwidth)? {
                    read_time += dt;
                    stall += dt;
                    let (out, key, raw) = run_chunk_on(&chunk, device);
                    absorb(out, key, raw);
                }
                read_bytes = reader.bytes_read();
                decode_time = reader.decode_time();
                column_io = reader.column_io().to_vec();
                recovery = reader.recovery().clone();
            }
        }

        let chunks = merger.chunks();
        // One save for the whole scan (feed() deliberately does not
        // autosave per chunk); best-effort like execute()'s autosave.
        if chunks > 0 {
            let _ = self.planner.persist();
        }
        let mut output = merger.finish();
        output.stats.disk = stall;
        if let Some((wall, covered)) = pool_times {
            // Pool accounting (see module docs): `processing` is the
            // busy-interval union — wall time during which at least one
            // worker was decoding or joining — and `disk` its complement:
            // the sample read plus the wall time the whole pool starved
            // for data. `total()` then still tracks the real wall clock
            // (sample_read + wall + modelled transfer), and chunk-level
            // overlap shows up exactly like prefetch overlap always has:
            // as a shrinking `disk` component. The per-stage timers
            // (`point_stage`, `binning`, `shard_merge`, …) remain
            // cumulative across workers, so they sum over `processing`
            // when chunks overlapped.
            output.stats.processing = covered;
            output.stats.disk = sample_read + wall.saturating_sub(covered);
        }
        if let Prepared::Accurate(p) = &prepared {
            // The one-off conservative outline pass is processing time,
            // charged exactly once per query (not per chunk).
            output.stats.processing += p.outline_time();
            output.stats.polygon_stage += p.outline_time();
            output.stats.passes += 1;
        }
        Ok(StreamOutput {
            output,
            plan,
            chunk_rows,
            chunks,
            pool_workers,
            rows,
            read_time,
            read_bytes,
            decode_time,
            projection,
            column_io,
            recovery,
        })
    }

    /// Resolve a SQL query's quoted FROM file source: the table path plus
    /// the query parsed against the file header's schema (shared by
    /// [`StreamingRasterJoin::execute_sql`] and
    /// [`StreamingRasterJoin::explain_sql`]).
    ///
    /// Schema errors are wrapped in a [`SourceContext`] naming the path —
    /// as a *source-chain* layer, not a formatted string, so a typed
    /// `FormatError` underneath stays recoverable via `FormatError::of`
    /// (rjquery keys its exit codes on it).
    fn resolve_sql(
        &self,
        sql: &str,
        epsilon: Option<f64>,
    ) -> Result<(PathBuf, Query), StreamError> {
        let source = file_source(sql).ok_or(StreamError::NoFileSource)?;
        let path = PathBuf::from(&source);
        // Name the path in the error: the no-escape tokenizer truncates a
        // quoted path at its first apostrophe, and a bare NotFound for
        // the wrong path is otherwise hard to diagnose. Schema resolution
        // must not demand the whole data section (`table_schema`, not
        // `table_meta`): whether missing trailing bytes matter depends on
        // the columns the query needs, which the projected open judges —
        // a file truncated inside pruned-away columns still serves its
        // queries through this entry point.
        let meta = table_schema(&path).map_err(|e| {
            StreamError::Io(io::Error::new(e.kind(), SourceContext { source, inner: e }))
        })?;
        let names: Vec<&str> = meta.attr_names.iter().map(String::as_str).collect();
        let schema = PointTable::with_capacity(0, &names);
        let mut query = parse_query(sql, &schema)?;
        if let Some(eps) = epsilon {
            query = query.with_epsilon(eps);
        }
        Ok((path, query))
    }

    /// Run a SQL query whose FROM clause names a columnar table file
    /// (`SELECT AVG(fare) FROM 'taxi.bin', R WHERE … GROUP BY R.id`):
    /// the schema comes from the file header, the data streams through
    /// the planner-driven chunk loop. `epsilon` overrides the dialect's
    /// default ε (the SQL fragment has no syntax for it). Returns the
    /// parsed query alongside the result so callers can derive the final
    /// aggregate values ([`JoinOutput::values`]).
    pub fn execute_sql(
        &self,
        sql: &str,
        epsilon: Option<f64>,
        polys: &[Polygon],
        device: &Device,
    ) -> Result<(Query, StreamOutput), StreamError> {
        let (path, query) = self.resolve_sql(sql, epsilon)?;
        let out = self.execute(&path, polys, &query, device)?;
        Ok((query, out))
    }

    /// EXPLAIN for a streamed scan: the plan the chunk loop would run,
    /// the chunk/readahead layout, the pruned column set and the
    /// planner's predicted read bytes (which reflect the pruning —
    /// computed from the file's per-column stored sizes). Shares the
    /// open/sample/summarise/plan preamble with
    /// [`StreamingRasterJoin::execute`], so the advertised plan is
    /// exactly what an execution would run.
    pub fn explain(
        &self,
        path: &Path,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> Result<String, StreamError> {
        use std::fmt::Write as _;
        let setup = self.open_and_plan(path, polys, query, device)?;
        let meta = setup.reader.meta();
        let total_attrs = meta.attr_names.len();
        let mut out = String::new();
        out.push_str("RasterJoin streaming scan\n");
        let _ = writeln!(
            out,
            "  source: '{}' (format v{}, {} rows, {} attribute column(s))",
            path.display(),
            meta.version(),
            meta.rows,
            total_attrs
        );
        let _ = writeln!(out, "  operator: {}", setup.plan.describe());
        let _ = writeln!(
            out,
            "  chunk: {} row(s), readahead {} chunk(s) ({})",
            setup.chunk_rows,
            if self.prefetch {
                self.readahead.max(1)
            } else {
                0
            },
            if self.prefetch {
                "prefetching reader"
            } else {
                "blocking reader"
            }
        );
        // The same width computation as `execute`: the planner's chosen
        // worker count capped by the executor's configured parallelism.
        let pool_workers = if self.prefetch {
            setup.plan.workers.min(self.workers.max(1))
        } else {
            1
        };
        let _ = writeln!(
            out,
            "  workers: {} chunk-pool worker(s) (planner chose {}, executor caps at {})",
            pool_workers,
            setup.plan.workers,
            self.workers.max(1)
        );
        match &setup.projection {
            Some(p) => {
                let mut cols = vec!["x".to_string(), "y".to_string()];
                cols.extend(p.iter().map(|&a| meta.attr_names[a].clone()));
                let _ = writeln!(
                    out,
                    "  columns: {} — pruned {} of {} attribute column(s)",
                    cols.join(", "),
                    total_attrs - p.len(),
                    total_attrs
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  columns: all {total_attrs} attribute column(s) (pruning off)"
                );
            }
        }
        let scan_bytes = (setup.wl.stored_row_bytes * meta.rows as f64).round() as u64;
        let full_bytes = meta.scan_bytes();
        let _ = writeln!(
            out,
            "  predicted read bytes: {} of {} full-scan bytes ({:.2}x fewer)",
            scan_bytes,
            full_bytes,
            full_bytes as f64 / scan_bytes.max(1) as f64
        );
        let _ = writeln!(
            out,
            "  selectivity: {:.4} predicate, {:.4} surviving ({})",
            setup.wl.selectivity,
            setup.wl.surviving,
            if setup.wl.sampled_rows > 0 {
                format!("sampled {} rows", setup.wl.sampled_rows)
            } else {
                "assumed; no sample rows".to_string()
            }
        );
        // Degradation already observed while opening + sampling: a scan
        // that needed the v3 directory rebuilt or reads retried says so
        // up front rather than silently serving from the fallback path.
        let rec = setup.reader.recovery();
        if rec.any() {
            let _ = writeln!(
                out,
                "  resilience: degraded source ({} read retries, {} block re-reads{})",
                rec.io_retries,
                rec.block_rereads,
                if rec.dir_rebuilt {
                    ", column directory rebuilt — full-block reads"
                } else {
                    ""
                }
            );
        } else {
            let _ = writeln!(
                out,
                "  resilience: healthy source (retry budget {} per read)",
                raster_data::disk::READ_RETRIES
            );
        }
        Ok(out)
    }

    /// [`StreamingRasterJoin::explain`] for a SQL query with a quoted
    /// FROM file source; the schema comes from the file header, like
    /// [`StreamingRasterJoin::execute_sql`]. A leading `EXPLAIN` keyword
    /// (any case) is accepted and ignored, like [`crate::sql::explain_query`].
    pub fn explain_sql(
        &self,
        sql: &str,
        epsilon: Option<f64>,
        polys: &[Polygon],
        device: &Device,
    ) -> Result<String, StreamError> {
        let trimmed = sql.trim_start();
        let body = match trimmed.get(..7) {
            Some(kw) if kw.eq_ignore_ascii_case("EXPLAIN") => &trimmed[7..],
            _ => trimmed,
        };
        let (path, query) = self.resolve_sql(body, epsilon)?;
        self.explain(&path, polys, &query, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregate;
    use raster_data::disk::write_table;
    use raster_data::generators::{nyc_extent, TaxiModel};
    use raster_data::polygons::synthetic_polygons;
    use raster_gpu::DeviceConfig;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rjr-stream-{}-{name}", std::process::id()));
        p
    }

    fn small_device(points: usize, attrs: usize, max_fbo: u32) -> Device {
        Device::new(DeviceConfig::small(
            points * PointTable::point_bytes(attrs),
            max_fbo,
        ))
    }

    #[test]
    fn streaming_count_matches_in_memory_in_both_modes() {
        let pts = TaxiModel::default().generate(20_000, 301);
        let polys = synthetic_polygons(10, &nyc_extent(), 302);
        let q = Query::count().with_epsilon(20.0);
        let dev = small_device(3_000, 0, 8192);
        let path = tmp("count.bin");
        write_table(&path, &pts).unwrap();

        let stream = StreamingRasterJoin::new(2);
        let s = stream.execute(&path, &polys, &q, &dev).unwrap();
        assert!(s.chunks >= 3, "3k-point budget must chunk a 20k table");
        assert!(s.chunk_rows <= 3_000);
        // In-memory reference: the exact plan the stream executed.
        let reference = s.plan.execute(&pts, &polys, &q, &dev);
        assert_eq!(s.output.counts, reference.counts);

        let blocking = StreamingRasterJoin::new(2).blocking();
        let b = blocking.execute(&path, &polys, &q, &dev).unwrap();
        assert_eq!(b.output.counts, reference.counts);
        // Blocking mode's loop-visible wait is the full read time by
        // construction. (The prefetch arm's wait-vs-read relation is a
        // scheduling property, asserted only in the paced bench where
        // the margin is orders of magnitude above scheduler noise.)
        assert_eq!(b.output.stats.disk, b.read_time);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_avg_with_predicate_matches_in_memory() {
        use raster_data::{CmpOp, Predicate};
        let pts = TaxiModel::default().generate(15_000, 303);
        let fare = pts.attr_index("fare").unwrap();
        let hour = pts.attr_index("hour").unwrap();
        let polys = synthetic_polygons(8, &nyc_extent(), 304);
        let q = Query::avg(fare)
            .with_epsilon(30.0)
            .with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 100.0)]);
        let dev = small_device(2_000, q.attrs_uploaded(), 8192);
        let path = tmp("avg.bin");
        write_table(&path, &pts).unwrap();

        let s = StreamingRasterJoin::new(2)
            .execute(&path, &polys, &q, &dev)
            .unwrap();
        assert!(s.chunks >= 3);
        let reference = s.plan.execute(&pts, &polys, &q, &dev);
        assert_eq!(s.output.counts, reference.counts);
        let (got, want) = (
            s.output.values(Aggregate::Avg(fare)),
            reference.values(Aggregate::Avg(fare)),
        );
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-5 * w.abs().max(1.0),
                "slot {i}: {g} vs {w}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn planner_chunk_size_fills_the_device_budget() {
        let pts = TaxiModel::default().generate(10_000, 305);
        let polys = synthetic_polygons(6, &nyc_extent(), 306);
        let q = Query::count().with_epsilon(50.0);
        let dev = small_device(2_500, 0, 8192);
        let path = tmp("chunksize.bin");
        write_table(&path, &pts).unwrap();
        let stream = StreamingRasterJoin::new(2);
        let (plan, chunk) = stream.plan_scan(&path, &polys, &q, &dev).unwrap();
        // The planner's batch model prefers capacity fill (fewer
        // per-batch overheads), so the chunk oracle says "device budget".
        assert_eq!(chunk, 2_500);
        assert_eq!(chunk, plan.batch_points.min(2_500));
        let s = stream.execute(&path, &polys, &q, &dev).unwrap();
        assert_eq!(s.chunk_rows, chunk);
        // Sample chunk + ⌈(10000-4096)/2500⌉ planner-sized chunks.
        assert_eq!(s.chunks, 1 + 3);
        // A fixed override wins over the oracle.
        let fixed = StreamingRasterJoin::new(2).with_chunk_rows(997);
        let f = fixed.execute(&path, &polys, &q, &dev).unwrap();
        assert_eq!(f.chunk_rows, 997);
        assert_eq!(f.output.counts, s.output.counts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_streams_to_zeroes() {
        let polys = synthetic_polygons(5, &nyc_extent(), 307);
        let path = tmp("empty.bin");
        write_table(&path, &PointTable::with_capacity(0, &["a"])).unwrap();
        let s = StreamingRasterJoin::new(2)
            .execute(&path, &polys, &Query::count(), &Device::default())
            .unwrap();
        assert_eq!(s.rows, 0);
        assert_eq!(s.chunks, 0);
        assert_eq!(s.output.total_count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn per_chunk_feedback_reaches_the_calibration() {
        let pts = TaxiModel::default().generate(8_000, 308);
        let polys = synthetic_polygons(6, &nyc_extent(), 309);
        let q = Query::count().with_epsilon(30.0);
        let dev = small_device(2_000, 0, 8192);
        let path = tmp("feedback.bin");
        write_table(&path, &pts).unwrap();
        let stream = StreamingRasterJoin::new(2);
        assert_eq!(stream.planner().calibration().observations, 0);
        let s = stream.execute(&path, &polys, &q, &dev).unwrap();
        assert_eq!(
            stream.planner().calibration().observations,
            s.chunks as u64,
            "every chunk must feed the calibration"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn calibration_path_round_trips_through_streaming() {
        let pts = TaxiModel::default().generate(6_000, 310);
        let polys = synthetic_polygons(6, &nyc_extent(), 311);
        let q = Query::count().with_epsilon(30.0);
        let dev = small_device(2_000, 0, 8192);
        let path = tmp("calstream.bin");
        let cal_path = tmp("calstream.json");
        std::fs::remove_file(&cal_path).ok();
        write_table(&path, &pts).unwrap();

        let first = StreamingRasterJoin::new(2).with_calibration_path(&cal_path);
        let s = first.execute(&path, &polys, &q, &dev).unwrap();
        drop(first);
        let second = StreamingRasterJoin::new(2).with_calibration_path(&cal_path);
        assert_eq!(
            second.planner().calibration().observations,
            s.chunks as u64,
            "per-chunk feedback must persist across streaming instances"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&cal_path).ok();
    }

    #[test]
    fn sql_runs_straight_off_disk() {
        let pts = TaxiModel::default().generate(9_000, 312);
        let fare = pts.attr_index("fare").unwrap();
        let polys = synthetic_polygons(7, &nyc_extent(), 313);
        let path = tmp("sql.bin");
        write_table(&path, &pts).unwrap();
        let dev = small_device(2_000, 1, 8192);

        let sql = format!(
            "SELECT AVG(fare) FROM '{}', hoods \
             WHERE P.loc INSIDE hoods.geometry GROUP BY hoods.id",
            path.display()
        );
        let stream = StreamingRasterJoin::new(2);
        let (q, s) = stream.execute_sql(&sql, Some(30.0), &polys, &dev).unwrap();
        assert_eq!(q.aggregate, Aggregate::Avg(fare));
        assert!(s.chunks >= 3);
        let reference = s.plan.execute(&pts, &polys, &q, &dev);
        assert_eq!(s.output.counts, reference.counts);

        // No file source / missing file / parse errors are surfaced.
        assert!(matches!(
            stream.execute_sql(
                "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id",
                None,
                &polys,
                &dev
            ),
            Err(StreamError::NoFileSource)
        ));
        assert!(matches!(
            stream.execute_sql(
                "SELECT COUNT(*) FROM '/nonexistent/nope.bin', R \
                 WHERE P.loc INSIDE R.geometry GROUP BY R.id",
                None,
                &polys,
                &dev
            ),
            Err(StreamError::Io(_))
        ));
        let bad = format!(
            "SELECT MEDIAN(fare) FROM '{}', R WHERE P.loc INSIDE R.geometry GROUP BY R.id",
            path.display()
        );
        assert!(matches!(
            stream.execute_sql(&bad, None, &polys, &dev),
            Err(StreamError::Parse(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sql_streams_compressed_tables_unchanged() {
        // `FROM 'table.binz'` goes through the same schema-from-header +
        // chunk-loop path; the compressed format is invisible to SQL.
        use raster_data::disk::write_table_compressed;
        let pts = TaxiModel::default().generate(7_000, 315);
        let fare = pts.attr_index("fare").unwrap();
        let polys = synthetic_polygons(6, &nyc_extent(), 316);
        let path = tmp("sql.binz");
        write_table_compressed(&path, &pts, 1_024).unwrap();
        let dev = small_device(2_000, 1, 8192);

        let sql = format!(
            "SELECT AVG(fare) FROM '{}', hoods \
             WHERE P.loc INSIDE hoods.geometry GROUP BY hoods.id",
            path.display()
        );
        let stream = StreamingRasterJoin::new(2);
        let (q, s) = stream.execute_sql(&sql, Some(30.0), &polys, &dev).unwrap();
        assert_eq!(q.aggregate, Aggregate::Avg(fare));
        assert!(s.chunks >= 3);
        assert!(s.read_bytes < 7_000 * 36, "compressed bytes on the wire");
        let reference = s.plan.execute(&pts, &polys, &q, &dev);
        assert_eq!(s.output.counts, reference.counts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pruned_scan_matches_full_scan_and_reads_fewer_bytes() {
        use raster_data::disk::write_table_compressed;
        use raster_data::{CmpOp, Predicate};
        let pts = TaxiModel::default().generate(10_000, 320);
        let fare = pts.attr_index("fare").unwrap();
        let hour = pts.attr_index("hour").unwrap();
        let polys = synthetic_polygons(8, &nyc_extent(), 321);
        // Predicate column ≠ aggregate column; both remapped onto the
        // pruned table.
        let q = Query::avg(fare)
            .with_epsilon(40.0)
            .with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 84.0)]);
        let dev = small_device(2_000, q.attrs_uploaded(), 8192);
        let raw = tmp("prune.bin");
        let z = tmp("prune.binz");
        write_table(&raw, &pts).unwrap();
        write_table_compressed(&z, &pts, 1_024).unwrap();

        for path in [&raw, &z] {
            // One worker + fixed chunk: deterministic fold order, so the
            // pruned and full scans must agree *bitwise* on sums.
            let exec = |prune: bool| {
                StreamingRasterJoin::new(1)
                    .with_chunk_rows(997)
                    .with_column_pruning(prune)
                    .execute(path, &polys, &q, &dev)
                    .unwrap()
            };
            let pruned = exec(true);
            let full = exec(false);
            assert_eq!(pruned.output.counts, full.output.counts);
            assert_eq!(pruned.output.sums, full.output.sums, "bitwise sums");
            assert_eq!(pruned.projection.as_deref(), Some(&[fare, hour][..]));
            assert_eq!(full.projection, None);
            assert!(
                pruned.read_bytes < full.read_bytes,
                "{path:?}: {} vs {}",
                pruned.read_bytes,
                full.read_bytes
            );
            // Per-column attribution: the pruned columns fetched nothing.
            let by_name = |s: &StreamOutput, n: &str| {
                s.column_io.iter().find(|c| c.name == n).unwrap().clone()
            };
            assert_eq!(by_name(&pruned, "tip").bytes_read, 0);
            assert_eq!(by_name(&pruned, "distance").bytes_read, 0);
            assert!(by_name(&pruned, "fare").bytes_read > 0);
            assert!(by_name(&full, "tip").bytes_read > 0);
            assert_eq!(
                pruned.column_io.iter().map(|c| c.bytes_read).sum::<u64>(),
                pruned.read_bytes
            );
            // The in-memory reference with the *original* query agrees.
            let reference = pruned.plan.execute(&pts, &polys, &q, &dev);
            assert_eq!(pruned.output.counts, reference.counts);
        }
        std::fs::remove_file(&raw).ok();
        std::fs::remove_file(&z).ok();
    }

    #[test]
    fn readahead_ring_depth_is_result_invariant() {
        let pts = TaxiModel::default().generate(12_000, 330);
        let polys = synthetic_polygons(6, &nyc_extent(), 331);
        let q = Query::count().with_epsilon(30.0);
        let dev = small_device(1_500, 0, 8192);
        let path = tmp("ring.bin");
        write_table(&path, &pts).unwrap();
        let base = StreamingRasterJoin::new(2)
            .with_readahead(1)
            .execute(&path, &polys, &q, &dev)
            .unwrap();
        assert_eq!(StreamingRasterJoin::default().readahead, DEFAULT_READAHEAD);
        for depth in [2usize, 4, 8] {
            let s = StreamingRasterJoin::new(2)
                .with_readahead(depth)
                .execute(&path, &polys, &q, &dev)
                .unwrap();
            assert_eq!(s.output.counts, base.output.counts, "depth {depth}");
            assert_eq!(s.chunks, base.chunks);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explain_shows_pruned_columns_and_predicted_bytes() {
        use raster_data::disk::write_table_compressed;
        let pts = TaxiModel::default().generate(6_000, 340);
        let fare = pts.attr_index("fare").unwrap();
        let polys = synthetic_polygons(6, &nyc_extent(), 341);
        let q = Query::avg(fare).with_epsilon(40.0);
        let dev = small_device(2_000, 1, 8192);
        let path = tmp("explain.binz");
        write_table_compressed(&path, &pts, 1_024).unwrap();

        let stream = StreamingRasterJoin::new(2);
        let text = stream.explain(&path, &polys, &q, &dev).unwrap();
        assert!(text.contains("streaming scan"), "{text}");
        assert!(text.contains("columns: x, y, fare"), "{text}");
        assert!(text.contains("pruned 4 of 5 attribute column(s)"), "{text}");
        assert!(text.contains("readahead 3 chunk(s)"), "{text}");
        // The chosen chunk-pool width is part of the streaming plan.
        assert!(text.contains("workers:"), "{text}");
        assert!(
            text.contains("executor caps at 2"),
            "workers line should show the executor cap: {text}"
        );
        assert!(text.contains(", workers="), "{text}");
        // Blocking mode always runs the single-consumer loop.
        let blocking = StreamingRasterJoin::new(2)
            .blocking()
            .explain(&path, &polys, &q, &dev)
            .unwrap();
        assert!(
            blocking.contains("workers: 1 chunk-pool worker(s)"),
            "{blocking}"
        );
        // Predicted read bytes reflect the pruned column set exactly.
        let meta = raster_data::disk::table_meta(&path).unwrap();
        let expect = meta.pruned_scan_bytes(&[fare]);
        assert!(
            text.contains(&format!("predicted read bytes: {expect} of ")),
            "{expect} missing in:\n{text}"
        );
        // …and the execution fetches exactly what EXPLAIN predicted.
        let s = stream.execute(&path, &polys, &q, &dev).unwrap();
        assert_eq!(s.read_bytes, expect);

        // Pruning off: all columns, full-scan bytes.
        let full = stream
            .with_column_pruning(false)
            .explain(&path, &polys, &q, &dev)
            .unwrap();
        assert!(full.contains("all 5 attribute column(s)"), "{full}");
        assert!(
            full.contains(&format!(
                "predicted read bytes: {} of {}",
                meta.scan_bytes(),
                meta.scan_bytes()
            )),
            "{full}"
        );

        // The SQL form resolves the schema from the header and strips the
        // EXPLAIN keyword itself (any case).
        for kw in ["EXPLAIN", "Explain", ""] {
            let sql = format!(
                "{kw} SELECT AVG(fare) FROM '{}', R \
                 WHERE P.loc INSIDE R.geometry GROUP BY R.id",
                path.display()
            );
            let via_sql = StreamingRasterJoin::new(2)
                .explain_sql(&sql, Some(40.0), &polys, &dev)
                .unwrap();
            assert!(via_sql.contains("pruned 4 of 5"), "{kw}: {via_sql}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sql_over_tail_truncated_file_works_when_pruning_spares_it() {
        // The SQL entry point must honour projection-aware truncation
        // tolerance: schema resolution reads only the header, and the
        // projected open decides whether the missing tail matters.
        let pts = TaxiModel::default().generate(3_000, 360);
        let polys = synthetic_polygons(5, &nyc_extent(), 361);
        let path = tmp("trunc-sql.bin");
        write_table(&path, &pts).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Chop into the last attribute column ('hour')'s region.
        std::fs::write(&path, &full[..full.len() - 64]).unwrap();
        let dev = small_device(1_000, 1, 8192);
        let sql = format!(
            "SELECT AVG(fare) FROM '{}', R WHERE P.loc INSIDE R.geometry GROUP BY R.id",
            path.display()
        );
        let stream = StreamingRasterJoin::new(1);
        let (q, s) = stream.execute_sql(&sql, Some(40.0), &polys, &dev).unwrap();
        assert_eq!(s.rows, 3_000);
        let reference = s.plan.execute(&pts, &polys, &q, &dev);
        assert_eq!(s.output.counts, reference.counts);
        // A query needing the truncated column still fails, with a typed
        // error.
        let sql_hour = format!(
            "SELECT AVG(hour) FROM '{}', R WHERE P.loc INSIDE R.geometry GROUP BY R.id",
            path.display()
        );
        match stream.execute_sql(&sql_hour, Some(40.0), &polys, &dev) {
            Err(StreamError::Io(e)) => {
                use raster_data::codec::FormatError;
                assert!(
                    matches!(FormatError::of(&e), Some(FormatError::Truncated { .. })),
                    "{e}"
                );
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_referencing_missing_column_is_invalid_input() {
        let pts = TaxiModel::default().generate(1_000, 350);
        let polys = synthetic_polygons(4, &nyc_extent(), 351);
        let path = tmp("badattr.bin");
        write_table(&path, &pts).unwrap();
        // Attribute index 9 does not exist in the 5-column taxi schema.
        let q = Query::sum(9).with_epsilon(40.0);
        let err = StreamingRasterJoin::new(1)
            .execute(&path, &polys, &q, &Device::default())
            .unwrap_err();
        let StreamError::Io(err) = err else {
            panic!("expected an I/O error, got {err:?}");
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let polys = synthetic_polygons(4, &nyc_extent(), 314);
        let err = StreamingRasterJoin::new(1)
            .execute(
                Path::new("/nonexistent/stream.bin"),
                &polys,
                &Query::count(),
                &Device::default(),
            )
            .unwrap_err();
        let StreamError::Io(err) = err else {
            panic!("expected an I/O error, got {err:?}");
        };
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn reorder_buffer_releases_worst_case_reverse_arrival_in_order() {
        // Every chunk arrives before its predecessor — the worst case the
        // reorder buffer exists for. Nothing releases until seq 0 lands,
        // then the whole backlog drains in ascending order.
        let mut buf = ReorderBuffer::new(0);
        for seq in (1..8u64).rev() {
            buf.insert(seq, seq);
            assert_eq!(buf.pop_next(), None, "released before seq 0 arrived");
        }
        buf.insert(0, 0);
        for want in 0..8u64 {
            assert_eq!(buf.pop_next(), Some(want));
        }
        assert_eq!(buf.pop_next(), None);
    }

    #[test]
    fn reorder_buffer_interleaves_arrivals_and_releases() {
        let mut buf = ReorderBuffer::new(0);
        buf.insert(1, "b");
        buf.insert(0, "a");
        assert_eq!(buf.pop_next(), Some("a"));
        assert_eq!(buf.pop_next(), Some("b"));
        assert_eq!(buf.pop_next(), None); // 2 not here yet
        buf.insert(3, "d");
        buf.insert(2, "c");
        assert_eq!(buf.pop_next(), Some("c"));
        assert_eq!(buf.pop_next(), Some("d"));
        assert_eq!(buf.pop_next(), None);
    }

    #[test]
    fn busy_union_with_no_tracked_work_covers_nothing() {
        let busy = BusyUnion::new();
        assert_eq!(busy.covered(), Duration::ZERO);
    }

    #[test]
    fn busy_union_does_not_double_count_overlap() {
        // Two fully-overlapping busy spans (nested on one thread stands in
        // for concurrent workers: the active counter is what's under
        // test). The union covers the outer span once, so it is bounded by
        // wall time — a sum of spans would be ~2× wall.
        let busy = BusyUnion::new();
        let wall = Instant::now();
        busy.track(|| {
            busy.track(|| std::thread::sleep(Duration::from_millis(20)));
        });
        let wall = wall.elapsed();
        let covered = busy.covered();
        assert!(covered >= Duration::from_millis(20), "covered {covered:?}");
        assert!(covered <= wall, "union {covered:?} exceeds wall {wall:?}");
    }

    #[test]
    fn busy_union_zero_length_span_is_harmless() {
        let busy = BusyUnion::new();
        busy.track(|| {});
        // A degenerate span contributes (at most) its own ~zero length,
        // and the union stays consistent for later spans.
        let before = busy.covered();
        assert!(before < Duration::from_millis(50), "empty span: {before:?}");
        busy.track(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(busy.covered() >= before + Duration::from_millis(5));
    }
}
