//! Bounded raster join (§4.1–4.2): the approximate, PIP-free operator.
//!
//! Pipeline per (batch × canvas tile):
//!
//! 1. **DrawPoints** — every point passing the filter predicates is
//!    transformed to screen space and additively blended into the point
//!    FBO (`count += 1`, `sum += a_i`).
//! 2. **DrawPolygons** — triangulated polygons are rasterized
//!    (pixel-center sampling); each fragment folds its pixel's partial
//!    aggregates into the polygon's result slot.
//!
//! The canvas resolution realises the ε-bound of §4.2 (pixel diagonal =
//! ε); when it exceeds the device FBO limit the canvas splits into tiles
//! and the two steps re-run per tile (Fig. 5). Points are uploaded to the
//! device exactly once per batch regardless of the tile count (§5).
//!
//! Two execution paths exist per batch, selected by [`RasterConfig`]:
//!
//! * **Binned** (default) — `raster_gpu::bin_points` classifies every
//!   filtered point into its tile once, so each tile's DrawPoints replays
//!   only its own pre-transformed entries: O(points + fragments) per
//!   batch. With `sharding` on and enough point density, the replay goes
//!   through private per-worker shards instead of FBO atomics.
//! * **Rescan** (`RasterConfig::naive`) — the literal translation of the
//!   hardware pipeline: every tile pass re-filters and re-transforms the
//!   whole batch, O(points × tiles). Kept for the ablation bench.

use crate::query::{result_slots, JoinOutput, Query};
use crate::stats::ExecStats;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::hausdorff::resolution_for_epsilon;
use raster_geom::{BBox, Point, Polygon};
use raster_gpu::bin::{bin_points, BinnedBatch, CanvasTiling};
use raster_gpu::exec::{block_for, default_workers, parallel_dynamic, parallel_ranges, timed};
use raster_gpu::raster::rasterize_polygon_spans;
use raster_gpu::ssbo::{AtomicF64Array, AtomicU64Array};
use raster_gpu::{Device, FboPool, PointFbo, RasterConfig, Viewport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

// The sharding density gate lives on `RasterConfig::use_shards` so the
// bounded and accurate executors (and the planner's cost model) share one
// definition; see `raster_gpu::SHARD_MIN_DENSITY` for the threshold.

/// Estimate how many points of `[start, end)` will actually blend into
/// `canvas`: survive the filter predicates AND land inside the canvas
/// extent. Drives the sharding density gate — a deterministic
/// evenly-spaced sample of up to 1024 rows, scaled up; cheap enough to
/// run per batch and accurate enough for an order-of-magnitude gate.
/// Without it, a selective predicate (0.1% pass rate) or a point set
/// mostly outside the polygon extent (nationwide points vs one city's
/// polygons) would trigger a full O(pixels × shards) merge to blend a
/// handful of fragments.
pub(crate) fn estimate_survivors(
    points: &PointTable,
    start: usize,
    end: usize,
    preds: &[raster_data::Predicate],
    canvas: &Viewport,
) -> usize {
    let n = end - start;
    if n == 0 {
        return 0;
    }
    let probe = canvas.pixel_probe();
    let sample = n.min(1024);
    // Round the stride *up* so the sample spans the whole range — rounding
    // down degenerates to the first `sample` consecutive rows for
    // n < 2·sample, which biases the estimate on row-order-correlated
    // predicates (the taxi tables are time-ordered).
    let step = n.div_ceil(sample);
    let mut hits = 0usize;
    let mut checked = 0usize;
    let mut i = start;
    while i < end && checked < sample {
        if (preds.is_empty() || passes(points, i, preds))
            && probe.pixel_of(points.point(i)).is_some()
        {
            hits += 1;
        }
        checked += 1;
        i += step;
    }
    n * hits / checked.max(1)
}

/// The bounded (approximate) raster join operator.
pub struct BoundedRasterJoin {
    pub workers: usize,
    /// Binning/sharding toggles (both on by default).
    pub config: RasterConfig,
    /// Planner-chosen points-per-batch override; capped by the device
    /// memory budget. `None` fills the device budget (the default).
    pub batch_points: Option<usize>,
}

impl Default for BoundedRasterJoin {
    fn default() -> Self {
        BoundedRasterJoin {
            workers: default_workers(),
            config: RasterConfig::default(),
            batch_points: None,
        }
    }
}

/// Polygon-side state reusable across point batches/chunks of one query:
/// the triangulation plus the ε-derived canvas tiling. The paper
/// processes polygons once per query regardless of how many point batches
/// stream through (§5); callers running their own chunk loop (e.g. the
/// disk-resident scan of §7.7) should [`BoundedRasterJoin::prepare`] once
/// and reuse.
/// One polygon's rings (outer + holes) in world coordinates, ready for
/// scanline rasterization.
struct PolyRings {
    id: u32,
    rings: Vec<Vec<Point>>,
}

pub struct PreparedBounded {
    polys: Vec<PolyRings>,
    tiling: Option<CanvasTiling>,
    nslots: usize,
    preparation: std::time::Duration,
    /// FBO/shard recycling shared across every chunk executed against
    /// this preparation: a streamed scan would otherwise reallocate (and
    /// page-fault) the full canvas once per chunk — hundreds of MB at
    /// fine ε — outside any timer.
    pool: FboPool,
}

impl PreparedBounded {
    pub fn passes_per_batch(&self) -> u32 {
        self.tiling.as_ref().map_or(0, |t| t.tile_count()) as u32
    }

    /// Canvases checked out of this preparation's pool right now. Zero
    /// between passes; the streaming error-path tests assert it drains
    /// back to zero after a failed scan.
    pub fn outstanding_canvases(&self) -> usize {
        self.pool.outstanding()
    }
}

impl BoundedRasterJoin {
    pub fn new(workers: usize) -> Self {
        BoundedRasterJoin {
            workers,
            ..Default::default()
        }
    }

    /// The pre-binning pipeline (per-tile rescans, atomic blending) — the
    /// ablation baseline.
    pub fn naive(workers: usize) -> Self {
        BoundedRasterJoin {
            workers,
            config: RasterConfig::naive(),
            ..Default::default()
        }
    }

    pub fn with_config(workers: usize, config: RasterConfig) -> Self {
        BoundedRasterJoin {
            workers,
            config,
            batch_points: None,
        }
    }

    /// Extract polygon rings and derive the canvas tiling for `epsilon`.
    ///
    /// The paper triangulates here (§3) because GPUs only rasterize
    /// triangles; the software rasterizer scan-converts polygons directly
    /// with identical pixel-center coverage (see
    /// `raster_gpu::raster::rasterize_polygon_spans`), so preparation is
    /// just ring extraction. The ablation bench keeps the triangle path
    /// for comparison.
    pub fn prepare(&self, polys: &[Polygon], epsilon: f64, device: &Device) -> PreparedBounded {
        let t0 = Instant::now();
        let prepared_polys: Vec<PolyRings> = polys
            .iter()
            .map(|p| {
                let mut rings = Vec::with_capacity(1 + p.holes().len());
                rings.push(p.outer().points().to_vec());
                for h in p.holes() {
                    rings.push(h.points().to_vec());
                }
                PolyRings { id: p.id(), rings }
            })
            .collect();
        let preparation = t0.elapsed();
        let tiling = if polys.is_empty() {
            None
        } else {
            let extent = polygon_extent(polys);
            let (w, h) = resolution_for_epsilon(&extent, epsilon);
            let max_dim = device.config().max_fbo_dim;
            Some(CanvasTiling::new(Viewport::new(extent, w, h), max_dim))
        };
        PreparedBounded {
            polys: prepared_polys,
            tiling,
            nslots: result_slots(polys),
            preparation,
            pool: FboPool::new(),
        }
    }

    /// Execute `query` joining `points` with `polys` on `device`.
    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> JoinOutput {
        let prepared = self.prepare(polys, query.epsilon, device);
        self.execute_prepared(&prepared, points, query, device)
    }

    /// Execute against pre-triangulated polygons (chunked scans reuse the
    /// preparation across every chunk).
    pub fn execute_prepared(
        &self,
        prepared: &PreparedBounded,
        points: &PointTable,
        query: &Query,
        device: &Device,
    ) -> JoinOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = prepared.nslots;
        let counts = AtomicU64Array::new(nslots);
        let sums = AtomicF64Array::new(nslots);
        let Some(tiling) = prepared.tiling.as_ref() else {
            return JoinOutput {
                counts: counts.to_vec(),
                sums: sums.to_vec(),
                stats,
            };
        };
        stats.triangulation = prepared.preparation;

        // Out-of-core batching: points transferred exactly once.
        let attrs_up = query.attrs_uploaded();
        let point_bytes = PointTable::point_bytes(attrs_up);
        let per_batch = self
            .batch_points
            .map_or(usize::MAX, |b| b.max(1))
            .min(device.points_per_batch(point_bytes));
        let agg_attr = query.aggregate.attr();
        let fragments = AtomicU64::new(0);
        let pool = &prepared.pool;

        let proc0 = Instant::now();
        let mut start = 0usize;
        while start < points.len() || (points.is_empty() && start == 0) {
            let end = (start + per_batch).min(points.len());
            device.record_upload(((end - start) * point_bytes) as u64);
            stats.batches += 1;

            // Binning: classify this batch's surviving points into their
            // tiles once, instead of rescanning the batch per tile below.
            // A single-tile canvas has no rescan to eliminate — the direct
            // blend already filters and transforms each point exactly once
            // — so binning there would only pay the staging buffer.
            let binned = if self.config.binning && tiling.tile_count() > 1 {
                let t0 = Instant::now();
                let preds = &query.predicates;
                let b = bin_points(
                    tiling,
                    end - start,
                    self.workers,
                    agg_attr.is_some(),
                    |rel| {
                        let i = start + rel;
                        if !preds.is_empty() && !passes(points, i, preds) {
                            return None;
                        }
                        let v = agg_attr.map_or(0.0, |a| points.attr(a)[i]);
                        Some((points.point(i), v))
                    },
                );
                let dt = t0.elapsed();
                stats.binning += dt;
                stats.point_stage += dt;
                stats.binned_points += b.len() as u64;
                Some(b)
            } else {
                None
            };

            // For the rescan path's sharding gate: expected entries per
            // tile, estimated once per batch (each tile receives roughly
            // an even share of the surviving points). Only the explicit
            // rescan+sharding ablation arm takes this path — with binning
            // enabled, sharding rides on the binned replay (whose per-tile
            // entry counts are exact), and a binning-skipped single-tile
            // canvas runs plain atomics, which the data shows beat the
            // shard merge when no rescan is being amortized.
            let est_tile_entries = if !self.config.binning && self.config.sharding {
                estimate_survivors(points, start, end, &query.predicates, &tiling.full)
                    / tiling.tile_count().max(1)
            } else {
                0
            };

            for (ti, vp) in tiling.tiles.iter().enumerate() {
                let fbo = pool.acquire(vp.width, vp.height);
                let mut point_stage = std::time::Duration::ZERO;
                timed(&mut point_stage, || match &binned {
                    Some(b) => self.draw_points_binned(b, ti, vp, &fbo, pool, &mut stats),
                    None => self.draw_points(
                        points,
                        start,
                        end,
                        query,
                        agg_attr,
                        vp,
                        est_tile_entries,
                        &fbo,
                        pool,
                        &mut stats,
                    ),
                });
                stats.point_stage += point_stage;
                timed(&mut stats.polygon_stage, || {
                    self.draw_polygons(
                        &prepared.polys,
                        vp,
                        &fbo,
                        agg_attr.is_some(),
                        &counts,
                        &sums,
                        &fragments,
                    )
                });
                pool.release(fbo);
                stats.passes += 1;
            }

            if end == points.len() {
                break;
            }
            start = end;
        }
        stats.processing = proc0.elapsed();

        // Result read-back: two 8-byte slots per polygon.
        device.record_download((nslots * 16) as u64);
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;
        stats.transfer = device.modelled_transfer_time();
        stats.fragments = fragments.load(Ordering::Relaxed);

        JoinOutput {
            counts: counts.to_vec(),
            sums: sums.to_vec(),
            stats,
        }
    }

    /// Step I via the binner: replay tile `ti`'s pre-transformed entries.
    fn draw_points_binned(
        &self,
        binned: &BinnedBatch,
        ti: usize,
        vp: &Viewport,
        fbo: &PointFbo,
        pool: &FboPool,
        stats: &mut ExecStats,
    ) {
        let (idx, vals) = binned.tile(ti);
        if idx.is_empty() {
            return;
        }
        if self
            .config
            .use_shards(idx.len(), vp.pixel_count(), self.workers)
        {
            let mut shards = pool.acquire_shards(vp.pixel_count(), self.workers);
            shards.accumulate(idx, vals);
            let t0 = Instant::now();
            shards.merge_into(fbo, self.workers);
            stats.shard_merge += t0.elapsed();
            pool.release_shards(shards);
        } else {
            match vals {
                Some(vals) => parallel_ranges(idx.len(), self.workers, |s, e| {
                    for (&pix, &v) in idx[s..e].iter().zip(&vals[s..e]) {
                        fbo.blend_add_idx(pix as usize, v);
                    }
                }),
                None => parallel_ranges(idx.len(), self.workers, |s, e| {
                    for &pix in &idx[s..e] {
                        fbo.blend_add_idx(pix as usize, 0.0);
                    }
                }),
            }
        }
    }

    /// Step I (Procedure DrawPoints), rescan form: blend filtered points
    /// into the FBO, re-filtering the whole batch for this tile.
    /// `est_tile_entries` is the caller's per-batch estimate of surviving
    /// points landing in this tile, driving the sharding gate.
    #[allow(clippy::too_many_arguments)]
    fn draw_points(
        &self,
        points: &PointTable,
        start: usize,
        end: usize,
        query: &Query,
        agg_attr: Option<usize>,
        vp: &Viewport,
        est_tile_entries: usize,
        fbo: &PointFbo,
        pool: &FboPool,
        stats: &mut ExecStats,
    ) {
        let preds = &query.predicates;
        if self
            .config
            .use_shards(est_tile_entries, vp.pixel_count(), self.workers)
        {
            // Sharding without binning (ablation): every shard worker
            // still rescans its point subrange per tile, but blends into
            // private buffers instead of the shared atomics.
            let mut shards = pool.acquire_shards(vp.pixel_count(), self.workers);
            shards.accumulate_with(end - start, |_shard, rel| {
                let i = start + rel;
                if !preds.is_empty() && !passes(points, i, preds) {
                    return None;
                }
                let (x, y) = vp.pixel_of(points.point(i))?;
                let v = agg_attr.map_or(0.0, |a| points.attr(a)[i]);
                Some((y * vp.width + x, v))
            });
            let t0 = Instant::now();
            shards.merge_into(fbo, self.workers);
            stats.shard_merge += t0.elapsed();
            pool.release_shards(shards);
            return;
        }
        parallel_ranges(end - start, self.workers, |s, e| {
            for i in (start + s)..(start + e) {
                // Vertex-shader constraint test: failing points are
                // clipped before rasterization (§5).
                if !preds.is_empty() && !passes(points, i, preds) {
                    continue;
                }
                if let Some((x, y)) = vp.pixel_of(points.point(i)) {
                    let v = agg_attr.map_or(0.0, |a| points.attr(a)[i]);
                    fbo.blend_add(x, y, v);
                }
            }
        });
    }

    /// Step II (Procedure DrawPolygons): scan-convert each polygon over
    /// the FBO and fold the pixel partial aggregates into its result
    /// slot. Accumulation is local per polygon, so a single atomic update
    /// per polygon reaches the SSBO.
    #[allow(clippy::too_many_arguments)]
    fn draw_polygons(
        &self,
        polys: &[PolyRings],
        vp: &Viewport,
        fbo: &PointFbo,
        needs_sums: bool,
        counts: &AtomicU64Array,
        sums: &AtomicF64Array,
        fragments: &AtomicU64,
    ) {
        let (w, h) = (vp.width, vp.height);
        let block = block_for(polys.len(), self.workers);
        parallel_dynamic(polys.len(), self.workers, block, |pi| {
            let poly = &polys[pi];
            let id = poly.id as usize;
            // Vertex stage: transform the rings to screen space.
            let screen: Vec<Vec<(f64, f64)>> = poly
                .rings
                .iter()
                .map(|r| r.iter().map(|&p| vp.to_screen(p)).collect())
                .collect();
            let ring_refs: Vec<&[(f64, f64)]> = screen.iter().map(|r| r.as_slice()).collect();
            let mut frags = 0u64;
            let mut cnt_acc = 0u64;
            let mut sum_acc = 0f64;
            if needs_sums {
                rasterize_polygon_spans(&ring_refs, w, h, |y, x0, x1| {
                    frags += (x1 - x0) as u64;
                    let (cnt, sum) = fbo.span_totals(y, x0, x1);
                    cnt_acc += cnt;
                    sum_acc += sum;
                });
            } else {
                // COUNT query: the vectorized count-only scan.
                rasterize_polygon_spans(&ring_refs, w, h, |y, x0, x1| {
                    frags += (x1 - x0) as u64;
                    cnt_acc += fbo.span_count(y, x0, x1);
                });
            }
            if cnt_acc > 0 {
                counts.add(id, cnt_acc);
            }
            if sum_acc != 0.0 {
                sums.add(id, sum_acc);
            }
            if frags > 0 {
                fragments.fetch_add(frags, Ordering::Relaxed);
            }
        });
    }
}

/// Bounding box of the polygon data set — the `w × h` of §4.2.
pub fn polygon_extent(polys: &[Polygon]) -> BBox {
    let mut b = BBox::empty();
    for p in polys {
        b.union(&p.bbox());
    }
    // Inflate marginally so points exactly on the max edge stay renderable.
    b.inflate(1e-9 * (b.width() + b.height()).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregate;
    use raster_geom::Point;

    fn grid_polys() -> Vec<Polygon> {
        // 2×2 squares tiling [0,20]².
        let mut v = Vec::new();
        let mut id = 0;
        for gy in 0..2 {
            for gx in 0..2 {
                let x0 = gx as f64 * 10.0;
                let y0 = gy as f64 * 10.0;
                v.push(Polygon::from_coords(
                    id,
                    vec![
                        (x0, y0),
                        (x0 + 10.0, y0),
                        (x0 + 10.0, y0 + 10.0),
                        (x0, y0 + 10.0),
                    ],
                ));
                id += 1;
            }
        }
        v
    }

    fn points_in_quadrants() -> PointTable {
        let mut t = PointTable::with_capacity(8, &["v"]);
        // 1 point in poly 0, 2 in poly 1, 3 in poly 2, 2 in poly 3; all
        // well inside (away from edges) so any reasonable ε is exact.
        t.push(Point::new(5.0, 5.0), &[1.0]);
        t.push(Point::new(15.0, 5.0), &[2.0]);
        t.push(Point::new(16.0, 4.0), &[3.0]);
        t.push(Point::new(3.0, 15.0), &[4.0]);
        t.push(Point::new(5.0, 16.0), &[5.0]);
        t.push(Point::new(7.0, 13.0), &[6.0]);
        t.push(Point::new(15.0, 15.0), &[7.0]);
        t.push(Point::new(12.0, 18.0), &[8.0]);
        t
    }

    #[test]
    fn count_well_separated_points_is_exact() {
        let out = BoundedRasterJoin::new(2).execute(
            &points_in_quadrants(),
            &grid_polys(),
            &Query::count().with_epsilon(0.5),
            &Device::default(),
        );
        assert_eq!(out.counts, vec![1, 2, 3, 2]);
        assert_eq!(out.total_count(), 8);
    }

    #[test]
    fn sum_and_avg_track_attribute() {
        let q = Query::sum(0).with_epsilon(0.5);
        let out = BoundedRasterJoin::new(2).execute(
            &points_in_quadrants(),
            &grid_polys(),
            &q,
            &Device::default(),
        );
        assert_eq!(out.values(Aggregate::Sum(0)), vec![1.0, 5.0, 15.0, 15.0]);
        let avg = out.values(Aggregate::Avg(0));
        assert!((avg[2] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn predicates_filter_before_rasterization() {
        use raster_data::filter::{CmpOp, Predicate};
        let q = Query::count()
            .with_epsilon(0.5)
            .with_predicates(vec![Predicate::new(0, CmpOp::Gt, 4.5)]);
        let out = BoundedRasterJoin::new(2).execute(
            &points_in_quadrants(),
            &grid_polys(),
            &q,
            &Device::default(),
        );
        // Values > 4.5: points with v in {5,6,7,8} → polys 2 (two) and 3 (two).
        assert_eq!(out.counts, vec![0, 0, 2, 2]);
    }

    #[test]
    fn out_of_core_batches_match_in_memory_result() {
        let polys = grid_polys();
        let pts = points_in_quadrants();
        let big = Device::default();
        let small = Device::new(raster_gpu::DeviceConfig::small(
            3 * PointTable::point_bytes(0), // 3 points per batch
            8192,
        ));
        let q = Query::count().with_epsilon(0.5);
        let a = BoundedRasterJoin::new(2).execute(&pts, &polys, &q, &big);
        let b = BoundedRasterJoin::new(2).execute(&pts, &polys, &q, &small);
        assert_eq!(a.counts, b.counts);
        assert!(b.stats.batches > a.stats.batches);
        assert_eq!(a.stats.batches, 1);
        assert_eq!(b.stats.batches, 3);
    }

    #[test]
    fn tiled_canvas_matches_single_canvas() {
        let polys = grid_polys();
        let pts = points_in_quadrants();
        let q = Query::count().with_epsilon(0.5);
        let one = BoundedRasterJoin::new(2).execute(&pts, &polys, &q, &Device::default());
        let tiled_dev = Device::new(raster_gpu::DeviceConfig::small(3 << 30, 16));
        let tiled = BoundedRasterJoin::new(2).execute(&pts, &polys, &q, &tiled_dev);
        assert_eq!(one.counts, tiled.counts);
        assert!(tiled.stats.passes > one.stats.passes);
    }

    #[test]
    fn upload_happens_once_per_batch_not_per_tile() {
        let polys = grid_polys();
        let pts = points_in_quadrants();
        let q = Query::count().with_epsilon(0.5);
        let dev = Device::new(raster_gpu::DeviceConfig::small(3 << 30, 16));
        let out = BoundedRasterJoin::new(1).execute(&pts, &polys, &q, &dev);
        assert!(out.stats.passes > 1);
        assert_eq!(out.stats.batches, 1);
        assert_eq!(
            out.stats.upload_bytes,
            pts.upload_bytes(0),
            "points must be shipped exactly once"
        );
    }

    #[test]
    fn intersecting_polygons_count_points_in_both() {
        // Two overlapping squares; a point in the overlap scores for both —
        // the SSBO design handles intersecting polygons in one pass (§6.1).
        let polys = vec![
            Polygon::from_coords(0, vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]),
            Polygon::from_coords(1, vec![(5.0, 0.0), (15.0, 0.0), (15.0, 10.0), (5.0, 10.0)]),
        ];
        let mut pts = PointTable::with_capacity(1, &[]);
        pts.push(Point::new(7.0, 5.0), &[]);
        let out = BoundedRasterJoin::new(1).execute(
            &pts,
            &polys,
            &Query::count().with_epsilon(0.2),
            &Device::default(),
        );
        assert_eq!(out.counts, vec![1, 1]);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out = BoundedRasterJoin::new(1).execute(
            &PointTable::new(),
            &grid_polys(),
            &Query::count(),
            &Device::default(),
        );
        assert_eq!(out.counts, vec![0, 0, 0, 0]);
        let out2 = BoundedRasterJoin::new(1).execute(
            &points_in_quadrants(),
            &[],
            &Query::count(),
            &Device::default(),
        );
        assert!(out2.counts.is_empty());
    }

    #[test]
    fn worker_count_does_not_change_counts() {
        let polys = grid_polys();
        let pts = points_in_quadrants();
        let q = Query::count().with_epsilon(0.5);
        let a = BoundedRasterJoin::new(1).execute(&pts, &polys, &q, &Device::default());
        let b = BoundedRasterJoin::new(8).execute(&pts, &polys, &q, &Device::default());
        assert_eq!(a.counts, b.counts);
    }

    /// All four binning × sharding combinations, with a tiled canvas and a
    /// dense workload (so the sharding density gate actually engages):
    /// identical counts, sums within f32 reassociation tolerance.
    #[test]
    fn config_matrix_is_equivalent() {
        use raster_data::generators::{nyc_extent, TaxiModel};
        use raster_data::polygons::synthetic_polygons;
        let extent = nyc_extent();
        let polys = synthetic_polygons(10, &extent, 31);
        let pts = TaxiModel::default().generate(30_000, 32);
        let fare = pts.attr_index("fare").unwrap();
        let q = Query::sum(fare).with_epsilon(200.0);
        // Small tiles so the canvas splits, and a small enough FBO that
        // 30k points exceed the shard density threshold.
        let dev = Device::new(raster_gpu::DeviceConfig::small(3 << 30, 128));

        let combos = [(false, false), (true, false), (false, true), (true, true)];
        let outs: Vec<JoinOutput> = combos
            .iter()
            .map(|&(binning, sharding)| {
                BoundedRasterJoin::with_config(4, RasterConfig { binning, sharding })
                    .execute(&pts, &polys, &q, &dev)
            })
            .collect();
        let base = &outs[0];
        assert!(base.stats.passes > base.stats.batches, "canvas must tile");
        for (i, out) in outs.iter().enumerate().skip(1) {
            assert_eq!(out.counts, base.counts, "combo {:?}", combos[i]);
            for (s, (a, b)) in out.sums.iter().zip(&base.sums).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                    "combo {:?} slot {s}: {a} vs {b}",
                    combos[i]
                );
            }
        }
        // The binned runs actually went through the binner...
        assert!(outs[3].stats.binned_points > 0);
        assert_eq!(outs[0].stats.binned_points, 0);
        // ...and the sharded runs through the merge pass.
        assert!(outs[3].stats.shard_merge > std::time::Duration::ZERO);
        assert_eq!(outs[0].stats.shard_merge, std::time::Duration::ZERO);
    }

    /// The sharding density gate: a sparse workload over a huge canvas
    /// must not pay the per-pixel merge even when sharding is enabled.
    #[test]
    fn sparse_tiles_skip_the_shard_merge() {
        let polys = grid_polys();
        let pts = points_in_quadrants(); // 8 points on a large tiled canvas
        let q = Query::count().with_epsilon(0.05);
        // ε = 0.05 over the 20×20 extent needs a ~566² canvas; a 128-pixel
        // FBO limit splits it into tiles so binning engages.
        let dev = Device::new(raster_gpu::DeviceConfig::small(3 << 30, 128));
        let out = BoundedRasterJoin::new(4).execute(&pts, &polys, &q, &dev);
        assert_eq!(out.counts, vec![1, 2, 3, 2]);
        assert_eq!(out.stats.shard_merge, std::time::Duration::ZERO);
        assert_eq!(out.stats.binned_points, 8);
    }

    /// Single-tile canvases skip the binner entirely: the direct blend
    /// already touches each point exactly once.
    #[test]
    fn single_tile_canvas_skips_binning() {
        let polys = grid_polys();
        let pts = points_in_quadrants();
        let q = Query::count().with_epsilon(0.5);
        let out = BoundedRasterJoin::new(4).execute(&pts, &polys, &q, &Device::default());
        assert_eq!(out.stats.passes, 1, "canvas must be a single tile");
        assert_eq!(out.counts, vec![1, 2, 3, 2]);
        assert_eq!(out.stats.binned_points, 0);
        assert_eq!(out.stats.binning, std::time::Duration::ZERO);
    }

    /// Binned + sharded out-of-core batching still matches single-batch.
    #[test]
    fn binned_out_of_core_matches_in_memory() {
        use raster_data::generators::{nyc_extent, uniform_points};
        use raster_data::polygons::synthetic_polygons;
        let extent = nyc_extent();
        let polys = synthetic_polygons(6, &extent, 41);
        let pts = uniform_points(5_000, &extent, 42);
        let q = Query::count().with_epsilon(100.0);
        // Same tiled canvas (ε=100 → ~820², split at 256) on both devices,
        // so both runs bin; only the batch size differs.
        let big = Device::new(raster_gpu::DeviceConfig::small(3 << 30, 256));
        let small = Device::new(raster_gpu::DeviceConfig::small(
            1024 * PointTable::point_bytes(0),
            256,
        ));
        let a = BoundedRasterJoin::new(4).execute(&pts, &polys, &q, &big);
        let b = BoundedRasterJoin::new(4).execute(&pts, &polys, &q, &small);
        assert_eq!(a.counts, b.counts);
        assert!(b.stats.batches > 1);
        // Binning ran once per batch over that batch only: entries never
        // exceed points, and both paths bin every in-extent point.
        assert_eq!(a.stats.binned_points, b.stats.binned_points);
    }
}
