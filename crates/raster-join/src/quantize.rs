//! Coordinate quantization as in Zhang et al. \[72\].
//!
//! Section 2 notes that the materializing GPU join of \[72\] "truncate\[s\]
//! coordinates to 16-bit integers, thus resulting in approximate joins as
//! well" — i.e. the state-of-the-art comparator is *also* approximate,
//! just with a fixed, resolution-independent error. This module models
//! that scheme so the ablation bench can compare the two approximation
//! knobs: coordinate truncation (one global 2¹⁶ lattice) versus the raster
//! join's ε-bounded canvas (freely chosen per query).
//!
//! A [`Quantizer`] snaps a point to the center of its cell on a
//! `2^bits × 2^bits` lattice over the data extent. The induced positional
//! error is at most half the cell diagonal, so a quantized join behaves
//! like a bounded raster join with ε equal to [`Quantizer::epsilon_equivalent`]
//! — except that ε cannot be tightened without re-encoding the data.

use raster_geom::{BBox, Point};

/// Snap-to-lattice quantizer over a fixed extent.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    extent: BBox,
    /// Lattice cells per axis (`2^bits`).
    cells: u32,
}

impl Quantizer {
    /// Lattice of `2^bits` cells per axis over `extent`. \[72\] uses
    /// `bits = 16`.
    pub fn new(extent: BBox, bits: u8) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(
            extent.width() > 0.0 && extent.height() > 0.0,
            "extent must have positive area"
        );
        Quantizer {
            extent,
            cells: 1u32 << bits,
        }
    }

    /// Integer cell coordinates of `p` (clamped to the lattice).
    pub fn encode(&self, p: Point) -> (u16, u16) {
        let fx = (p.x - self.extent.min.x) / self.extent.width();
        let fy = (p.y - self.extent.min.y) / self.extent.height();
        let clamp = |f: f64| ((f * self.cells as f64) as i64).clamp(0, self.cells as i64 - 1);
        (clamp(fx) as u16, clamp(fy) as u16)
    }

    /// World coordinates of the center of cell `(cx, cy)`.
    pub fn decode(&self, cx: u16, cy: u16) -> Point {
        let cw = self.extent.width() / self.cells as f64;
        let ch = self.extent.height() / self.cells as f64;
        Point::new(
            self.extent.min.x + (cx as f64 + 0.5) * cw,
            self.extent.min.y + (cy as f64 + 0.5) * ch,
        )
    }

    /// Snap `p` to its cell center — the coordinate every consumer of the
    /// quantized data actually sees.
    pub fn snap(&self, p: Point) -> Point {
        let (cx, cy) = self.encode(p);
        self.decode(cx, cy)
    }

    /// Worst-case displacement introduced by [`Quantizer::snap`]: half the
    /// cell diagonal.
    pub fn max_displacement(&self) -> f64 {
        let cw = self.extent.width() / self.cells as f64;
        let ch = self.extent.height() / self.cells as f64;
        0.5 * (cw * cw + ch * ch).sqrt()
    }

    /// The bounded-raster-join ε giving the same worst-case positional
    /// error. A snapped point can land up to [`Self::max_displacement`]
    /// from its true location, matching the
    /// bounded join's guarantee that misclassified points lie within ε of
    /// the polygon boundary.
    pub fn epsilon_equivalent(&self) -> f64 {
        self.max_displacement()
    }

    /// Bytes per quantized point: two 16-bit lattice coordinates, versus
    /// the 8-byte (f32, f32) VBO layout of §6.1. This is the memory
    /// saving \[72\] buys with the approximation.
    pub const BYTES_PER_POINT: usize = 4;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn extent() -> BBox {
        BBox::new(Point::new(-100.0, 40.0), Point::new(60.0, 120.0))
    }

    #[test]
    fn snap_displacement_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [4u8, 8, 12, 16] {
            let q = Quantizer::new(extent(), bits);
            let bound = q.max_displacement();
            for _ in 0..2_000 {
                let p = Point::new(rng.gen_range(-100.0..60.0), rng.gen_range(40.0..120.0));
                let s = q.snap(p);
                let d = p.distance(s);
                assert!(d <= bound + 1e-9, "bits {bits}: moved {d} > {bound}");
            }
        }
    }

    #[test]
    fn snap_is_idempotent() {
        let q = Quantizer::new(extent(), 10);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let p = Point::new(rng.gen_range(-100.0..60.0), rng.gen_range(40.0..120.0));
            let s = q.snap(p);
            assert_eq!(q.snap(s), s);
        }
    }

    #[test]
    fn encode_clamps_out_of_extent_points() {
        let q = Quantizer::new(extent(), 8);
        assert_eq!(q.encode(Point::new(-1e9, -1e9)), (0, 0));
        assert_eq!(q.encode(Point::new(1e9, 1e9)), (255, 255));
        // The extreme corner maps to the last cell, not one past it.
        assert_eq!(q.encode(Point::new(60.0, 120.0)), (255, 255));
    }

    #[test]
    fn more_bits_means_less_error() {
        let coarse = Quantizer::new(extent(), 8);
        let fine = Quantizer::new(extent(), 16);
        assert!(fine.max_displacement() < coarse.max_displacement() / 200.0);
        assert_eq!(fine.epsilon_equivalent(), fine.max_displacement());
    }

    #[test]
    fn decode_inverts_encode_on_cell_centers() {
        let q = Quantizer::new(extent(), 6);
        for cx in [0u16, 5, 31, 63] {
            for cy in [0u16, 17, 63] {
                let p = q.decode(cx, cy);
                assert_eq!(q.encode(p), (cx, cy));
            }
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn rejects_zero_bits() {
        let _ = Quantizer::new(extent(), 0);
    }
}
