//! Accuracy metrics for the §7.6 analysis.
//!
//! * per-polygon percent error (Fig. 12b's box plots);
//! * box-plot statistics with 1.5 × IQR whiskers, matching the paper's
//!   plotting convention;
//! * the just-noticeable-difference (JND) test of Fig. 6: with a
//!   sequential color map of at most 9 perceivable classes, a human can
//!   only distinguish two choropleth maps when some polygon's normalized
//!   value differs by more than 1/9.

/// Per-polygon percent errors `100·|approx − exact| / exact`, skipping
/// polygons with an exact value of zero (where percent error is
/// undefined).
pub fn percent_errors(approx: &[f64], exact: &[f64]) -> Vec<f64> {
    assert_eq!(approx.len(), exact.len());
    approx
        .iter()
        .zip(exact)
        .filter(|&(_, &e)| e != 0.0)
        .map(|(&a, &e)| 100.0 * (a - e).abs() / e.abs())
        .collect()
}

/// Box-plot summary (Tukey style, 1.5 × IQR whiskers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    pub min: f64,
    pub whisker_lo: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub whisker_hi: f64,
    pub max: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl BoxStats {
    /// Compute the summary of a sample. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q1 = quantile(&v, 0.25);
        let median = quantile(&v, 0.5);
        let q3 = quantile(&v, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers: the most extreme data points inside the fences.
        let whisker_lo = v.iter().copied().find(|&x| x >= lo_fence).unwrap_or(v[0]);
        let whisker_hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(v[v.len() - 1]);
        Some(BoxStats {
            min: v[0],
            whisker_lo,
            q1,
            median,
            q3,
            whisker_hi,
            max: v[v.len() - 1],
        })
    }
}

/// Maximum perceivable color classes of a sequential map (ColorBrewer —
/// §7.6 cites 9), making the JND `1/9`.
pub const JND: f64 = 1.0 / 9.0;

/// Maximum absolute difference between the *normalized* (by their own
/// maxima) approximate and exact value vectors — the quantity Fig. 6
/// compares against the JND.
pub fn max_normalized_error(approx: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(approx.len(), exact.len());
    let max_a = approx.iter().cloned().fold(0.0f64, f64::max);
    let max_e = exact.iter().cloned().fold(0.0f64, f64::max);
    if max_a == 0.0 || max_e == 0.0 {
        return 0.0;
    }
    approx
        .iter()
        .zip(exact)
        .map(|(&a, &e)| (a / max_a - e / max_e).abs())
        .fold(0.0f64, f64::max)
}

/// True when two choropleth maps of these values are perceptually
/// indistinguishable (max normalized error below the JND).
pub fn visually_indistinguishable(approx: &[f64], exact: &[f64]) -> bool {
    max_normalized_error(approx, exact) < JND
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_errors_skip_zero_exact() {
        let e = percent_errors(&[11.0, 5.0, 1.0], &[10.0, 0.0, 2.0]);
        assert_eq!(e.len(), 2);
        assert!((e[0] - 10.0).abs() < 1e-12);
        assert!((e[1] - 50.0).abs() < 1e-12);
    }

    #[test]
    fn box_stats_of_known_sample() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let b = BoxStats::of(&v).unwrap();
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 9.0);
        // No outliers: whiskers = extremes.
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 9.0);
    }

    #[test]
    fn outliers_fall_outside_whiskers() {
        let mut v: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        v.push(1_000.0);
        let b = BoxStats::of(&v).unwrap();
        assert!(b.whisker_hi < 1_000.0);
        assert_eq!(b.max, 1_000.0);
    }

    #[test]
    fn empty_sample_has_no_stats() {
        assert!(BoxStats::of(&[]).is_none());
    }

    #[test]
    fn normalized_error_is_scale_invariant() {
        let exact = [10.0, 20.0, 40.0];
        let scaled: Vec<f64> = exact.iter().map(|&x| x * 7.5).collect();
        assert!(max_normalized_error(&scaled, &exact) < 1e-12);
        assert!(visually_indistinguishable(&scaled, &exact));
    }

    #[test]
    fn large_relative_shift_is_perceivable() {
        let exact = [10.0, 20.0, 40.0];
        let approx = [40.0, 20.0, 10.0]; // reversed ranking
        assert!(!visually_indistinguishable(&approx, &exact));
    }

    #[test]
    fn jnd_threshold_value() {
        assert!((JND - 1.0 / 9.0).abs() < 1e-15);
    }
}
