//! Multi-aggregate raster join (§8, "Performing Multiple Aggregates").
//!
//! The paper's implementation runs one aggregate per query; §8 notes the
//! extension: attach more color channels to the FBO and compute several
//! aggregates in a single rendering pass, paying only extra memory
//! transfer. The parallel-coordinates chart of Fig. 1(c) — one axis per
//! distribution — is exactly the consumer: instead of one query per axis,
//! one multi-aggregate query fills every axis.
//!
//! [`MultiBoundedRasterJoin`] executes a COUNT plus any number of
//! SUM/AVG aggregates over distinct attributes in one DrawPoints +
//! DrawPolygons pipeline using the multi-render-target FBO.

use crate::bounded::polygon_extent;
use crate::query::{result_slots, Aggregate, Query};
use crate::stats::ExecStats;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::hausdorff::resolution_for_epsilon;
use raster_geom::triangulate::triangulate_all;
use raster_geom::Polygon;
use raster_gpu::exec::{default_workers, parallel_dynamic, parallel_ranges};
use raster_gpu::raster::rasterize_triangle_spans;
use raster_gpu::ssbo::{AtomicF64Array, AtomicU64Array};
use raster_gpu::{Device, MrtFbo, Viewport};
use std::time::Instant;

/// A query computing several aggregates in one pass.
#[derive(Debug, Clone)]
pub struct MultiQuery {
    /// The aggregates; duplicates of attribute columns are fine (they
    /// share a channel).
    pub aggregates: Vec<Aggregate>,
    pub predicates: Vec<raster_data::Predicate>,
    pub epsilon: f64,
}

impl MultiQuery {
    pub fn new(aggregates: Vec<Aggregate>) -> Self {
        MultiQuery {
            aggregates,
            predicates: Vec::new(),
            epsilon: 10.0,
        }
    }

    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0);
        self.epsilon = epsilon;
        self
    }

    pub fn with_predicates(mut self, preds: Vec<raster_data::Predicate>) -> Self {
        self.predicates = preds;
        self
    }

    /// Distinct attribute columns needing a sum channel.
    pub fn channels(&self) -> Vec<usize> {
        let mut a: Vec<usize> = self.aggregates.iter().filter_map(Aggregate::attr).collect();
        a.sort_unstable();
        a.dedup();
        a
    }

    /// Equivalent single-aggregate queries (what you'd run without this
    /// extension) — used by tests and the ablation bench.
    pub fn split(&self) -> Vec<Query> {
        self.aggregates
            .iter()
            .map(|&agg| Query {
                aggregate: agg,
                predicates: self.predicates.clone(),
                epsilon: self.epsilon,
            })
            .collect()
    }
}

/// Result of a multi-aggregate execution.
#[derive(Debug, Clone)]
pub struct MultiOutput {
    pub counts: Vec<u64>,
    /// Per distinct attribute channel (see [`MultiQuery::channels`]):
    /// per-polygon sums.
    pub sums: Vec<Vec<f64>>,
    pub stats: ExecStats,
}

impl MultiOutput {
    /// Values of aggregate `i` of the originating query.
    pub fn values(&self, mq: &MultiQuery, i: usize) -> Vec<f64> {
        let channels = mq.channels();
        match mq.aggregates[i] {
            Aggregate::Count => self.counts.iter().map(|&c| c as f64).collect(),
            Aggregate::Sum(a) => {
                let c = channels.iter().position(|&x| x == a).expect("channel");
                self.sums[c].clone()
            }
            Aggregate::Avg(a) => {
                let c = channels.iter().position(|&x| x == a).expect("channel");
                self.sums[c]
                    .iter()
                    .zip(&self.counts)
                    .map(|(&s, &n)| if n == 0 { 0.0 } else { s / n as f64 })
                    .collect()
            }
        }
    }
}

/// Bounded raster join computing all aggregates in one rendering pass.
pub struct MultiBoundedRasterJoin {
    pub workers: usize,
}

impl Default for MultiBoundedRasterJoin {
    fn default() -> Self {
        MultiBoundedRasterJoin {
            workers: default_workers(),
        }
    }
}

impl MultiBoundedRasterJoin {
    pub fn new(workers: usize) -> Self {
        MultiBoundedRasterJoin { workers }
    }

    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        mq: &MultiQuery,
        device: &Device,
    ) -> MultiOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = result_slots(polys);
        let channels = mq.channels();
        let k = channels.len();
        let counts = AtomicU64Array::new(nslots);
        let sums: Vec<AtomicF64Array> = (0..k).map(|_| AtomicF64Array::new(nslots)).collect();
        if polys.is_empty() {
            return MultiOutput {
                counts: Vec::new(),
                sums: vec![Vec::new(); k],
                stats,
            };
        }

        let t0 = Instant::now();
        let tris = triangulate_all(polys);
        stats.triangulation = t0.elapsed();

        let extent = polygon_extent(polys);
        let (w, h) = resolution_for_epsilon(&extent, mq.epsilon);
        let full = Viewport::new(extent, w, h);
        let tiles = full.split(device.config().max_fbo_dim);

        // Transfer: positions + every channel attribute + filter attrs.
        let mut up_attrs = channels.clone();
        for p in &mq.predicates {
            if !up_attrs.contains(&p.attr) {
                up_attrs.push(p.attr);
            }
        }
        let point_bytes = PointTable::point_bytes(up_attrs.len());
        let per_batch = device.points_per_batch(point_bytes);
        let preds = &mq.predicates;

        let proc0 = Instant::now();
        let mut start = 0usize;
        loop {
            let end = (start + per_batch).min(points.len());
            device.record_upload(((end - start) * point_bytes) as u64);
            stats.batches += 1;
            for vp in &tiles {
                let fbo = MrtFbo::new(vp.width, vp.height, k);
                // DrawPoints with k sum channels.
                parallel_ranges(end - start, self.workers, |s, e| {
                    let mut vals = vec![0f32; k];
                    for i in (start + s)..(start + e) {
                        if !preds.is_empty() && !passes(points, i, preds) {
                            continue;
                        }
                        if let Some((x, y)) = vp.pixel_of(points.point(i)) {
                            for (c, &attr) in channels.iter().enumerate() {
                                vals[c] = points.attr(attr)[i];
                            }
                            fbo.blend_add(x, y, &vals);
                        }
                    }
                });
                // DrawPolygons folding every channel, span at a time.
                parallel_dynamic(tris.len(), self.workers, 16, |ti| {
                    let t = &tris[ti];
                    let id = t.poly_id as usize;
                    let mut cnt_acc = 0u64;
                    let mut sum_acc = vec![0f64; k];
                    rasterize_triangle_spans(
                        [vp.to_screen(t.a), vp.to_screen(t.b), vp.to_screen(t.c)],
                        vp.width,
                        vp.height,
                        |y, x0, x1| {
                            cnt_acc += fbo.span_totals(y, x0, x1, &mut sum_acc);
                        },
                    );
                    if cnt_acc > 0 {
                        counts.add(id, cnt_acc);
                        for (c, sum) in sums.iter().enumerate() {
                            if sum_acc[c] != 0.0 {
                                sum.add(id, sum_acc[c]);
                            }
                        }
                    }
                });
                stats.passes += 1;
            }
            if end >= points.len() {
                break;
            }
            start = end;
        }
        stats.processing = proc0.elapsed();

        device.record_download((nslots * 8 * (1 + k)) as u64);
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;
        stats.transfer = device.modelled_transfer_time();

        MultiOutput {
            counts: counts.to_vec(),
            sums: sums.iter().map(AtomicF64Array::to_vec).collect(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::BoundedRasterJoin;
    use raster_data::generators::{nyc_extent, TaxiModel};
    use raster_data::polygons::synthetic_polygons;

    fn setup() -> (PointTable, Vec<Polygon>) {
        (
            TaxiModel::default().generate(3_000, 17),
            synthetic_polygons(8, &nyc_extent(), 18),
        )
    }

    #[test]
    fn one_pass_equals_split_queries() {
        let (pts, polys) = setup();
        let fare = pts.attr_index("fare").unwrap();
        let dist = pts.attr_index("distance").unwrap();
        let mq = MultiQuery::new(vec![
            Aggregate::Count,
            Aggregate::Sum(fare),
            Aggregate::Avg(dist),
        ])
        .with_epsilon(25.0);
        let dev = Device::default();
        let multi = MultiBoundedRasterJoin::new(4).execute(&pts, &polys, &mq, &dev);
        for (i, q) in mq.split().iter().enumerate() {
            let single = BoundedRasterJoin::new(4).execute(&pts, &polys, q, &dev);
            let want = single.values(q.aggregate);
            let got = multi.values(&mq, i);
            for (gi, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() < 1e-3 * w.abs().max(1.0),
                    "aggregate {i}, polygon {gi}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn duplicate_attrs_share_one_channel() {
        let (pts, _) = setup();
        let fare = pts.attr_index("fare").unwrap();
        let mq = MultiQuery::new(vec![Aggregate::Sum(fare), Aggregate::Avg(fare)]);
        assert_eq!(mq.channels(), vec![fare]);
    }

    #[test]
    fn upload_grows_with_channel_count() {
        let (pts, polys) = setup();
        let dev = Device::default();
        let one = MultiBoundedRasterJoin::new(2).execute(
            &pts,
            &polys,
            &MultiQuery::new(vec![Aggregate::Count]).with_epsilon(30.0),
            &dev,
        );
        let three = MultiBoundedRasterJoin::new(2).execute(
            &pts,
            &polys,
            &MultiQuery::new(vec![Aggregate::Count, Aggregate::Sum(0), Aggregate::Sum(2)])
                .with_epsilon(30.0),
            &dev,
        );
        assert!(three.stats.upload_bytes > one.stats.upload_bytes);
        assert!(three.stats.download_bytes > one.stats.download_bytes);
    }

    #[test]
    fn predicates_apply_to_all_aggregates() {
        use raster_data::filter::{CmpOp, Predicate};
        let (pts, polys) = setup();
        let pass_attr = pts.attr_index("passengers").unwrap();
        let mq = MultiQuery::new(vec![Aggregate::Count, Aggregate::Sum(pass_attr)])
            .with_epsilon(25.0)
            .with_predicates(vec![Predicate::new(pass_attr, CmpOp::Ge, 4.0)]);
        let out = MultiBoundedRasterJoin::new(2).execute(&pts, &polys, &mq, &Device::default());
        let counts_total: u64 = out.counts.iter().sum();
        let sums_total: f64 = out.sums[0].iter().sum();
        // Every surviving point has passengers ≥ 4, so sum ≥ 4 × count.
        assert!(sums_total >= 4.0 * counts_total as f64 - 1e-6);
        assert!(counts_total > 0);
    }

    #[test]
    fn empty_aggregate_list_counts_only() {
        let (pts, polys) = setup();
        let mq = MultiQuery::new(vec![Aggregate::Count]).with_epsilon(25.0);
        let out = MultiBoundedRasterJoin::new(2).execute(&pts, &polys, &mq, &Device::default());
        assert_eq!(out.sums.len(), 0);
        assert!(out.counts.iter().sum::<u64>() > 0);
    }
}
