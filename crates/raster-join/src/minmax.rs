//! MIN/MAX raster join — the remaining distributive aggregates of §5.
//!
//! "Distributive aggregates, such as count, (weighted) sum, minimum and
//! maximum, can be computed by dividing the input into disjoint sets,
//! aggregating each set separately and then obtaining the final result by
//! further aggregating the partial aggregates." COUNT/SUM/AVG live in
//! [`crate::bounded`]; this module adds the min/max pair, which needs a
//! different blend function: instead of addition, the FBO keeps the
//! per-pixel extremum (OpenGL's `glBlendEquation(GL_MIN/GL_MAX)`), and
//! the polygon pass folds pixel extrema into per-polygon extrema.
//!
//! Approximation semantics match the bounded COUNT join: the extremum is
//! computed over the ε-approximate polygon, so any deviation from the
//! exact answer is attributable to points within ε of the boundary.

use crate::bounded::polygon_extent;
use crate::query::result_slots;
use crate::stats::ExecStats;
use raster_data::filter::passes;
use raster_data::{PointTable, Predicate};
use raster_geom::hausdorff::resolution_for_epsilon;
use raster_geom::Polygon;
use raster_gpu::exec::{default_workers, parallel_dynamic, parallel_ranges};
use raster_gpu::raster::rasterize_polygon_spans;
use raster_gpu::{Device, Viewport};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Monotone u32 encoding of f32 that preserves order for *all* finite
/// floats (flip sign bit for positives, all bits for negatives) — the
/// standard trick enabling atomic min/max on float bit patterns.
#[inline]
fn key_of(v: f32) -> u32 {
    let b = v.to_bits();
    if b & 0x8000_0000 == 0 {
        b | 0x8000_0000
    } else {
        !b
    }
}

#[inline]
fn val_of(k: u32) -> f32 {
    if k & 0x8000_0000 != 0 {
        f32::from_bits(k & 0x7fff_ffff)
    } else {
        f32::from_bits(!k)
    }
}

/// FBO holding per-pixel minimum and maximum of a point attribute.
pub struct MinMaxFbo {
    width: u32,
    height: u32,
    /// Encoded minima, initialised to the encoding of +∞-like emptiness
    /// (u32::MAX ⇒ no point seen).
    mins: Vec<AtomicU32>,
    /// Encoded maxima, initialised to 0 (⇒ no point seen).
    maxs: Vec<AtomicU32>,
}

const EMPTY_MIN: u32 = u32::MAX;
const EMPTY_MAX: u32 = 0;

impl MinMaxFbo {
    pub fn new(width: u32, height: u32) -> Self {
        let n = width as usize * height as usize;
        let mut mins = Vec::with_capacity(n);
        mins.resize_with(n, || AtomicU32::new(EMPTY_MIN));
        let mut maxs = Vec::with_capacity(n);
        maxs.resize_with(n, || AtomicU32::new(EMPTY_MAX));
        MinMaxFbo {
            width,
            height,
            mins,
            maxs,
        }
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y as usize * self.width as usize + x as usize
    }

    /// MIN/MAX blend of one fragment (`glBlendEquation(GL_MIN/GL_MAX)`).
    #[inline]
    pub fn blend(&self, x: u32, y: u32, v: f32) {
        let i = self.idx(x, y);
        let k = key_of(v);
        // Encoded keys are monotone, so integer fetch_min/fetch_max work.
        self.mins[i].fetch_min(k, Ordering::Relaxed);
        self.maxs[i].fetch_max(k.max(1), Ordering::Relaxed); // keep 0 = empty
    }

    /// `(min, max)` of the pixel, `None` when no point landed there.
    #[inline]
    pub fn at(&self, x: u32, y: u32) -> Option<(f32, f32)> {
        let i = self.idx(x, y);
        let kmin = self.mins[i].load(Ordering::Relaxed);
        if kmin == EMPTY_MIN {
            return None;
        }
        let kmax = self.maxs[i].load(Ordering::Relaxed);
        Some((val_of(kmin), val_of(kmax)))
    }
}

/// Per-polygon MIN/MAX result.
#[derive(Debug, Clone)]
pub struct MinMaxOutput {
    /// `None` where no point fell in the polygon's rasterization.
    pub min: Vec<Option<f32>>,
    pub max: Vec<Option<f32>>,
    pub stats: ExecStats,
}

/// Bounded raster join computing MIN and MAX of one attribute per polygon.
pub struct MinMaxRasterJoin {
    pub workers: usize,
}

impl Default for MinMaxRasterJoin {
    fn default() -> Self {
        MinMaxRasterJoin {
            workers: default_workers(),
        }
    }
}

impl MinMaxRasterJoin {
    pub fn new(workers: usize) -> Self {
        MinMaxRasterJoin { workers }
    }

    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        attr: usize,
        predicates: &[Predicate],
        epsilon: f64,
        device: &Device,
    ) -> MinMaxOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = result_slots(polys);
        let mins: Vec<AtomicU32> = (0..nslots).map(|_| AtomicU32::new(EMPTY_MIN)).collect();
        let maxs: Vec<AtomicU32> = (0..nslots).map(|_| AtomicU32::new(EMPTY_MAX)).collect();
        if polys.is_empty() {
            return MinMaxOutput {
                min: Vec::new(),
                max: Vec::new(),
                stats,
            };
        }
        let extent = polygon_extent(polys);
        let (w, h) = resolution_for_epsilon(&extent, epsilon);
        let tiles = Viewport::new(extent, w, h).split(device.config().max_fbo_dim);

        // Rings for the scanline fragment path.
        let rings_of: Vec<(u32, Vec<Vec<raster_geom::Point>>)> = polys
            .iter()
            .map(|p| {
                let mut rings = vec![p.outer().points().to_vec()];
                for hole in p.holes() {
                    rings.push(hole.points().to_vec());
                }
                (p.id(), rings)
            })
            .collect();

        let point_bytes = PointTable::point_bytes(1 + predicates.len());
        let per_batch = device.points_per_batch(point_bytes);
        let proc0 = Instant::now();
        let mut start = 0usize;
        while start < points.len() {
            let end = (start + per_batch).min(points.len());
            device.record_upload(((end - start) * point_bytes) as u64);
            stats.batches += 1;
            for vp in &tiles {
                let fbo = MinMaxFbo::new(vp.width, vp.height);
                parallel_ranges(end - start, self.workers, |s, e| {
                    for i in (start + s)..(start + e) {
                        if !predicates.is_empty() && !passes(points, i, predicates) {
                            continue;
                        }
                        if let Some((x, y)) = vp.pixel_of(points.point(i)) {
                            fbo.blend(x, y, points.attr(attr)[i]);
                        }
                    }
                });
                parallel_dynamic(rings_of.len(), self.workers, 4, |pi| {
                    let (id, rings) = &rings_of[pi];
                    let screen: Vec<Vec<(f64, f64)>> = rings
                        .iter()
                        .map(|r| r.iter().map(|&p| vp.to_screen(p)).collect())
                        .collect();
                    let refs: Vec<&[(f64, f64)]> = screen.iter().map(|r| r.as_slice()).collect();
                    let mut local_min = f32::INFINITY;
                    let mut local_max = f32::NEG_INFINITY;
                    let mut any = false;
                    rasterize_polygon_spans(&refs, vp.width, vp.height, |y, x0, x1| {
                        for x in x0..x1 {
                            if let Some((lo, hi)) = fbo.at(x, y) {
                                local_min = local_min.min(lo);
                                local_max = local_max.max(hi);
                                any = true;
                            }
                        }
                    });
                    if any {
                        mins[*id as usize].fetch_min(key_of(local_min), Ordering::Relaxed);
                        maxs[*id as usize].fetch_max(key_of(local_max).max(1), Ordering::Relaxed);
                    }
                });
                stats.passes += 1;
            }
            start = end;
        }
        stats.processing = proc0.elapsed();
        device.record_download((nslots * 8) as u64);
        stats.transfer = device.modelled_transfer_time();
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;

        MinMaxOutput {
            min: mins
                .iter()
                .map(|k| {
                    let k = k.load(Ordering::Relaxed);
                    (k != EMPTY_MIN).then(|| val_of(k))
                })
                .collect(),
            max: maxs
                .iter()
                .map(|k| {
                    let k = k.load(Ordering::Relaxed);
                    (k != EMPTY_MAX).then(|| val_of(k))
                })
                .collect(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_data::generators::{nyc_extent, TaxiModel};
    use raster_data::polygons::synthetic_polygons;
    use raster_geom::Point;

    #[test]
    fn float_key_encoding_is_monotone() {
        let vals = [-1e30f32, -5.5, -0.0, 0.0, 1e-20, 3.25, 7.0e20];
        for w in vals.windows(2) {
            assert!(key_of(w[0]) <= key_of(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &v in &vals {
            assert_eq!(val_of(key_of(v)), v);
        }
    }

    #[test]
    fn fbo_blend_keeps_extrema() {
        let f = MinMaxFbo::new(2, 2);
        assert_eq!(f.at(0, 0), None);
        f.blend(0, 0, 3.0);
        f.blend(0, 0, -2.5);
        f.blend(0, 0, 1.0);
        let (lo, hi) = f.at(0, 0).unwrap();
        assert_eq!(lo, -2.5);
        assert_eq!(hi, 3.0);
        assert_eq!(f.at(1, 1), None);
    }

    #[test]
    fn interior_points_give_exact_min_max() {
        // Points far from boundaries: bounded MIN/MAX is exact.
        let polys = vec![
            Polygon::from_coords(0, vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]),
            Polygon::from_coords(
                1,
                vec![(20.0, 0.0), (30.0, 0.0), (30.0, 10.0), (20.0, 10.0)],
            ),
        ];
        let mut pts = PointTable::with_capacity(5, &["v"]);
        pts.push(Point::new(5.0, 5.0), &[3.0]);
        pts.push(Point::new(4.0, 6.0), &[-1.0]);
        pts.push(Point::new(6.0, 4.0), &[9.0]);
        pts.push(Point::new(25.0, 5.0), &[42.0]);
        pts.push(Point::new(26.0, 6.0), &[41.0]);
        let out = MinMaxRasterJoin::new(2).execute(&pts, &polys, 0, &[], 0.2, &Device::default());
        assert_eq!(out.min[0], Some(-1.0));
        assert_eq!(out.max[0], Some(9.0));
        assert_eq!(out.min[1], Some(41.0));
        assert_eq!(out.max[1], Some(42.0));
    }

    #[test]
    fn empty_polygons_report_none() {
        let polys = vec![
            Polygon::from_coords(0, vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]),
            Polygon::from_coords(1, vec![(50.0, 50.0), (60.0, 50.0), (55.0, 60.0)]),
        ];
        let mut pts = PointTable::with_capacity(1, &["v"]);
        pts.push(Point::new(5.0, 5.0), &[7.0]);
        let out = MinMaxRasterJoin::new(1).execute(&pts, &polys, 0, &[], 0.5, &Device::default());
        assert_eq!(out.max[0], Some(7.0));
        assert_eq!(out.min[1], None);
        assert_eq!(out.max[1], None);
    }

    #[test]
    fn matches_brute_force_within_boundary_band() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(6, &extent, 401);
        let pts = TaxiModel::default().generate(4_000, 402);
        let fare = pts.attr_index("fare").unwrap();
        let eps = 20.0;
        let out =
            MinMaxRasterJoin::new(2).execute(&pts, &polys, fare, &[], eps, &Device::default());
        // The bounded extremum must lie between the extremum over the
        // eroded polygon and over the dilated polygon. Cheap check: the
        // reported max never exceeds the max over inside-or-within-ε.
        for (pi, poly) in polys.iter().enumerate() {
            let edges = poly.all_edges();
            let dist = |p: Point| {
                edges
                    .iter()
                    .map(|&(a, b)| p.distance_to_segment(a, b))
                    .fold(f64::INFINITY, f64::min)
            };
            let mut dilated_max = f32::NEG_INFINITY;
            let mut core_max = f32::NEG_INFINITY;
            for i in 0..pts.len() {
                let p = pts.point(i);
                let inside = poly.contains(p);
                let v = pts.attr(fare)[i];
                if inside || dist(p) <= eps {
                    dilated_max = dilated_max.max(v);
                }
                if inside && dist(p) > eps {
                    core_max = core_max.max(v);
                }
            }
            if let Some(got) = out.max[pi] {
                assert!(
                    got <= dilated_max + 1e-3 && got >= core_max - 1e-3,
                    "polygon {pi}: {got} outside [{core_max}, {dilated_max}]"
                );
            }
        }
    }

    #[test]
    fn predicates_restrict_the_extremum() {
        use raster_data::filter::CmpOp;
        let polys = vec![Polygon::from_coords(
            0,
            vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
        )];
        let mut pts = PointTable::with_capacity(2, &["v"]);
        pts.push(Point::new(5.0, 5.0), &[100.0]);
        pts.push(Point::new(4.0, 4.0), &[1.0]);
        let preds = [Predicate::new(0, CmpOp::Lt, 50.0)];
        let out =
            MinMaxRasterJoin::new(1).execute(&pts, &polys, 0, &preds, 0.5, &Device::default());
        assert_eq!(out.max[0], Some(1.0), "filtered-out point must not win");
    }
}
