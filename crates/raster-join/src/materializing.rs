//! A materializing GPU join baseline in the style of Zhang et al. \[72\].
//!
//! Table 2 of the paper compares its fused Index Join against the
//! state-of-the-art GPU zonal-statistics system of Zhang et al., which
//! (a) indexes the points with a space-partitioning structure for
//! batching, (b) computes the spatial join *materializing* the matching
//! (point, polygon) pairs, and (c) aggregates the materialized pairs in a
//! second pass. The materialization is exactly the overhead the paper's
//! Insight 1 removes — reproducing it here reproduces the 2–3× gap of
//! Table 2 (and the out-of-memory failures the authors hit at larger
//! inputs: the pair buffer is capped, forcing extra flush passes).
//!
//! Substitution note (DESIGN.md): Zhang et al. use a point *quadtree*; we
//! use the uniform [`PointGrid`] — both are space-partitioning batchers
//! with the same role, and the materialization cost being measured is
//! identical.

use crate::query::{result_slots, JoinOutput, Query};
use crate::stats::ExecStats;
use parking_lot::Mutex;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::Polygon;
use raster_gpu::exec::{default_workers, parallel_dynamic};
use raster_gpu::Device;
use raster_index::PointGrid;
use std::time::Instant;

/// One materialized join pair, 8 bytes as in \[72\]'s compacted output.
type Pair = (u32, u32); // (point row, polygon id)

/// The materializing join baseline.
pub struct MaterializingJoin {
    pub workers: usize,
    /// Point-grid resolution per axis.
    pub point_grid_dim: u32,
    /// Cap on the materialized pair buffer, in pairs. When full the buffer
    /// is flushed through the aggregation pass (costing an extra device→
    /// host transfer), modelling \[72\]'s GPU-memory pressure.
    pub pair_buffer_cap: usize,
    /// When set, point coordinates are truncated to this many bits per
    /// axis before the containment tests, exactly as \[72\] does (§2: "they
    /// truncate coordinates to 16-bit integers, thus resulting in
    /// approximate joins"). Uploads then ship the compact lattice
    /// coordinates instead of f64 pairs, reproducing the memory saving
    /// the truncation buys. `None` (default) keeps the join exact.
    pub coord_bits: Option<u8>,
}

impl Default for MaterializingJoin {
    fn default() -> Self {
        MaterializingJoin {
            workers: default_workers(),
            point_grid_dim: 512,
            pair_buffer_cap: 1 << 22,
            coord_bits: None,
        }
    }
}

impl MaterializingJoin {
    pub fn new(workers: usize) -> Self {
        MaterializingJoin {
            workers,
            ..Default::default()
        }
    }

    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> JoinOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = result_slots(polys);
        if polys.is_empty() || points.is_empty() {
            return JoinOutput {
                counts: vec![0; nslots],
                sums: vec![0.0; nslots],
                stats,
            };
        }
        let extent = crate::bounded::polygon_extent(polys);

        // Point index build (the batching structure of [72]).
        let t0 = Instant::now();
        let grid = PointGrid::build(
            &(0..points.len())
                .map(|i| points.point(i))
                .collect::<Vec<_>>(),
            extent,
            self.point_grid_dim,
            self.point_grid_dim,
        );
        stats.index_build = t0.elapsed();

        // Quantized uploads ship two u16 lattice coordinates per point
        // instead of two f64s — [72]'s memory saving.
        let quantizer = self
            .coord_bits
            .map(|bits| crate::quantize::Quantizer::new(extent, bits));
        match quantizer {
            Some(_) => device.record_upload(
                (points.len()
                    * (crate::quantize::Quantizer::BYTES_PER_POINT + 4 * query.attrs_uploaded()))
                    as u64,
            ),
            None => device.record_upload(points.upload_bytes(query.attrs_uploaded())),
        }

        let agg_attr = query.aggregate.attr();
        let preds = &query.predicates;

        let proc0 = Instant::now();
        // Phase 1: the join, materializing pairs. Shared buffer guarded by
        // a lock; workers stage locally and splice in blocks.
        let state = Mutex::new(MatState {
            pairs: Vec::new(),
            counts: vec![0u64; nslots],
            sums: vec![0f64; nslots],
            total_pairs: 0,
            flushes: 0,
            pip: 0,
        });
        parallel_dynamic(polys.len(), self.workers, 2, |pi| {
            let poly = &polys[pi];
            let mut local: Vec<Pair> = Vec::new();
            let mut pip = 0u64;
            for &row in &grid.points_in_bbox(&poly.bbox()) {
                let row = row as usize;
                if !preds.is_empty() && !passes(points, row, preds) {
                    continue;
                }
                pip += 1;
                let p = match &quantizer {
                    Some(q) => q.snap(points.point(row)),
                    None => points.point(row),
                };
                if poly.contains(p) {
                    local.push((row as u32, poly.id()));
                }
            }
            let mut st = state.lock();
            st.pip += pip;
            st.total_pairs += local.len() as u64;
            st.pairs.extend_from_slice(&local);
            if st.pairs.len() >= self.pair_buffer_cap {
                flush(&mut st, points, agg_attr, device);
            }
        });
        let mut st = state.into_inner();
        flush(&mut st, points, agg_attr, device);
        stats.processing = proc0.elapsed();

        device.record_download((nslots * 16) as u64);
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;
        stats.transfer = device.modelled_transfer_time();
        stats.pip_tests = st.pip;
        stats.materialized_pairs = st.total_pairs;
        stats.batches = st.flushes;

        JoinOutput {
            counts: st.counts,
            sums: st.sums,
            stats,
        }
    }
}

struct MatState {
    pairs: Vec<Pair>,
    counts: Vec<u64>,
    sums: Vec<f64>,
    total_pairs: u64,
    flushes: u32,
    pip: u64,
}

/// Phase 2: aggregate the materialized pairs and drain the buffer. Each
/// flush charges a device→host transfer of the pair buffer (8 bytes per
/// pair), the cost fused execution avoids.
fn flush(st: &mut MatState, points: &PointTable, agg_attr: Option<usize>, device: &Device) {
    if st.pairs.is_empty() {
        return;
    }
    device.record_download((st.pairs.len() * 8) as u64);
    for &(row, pid) in &st.pairs {
        st.counts[pid as usize] += 1;
        if let Some(a) = agg_attr {
            st.sums[pid as usize] += points.attr(a)[row as usize] as f64;
        }
    }
    st.pairs.clear();
    st.flushes += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_join::IndexJoin;
    use raster_data::generators::{nyc_extent, uniform_points};
    use raster_data::polygons::synthetic_polygons;

    #[test]
    fn matches_index_join_results() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, 41);
        let pts = uniform_points(3_000, &extent, 42);
        let dev = Device::default();
        let mat = MaterializingJoin::new(4).execute(&pts, &polys, &Query::count(), &dev);
        let idx = IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &dev);
        assert_eq!(mat.counts, idx.counts);
        assert_eq!(mat.stats.materialized_pairs, mat.total_count());
    }

    #[test]
    fn materialization_costs_extra_transfer() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, 41);
        let pts = uniform_points(3_000, &extent, 42);
        let dev = Device::default();
        let mat = MaterializingJoin::new(4).execute(&pts, &polys, &Query::count(), &dev);
        let fused = IndexJoin::gpu(4).execute(&pts, &polys, &Query::count(), &dev);
        assert!(
            mat.stats.download_bytes > fused.stats.download_bytes,
            "pairs must be shipped back: {} vs {}",
            mat.stats.download_bytes,
            fused.stats.download_bytes
        );
    }

    #[test]
    fn buffer_cap_forces_multiple_flushes() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(6, &extent, 1);
        let pts = uniform_points(2_000, &extent, 2);
        let mut j = MaterializingJoin::new(2);
        j.pair_buffer_cap = 128;
        let out = j.execute(&pts, &polys, &Query::count(), &Device::default());
        assert!(out.stats.batches > 1, "expected multiple flushes");
        // Results still exact.
        let idx =
            IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &Device::default());
        assert_eq!(out.counts, idx.counts);
    }

    #[test]
    fn sum_aggregate_matches() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(5, &extent, 3);
        let pts = raster_data::generators::TaxiModel::default().generate(1_500, 6);
        let tip = pts.attr_index("tip").unwrap();
        let dev = Device::default();
        let mat = MaterializingJoin::new(2).execute(&pts, &polys, &Query::sum(tip), &dev);
        let idx = IndexJoin::cpu_single().execute(&pts, &polys, &Query::sum(tip), &dev);
        for i in 0..mat.sums.len() {
            assert!((mat.sums[i] - idx.sums[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn quantized_join_is_approximate_but_close() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(10, &extent, 71);
        let pts = uniform_points(5_000, &extent, 72);
        let dev = Device::default();
        let exact = MaterializingJoin::new(2).execute(&pts, &polys, &Query::count(), &dev);
        let mut q16 = MaterializingJoin::new(2);
        q16.coord_bits = Some(16);
        let approx = q16.execute(&pts, &polys, &Query::count(), &dev);
        // 16-bit truncation moves points by at most ~extent/2¹⁶ — the
        // aggregate counts stay within a fraction of a percent overall.
        let total_exact = exact.total_count() as f64;
        let total_approx = approx.total_count() as f64;
        assert!((total_exact - total_approx).abs() / total_exact < 0.01);
        // Per-polygon drift is bounded too (loose sanity bound).
        for (a, b) in exact.counts.iter().zip(&approx.counts) {
            let drift = (*a as f64 - *b as f64).abs();
            assert!(drift <= 0.05 * total_exact, "{a} vs {b}");
        }
    }

    #[test]
    fn coarse_quantization_is_visibly_wrong() {
        // 4-bit truncation (16×16 lattice over NYC) must distort results —
        // this is the failure mode a fixed global lattice cannot escape,
        // while the bounded raster join just raises its resolution.
        let extent = nyc_extent();
        let polys = synthetic_polygons(12, &extent, 73);
        let pts = uniform_points(4_000, &extent, 74);
        let dev = Device::default();
        let exact = MaterializingJoin::new(2).execute(&pts, &polys, &Query::count(), &dev);
        let mut q4 = MaterializingJoin::new(2);
        q4.coord_bits = Some(4);
        let approx = q4.execute(&pts, &polys, &Query::count(), &dev);
        let worst = exact
            .counts
            .iter()
            .zip(&approx.counts)
            .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
            .max()
            .unwrap();
        assert!(worst > 0, "a 16×16 lattice cannot be exact on 12 polygons");
    }

    #[test]
    fn quantized_upload_is_half_the_size() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(4, &extent, 75);
        let pts = uniform_points(1_000, &extent, 76);
        let dev = Device::default();
        let exact = MaterializingJoin::new(1).execute(&pts, &polys, &Query::count(), &dev);
        let mut q16 = MaterializingJoin::new(1);
        q16.coord_bits = Some(16);
        let approx = q16.execute(&pts, &polys, &Query::count(), &dev);
        // (f32, f32) VBO = 8 bytes vs (u16, u16) lattice = 4 bytes.
        assert_eq!(exact.stats.upload_bytes, 2 * approx.stats.upload_bytes);
    }

    #[test]
    fn empty_inputs() {
        let out = MaterializingJoin::new(1).execute(
            &PointTable::new(),
            &synthetic_polygons(3, &nyc_extent(), 7),
            &Query::count(),
            &Device::default(),
        );
        assert_eq!(out.counts, vec![0, 0, 0]);
    }
}
